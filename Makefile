GO ?= go

.PHONY: all build test race vet fmt check figures clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check:
	./scripts/check.sh

figures:
	$(GO) run ./cmd/figures

clean:
	rm -rf out/
