GO ?= go

.PHONY: all build test race vet fmt check chaos figures bench bench-smoke bench-ingest clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check:
	./scripts/check.sh

# Fault-injection chaos drills: severed journal under mixed traffic, 4x
# saturation goodput, breaker trip/probe/recovery, and the replica kill
# drill (follower crashed and restarted mid-traffic behind the read
# router, zero read 5xx tolerated). Race-enabled.
chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestOverload|TestWriteBreakerLifecycle' \
		./internal/server/ ./internal/core/ ./internal/replica/

figures:
	$(GO) run ./cmd/figures

# Full benchmark run; writes BENCH_1.json for before/after comparison.
bench:
	./scripts/bench.sh

# One iteration of every benchmark — compilation and sanity, not timing.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Ingest-throughput smoke: the single-worker ingest benchmark with a mat/s
# floor, guarding the group-commit + batched-publish fast path.
bench-ingest:
	./scripts/bench_ingest.sh

clean:
	rm -rf out/
