GO ?= go

.PHONY: all build test race vet fmt check chaos figures bench bench-smoke bench-ingest bench-scale bench-scale-record train-eval clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check:
	./scripts/check.sh

# Fault-injection chaos drills: severed journal under mixed traffic, 4x
# saturation goodput, breaker trip/probe/recovery, and the replica kill
# drill (follower crashed and restarted mid-traffic behind the read
# router, zero read 5xx tolerated). Race-enabled.
chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestOverload|TestWriteBreakerLifecycle' \
		./internal/server/ ./internal/core/ ./internal/replica/

figures:
	$(GO) run ./cmd/figures

# Full benchmark run; writes BENCH_1.json for before/after comparison.
bench:
	./scripts/bench.sh

# One iteration of every benchmark — compilation and sanity, not timing.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Ingest-throughput smoke: the single-worker ingest benchmarks with mat/s
# floors, guarding the group-commit + batched-publish fast path and the
# tokenize-once auto-classification path.
bench-ingest:
	./scripts/bench_ingest.sh

# Multi-tenant scale smoke: 10k synthetic materials across 4 workspaces
# through the real ingest pipeline, gated on aggregate mat/s. The nightly
# CI tier raises SCALE_N; bench-scale-record runs 10k/100k/1M and writes
# BENCH_6.json.
bench-scale:
	./scripts/bench_scale.sh

bench-scale-record:
	./scripts/bench_scale.sh -record

# Train the learned classifier over the embedded seed corpus and run the
# full evaluation with the regression gate; writes the machine-readable
# report to out/eval.json (the source of BENCH_5.json's eval block).
train-eval:
	@mkdir -p out
	$(GO) run ./cmd/carcs train
	$(GO) run ./cmd/carcs eval -gate -json out/eval.json

clean:
	rm -rf out/
