package carcs_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carcs/internal/classify"
	"carcs/internal/core"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/ingest"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/relstore"
	"carcs/internal/replica"
	"carcs/internal/search"
	"carcs/internal/server"
	"carcs/internal/similarity"
	"carcs/internal/textproc"
	"carcs/internal/viz"
	"carcs/internal/workflow"
)

// ---------------------------------------------------------------------------
// E1 — Figure 1: entering and classifying a material.
// ---------------------------------------------------------------------------

// BenchmarkEntryClassify measures the full entry flow: highlighted ontology
// search, suggestion, material insert with relational links and search
// indexing.
func BenchmarkEntryClassify(b *testing.B) {
	sys, err := core.NewSeeded()
	if err != nil {
		b.Fatal(err)
	}
	cs13 := sys.CS13()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cs13.Search(cs13.RootID(), "iterative control")
		sugg, err := sys.Suggest("keyword", "cs13", "loop over arrays of pixels", 5)
		if err != nil {
			b.Fatal(err)
		}
		m := &material.Material{
			ID:    fmt.Sprintf("bench-entry-%d", i),
			Title: "Bench Entry", Kind: material.Assignment, Level: material.CS1,
			Description:     "loop over arrays of pixels",
			Classifications: []material.Classification{{NodeID: sugg[0].NodeID}},
		}
		if err := sys.AddMaterial(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOntologySearchCS13 is the Fig. 1b search over the ~3000-entry
// tree (E6 scale claim).
func BenchmarkOntologySearchCS13(b *testing.B) {
	cs13 := ontology.CS13()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := cs13.Search(cs13.RootID(), "parallel"); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// ---------------------------------------------------------------------------
// E2–E4 — Figure 2: coverage computation, one benchmark per panel.
// ---------------------------------------------------------------------------

func benchCoverage(b *testing.B, o *ontology.Ontology, mats []*material.Material) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := coverage.Compute(o, "bench", mats)
		if r.Materials != len(mats) {
			b.Fatal("bad report")
		}
		_ = r.AreaRanking()
	}
}

func BenchmarkFigure2aNiftyCS13(b *testing.B) {
	benchCoverage(b, ontology.CS13(), corpus.Nifty().All())
}
func BenchmarkFigure2bPeachyCS13(b *testing.B) {
	benchCoverage(b, ontology.CS13(), corpus.Peachy().All())
}
func BenchmarkFigure2cITCSCS13(b *testing.B) {
	benchCoverage(b, ontology.CS13(), corpus.ITCS3145().All())
}
func BenchmarkFigure2dNiftyPDC12(b *testing.B) {
	benchCoverage(b, ontology.PDC12(), corpus.Nifty().All())
}
func BenchmarkFigure2ePeachyPDC12(b *testing.B) {
	benchCoverage(b, ontology.PDC12(), corpus.Peachy().All())
}
func BenchmarkFigure2fITCSPDC12(b *testing.B) {
	benchCoverage(b, ontology.PDC12(), corpus.ITCS3145().All())
}

// BenchmarkFigure2Render measures producing the actual artifacts (ASCII +
// SVG) from a report.
func BenchmarkFigure2Render(b *testing.B) {
	r := coverage.Compute(ontology.CS13(), "Nifty", corpus.Nifty().All())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := viz.CoverageTreeSVG(r, 2); len(out) == 0 {
			b.Fatal("empty svg")
		}
	}
}

// ---------------------------------------------------------------------------
// E5 — Figure 3: similarity graph construction and rendering.
// ---------------------------------------------------------------------------

func BenchmarkFigure3SimilarityGraph(b *testing.B) {
	nifty, peachy := corpus.Nifty().All(), corpus.Peachy().All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := similarity.BuildBipartite(nifty, peachy, similarity.SharedCount, 2)
		if len(g.Edges) != 24 {
			b.Fatalf("edges = %d", len(g.Edges))
		}
	}
}

func BenchmarkFigure3Layout(b *testing.B) {
	g := similarity.BuildBipartite(corpus.Nifty().All(), corpus.Peachy().All(), similarity.SharedCount, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pos := viz.ForceLayout(g, 900, 700, 100); len(pos) == 0 {
			b.Fatal("no layout")
		}
	}
}

// Ablation (DESIGN.md Sec. 5): the paper's shared-count metric versus
// Jaccard and rarity-weighted overlap.
func BenchmarkAblationSimilaritySharedCount(b *testing.B) {
	benchSimilarityMetric(b, similarity.SharedCount, 2)
}
func BenchmarkAblationSimilarityJaccard(b *testing.B) {
	benchSimilarityMetric(b, similarity.Jaccard, 0.2)
}
func BenchmarkAblationSimilarityRarityWeighted(b *testing.B) {
	all := corpus.AllMaterials()
	benchSimilarityMetric(b, similarity.RarityWeighted(all), 2.5)
}

func benchSimilarityMetric(b *testing.B, m similarity.Metric, threshold float64) {
	b.Helper()
	nifty, peachy := corpus.Nifty().All(), corpus.Peachy().All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := similarity.BuildBipartite(nifty, peachy, m, threshold)
		if len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// ---------------------------------------------------------------------------
// E8/E11 — suggestion engines.
// ---------------------------------------------------------------------------

const benchDesc = "students parallelize a stencil computation over arrays with OpenMP and measure speedup"

func BenchmarkSuggestKeyword(b *testing.B) {
	s := classify.NewKeyword(ontology.CS13())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Suggest(benchDesc, 10); len(out) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

func BenchmarkSuggestTFIDF(b *testing.B) {
	s := classify.NewTFIDF(ontology.CS13())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Suggest(benchDesc, 10); len(out) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

func BenchmarkSuggestBayes(b *testing.B) {
	s := classify.NewBayes(ontology.PDC12())
	s.TrainAll(corpus.Peachy().All())
	s.TrainAll(corpus.ITCS3145().All())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Suggest(benchDesc, 10); len(out) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

func BenchmarkRecommendCoOccurrence(b *testing.B) {
	co := classify.NewCoOccurrence(corpus.AllMaterials())
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := co.Recommend([]string{arrays}, 2, 10); len(out) == 0 {
			b.Fatal("no recommendations")
		}
	}
}

// ---------------------------------------------------------------------------
// E13 — read-path performance: the system-level analysis calls the server
// dispatches on every request. On the seed these recompute from scratch per
// call (Bayes retrains over the corpus, the co-occurrence miner rescans it);
// with the generation-keyed cache they are memoized until a mutation bumps
// the generation.
// ---------------------------------------------------------------------------

func seededSystem(b *testing.B) *core.System {
	b.Helper()
	sys, err := core.NewSeeded()
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkSystemSuggestBayes(b *testing.B) {
	sys := seededSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sys.Suggest("bayes", "pdc12", benchDesc, 10)
		if err != nil || len(out) == 0 {
			b.Fatalf("out=%d err=%v", len(out), err)
		}
	}
}

func BenchmarkSystemRecommendCoOccurrence(b *testing.B) {
	sys := seededSystem(b)
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := sys.Recommend([]string{arrays}, 10); len(out) == 0 {
			b.Fatal("no recommendations")
		}
	}
}

func BenchmarkSystemSuggestTFIDFPDC12(b *testing.B) {
	sys := seededSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sys.Suggest("tfidf", "pdc12", benchDesc, 10)
		if err != nil || len(out) == 0 {
			b.Fatalf("out=%d err=%v", len(out), err)
		}
	}
}

func BenchmarkSystemCoverageWarm(b *testing.B) {
	sys := seededSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sys.Coverage("cs13", "")
		if err != nil || r.Materials == 0 {
			b.Fatalf("err=%v", err)
		}
	}
}

func BenchmarkSystemSimilarityWarm(b *testing.B) {
	sys := seededSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := sys.SimilarityGraph("nifty", "peachy", 2); len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkServerSuggestBayes measures the full HTTP round trip on the
// heaviest suggestion endpoint.
func BenchmarkServerSuggestBayes(b *testing.B) {
	sys := seededSystem(b)
	h := server.New(sys, io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/api/suggest?ontology=pdc12&method=bayes&q=parallel+stencil+openmp", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkCurationCostModel evaluates the E8 effort model over the seeded
// corpus size.
func BenchmarkCurationCostModel(b *testing.B) {
	m := workflow.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if m.TotalMinutes(98, 6, true) <= 0 {
			b.Fatal("bad model")
		}
	}
}

// ---------------------------------------------------------------------------
// E12 — scalability: store, search, coverage, similarity, server at 10k
// synthetic materials ("a scalable, central place of interaction").
// ---------------------------------------------------------------------------

func syntheticMaterials(n int) []*material.Material {
	return corpus.Synthetic(corpus.SyntheticOptions{N: n, Seed: 1}).All()
}

func BenchmarkStoreScaleInsert(b *testing.B) {
	mats := syntheticMaterials(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := relstore.NewStore()
		tbl, err := s.CreateTable(relstore.Schema{Name: "m", Columns: []relstore.Column{
			{Name: "slug", Type: relstore.String, Unique: true},
			{Name: "kind", Type: relstore.String, Indexed: true},
		}})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range mats {
			if _, err := tbl.Insert(relstore.Row{"slug": m.ID, "kind": string(m.Kind)}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSearchScale10k(b *testing.B) {
	e := search.NewEngine(ontology.CS13(), ontology.PDC12())
	for _, m := range syntheticMaterials(10000) {
		e.Add(m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := e.Text("simulate traffic network queues", 10); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkCoverageScale10k(b *testing.B) {
	mats := syntheticMaterials(10000)
	o := ontology.CS13()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := coverage.Compute(o, "bench", mats)
		if r.Materials != len(mats) {
			b.Fatal("bad report")
		}
	}
}

func BenchmarkSimilarityScale1k(b *testing.B) {
	mats := syntheticMaterials(1000)
	left, right := mats[:500], mats[500:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = similarity.BuildBipartite(left, right, similarity.SharedCount, 2)
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	sys, err := core.NewSeeded()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := sys.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Restore(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput measures end-to-end request handling on the two
// hot read endpoints.
func BenchmarkServerThroughput(b *testing.B) {
	sys, err := core.NewSeeded()
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(sys, io.Discard)
	paths := []string{
		"/api/materials?collection=peachy",
		"/api/search?q=fractal&k=5",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", paths[i%len(paths)], nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// ---------------------------------------------------------------------------
// Bulk ingestion throughput: the streaming JSONL importer behind
// POST /api/import and `carcs import`. Reported in materials/sec so the
// BENCH json records end-to-end ingest rate, 1 worker versus GOMAXPROCS.
// ---------------------------------------------------------------------------

func benchIngest(b *testing.B, workers int, autoClassify bool) {
	b.Helper()
	const n = 500
	mats := syntheticMaterials(n)
	method := "none"
	if autoClassify {
		method = "tfidf"
		// Strip the pre-assigned classifications so every record goes
		// through the suggestion engines — the expensive prepare path
		// the worker pool exists to parallelize.
		for _, m := range mats {
			m.Classifications = nil
		}
	}
	var buf bytes.Buffer
	if err := ingest.WriteJSONL(&buf, mats); err != nil {
		b.Fatal(err)
	}
	input := buf.Bytes()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New()
		if err != nil {
			b.Fatal(err)
		}
		imp := ingest.New(sys, ingest.Options{Workers: workers, Method: method, Threshold: 0.05})
		sum, err := imp.Run(ctx, bytes.NewReader(input), nil)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Added != n || sum.Failed > 0 {
			b.Fatalf("summary = %+v", sum)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "mat/s")
}

func BenchmarkIngest1Worker(b *testing.B)  { benchIngest(b, 1, false) }
func BenchmarkIngestParallel(b *testing.B) { benchIngest(b, runtime.GOMAXPROCS(0), false) }
func BenchmarkIngestAutoClassify1Worker(b *testing.B) {
	benchIngest(b, 1, true)
}
func BenchmarkIngestAutoClassifyParallel(b *testing.B) {
	benchIngest(b, runtime.GOMAXPROCS(0), true)
}

// BenchmarkReadUnderIngest measures read-path throughput while a bulk
// import is actively committing: N reader goroutines hammer the coverage,
// similarity, and search paths for the whole duration of a JSONL import and
// the benchmark reports completed reads per second. This is the contention
// profile the snapshot-isolated read model is built for — before it, every
// read serialized against the committer on System.mu.
func BenchmarkReadUnderIngest(b *testing.B) {
	const readers = 8
	mats := syntheticMaterials(1000)
	var buf bytes.Buffer
	if err := ingest.WriteJSONL(&buf, mats); err != nil {
		b.Fatal(err)
	}
	input := buf.Bytes()
	ctx := context.Background()
	var totalReads int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := core.NewSeeded()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var reads int64
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for n := r; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					v := sys.View()
					switch n % 3 {
					case 0:
						if _, err := v.Coverage("cs13", ""); err != nil {
							b.Error(err)
							return
						}
					case 1:
						v.SimilarityGraph("nifty", "peachy", 2)
					default:
						v.SearchText("parallel graph simulation", 10)
					}
					atomic.AddInt64(&reads, 1)
				}
			}(r)
		}
		imp := ingest.New(sys, ingest.Options{Workers: 2, Method: "none"})
		sum, err := imp.Run(ctx, bytes.NewReader(input), nil)
		close(stop)
		wg.Wait()
		if err != nil || sum.Added != len(mats) {
			b.Fatalf("summary = %+v err = %v", sum, err)
		}
		totalReads += atomic.LoadInt64(&reads)
	}
	b.ReportMetric(float64(totalReads)/b.Elapsed().Seconds(), "reads/s")
}

// ---------------------------------------------------------------------------
// Replication: routed read throughput over a leader + two followers versus
// the same reads against a single node, both over real HTTP. The router adds
// a proxy hop per read, but the scatter spreads the read work over three
// processes' worth of snapshot views; BENCH_3.json records both sides.
// ---------------------------------------------------------------------------

// benchCluster builds a seeded durable leader, two caught-up followers, and
// a started router, all on real listeners.
func benchCluster(b *testing.B) (routerURL, leaderURL string) {
	b.Helper()
	sys, p, err := core.OpenDurable(b.TempDir(), core.DurableOptions{Seed: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	leader := server.New(sys, io.Discard)
	leader.SetPersister(p)
	leader.SetHub(replica.NewHub(p, 0))
	lts := httptest.NewServer(leader)
	b.Cleanup(lts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	var followers []string
	for i := 0; i < 2; i++ {
		f, err := replica.Bootstrap(ctx, replica.FollowerConfig{LeaderURL: lts.URL})
		if err != nil {
			b.Fatal(err)
		}
		fsrv := server.New(f.System(), io.Discard)
		fsrv.SetFollower(f)
		fts := httptest.NewServer(fsrv)
		b.Cleanup(fts.Close)
		go f.Run(ctx)
		for deadline := time.Now().Add(30 * time.Second); f.Applied() < p.Seq(); {
			if time.Now().After(deadline) {
				b.Fatal("follower never caught up")
			}
			time.Sleep(time.Millisecond)
		}
		followers = append(followers, fts.URL)
	}

	rt, err := replica.NewRouter(replica.RouterConfig{
		Backends:      append([]string{lts.URL}, followers...),
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	rt.Start()
	b.Cleanup(rt.Close)
	rts := httptest.NewServer(rt)
	b.Cleanup(rts.Close)
	return rts.URL, lts.URL
}

func benchHTTPReads(b *testing.B, baseURL string) {
	b.Helper()
	paths := []string{
		"/api/materials?collection=peachy",
		"/api/search?q=fractal&k=5",
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	var n int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&n, 1)
			resp, err := client.Get(baseURL + paths[i%int64(len(paths))])
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkRouterScatterReads drives the hot read endpoints through the
// router over a three-node cluster.
func BenchmarkRouterScatterReads(b *testing.B) {
	routerURL, _ := benchCluster(b)
	benchHTTPReads(b, routerURL)
}

// BenchmarkSingleNodeHTTPReads is the baseline: the same reads against the
// leader directly, no router hop.
func BenchmarkSingleNodeHTTPReads(b *testing.B) {
	sys, err := core.NewSeeded()
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(sys, io.Discard))
	b.Cleanup(ts.Close)
	benchHTTPReads(b, ts.URL)
}

// BenchmarkTextPipeline isolates the NLP substrate.
func BenchmarkTextPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if terms := textproc.Terms(benchDesc); len(terms) == 0 {
			b.Fatal("no terms")
		}
	}
}

func BenchmarkPorterStem(b *testing.B) {
	words := []string{"parallelization", "synchronized", "computations", "iterative", "scheduling"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = textproc.Stem(words[i%len(words)])
	}
}

// ---------------------------------------------------------------------------
// Extension features: phrase search, query language, spell correction,
// sunburst rendering, revision migration, ensemble suggestion.
// ---------------------------------------------------------------------------

func BenchmarkPhraseSearch(b *testing.B) {
	e := search.NewEngine(ontology.CS13(), ontology.PDC12())
	for _, m := range corpus.AllMaterials() {
		e.Add(m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := e.Phrase("monte carlo"); len(got) == 0 {
			b.Fatal("no phrase hits")
		}
	}
}

func BenchmarkQueryLanguage(b *testing.B) {
	e := search.NewEngine(ontology.CS13(), ontology.PDC12())
	for _, m := range corpus.AllMaterials() {
		e.Add(m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := e.Query(`collection:peachy in:cs13/pd year:2018..2019 fire`, 10)
		if err != nil {
			b.Fatal(err)
		}
		_ = hits
	}
}

func BenchmarkSpellCorrection(b *testing.B) {
	e := search.NewEngine(ontology.CS13(), ontology.PDC12())
	for _, m := range corpus.AllMaterials() {
		e.Add(m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, didYouMean := e.TextCorrected("fractel simulaton", 5); didYouMean == "" {
			b.Fatal("no correction")
		}
	}
}

func BenchmarkSunburstRender(b *testing.B) {
	r := coverage.Compute(ontology.CS13(), "Nifty", corpus.Nifty().All())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := viz.CoverageSunburstSVG(r, 3, 640); len(out) == 0 {
			b.Fatal("empty sunburst")
		}
	}
}

func BenchmarkRevisionMigration(b *testing.B) {
	old, next := ontology.PDC12(), ontology.PDC19Draft()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ontology.BuildMigration(old, next, 0.25)
		if len(m.Mapping) == 0 {
			b.Fatal("empty migration")
		}
	}
}

func BenchmarkSuggestEnsemble(b *testing.B) {
	cs13 := ontology.CS13()
	ens := classify.NewEnsemble(classify.NewKeyword(cs13), classify.NewTFIDF(cs13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ens.Suggest(benchDesc, 10); len(out) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

func BenchmarkBloomDepthReport(b *testing.B) {
	mats := corpus.ITCS3145().All()
	o := ontology.PDC12()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := coverage.ComputeDepth(o, mats); len(r.Entries) == 0 {
			b.Fatal("empty depth report")
		}
	}
}
