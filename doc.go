// Package carcs is a from-scratch Go reproduction of "Classifying
// Pedagogical Material to Improve Adoption of Parallel and Distributed
// Computing Topics" (IPDPSW/EduPar 2019): the CAR-CS system for classifying
// pedagogical materials against the ACM/IEEE CS2013 and NSF/IEEE-TCPP PDC12
// curriculum ontologies, plus every substrate it depends on.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the server, CLI, and figure-regeneration binaries;
// examples/ holds runnable walkthroughs of the paper's use cases. The
// benchmarks in this package regenerate the performance side of every
// figure (see EXPERIMENTS.md).
package carcs
