package carcs_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carcs/internal/core"
	"carcs/internal/corpus"
	"carcs/internal/ingest"
	"carcs/internal/material"
)

// The million-material scale harness (experiment E13). Gated behind
// CARCS_SCALE_N so `go test ./...` stays fast; scripts/bench_scale.sh runs
// the tiers and folds the SCALE_RESULT lines into BENCH_6.json.
//
//	CARCS_SCALE_N=10000   materials, split across workspaces (required)
//	CARCS_SCALE_TENANTS=4 workspaces sharing one process (default 4)
//	CARCS_SCALE_METHOD=none  import auto-classify method (default none;
//	                      "tfidf" exercises the suggester at scale)
//
// The harness is the ISSUE-9 scale proof: every workspace imports its slice
// concurrently through the real ingest pipeline (generator goroutine ->
// io.Pipe -> Importer, so the corpus is never materialized in memory),
// readers hammer snapshot views for the whole import, and afterwards cursor
// pages are timed shallow and deep to show keyset pagination stays
// constant-latency no matter how far into the corpus the cursor points.
func TestScaleHarness(t *testing.T) {
	n := envInt("CARCS_SCALE_N", 0)
	if n <= 0 {
		t.Skip("set CARCS_SCALE_N (e.g. 10000) to run the scale harness")
	}
	tenants := envInt("CARCS_SCALE_TENANTS", 4)
	if tenants < 1 {
		tenants = 1
	}
	method := os.Getenv("CARCS_SCALE_METHOD")
	if method == "" {
		method = "none"
	}

	def, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	ws := core.NewWorkspaces(def)
	type slot struct {
		name string
		sys  *core.System
		n    int
	}
	slots := make([]slot, tenants)
	for i := range slots {
		name := core.DefaultTenant
		sys := def
		if i > 0 {
			name = fmt.Sprintf("ws-%02d", i)
			var err error
			sys, _, err = ws.Create(name)
			if err != nil {
				t.Fatal(err)
			}
		}
		per := n / tenants
		if i < n%tenants {
			per++
		}
		slots[i] = slot{name: name, sys: sys, n: per}
	}

	// Readers pin snapshot views on the first workspace for the whole
	// import: the scale claim includes "reads never stall behind the
	// committer", so read throughput under full ingest load is part of the
	// recorded result (gated at the 10k tier against BENCH_4).
	stopReads := make(chan struct{})
	var reads int64
	var readerWG sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for k := r; ; k++ {
				select {
				case <-stopReads:
					return
				default:
				}
				v := slots[0].sys.View()
				switch k % 3 {
				case 0:
					_ = v.Len()
					_ = v.Collections()
				case 1:
					v.SearchText("parallel graph simulation", 10)
				default:
					_, _, _ = v.MaterialsPage("", nil, "", 100)
				}
				atomic.AddInt64(&reads, 1)
			}
		}(r)
	}

	ctx := context.Background()
	start := time.Now()
	var importWG sync.WaitGroup
	var added int64
	errs := make(chan error, tenants)
	for i, sl := range slots {
		importWG.Add(1)
		go func(i int, sl slot) {
			defer importWG.Done()
			pr, pw := io.Pipe()
			go func() {
				bw := bufio.NewWriterSize(pw, 1<<20)
				enc := json.NewEncoder(bw)
				opt := corpus.SyntheticOptions{
					N:        sl.n,
					Seed:     int64(1 + i*7919),
					IDPrefix: sl.name + "-",
				}
				err := corpus.SyntheticEach(opt, func(m *material.Material) error {
					rec := ingest.Record{
						ID: m.ID, Title: m.Title, Authors: m.Authors, URL: m.URL,
						Description: m.Description, Kind: string(m.Kind), Level: string(m.Level),
						Language: m.Language, Year: m.Year, Collection: "synthetic",
					}
					for _, c := range m.Classifications {
						rec.Classifications = append(rec.Classifications, c.NodeID)
					}
					return enc.Encode(rec)
				})
				if err == nil {
					err = bw.Flush()
				}
				pw.CloseWithError(err)
			}()
			imp := ingest.New(sl.sys, ingest.Options{Method: method})
			sum, err := imp.Run(ctx, pr, nil)
			if err != nil {
				errs <- fmt.Errorf("workspace %s: %w", sl.name, err)
				return
			}
			if sum.Added+sum.Review != sl.n {
				errs <- fmt.Errorf("workspace %s: added %d + review %d of %d (failed %d)",
					sl.name, sum.Added, sum.Review, sl.n, sum.Failed)
				return
			}
			atomic.AddInt64(&added, int64(sum.Added))
		}(i, sl)
	}
	importWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	close(stopReads)
	readerWG.Wait()

	// Isolation spot-check at scale: every workspace holds exactly its
	// slice, and IDs never cross the prefix boundary.
	for _, sl := range slots {
		if got := sl.sys.Len(); got != sl.n && method == "none" {
			t.Errorf("workspace %s has %d materials, want %d", sl.name, got, sl.n)
		}
		if m := sl.sys.Material(slots[0].name + "-000000"); sl.name != slots[0].name && m != nil {
			t.Errorf("workspace %s can see %s's material", sl.name, slots[0].name)
		}
	}

	// Cursor latency, shallow vs deep. The first page pays the one-time
	// sorted-index build for the snapshot; warm pages must not scale with
	// cursor depth — that is the whole point of keyset pagination.
	big := slots[0]
	v := big.sys.View()
	// A distinct filterKey forces a fresh sorted-index build here: the
	// readers above already memoized the unfiltered key for this view, so
	// timing it again would measure a cache hit, not the cold sort.
	coldStart := time.Now()
	page, total, _ := v.MaterialsPage("cold-probe", nil, "", 100)
	cold := time.Since(coldStart)
	if len(page) == 0 || total != big.sys.Len() {
		t.Fatalf("first cursor page: %d items, total %d (sys %d)", len(page), total, big.sys.Len())
	}
	mats := v.SortedMaterials("", nil)
	deepAfter := mats[len(mats)*9/10].ID
	timePages := func(after string) time.Duration {
		const rounds = 200
		begin := time.Now()
		for i := 0; i < rounds; i++ {
			if p, _, _ := v.MaterialsPage("", nil, after, 100); len(p) == 0 {
				t.Fatalf("empty page at cursor %q", after)
			}
		}
		return time.Since(begin) / rounds
	}
	warmShallow := timePages("")
	warmDeep := timePages(deepAfter)

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// Without these the GC is free to collect every workspace before
	// ReadMemStats runs (no live reference remains past this point), and
	// heap_mb reports a constant ~9MB baseline no matter the tier.
	runtime.KeepAlive(slots)
	runtime.KeepAlive(mats)

	result := map[string]any{
		"n":               n,
		"tenants":         tenants,
		"method":          method,
		"added":           added,
		"secs":            round2(elapsed.Seconds()),
		"mat_s":           round2(float64(added) / elapsed.Seconds()),
		"reads_s":         round2(float64(reads) / elapsed.Seconds()),
		"heap_mb":         round2(float64(ms.HeapAlloc) / (1 << 20)),
		"vmhwm_mb":        round2(vmHWMmb()),
		"page_cold_ms":    round2(float64(cold.Microseconds()) / 1000),
		"page_shallow_us": round2(float64(warmShallow.Nanoseconds()) / 1000),
		"page_deep_us":    round2(float64(warmDeep.Nanoseconds()) / 1000),
	}
	out, _ := json.Marshal(result)
	fmt.Printf("SCALE_RESULT %s\n", out)

	// Keyset pages must not degrade with depth. 5x headroom over the
	// shallow page absorbs scheduler noise; offset pagination at 1M is
	// orders of magnitude off, so a real regression clears the bar easily.
	if warmDeep > 5*warmShallow+5*time.Millisecond {
		t.Errorf("deep cursor page %v is not constant-latency vs shallow %v", warmDeep, warmShallow)
	}
}

func envInt(name string, def int) int {
	raw := os.Getenv(name)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return def
	}
	return v
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

// vmHWMmb reads the process peak resident set from /proc/self/status; 0 on
// platforms without procfs.
func vmHWMmb() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, _ := strconv.ParseFloat(fields[0], 64)
				return kb / 1024
			}
		}
	}
	return 0
}
