// Curation workflow (the paper's Sec. III-A crowdsourced model and the
// Sec. V future-work account system): instructors upload materials,
// editors with curriculum credentials review them, less knowledgeable users
// suggest metadata fixes that an editor must verify, and everything lands
// in an audit trail. The example also prices the effort with the curation
// cost model calibrated on the paper's "15-25 minutes per item" report.
//
// Run with: go run ./examples/curation-workflow
package main

import (
	"fmt"
	"log"

	"carcs/internal/core"
	"carcs/internal/material"
	"carcs/internal/workflow"
)

func main() {
	sys, err := core.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	wf := sys.Workflow()

	// Accounts: one of each role.
	wf.Register("prof-novak", workflow.RoleSubmitter)
	wf.Register("dr-chen", workflow.RoleEditor)
	wf.Register("student-sam", workflow.RoleUser)
	fmt.Println("registered prof-novak (submitter), dr-chen (editor), student-sam (user)")

	// The submitter uploads a material, classified with suggester help.
	desc := "Implement a work-stealing task pool in C and use it to parallelize recursive Fibonacci and tree sums."
	sugg, err := sys.Suggest("tfidf", "pdc12", desc, 3)
	if err != nil {
		log.Fatal(err)
	}
	var cls []material.Classification
	fmt.Println("\nsuggested PDC12 classifications:")
	for _, sg := range sugg {
		fmt.Printf("  %.3f  %s\n", sg.Score, sg.Path)
		cls = append(cls, material.Classification{NodeID: sg.NodeID})
	}
	m := &material.Material{
		ID: "work-stealing-task-pool", Title: "Work-Stealing Task Pool",
		Kind: material.Assignment, Level: material.Intermediate,
		Language: "C", Year: 2019, URL: "https://example.edu/wstp",
		Description: desc, Collection: "community",
		Classifications: cls,
	}
	sub, err := wf.Submit("prof-novak", m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmission #%d is %s\n", sub.ID, sub.Status)

	// A plain user may not review...
	if err := wf.Review("student-sam", sub.ID, workflow.StatusApproved, ""); err != nil {
		fmt.Println("student review rejected:", err)
	}
	// ...but may suggest a metadata fix, which the editor verifies.
	edit, err := wf.SuggestEdit("student-sam", m.ID, "language", "C", "C11")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("student-sam suggested edit #%d (%s: %q -> %q)\n", edit.ID, edit.Field, edit.OldValue, edit.NewValue)

	// The editor works the queues.
	fmt.Printf("\neditor queue: %d pending submission(s), %d unverified edit(s)\n",
		len(wf.Pending()), len(wf.UnverifiedEdits()))
	if err := wf.Review("dr-chen", sub.ID, workflow.StatusApproved, "solid scaffolding"); err != nil {
		log.Fatal(err)
	}
	if err := wf.VerifyEdit("dr-chen", edit.ID, true); err != nil {
		log.Fatal(err)
	}
	// Approved material enters the repository proper.
	if err := sys.AddMaterial(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approved and installed %q; repository now holds %d materials\n", m.Title, sys.Len())

	// Audit trail.
	fmt.Println("\naudit log:")
	for _, e := range wf.Audit() {
		fmt.Printf("  #%d %-12s %-12s %s\n", e.Seq, e.Actor, e.Action, e.Detail)
	}

	// What would classifying a whole course cost?
	model := workflow.DefaultCostModel()
	fmt.Printf("\ncuration cost model (%s):\n", model)
	for _, n := range []int{21, 98, 500} {
		fmt.Printf("  %3d items: manual %5.1f h, with suggestions %5.1f h (%.2fx)\n",
			n, model.TotalMinutes(n, 6, false)/60, model.TotalMinutes(n, 6, true)/60, model.Speedup(n, 6))
	}
}
