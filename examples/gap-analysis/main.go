// Gap analysis for PDC education experts (the paper's Sec. IV-C use case):
// compare what Nifty assignments (classic early-CS material) and Peachy
// Parallel assignments exercise, quantify their (mis)alignment, and list the
// curriculum regions where no PDC material exists yet.
//
// Run with: go run ./examples/gap-analysis
package main

import (
	"fmt"
	"log"

	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/ontology"
)

func main() {
	cs13, pdc12 := ontology.CS13(), ontology.PDC12()
	nifty := coverage.Compute(cs13, "Nifty", corpus.Nifty().All())
	peachy := coverage.Compute(cs13, "Peachy", corpus.Peachy().All())

	fmt.Println("=== What each community's assignments exercise (CS13) ===")
	fmt.Printf("%-6s %-28s %-28s\n", "", "Nifty", "Peachy")
	nRank, pRank := nifty.AreaRanking(), peachy.AreaRanking()
	for i := 0; i < 4; i++ {
		fmt.Printf("#%d     %-28s %-28s\n", i+1,
			fmt.Sprintf("%s (%d pairs)", nRank[i].Code, nRank[i].Pairs),
			fmt.Sprintf("%s (%d pairs)", pRank[i].Code, pRank[i].Pairs))
	}

	al := coverage.Alignment(nifty, peachy)
	fmt.Printf("\nalignment (Jaccard over covered entries): %.3f\n", al)
	fmt.Println("  -> \"unless the PDC community develops assignments that align better")
	fmt.Println("     with classic CS1-CS2 assignments, it is unlikely we will see massive")
	fmt.Println("     adoption.\"")

	fmt.Println("\n=== Entries Nifty exercises that no Peachy assignment touches ===")
	count := 0
	for _, d := range coverage.Diff(nifty, peachy) {
		if d.OnlyIn != "Nifty" {
			continue
		}
		if count < 10 {
			fmt.Printf("  %s\n", d.Path)
		}
		count++
	}
	fmt.Printf("  ... %d entries total — the classic-CS surface new Peachy assignments could target\n", count)

	fmt.Println("\n=== PDC12 regions with no Peachy material at all ===")
	pd := coverage.Compute(pdc12, "Peachy", corpus.Peachy().All())
	if err := printGaps(pd); err != nil {
		log.Fatal(err)
	}
}

func printGaps(pd *coverage.Report) error {
	gaps := pd.Gaps(pd.Ontology.RootID())
	for i, g := range gaps {
		if i >= 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-80s %2d entries (%s)\n", g.Path, g.Entries, g.Tier)
	}
	core := pd.CoreGaps(pd.Ontology.RootID())
	fmt.Printf("\n%d gaps total, %d containing core-tier topics — \"topics for which\n", len(gaps), len(core))
	fmt.Println("pedagogical material does not exist and that should be developed\"")
	return nil
}
