// Bulk import: stream a JSONL file of materials into a CAR-CS system
// through the ingest pipeline — the same code path behind POST /api/import
// and `carcs import`. Pre-classified records keep their classifications;
// unclassified ones are auto-classified by the TF-IDF suggester when a
// suggestion clears the confidence threshold, and routed to the human
// review queue (with machine proposals attached) when none does.
// Duplicate IDs are skipped.
//
// Run with: go run ./examples/bulk-import
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"carcs/internal/core"
	"carcs/internal/ingest"
)

func main() {
	sys, err := core.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before import: %d materials\n", sys.Len())

	f, err := os.Open("examples/bulk-import/sample.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	imp := ingest.New(sys, ingest.Options{
		Method:    "tfidf",
		Threshold: 0.15, // low enough to auto-apply on-topic records, high
		// enough that the off-topic one drops to the review queue
	})
	sum, err := imp.Run(context.Background(), f, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported: %d added (%d auto-classified), %d routed to review, %d skipped as duplicates, %d failed\n",
		sum.Added, sum.AutoClassified, sum.Review, sum.Skipped, sum.Failed)
	fmt.Printf("after import: %d materials\n\n", sys.Len())

	// Auto-classified records carry the machine-classified tag so curators
	// can audit (or re-review) everything the suggester decided on its own.
	for _, id := range []string{"bulk-demo-mpi-sort", "bulk-demo-locks"} {
		m := sys.Material(id)
		if m == nil {
			continue
		}
		fmt.Printf("%s %v\n", m.ID, m.Tags)
		for _, c := range m.ClassificationIDs() {
			fmt.Printf("  - %s\n", c)
		}
	}

	// Low-confidence records wait in the workflow queue with the machine's
	// best (sub-threshold) proposals attached for the human reviewer.
	for _, sub := range sys.Workflow().Pending() {
		fmt.Printf("\npending review: %s (submitted by %s)\n", sub.Material.ID, sub.Submitter)
	}
}
