// Finding reference material for integrating PDC in early courses (the
// paper's Sec. IV-D use case): for each non-PDC assignment an instructor
// already uses, find materials with a similar classification that also
// cover PDC topics — "replace a lecture on looping construct with one that
// ... also includes discussion of parallel loops."
//
// Run with: go run ./examples/find-pdc-materials
package main

import (
	"fmt"
	"log"

	"carcs/internal/core"
)

func main() {
	sys, err := core.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}

	// The six Nifty assignments the paper names as having PDC matches.
	inUse := []string{
		"hurricane-tracker", "2048-in-python", "campus-shuttle",
		"nbody-simulation", "image-editor", "uno",
	}
	for _, id := range inUse {
		m := sys.Material(id)
		fmt.Printf("you use: %s (%s, %s)\n", m.Title, m.Level, m.Language)
		edges, err := sys.PDCReplacements(id, 3)
		if err != nil {
			log.Fatal(err)
		}
		if len(edges) == 0 {
			fmt.Println("  no PDC-covering materials share two classification items")
			continue
		}
		for _, e := range edges {
			repl := sys.Material(e.B)
			fmt.Printf("  candidate: %-55s (%.0f shared)\n", repl.Title, e.Score)
			for _, sh := range e.Shared {
				path := sys.CS13().Path(sh)
				if path == "" {
					path = sys.PDC12().Path(sh)
				}
				fmt.Printf("      shares: %s\n", path)
			}
		}
		fmt.Println()
	}

	// And one with no matches, as the paper observes for systems-oriented
	// Peachy assignments.
	fmt.Println("you use: Boggle (not in the cluster)")
	edges, err := sys.PDCReplacements("boggle", 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(edges) == 0 {
		fmt.Println("  no PDC-covering materials share two classification items —")
		fmt.Println("  the gap the PDC community should fill with new Peachy assignments")
	}
}
