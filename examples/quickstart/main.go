// Quickstart: stand up a CAR-CS system, enter and classify a new material
// (with suggestion assistance), and ask the three questions the paper
// demonstrates — what does my material cover, what is similar to it, and
// what does the whole repository look like.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carcs/internal/core"
	"carcs/internal/material"
)

func main() {
	// A system pre-seeded with the paper's three collections: ~65 Nifty
	// assignments, 11 Peachy Parallel assignments, and the 21 materials
	// of ITCS 3145.
	sys, err := core.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	st := sys.ComputeStats()
	fmt.Printf("seeded repository: %d materials in %v\n\n", st.Materials, st.Collections)

	// Describe a new assignment and let the suggester propose entries
	// from the ~3000-entry CS13 ontology.
	desc := "Students parallelize a Game of Life grid with OpenMP pragmas, " +
		"looping over arrays of cells and measuring speedup across cores."
	fmt.Println("suggested classifications for the new assignment:")
	sugg, err := sys.Suggest("tfidf", "cs13", desc, 5)
	if err != nil {
		log.Fatal(err)
	}
	var chosen []material.Classification
	for _, sg := range sugg {
		fmt.Printf("  %.3f  %s\n", sg.Score, sg.Path)
		chosen = append(chosen, material.Classification{NodeID: sg.NodeID})
	}

	// Enter the material with the accepted suggestions.
	m := &material.Material{
		ID:              "parallel-game-of-life",
		Title:           "Parallel Game of Life",
		Authors:         []string{"You"},
		URL:             "https://example.edu/pgol",
		Description:     desc,
		Kind:            material.Assignment,
		Level:           material.CS2,
		Language:        "C",
		Year:            2019,
		Collection:      "my-course",
		Classifications: chosen,
	}
	if err := sys.AddMaterial(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadded %q with %d classifications\n\n", m.Title, len(m.Classifications))

	// What entries commonly co-occur with the ones we picked?
	if recs := sys.Recommend(m.ClassificationIDs(), 3); len(recs) > 0 {
		fmt.Println("entries commonly used together with your selection:")
		for _, r := range recs {
			fmt.Printf("  conf %.2f  %s\n", r.Confidence, r.Then)
		}
		fmt.Println()
	}

	// Free-text search across the repository.
	fmt.Println("search 'forest fire simulation':")
	hits, _ := sys.View().SearchText("forest fire simulation", 3)
	for _, h := range hits {
		fmt.Printf("  %.3f  %s (%s)\n", h.Score, h.Material.Title, h.Material.Collection)
	}

	// And the repository-wide PDC12 coverage picture.
	rep, err := sys.Coverage("pdc12", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", rep.Summary())
}
