// Coverage audit (the paper's Sec. IV-B use case): take a whole course —
// ITCS 3145, 12 slide decks and 9 assignments — and audit what it covers
// against PDC12 and CS13, surfacing both the by-design absences and the
// instructor's omissions the paper reports.
//
// Run with: go run ./examples/coverage-audit
package main

import (
	"fmt"
	"log"
	"strings"

	"carcs/internal/core"
	"carcs/internal/viz"
)

func main() {
	sys, err := core.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== ITCS 3145 against the PDC12 curriculum (Fig. 2f) ===")
	pd, err := sys.Coverage("pdc12", "itcs3145")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pd.Summary())
	fmt.Println()
	fmt.Print(viz.CoverageTreeASCII(pd, 2))

	fmt.Println("\nwhat the class does not cover (maximal uncovered subtrees):")
	for i, g := range pd.Gaps(pd.Ontology.RootID()) {
		if i >= 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-75s %2d entries (%s)\n", g.Path, g.Entries, g.Tier)
	}
	tools := pd.Ontology.RootID() + "/pr/performance-tools"
	if !pd.Covered(tools) {
		fmt.Println("\n  -> the PDC12 view flags Performance Tools as uncovered:")
		fmt.Println("     \"the absence of tools from the class is an omission of the instructor\"")
	}

	fmt.Println("\n=== ITCS 3145 against the CS13 curriculum (Fig. 2c) ===")
	cs, err := sys.Coverage("cs13", "itcs3145")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cs.Summary())
	fmt.Println("\narea ranking (the paper reads PD, then AL, CN, SDF):")
	for _, a := range cs.AreaRanking() {
		if a.Pairs == 0 {
			continue
		}
		fmt.Printf("  %-4s %-45s %3d matched pairs\n", a.Code, a.Label, a.Pairs)
	}
	hc := cs.Hours(cs.Ontology.RootID())
	fmt.Printf("\ncore-hour budget touched: %.0f of %.0f suggested lecture hours (%.0f substantially)\n",
		hc.TouchedHours, hc.TotalHours, hc.SubstantialHours)
	fmt.Printf("\nuntouched CS13 areas: %s\n", strings.Join(cs.UncoveredAreas(), ", "))
	fmt.Println("  -> \"the absence of mapping to Graphics and Visualization and Intelligent")
	fmt.Println("     Systems reveals that the class could be made more engaging by having")
	fmt.Println("     some assignments or examples derived from these areas.\"")
}
