module carcs

go 1.22
