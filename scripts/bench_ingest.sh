#!/bin/sh
# Ingest-throughput smoke: run the single-worker ingest benchmark briefly
# and fail if mat/s falls below the floor — a regression gate for the
# group-commit + batched-publish fast path (DESIGN.md §10). BENCH_2
# measured the pre-batching pipeline at ~817 mat/s; the default floor sits
# at roughly 2x that so scheduler noise on a busy machine does not flake
# while a real regression to per-record commit costs still trips it.
#
# Usage:
#   scripts/bench_ingest.sh
#   INGEST_FLOOR=2500 BENCH_TIME=3s scripts/bench_ingest.sh
set -eu

floor=${INGEST_FLOOR:-1600}
benchtime=${BENCH_TIME:-1s}

out=$(go test -run '^$' -bench 'BenchmarkIngest1Worker$' -benchtime "$benchtime" .)
echo "$out"
mats=$(echo "$out" | awk '/^BenchmarkIngest1Worker/ { for (f = 3; f < NF; f++) if ($(f+1) == "mat/s") print $f }')
if [ -z "$mats" ]; then
    echo "bench-ingest: benchmark reported no mat/s metric" >&2
    exit 1
fi
if [ "$(awk -v m="$mats" -v f="$floor" 'BEGIN { print (m + 0 >= f + 0) ? "ok" : "low" }')" != ok ]; then
    echo "bench-ingest: $mats mat/s is below the floor of $floor" >&2
    exit 1
fi
echo "bench-ingest: $mats mat/s >= floor $floor"
