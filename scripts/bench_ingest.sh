#!/bin/sh
# Ingest-throughput smoke: run the single-worker ingest benchmarks briefly
# and fail if mat/s falls below the floors.
#
# Two gates, two fast paths:
#   - BenchmarkIngest1Worker guards the group-commit + batched-publish
#     commit path (DESIGN.md §10). BENCH_2 measured the pre-batching
#     pipeline at ~817 mat/s; the floor sits at roughly 2x that so
#     scheduler noise does not flake while a real regression to
#     per-record commit costs still trips it.
#   - BenchmarkIngestAutoClassify1Worker guards the tokenize-once +
#     inverted-index suggestion path (DESIGN.md §11). BENCH_4 measured
#     the full-scan path at ~474 mat/s and the indexed path at ~3600;
#     the floor at 1000 is the "at least 2x the old path" requirement
#     with the same noise headroom.
#
# Usage:
#   scripts/bench_ingest.sh
#   INGEST_FLOOR=2500 AUTOCLASSIFY_FLOOR=1500 BENCH_TIME=3s scripts/bench_ingest.sh
set -eu

floor=${INGEST_FLOOR:-1600}
auto_floor=${AUTOCLASSIFY_FLOOR:-1000}
benchtime=${BENCH_TIME:-1s}

out=$(go test -run '^$' -bench 'BenchmarkIngest(AutoClassify)?1Worker$' -benchtime "$benchtime" .)
echo "$out"

gate() { # gate <bench-name> <floor>
    mats=$(echo "$out" | awk -v b="$1" 'index($1, b) == 1 { for (f = 3; f < NF; f++) if ($(f+1) == "mat/s") print $f }')
    if [ -z "$mats" ]; then
        echo "bench-ingest: $1 reported no mat/s metric" >&2
        exit 1
    fi
    if [ "$(awk -v m="$mats" -v f="$2" 'BEGIN { print (m + 0 >= f + 0) ? "ok" : "low" }')" != ok ]; then
        echo "bench-ingest: $1: $mats mat/s is below the floor of $2" >&2
        exit 1
    fi
    echo "bench-ingest: $1: $mats mat/s >= floor $2"
}

gate BenchmarkIngest1Worker "$floor"
gate BenchmarkIngestAutoClassify1Worker "$auto_floor"
