#!/bin/sh
# Multi-tenant scale harness (experiment E13): drive CARCS_SCALE_N synthetic
# materials, split across CARCS_SCALE_TENANTS workspaces, through the real
# ingest pipeline and gate on import throughput and peak memory. The
# TestScaleHarness run prints one SCALE_RESULT JSON line per tier; this
# script scrapes it, applies the floors, and (with -record) folds the tiers
# into BENCH_6.json.
#
# Usage:
#   scripts/bench_scale.sh                    # 10k smoke tier (check.sh/CI)
#   SCALE_N=100000 scripts/bench_scale.sh     # nightly tier
#   scripts/bench_scale.sh -record            # run 10k/100k/1M, write BENCH_6.json
#
# Floors (override via env):
#   SCALE_MAT_FLOOR   minimum aggregate import mat/s        (default 1000)
#   SCALE_RSS_CEIL_MB maximum peak RSS in MB, 0 = no gate   (default 0)
#   SCALE_READS_FLOOR minimum reads/s under ingest, 0 = off (default 0)
set -eu

n=${SCALE_N:-10000}
tenants=${SCALE_TENANTS:-4}
method=${SCALE_METHOD:-none}
mat_floor=${SCALE_MAT_FLOOR:-1000}
rss_ceil=${SCALE_RSS_CEIL_MB:-0}
reads_floor=${SCALE_READS_FLOOR:-0}

run_tier() { # run_tier <n> <tenants> <method> -> echoes the SCALE_RESULT json
    out=$(CARCS_SCALE_N="$1" CARCS_SCALE_TENANTS="$2" CARCS_SCALE_METHOD="$3" \
        go test -run TestScaleHarness -count=1 -timeout 60m -v .)
    line=$(echo "$out" | awk '/^SCALE_RESULT / { sub(/^SCALE_RESULT /, ""); print; exit }')
    if [ -z "$line" ]; then
        echo "bench-scale: tier n=$1 produced no SCALE_RESULT line" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "$line"
}

field() { # field <json> <key>
    echo "$1" | tr ',{}' '\n\n\n' | awk -F: -v k="\"$2\"" '$1 == k { print $2; exit }'
}

gate() { # gate <json> — apply floors/ceilings to one tier result
    json=$1
    mats=$(field "$json" mat_s)
    rss=$(field "$json" vmhwm_mb)
    reads=$(field "$json" reads_s)
    if [ "$(awk -v m="$mats" -v f="$mat_floor" 'BEGIN { print (m + 0 >= f + 0) ? "ok" : "low" }')" != ok ]; then
        echo "bench-scale: $mats mat/s is below the floor of $mat_floor" >&2
        exit 1
    fi
    echo "bench-scale: $mats mat/s >= floor $mat_floor"
    if [ "$rss_ceil" != 0 ]; then
        if [ "$(awk -v r="$rss" -v c="$rss_ceil" 'BEGIN { print (r + 0 <= c + 0) ? "ok" : "high" }')" != ok ]; then
            echo "bench-scale: peak RSS ${rss}MB exceeds the ceiling of ${rss_ceil}MB" >&2
            exit 1
        fi
        echo "bench-scale: peak RSS ${rss}MB <= ceiling ${rss_ceil}MB"
    fi
    if [ "$reads_floor" != 0 ]; then
        if [ "$(awk -v r="$reads" -v f="$reads_floor" 'BEGIN { print (r + 0 >= f + 0) ? "ok" : "low" }')" != ok ]; then
            echo "bench-scale: $reads reads/s under ingest is below the floor of $reads_floor" >&2
            exit 1
        fi
        echo "bench-scale: $reads reads/s under ingest >= floor $reads_floor"
    fi
}

if [ "${1:-}" = "-record" ]; then
    # Full recording run: 10k and 100k across 8 workspaces, then the 1M
    # tier. 1M runs method=none — the point of that tier is store, commit,
    # snapshot, and pagination behavior at seven figures, not suggester
    # throughput (BENCH_4 covers the suggester).
    t10=$(run_tier 10000 8 none);   echo "10k:  $t10"
    t100=$(run_tier 100000 8 none); echo "100k: $t100"
    t1m=$(run_tier 1000000 8 none); echo "1M:   $t1m"
    {
        echo '{'
        printf '  "env": {"go": "%s", "gomaxprocs": %s, "note": "multi-tenant scale harness: N materials split across 8 workspaces, concurrent import via generator->pipe->Importer, 4 snapshot readers running throughout; page_* fields time 100-item cursor pages shallow vs 90%%-deep"},\n' \
            "$(go env GOVERSION)" "$(nproc 2>/dev/null || echo 0)"
        echo '  "tiers": ['
        echo "    $t10,"
        echo "    $t100,"
        echo "    $t1m"
        echo '  ]'
        echo '}'
    } > BENCH_6.json
    echo "bench-scale: wrote BENCH_6.json"
    gate "$t10"
    exit 0
fi

result=$(run_tier "$n" "$tenants" "$method")
echo "bench-scale: $result"
gate "$result"
