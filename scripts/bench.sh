#!/bin/sh
# Benchmark driver for the read-path performance layer. Runs the benchmark
# suite with fixed settings and emits a machine-readable JSON report next to
# the raw `go test -bench` output, so before/after comparisons across
# commits diff a stable artifact instead of scraping logs.
#
# Usage:
#   scripts/bench.sh [OUT.json]          full run (default BENCH_1.json)
#   BENCH_PATTERN='Suggest|Coverage' scripts/bench.sh   subset
#   BENCH_COUNT=5 scripts/bench.sh       more samples per benchmark
#
# The JSON shape is one object per benchmark:
#   {"name": ..., "runs": N, "ns_per_op": ..., "bytes_per_op": ...,
#    "allocs_per_op": ..., "mat_per_sec": ..., "reads_per_sec": ...}
# plus an "env" header recording Go version, GOMAXPROCS, and the host CPU.
# mat_per_sec appears on the ingest-throughput benchmarks and reads_per_sec
# on the read-under-ingest benchmark, which report custom metrics. Set
# BENCH_NOTE to embed a free-form annotation (e.g. the baseline being
# compared against) in the env header.
set -eu

out=${1:-BENCH_1.json}
pattern=${BENCH_PATTERN:-.}
count=${BENCH_COUNT:-1}
benchtime=${BENCH_TIME:-1s}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench=$pattern -benchtime=$benchtime -count=$count =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" . | tee "$raw"

# Fold the raw output into JSON. Multiple -count samples of one benchmark
# are averaged; the -N name suffix is GOMAXPROCS at run time.
awk -v goversion="$(go version | awk '{print $3}')" -v note="${BENCH_NOTE:-}" '
BEGIN { n = 0; maxprocs = 1 }
/^Benchmark/ {
    name = $1
    if (match(name, /-[0-9]+$/)) {
        maxprocs = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    if (!(name in idx)) { idx[name] = ++n; names[n] = name }
    i = idx[name]
    runs[i] += $2
    samples[i]++
    for (f = 3; f < NF; f++) {
        if ($(f+1) == "ns/op")     ns[i] += $f
        if ($(f+1) == "B/op")      bytes[i] += $f
        if ($(f+1) == "allocs/op") allocs[i] += $f
        if ($(f+1) == "mat/s")     matps[i] += $f
        if ($(f+1) == "reads/s")   readps[i] += $f
    }
}
/^cpu:/ { cpu = substr($0, 6); gsub(/^[ \t]+/, "", cpu); gsub(/"/, "", cpu) }
END {
    printf "{\n  \"env\": {\"go\": \"%s\", \"gomaxprocs\": %d, \"cpu\": \"%s\"", goversion, maxprocs, cpu
    if (note != "") printf ", \"note\": \"%s\"", note
    printf "},\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.1f", names[i], runs[i], ns[i] / samples[i]
        if (bytes[i] > 0)  printf ", \"bytes_per_op\": %.1f", bytes[i] / samples[i]
        if (allocs[i] > 0) printf ", \"allocs_per_op\": %.1f", allocs[i] / samples[i]
        if (matps[i] > 0)  printf ", \"mat_per_sec\": %.1f", matps[i] / samples[i]
        if (readps[i] > 0) printf ", \"reads_per_sec\": %.1f", readps[i] / samples[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "== wrote $out =="
