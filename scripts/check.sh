#!/bin/sh
# Full pre-merge gate: formatting, vet, build, and the race-enabled test
# suite. Run from the repository root (make check does).
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race -shuffle=on =="
go test -race -shuffle=on ./...

echo "== chaos drill =="
make chaos

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench . -benchtime 1x . > /dev/null

echo "== ingest throughput floor =="
make bench-ingest

echo "== multi-tenant scale smoke (10k) =="
make bench-scale

echo "== learned-model eval gate =="
go run ./cmd/carcs eval -gate > /dev/null

echo "== OK =="
