package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"carcs/internal/classify"
	"carcs/internal/core"
	"carcs/internal/learn"
	"carcs/internal/ontology"
)

// evalMetrics is one engine's scores at the two report points: precision at
// 1 (how often the single top suggestion is right) and recall/hit at 3 (how
// much of the hand labeling three suggestions recover).
type evalMetrics struct {
	P1   float64 `json:"p_at_1"`
	R1   float64 `json:"r_at_1"`
	P3   float64 `json:"p_at_3"`
	R3   float64 `json:"r_at_3"`
	Hit3 float64 `json:"hit_at_3"`
	N    int     `json:"n"`
}

func metricsOf(q1, q3 classify.Quality) evalMetrics {
	return evalMetrics{
		P1: q1.PrecisionAtK, R1: q1.RecallAtK,
		P3: q3.PrecisionAtK, R3: q3.RecallAtK, Hit3: q3.HitRate,
		N: q3.N,
	}
}

// evalOntology is everything `carcs eval` measures against one ontology.
type evalOntology struct {
	Examples      int                    `json:"examples"`
	Engines       map[string]evalMetrics `json:"engines"`
	BestHeuristic string                 `json:"best_heuristic"`
}

// evalReport is the JSON document behind -json and BENCH_5.json.
type evalReport struct {
	Params     learn.Params            `json:"params"`
	Ontologies map[string]evalOntology `json:"ontologies"`
}

// heuristicNames are the training-free (or corpus-trained but parameterless)
// engines the learned model is compared against.
var heuristicNames = []string{"keyword", "tfidf", "bayes", "ensemble"}

// runEval is the `carcs eval` subcommand: score every suggestion engine —
// the heuristics, the learned model on its own training set, and the
// learned model under k-fold cross-validation — against the hand-curated
// corpus, per ontology. With -gate it exits non-zero unless the learned
// model holds the regression floors, which is how scripts/check.sh keeps
// model-quality regressions out of the tree.
func runEval(sys *core.System, rest []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	ont := fs.String("ontology", "both", "cs13, pdc12, or both")
	jsonOut := fs.String("json", "", "write the machine-readable report to this file")
	gate := fs.Bool("gate", false, "exit non-zero if the learned model misses its quality floors")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	var onts []*ontology.Ontology
	switch *ont {
	case "both":
		onts = []*ontology.Ontology{sys.CS13(), sys.PDC12()}
	case "cs13":
		onts = []*ontology.Ontology{sys.CS13()}
	case "pdc12":
		onts = []*ontology.Ontology{sys.PDC12()}
	default:
		return fmt.Errorf("eval: unknown ontology %q", *ont)
	}

	p := learn.DefaultParams()
	report := evalReport{Params: p, Ontologies: map[string]evalOntology{}}
	mats := sys.Materials("")
	for _, o := range onts {
		name := "cs13"
		if o == sys.PDC12() {
			name = "pdc12"
		}
		eo := evalOntology{Engines: map[string]evalMetrics{}}

		bayes := classify.NewBayes(o)
		bayes.TrainAll(mats)
		engines := map[string]classify.Suggester{
			"keyword":  classify.SharedKeyword(o),
			"tfidf":    classify.SharedTFIDF(o),
			"bayes":    bayes,
			"ensemble": classify.NewEnsemble(bayes, classify.SharedKeyword(o), classify.SharedTFIDF(o)),
		}
		exs := learn.ExamplesFromMaterials(o, mats)
		eo.Examples = len(exs)
		model := learn.Train(o, exs, p)
		engines["learned"] = model

		for eng, s := range engines {
			q1 := classify.Evaluate(s, mats, o.Has, 1)
			q3 := classify.Evaluate(s, mats, o.Has, 3)
			eo.Engines[eng] = metricsOf(q1, q3)
		}
		eo.Engines["learned_cv"] = metricsOf(
			learn.CrossValidate(o, exs, p, 1),
			learn.CrossValidate(o, exs, p, 3),
		)

		best, bestScore := "", -1.0
		for _, eng := range heuristicNames {
			if sc := eo.Engines[eng].P1 + eo.Engines[eng].R3; sc > bestScore {
				best, bestScore = eng, sc
			}
		}
		eo.BestHeuristic = best
		report.Ontologies[name] = eo

		fmt.Printf("== %s (%d labeled materials) ==\n", name, len(exs))
		for _, eng := range append(append([]string{}, heuristicNames...), "learned", "learned_cv") {
			m := eo.Engines[eng]
			fmt.Printf("%-12s P@1=%.3f R@1=%.3f P@3=%.3f R@3=%.3f hit@3=%.3f (n=%d)\n",
				eng, m.P1, m.R1, m.P3, m.R3, m.Hit3, m.N)
		}
		fmt.Printf("best heuristic: %s\n\n", best)
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *gate {
		if err := gateEval(report); err != nil {
			return err
		}
		fmt.Println("eval gate: ok")
	}
	return nil
}

// Cross-validated floors for the CS13 corpus (98 labeled materials). The
// measured values at the time the gate was introduced were P@1=0.367 and
// R@3=0.252; the floors sit below them with headroom for benign drift but
// above what an untrained or broken model can reach. PDC12's 30 labeled
// materials are too few for stable CV floors, so it is gated on the
// in-sample comparison only.
const (
	gateCS13CVP1 = 0.30
	gateCS13CVR3 = 0.20
)

// gateEval enforces the model-quality regression floors: on every ontology
// the learned model must beat (or tie) the best heuristic on in-sample P@1
// and R@3, and on CS13 its cross-validated scores must clear fixed floors.
func gateEval(r evalReport) error {
	for name, eo := range r.Ontologies {
		lm, hm := eo.Engines["learned"], eo.Engines[eo.BestHeuristic]
		if lm.P1 < hm.P1 {
			return fmt.Errorf("eval gate: %s learned P@1 %.3f below best heuristic (%s) %.3f",
				name, lm.P1, eo.BestHeuristic, hm.P1)
		}
		if lm.R3 < hm.R3 {
			return fmt.Errorf("eval gate: %s learned R@3 %.3f below best heuristic (%s) %.3f",
				name, lm.R3, eo.BestHeuristic, hm.R3)
		}
	}
	if eo, ok := r.Ontologies["cs13"]; ok {
		cv := eo.Engines["learned_cv"]
		if cv.P1 < gateCS13CVP1 {
			return fmt.Errorf("eval gate: cs13 cross-validated P@1 %.3f below floor %.2f", cv.P1, gateCS13CVP1)
		}
		if cv.R3 < gateCS13CVR3 {
			return fmt.Errorf("eval gate: cs13 cross-validated R@3 %.3f below floor %.2f", cv.R3, gateCS13CVR3)
		}
	}
	return nil
}
