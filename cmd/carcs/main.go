// Command carcs is the CAR-CS command-line interface over the seeded
// repository: list and inspect materials, compute coverage and gaps, build
// similarity graphs, search, suggest classifications, and export snapshots.
//
// Usage:
//
//	carcs [-data DIR] <subcommand>
//
//	carcs stats
//	carcs list [-collection nifty] [-kind assignment] [-level CS1]
//	carcs show <material-id>
//	carcs coverage -ontology cs13 [-collection itcs3145] [-depth 2]
//	carcs gaps -ontology pdc12 [-collection peachy] [-core]
//	carcs similarity [-left nifty] [-right peachy] [-threshold 2]
//	carcs search -q "forest fire"
//	carcs query -q 'collection:nifty level:CS1 in:cs13/sdf arrays'
//	carcs depth -ontology pdc12 -collection itcs3145
//	carcs ontology-search -ontology cs13 -q "iterative control"
//	carcs suggest -ontology cs13 -q "loop over pixel arrays" [-method tfidf]
//	carcs recommend -entry <node-id> [-entry <node-id>...]
//	carcs replacements <material-id>
//	carcs migrate
//	carcs snapshot -o state.json
//	carcs import [-workers N] [-method tfidf] [-threshold 0.3] <file.jsonl>
//	carcs gen -n 100000 [-seed 1] [-tenants 8] [-unclassified] -o corpus-%s.jsonl
//	carcs train [-epochs 12] [-lr 0.5] [-folds 5] [-seed 1]
//	carcs eval [-ontology both] [-json report.json] [-gate]
//
// With -data, the repository is opened from (and journaled to) DIR instead
// of being rebuilt from the embedded seed on every run, so the CLI sees the
// same durable state a carcs-server pointed at DIR would serve.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"carcs/internal/core"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/ingest"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/search"
	"carcs/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "carcs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// A leading -data DIR opens the durable store instead of the embedded
	// seed; subcommand flags are parsed per-subcommand after it.
	var dataDir string
	switch {
	case len(args) >= 2 && (args[0] == "-data" || args[0] == "--data"):
		dataDir, args = args[1], args[2:]
	case len(args) >= 1 && strings.HasPrefix(args[0], "-data="):
		dataDir, args = strings.TrimPrefix(args[0], "-data="), args[1:]
	case len(args) >= 1 && strings.HasPrefix(args[0], "--data="):
		dataDir, args = strings.TrimPrefix(args[0], "--data="), args[1:]
	}
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (stats, list, show, coverage, gaps, similarity, search, query, depth, ontology-search, suggest, recommend, replacements, migrate, import, train, eval, snapshot, gen)")
	}
	if args[0] == "gen" {
		// Pure generation: no system (and no seed-corpus build) needed.
		return cmdGen(args[1:])
	}
	var sys *core.System
	var err error
	if dataDir != "" {
		var p *core.Persister
		sys, p, err = core.OpenDurable(dataDir, core.DurableOptions{Seed: true})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := p.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "carcs: checkpoint:", cerr)
			}
		}()
	} else {
		sys, err = core.NewSeeded()
		if err != nil {
			return err
		}
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "stats":
		st := sys.ComputeStats()
		fmt.Printf("materials:   %d\n", st.Materials)
		fmt.Printf("collections: %s\n", strings.Join(st.Collections, ", "))
		fmt.Printf("entries:     %d distinct classification entries in use (%d links)\n", st.Entries, st.Links)
		fmt.Printf("cs13:        %d ontology entries\n", st.CS13Size)
		fmt.Printf("pdc12:       %d ontology entries\n", st.PDC12Size)
		return nil

	case "list":
		fs := flag.NewFlagSet("list", flag.ContinueOnError)
		collection := fs.String("collection", "", "filter by collection")
		kind := fs.String("kind", "", "filter by kind")
		level := fs.String("level", "", "filter by course level")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		var filters []search.Filter
		if *collection != "" {
			filters = append(filters, search.ByCollection(*collection))
		}
		if *kind != "" {
			filters = append(filters, search.ByKind(material.Kind(*kind)))
		}
		if *level != "" {
			filters = append(filters, search.ByLevel(material.Level(*level)))
		}
		for _, m := range sys.View().Select(search.AllOf(filters...)) {
			fmt.Printf("%-55s %-10s %-12s %4d  %s\n", m.ID, m.Kind, m.Level, m.Year, m.Collection)
		}
		return nil

	case "show":
		if len(rest) != 1 {
			return fmt.Errorf("show needs exactly one material id")
		}
		m := sys.Material(rest[0])
		if m == nil {
			return fmt.Errorf("no material %q", rest[0])
		}
		fmt.Printf("%s (%s, %s, %d)\n%s\n", m.Title, m.Kind, m.Level, m.Year, m.Description)
		fmt.Printf("language: %s   collection: %s\n", m.Language, m.Collection)
		fmt.Println("classifications:")
		for _, id := range m.ClassificationIDs() {
			path := sys.CS13().Path(id)
			if path == "" {
				path = sys.PDC12().Path(id)
			}
			fmt.Printf("  - %s\n", path)
		}
		return nil

	case "coverage":
		fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
		ont := fs.String("ontology", "cs13", "cs13 or pdc12")
		collection := fs.String("collection", "", "collection (empty for all)")
		depth := fs.Int("depth", 2, "tree depth to print (0 for unlimited)")
		svg := fs.String("svg", "", "also write an SVG rendering to this file")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rep, err := sys.Coverage(*ont, *collection)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		fmt.Println()
		fmt.Print(viz.CoverageTreeASCII(rep, *depth))
		if *svg != "" {
			if err := os.WriteFile(*svg, []byte(viz.CoverageTreeSVG(rep, *depth)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *svg)
		}
		return nil

	case "gaps":
		fs := flag.NewFlagSet("gaps", flag.ContinueOnError)
		ont := fs.String("ontology", "pdc12", "cs13 or pdc12")
		collection := fs.String("collection", "", "collection (empty for all)")
		coreOnly := fs.Bool("core", false, "only gaps containing core-tier entries")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rep, err := sys.Coverage(*ont, *collection)
		if err != nil {
			return err
		}
		gaps := rep.Gaps(rep.Ontology.RootID())
		if *coreOnly {
			gaps = rep.CoreGaps(rep.Ontology.RootID())
		}
		for _, g := range gaps {
			fmt.Printf("%-90s %3d entries  %s\n", g.Path, g.Entries, g.Tier)
		}
		return nil

	case "similarity":
		fs := flag.NewFlagSet("similarity", flag.ContinueOnError)
		left := fs.String("left", "nifty", "left collection")
		right := fs.String("right", "peachy", "right collection")
		threshold := fs.Int("threshold", 2, "minimum shared classification items")
		dot := fs.String("dot", "", "write Graphviz DOT to this file")
		svg := fs.String("svg", "", "write an SVG rendering to this file")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		g := sys.SimilarityGraph(*left, *right, *threshold)
		fmt.Printf("%d nodes, %d edges, %.0f%% isolated\n", len(g.Nodes), len(g.Edges), 100*g.IsolationRatio())
		for _, comp := range g.Components(2) {
			fmt.Printf("cluster (%d): %s\n", len(comp), strings.Join(comp, ", "))
		}
		for _, e := range g.Edges {
			fmt.Printf("  %s -- %s (%d shared)\n", e.A, e.B, len(e.Shared))
		}
		if *dot != "" {
			if err := os.WriteFile(*dot, []byte(viz.SimilarityDOT(g, "similarity")), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *dot)
		}
		if *svg != "" {
			if err := os.WriteFile(*svg, []byte(viz.SimilaritySVG(g, 900, 700)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *svg)
		}
		return nil

	case "search":
		fs := flag.NewFlagSet("search", flag.ContinueOnError)
		q := fs.String("q", "", "free-text query")
		k := fs.Int("k", 10, "max results")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *q == "" {
			return fmt.Errorf("search needs -q")
		}
		hits, didYouMean := sys.View().SearchText(*q, *k)
		if didYouMean != "" {
			fmt.Printf("did you mean: %s\n", didYouMean)
		}
		for _, h := range hits {
			fmt.Printf("%6.3f  %-55s %s\n", h.Score, h.Material.ID, h.Material.Title)
		}
		return nil

	case "query":
		fs := flag.NewFlagSet("query", flag.ContinueOnError)
		q := fs.String("q", "", `structured query, e.g. 'collection:nifty level:CS1 in:cs13/sdf arrays'`)
		k := fs.Int("k", 20, "max results")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *q == "" {
			return fmt.Errorf("query needs -q")
		}
		hits, err := sys.View().SearchQuery(*q, *k)
		if err != nil {
			return err
		}
		for _, h := range hits {
			fmt.Printf("%6.3f  %-55s %-10s %s\n", h.Score, h.Material.ID, h.Material.Kind, h.Material.Collection)
		}
		return nil

	case "depth":
		fs := flag.NewFlagSet("depth", flag.ContinueOnError)
		ont := fs.String("ontology", "pdc12", "cs13 or pdc12")
		collection := fs.String("collection", "itcs3145", "collection (empty for all)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		o := sys.OntologyByName(*ont)
		if o == nil {
			return fmt.Errorf("unknown ontology %q", *ont)
		}
		rep := coverage.ComputeDepth(o, sys.Materials(*collection))
		fmt.Printf("Bloom depth vs %s: %d met, %d shallow, %d unrated (%.0f%% rated)\n",
			o.Name(), rep.Met, rep.Shallow, rep.Unrated, 100*rep.RatedFraction())
		for _, e := range rep.ShallowEntries() {
			fmt.Printf("  shallow: %-45s covers %q at %s, curriculum expects %s\n",
				e.MaterialID, e.Path, e.Actual, e.Expected)
		}
		return nil

	case "ontology-search":
		fs := flag.NewFlagSet("ontology-search", flag.ContinueOnError)
		ont := fs.String("ontology", "cs13", "cs13 or pdc12")
		q := fs.String("q", "", "query")
		k := fs.Int("k", 15, "max results")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		o := sys.OntologyByName(*ont)
		if o == nil {
			return fmt.Errorf("unknown ontology %q", *ont)
		}
		if *q == "" {
			return fmt.Errorf("ontology-search needs -q")
		}
		for _, p := range o.SearchPaths(*q, *k) {
			fmt.Println(p)
		}
		return nil

	case "suggest":
		fs := flag.NewFlagSet("suggest", flag.ContinueOnError)
		ont := fs.String("ontology", "cs13", "cs13 or pdc12")
		method := fs.String("method", "tfidf", "keyword, tfidf, bayes, learned, or ensemble")
		q := fs.String("q", "", "material description")
		k := fs.Int("k", 10, "max suggestions")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *q == "" {
			return fmt.Errorf("suggest needs -q")
		}
		sugg, err := sys.Suggest(*method, *ont, *q, *k)
		if err != nil {
			return err
		}
		for _, sg := range sugg {
			fmt.Printf("%6.3f  %s\n", sg.Score, sg.Path)
		}
		return nil

	case "recommend":
		fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
		var entries multiFlag
		fs.Var(&entries, "entry", "already-selected entry (repeatable)")
		k := fs.Int("k", 10, "max recommendations")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("recommend needs at least one -entry")
		}
		for _, r := range sys.Recommend(entries, *k) {
			fmt.Printf("conf=%.2f supp=%.3f n=%d  %s\n", r.Confidence, r.Support, r.Count, r.Then)
		}
		return nil

	case "replacements":
		if len(rest) != 1 {
			return fmt.Errorf("replacements needs exactly one material id")
		}
		edges, err := sys.PDCReplacements(rest[0], 10)
		if err != nil {
			return err
		}
		if len(edges) == 0 {
			fmt.Println("no PDC-covering materials share two classification items with this one")
			return nil
		}
		for _, e := range edges {
			fmt.Printf("%2.0f shared  %s\n", e.Score, e.B)
			for _, sh := range e.Shared {
				fmt.Printf("           - %s\n", sh)
			}
		}
		return nil

	case "export":
		fs := flag.NewFlagSet("export", flag.ContinueOnError)
		ont := fs.String("ontology", "cs13", "cs13 or pdc12")
		out := fs.String("o", "", "output CSV file (default stdout)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		o := sys.OntologyByName(*ont)
		if o == nil {
			return fmt.Errorf("unknown ontology %q", *ont)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return o.ExportCSV(w)

	case "compare":
		fs := flag.NewFlagSet("compare", flag.ContinueOnError)
		ont := fs.String("ontology", "cs13", "cs13 or pdc12")
		a := fs.String("a", "nifty", "first collection")
		bb := fs.String("b", "peachy", "second collection")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		ra, err := sys.Coverage(*ont, *a)
		if err != nil {
			return err
		}
		rb, err := sys.Coverage(*ont, *bb)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n%s\n", ra.String(), rb.String())
		fmt.Printf("alignment (Jaccard over covered entries): %.3f\n\n", coverage.Alignment(ra, rb))
		diff := coverage.Diff(ra, rb)
		onlyA, onlyB := 0, 0
		for _, d := range diff {
			if d.OnlyIn == ra.Collection {
				onlyA++
			} else {
				onlyB++
			}
		}
		fmt.Printf("%d entries only in %s, %d only in %s; first 10:\n", onlyA, *a, onlyB, *bb)
		for i, d := range diff {
			if i >= 10 {
				break
			}
			fmt.Printf("  [%s] %s\n", d.OnlyIn, d.Path)
		}
		return nil

	case "migrate":
		// Preview how the corpus's PDC12 classifications migrate to the
		// hypothetical PDC19 draft revision.
		old, next := ontology.PDC12(), ontology.PDC19Draft()
		mig := ontology.BuildMigration(old, next, 0.25)
		fmt.Printf("PDC12 -> PDC19 draft: %.0f%% of %d entries map automatically (%d ambiguous, %d dropped)\n",
			100*mig.Coverage(old), len(old.Classifiable()), len(mig.Ambiguous), len(mig.Dropped))
		moved := 0
		for from, to := range mig.Mapping {
			if old.Path(from) != "" && relPath(old, from) != relPath(next, to) {
				moved++
			}
		}
		fmt.Printf("%d entries change their position in the tree, e.g.:\n", moved)
		shown := 0
		for _, from := range old.Classifiable() {
			to, ok := mig.Mapping[from]
			if !ok || relPath(old, from) == relPath(next, to) {
				continue
			}
			fmt.Printf("  %s\n    -> %s\n", old.Path(from), next.Path(to))
			if shown++; shown >= 5 {
				break
			}
		}
		review := 0
		for _, m := range sys.Materials("") {
			var pdcIDs []string
			for _, id := range m.ClassificationIDs() {
				if old.Has(id) {
					pdcIDs = append(pdcIDs, id)
				}
			}
			if len(pdcIDs) == 0 {
				continue
			}
			_, needs := mig.Apply(pdcIDs)
			review += len(needs)
		}
		fmt.Printf("corpus impact: %d classification links need manual review after migration\n", review)
		return nil

	case "import":
		fs := flag.NewFlagSet("import", flag.ContinueOnError)
		workers := fs.Int("workers", 0, "prepare workers (0 = GOMAXPROCS)")
		method := fs.String("method", "tfidf", "auto-classification method (tfidf, keyword, bayes, learned, ensemble, none)")
		threshold := fs.Float64("threshold", 0, "minimum confidence to auto-apply a suggestion (0 = the method's default)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("import needs exactly one JSONL file (use - for stdin)")
		}
		var in io.Reader = os.Stdin
		if name := fs.Arg(0); name != "-" {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if *threshold < 0 || *threshold > 1 {
			return fmt.Errorf("threshold must be in [0,1]")
		}
		// Ctrl-C cancels between items; everything committed so far stays
		// (and, with -data, is already journaled).
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		imp := ingest.New(sys, ingest.Options{
			Workers:   *workers,
			Method:    *method,
			Threshold: *threshold,
		})
		sum, err := imp.Run(ctx, in, nil)
		if sum.Total > 0 || err == nil {
			fmt.Printf("records:         %d\n", sum.Total)
			fmt.Printf("added:           %d (%d auto-classified)\n", sum.Added, sum.AutoClassified)
			fmt.Printf("routed to review:%d\n", sum.Review)
			fmt.Printf("skipped (dupes): %d\n", sum.Skipped)
			fmt.Printf("failed:          %d\n", sum.Failed)
		}
		if err != nil {
			return err
		}
		if sum.Failed > 0 {
			return fmt.Errorf("%d records failed", sum.Failed)
		}
		return nil

	case "train":
		fs := flag.NewFlagSet("train", flag.ContinueOnError)
		def := learn.DefaultParams()
		epochs := fs.Int("epochs", def.Epochs, "SGD passes over the training set")
		lr := fs.Float64("lr", def.LearnRate, "initial learning rate")
		l2 := fs.Float64("l2", def.L2, "L2 regularization strength")
		folds := fs.Int("folds", def.Folds, "held-out folds for Platt calibration")
		seed := fs.Uint64("seed", def.Seed, "deterministic shuffle seed")
		hard := fs.Int("hard-negatives", def.HardNegatives, "hardest wrong classes pushed down per example")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		p := learn.Params{
			Epochs: *epochs, LearnRate: *lr, L2: *l2,
			Folds: *folds, Seed: *seed, HardNegatives: *hard,
		}
		if err := sys.TrainLearned(p); err != nil {
			return err
		}
		for _, m := range sys.LearnStats().Models {
			fmt.Printf("%-6s v%d: trained on %d examples, %d classes\n",
				m.Ontology, m.Version, m.Examples, m.Classes)
		}
		if dataDir == "" {
			fmt.Println("note: no -data directory, so the trained model is not persisted")
		}
		return nil

	case "eval":
		return runEval(sys, rest)

	case "snapshot":
		fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
		out := fs.String("o", "carcs-snapshot.json", "output file")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.Snapshot(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// relPath strips the ontology root label from a display path so the two
// revisions' paths compare structurally.
func relPath(o *ontology.Ontology, id string) string {
	p := o.Path(id)
	if i := strings.Index(p, " :: "); i >= 0 {
		return p[i+4:]
	}
	return p
}

// cmdGen is the deterministic synthetic-corpus generator behind the scale
// harness: it streams JSONL in the import record shape, so its output pipes
// straight into carcs import or POST /api/t/{name}/import. With -tenants>1
// it writes one file per workspace (-o must contain %s), each generated
// from its own derived seed so corpora differ across workspaces while the
// whole set stays reproducible from one -seed.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	n := fs.Int("n", 10000, "materials to generate (per tenant)")
	seed := fs.Int64("seed", 1, "generator seed")
	tenants := fs.Int("tenants", 1, "number of workspace corpora to generate")
	meanCls := fs.Int("mean-cls", 5, "mean classifications per material")
	pdc := fs.Float64("pdc", 0.3, "fraction of materials also classified against PDC12")
	out := fs.String("o", "-", "output JSONL file (- for stdout); with -tenants>1 it must contain %s, expanded to each workspace name")
	unclassified := fs.Bool("unclassified", false, "omit classifications so import exercises auto-classification")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 || *tenants <= 0 {
		return fmt.Errorf("gen: -n and -tenants must be positive")
	}
	writeOne := func(w io.Writer, opt corpus.SyntheticOptions) error {
		bw := bufio.NewWriterSize(w, 1<<20)
		enc := json.NewEncoder(bw)
		if err := corpus.SyntheticEach(opt, func(m *material.Material) error {
			rec := ingest.Record{
				ID: m.ID, Title: m.Title, Authors: m.Authors, URL: m.URL,
				Description: m.Description, Kind: string(m.Kind), Level: string(m.Level),
				Language: m.Language, Datasets: m.Datasets, Year: m.Year,
				Collection: "synthetic", Tags: m.Tags,
			}
			if !*unclassified {
				for _, c := range m.Classifications {
					rec.Classifications = append(rec.Classifications, c.NodeID)
				}
			}
			return enc.Encode(rec)
		}); err != nil {
			return err
		}
		return bw.Flush()
	}
	if *tenants == 1 {
		opt := corpus.SyntheticOptions{N: *n, Seed: *seed, MeanClassifications: *meanCls, PDCFraction: *pdc}
		if *out == "-" {
			return writeOne(os.Stdout, opt)
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := writeOne(f, opt); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if !strings.Contains(*out, "%s") {
		return fmt.Errorf("gen: with -tenants>1, -o must contain %%s (one file per workspace)")
	}
	for i := 0; i < *tenants; i++ {
		name := fmt.Sprintf("ws-%02d", i)
		opt := corpus.SyntheticOptions{
			N: *n, Seed: *seed + int64(i)*7919, MeanClassifications: *meanCls,
			PDCFraction: *pdc, IDPrefix: fmt.Sprintf("%s-", name),
		}
		f, err := os.Create(fmt.Sprintf(*out, name))
		if err != nil {
			return err
		}
		if err := writeOne(f, opt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gen: %s: %d materials\n", fmt.Sprintf(*out, name), *n)
	}
	return nil
}
