package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSubcommands exercises every CLI subcommand end to end against the
// seeded repository (output goes to the test's stdout; we assert on the
// error contract and on produced files).
func TestRunSubcommands(t *testing.T) {
	tmp := t.TempDir()
	ok := [][]string{
		{"stats"},
		{"list", "-collection", "peachy"},
		{"list", "-kind", "slides", "-level", "advanced"},
		{"show", "uno"},
		{"coverage", "-ontology", "pdc12", "-collection", "itcs3145", "-depth", "2",
			"-svg", filepath.Join(tmp, "cov.svg")},
		{"gaps", "-ontology", "pdc12", "-collection", "peachy", "-core"},
		{"similarity", "-left", "nifty", "-right", "peachy",
			"-dot", filepath.Join(tmp, "sim.dot"), "-svg", filepath.Join(tmp, "sim.svg")},
		{"search", "-q", "forest fire"},
		{"query", "-q", "collection:nifty level:CS1"},
		{"depth", "-ontology", "pdc12", "-collection", "itcs3145"},
		{"ontology-search", "-ontology", "cs13", "-q", "iterative control"},
		{"suggest", "-ontology", "cs13", "-q", "loop over arrays", "-method", "keyword"},
		{"recommend", "-entry", "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
		{"replacements", "uno"},
		{"replacements", "boggle"},
		{"compare", "-a", "nifty", "-b", "peachy"},
		{"migrate"},
		{"export", "-ontology", "pdc12", "-o", filepath.Join(tmp, "pdc12.csv")},
		{"snapshot", "-o", filepath.Join(tmp, "snap.json")},
	}
	for _, args := range ok {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	for _, f := range []string{"cov.svg", "sim.dot", "sim.svg", "snap.json", "pdc12.csv"} {
		st, err := os.Stat(filepath.Join(tmp, f))
		if err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", f, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"frobnicate"},
		{"show"},
		{"show", "ghost"},
		{"search"},
		{"query"},
		{"query", "-q", "kind:poem"},
		{"suggest"},
		{"suggest", "-q", "x", "-method", "oracle"},
		{"recommend"},
		{"replacements"},
		{"replacements", "ghost"},
		{"ontology-search", "-ontology", "zzz", "-q", "x"},
		{"ontology-search"},
		{"depth", "-ontology", "zzz"},
		{"coverage", "-ontology", "zzz"},
		{"compare", "-ontology", "zzz"},
		{"export", "-ontology", "zzz"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// TestUsageDocListsSubcommands keeps the doc comment's subcommand list in
// sync with the dispatcher's error message.
func TestUsageDocListsSubcommands(t *testing.T) {
	err := run(nil)
	if err == nil {
		t.Fatal("no usage error")
	}
	for _, sub := range []string{"stats", "query", "depth", "migrate", "snapshot"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("usage missing %q: %v", sub, err)
		}
	}
}
