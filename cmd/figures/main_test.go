package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFigureGeneration drives the artifact pipeline into a temp directory
// and validates the report records every reproduced claim.
func TestFigureGeneration(t *testing.T) {
	dir := t.TempDir()
	var report strings.Builder
	figure1(dir, &report)
	figure2(dir, &report)
	figure3(dir, &report)

	wantFiles := []string{
		"figure1_entry_flow.txt",
		"figure2a_nifty_cs13.txt", "figure2a_nifty_cs13.svg", "figure2a_nifty_cs13_sunburst.svg",
		"figure2f_itcs3145_pdc12.txt",
		"figure3_similarity.dot", "figure3_similarity.svg", "figure3_similarity.txt",
	}
	for _, f := range wantFiles {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty", f)
		}
	}
	rep := report.String()
	for _, want := range []string{
		"top areas [SDF PL AL CN]",
		"Nifty covers no PDC12 topics -> covered entries = 0",
		"Figure 3: 24 edges",
		"clusters 1",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The Fig. 1 transcript shows highlighted search and the checked
	// classification list.
	flow, err := os.ReadFile(filepath.Join(dir, "figure1_entry_flow.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[iterative] [control]", "[x]", "Load balancing"} {
		if !strings.Contains(string(flow), want) {
			t.Errorf("entry flow missing %q", want)
		}
	}
}
