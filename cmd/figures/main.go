// Command figures regenerates every figure of the paper's evaluation from
// the seeded corpus, writing artifacts into an output directory:
//
//   - Figure 1 (entry + classification UI): a transcript of the entry flow —
//     metadata form, highlighted ontology search, selected classifications.
//   - Figure 2 (a–f): coverage trees of {Nifty, Peachy, ITCS 3145} against
//     {CS13, PDC12}, as ASCII and SVG, plus the area-ranking tables the
//     paper's prose reads off the figure.
//   - Figure 3: the Nifty–Peachy similarity graph (edge ⇔ ≥2 shared
//     classification items) as DOT, SVG, and an edge/cluster listing.
//
// A final report.txt records the shape checks corresponding to every claim
// in Sec. IV (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	figures [-out out] [-fig 1|2|3|all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"carcs/internal/classify"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/similarity"
	"carcs/internal/viz"
)

func main() {
	out := flag.String("out", "out", "output directory")
	fig := flag.String("fig", "all", "which figure to regenerate: 1, 2, 3, or all")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var report strings.Builder
	report.WriteString("CAR-CS reproduction — figure regeneration report\n")
	report.WriteString(strings.Repeat("=", 60) + "\n\n")

	if *fig == "1" || *fig == "all" {
		figure1(*out, &report)
	}
	if *fig == "2" || *fig == "all" {
		figure2(*out, &report)
	}
	if *fig == "3" || *fig == "all" {
		figure3(*out, &report)
	}
	write(*out, "report.txt", report.String())
	fmt.Println("figures: artifacts written to", *out)
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  wrote", filepath.Join(dir, name))
}

// figure1 reproduces the Fig. 1 entry-and-classification flow as a textual
// transcript: the metadata of a material, the highlighted search that
// locates entries in the ~3000-node CS13 tree, and the resulting selection.
func figure1(dir string, report *strings.Builder) {
	cs13 := ontology.CS13()
	m := corpus.Peachy().Get("computing-a-movie-of-zooming-into-a-fractal")
	var b strings.Builder
	b.WriteString("Figure 1a — pedagogical material metadata\n")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	fmt.Fprintf(&b, "Title:       %s\n", m.Title)
	fmt.Fprintf(&b, "Authors:     %s\n", strings.Join(m.Authors, ", "))
	fmt.Fprintf(&b, "URL:         %s\n", m.URL)
	fmt.Fprintf(&b, "Kind/Level:  %s / %s (%d, %s)\n", m.Kind, m.Level, m.Year, m.Language)
	fmt.Fprintf(&b, "Description: %s\n\n", m.Description)

	b.WriteString("Figure 1b — classifying via highlighted tree search\n")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	for _, q := range []string{"iterative control", "load balancing", "data-parallel"} {
		fmt.Fprintf(&b, "search %q:\n", q)
		for i, hit := range cs13.Search(cs13.RootID(), q) {
			if i >= 4 {
				break
			}
			fmt.Fprintf(&b, "  %s\n", ontology.Highlight(hit.Node.Label, hit.Spans, "[", "]"))
		}
	}
	b.WriteString("\nselected classifications:\n")
	for _, id := range m.ClassificationIDs() {
		path := cs13.Path(id)
		if path == "" {
			path = ontology.PDC12().Path(id)
		}
		fmt.Fprintf(&b, "  [x] %s\n", path)
	}
	write(dir, "figure1_entry_flow.txt", b.String())
	fmt.Fprintf(report, "Figure 1: entry flow regenerated; CS13 search over %d entries with highlighting.\n\n", cs13.Len())
}

func figure2(dir string, report *strings.Builder) {
	onts := []struct {
		key string
		o   *ontology.Ontology
	}{{"cs13", ontology.CS13()}, {"pdc12", ontology.PDC12()}}
	cols := []struct {
		key  string
		mats []*material.Material
	}{
		{"nifty", corpus.Nifty().All()},
		{"peachy", corpus.Peachy().All()},
		{"itcs3145", corpus.ITCS3145().All()},
	}
	panel := 'a'
	fmt.Fprintf(report, "Figure 2: coverage of the three collections against CS13 and PDC12\n")
	// Paper panel order: 2a-2c are CS13 (nifty, peachy, itcs), 2d-2f PDC12.
	for _, ont := range onts {
		for _, col := range cols {
			r := coverage.Compute(ont.o, col.key, col.mats)
			base := fmt.Sprintf("figure2%c_%s_%s", panel, col.key, ont.key)
			write(dir, base+".txt", viz.CoverageTreeASCII(r, 2)+"\n"+r.Summary())
			write(dir, base+".svg", viz.CoverageTreeSVG(r, 2))
			write(dir, base+"_sunburst.svg", viz.CoverageSunburstSVG(r, 3, 640))
			top := r.TopAreas(4)
			fmt.Fprintf(report, "  2%c %-9s vs %-6s: top areas %v, untouched %v\n",
				panel, col.key, ont.key, top, r.UncoveredAreas())
			panel++
		}
	}
	// The Sec. IV claims, verified on the regenerated data.
	niftyPDC := coverage.Compute(ontology.PDC12(), "nifty", corpus.Nifty().All())
	cov, _ := niftyPDC.CoveredEntries(niftyPDC.Ontology.RootID())
	fmt.Fprintf(report, "  claim: Nifty covers no PDC12 topics -> covered entries = %d\n", cov)
	niftyCS := coverage.Compute(ontology.CS13(), "nifty", corpus.Nifty().All())
	peachyCS := coverage.Compute(ontology.CS13(), "peachy", corpus.Peachy().All())
	fmt.Fprintf(report, "  claim: Nifty/Peachy alignment small -> %.3f\n\n", coverage.Alignment(niftyCS, peachyCS))
}

func figure3(dir string, report *strings.Builder) {
	nifty, peachy := corpus.Nifty().All(), corpus.Peachy().All()
	g := similarity.BuildBipartite(nifty, peachy, similarity.SharedCount, 2)
	write(dir, "figure3_similarity.dot", viz.SimilarityDOT(g, "nifty_vs_peachy"))
	write(dir, "figure3_similarity.svg", viz.SimilaritySVG(g, 900, 700))

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — similarity between Nifty (blue) and Peachy (red)\n")
	fmt.Fprintf(&b, "edge rule: at least 2 shared classification items\n\n")
	fmt.Fprintf(&b, "%d nodes, %d edges, %.0f%% isolated\n\n", len(g.Nodes), len(g.Edges), 100*g.IsolationRatio())
	for _, comp := range g.Components(2) {
		fmt.Fprintf(&b, "cluster of %d:\n", len(comp))
		for _, id := range comp {
			fmt.Fprintf(&b, "  [%s] %s\n", g.Side[id], id)
		}
	}
	b.WriteString("\nedges:\n")
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %s -- %s (%d shared)\n", e.A, e.B, len(e.Shared))
	}
	write(dir, "figure3_similarity.txt", b.String())

	fmt.Fprintf(report, "Figure 3: %d edges, isolation %.0f%%, clusters %d\n",
		len(g.Edges), 100*g.IsolationRatio(), len(g.Components(2)))

	// The co-occurrence recommendation the conclusion promises, shown on
	// the cluster's anchor entries.
	co := classify.NewCoOccurrence(corpus.AllMaterials())
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	if recs := co.Recommend([]string{arrays}, 2, 3); len(recs) > 0 {
		fmt.Fprintf(report, "  bonus (future work): top co-occurrence rule from Arrays -> %s (conf %.2f)\n",
			recs[0].Then, recs[0].Confidence)
	}
}
