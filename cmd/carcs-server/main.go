// Command carcs-server runs the CAR-CS web service: the reproduction's
// equivalent of the paper's Django/Heroku prototype. It seeds the system
// with the three paper collections (Nifty, Peachy, ITCS 3145), registers a
// default editor account, and serves the JSON API.
//
// Usage:
//
//	carcs-server [-addr :8080] [-empty] [-data DIR] [-pprof]
//	carcs-server -addr :8081 -follow http://leader:8080
//	carcs-server -addr :8090 -route http://leader:8080,http://f1:8081,http://f2:8082
//
// With -data, every mutation is journaled to DIR before it is applied and
// periodic checkpoints compact the journal; restarting with the same DIR
// restores the full state, including anything written between checkpoints.
// SIGINT/SIGTERM drain in-flight requests and write a final checkpoint.
// A durable node also serves the replication endpoints, so any -data
// server can act as a leader.
//
// With -follow, the process bootstraps from the leader's checkpoint and
// tails its WAL, serving read-only replicas of the leader's state (writes
// get 503 + a Leader header). A follower that falls behind the leader's
// retention horizon re-bootstraps itself in process. Adding -data alongside
// -follow arms promotion: POST /api/replication/promote turns the follower
// into the leader of the next epoch, journaling to the -data directory from
// then on. With -route, the process is a router over the listed backends:
// leadership is discovered by probing each backend's role and epoch, reads
// fan out across in-sync followers with the leader as fallback, and writes
// follow whichever backend leads the highest epoch — a backend still
// claiming a superseded epoch is ejected and fenced.
//
// Try:
//
//	curl localhost:8080/api/status
//	curl localhost:8080/api/health
//	curl 'localhost:8080/api/coverage?ontology=pdc12&collection=itcs3145'
//	curl 'localhost:8080/api/similarity?left=nifty&right=peachy'
//	curl 'localhost:8080/api/ontologies/cs13/search?q=parallel'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carcs/internal/core"
	"carcs/internal/replica"
	"carcs/internal/resilience"
	"carcs/internal/server"
	"carcs/internal/workflow"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	empty := flag.Bool("empty", false, "start without the seeded collections")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory only)")
	ckptEvery := flag.Duration("checkpoint-interval", time.Minute, "background checkpoint interval when -data is set")
	pprofOn := flag.Bool("pprof", false, "serve profiling handlers under /debug/pprof/")
	limitInitial := flag.Int("limit-initial", 0, "starting concurrency limit (0 = default)")
	limitMax := flag.Int("limit-max", 0, "concurrency limit ceiling (0 = default)")
	latencyTarget := flag.Duration("latency-target", 0, "service-latency setpoint for the adaptive limiter (0 = default)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 = disabled)")
	rateBurst := flag.Float64("rate-burst", 0, "per-client burst allowance when -rate-limit is set (0 = default)")
	staleGens := flag.Uint64("stale-generations", 1, "how many generations behind a shed read may serve from cache (0 = never serve stale)")
	follow := flag.String("follow", "", "run as a read-only follower of this leader URL (add -data to arm promotion)")
	route := flag.String("route", "", "run as a router over these comma-separated backend URLs (leadership is probed)")
	routeMaxLag := flag.Uint64("route-max-lag", 0, "router staleness budget in journal sequences (0 = default)")
	routeTimeout := flag.Duration("route-timeout", 0, "router per-backend read timeout (0 = default)")
	routeProbe := flag.Duration("route-probe-interval", 0, "router health-probe interval (0 = default)")
	commitBatch := flag.Int("commit-batch", 0, "max journal records coalesced into one group-commit fsync (0 = default)")
	commitWindow := flag.Duration("commit-window", 0, "how long a group commit waits for siblings once two writers are pending (0 = default)")
	tenantQuota := flag.Int("tenant-quota", 0, "per-workspace material-count quota (0 = unlimited)")
	flag.Parse()

	res := server.ResilienceConfig{
		Limiter: resilience.LimiterConfig{
			Initial:       *limitInitial,
			Max:           *limitMax,
			LatencyTarget: *latencyTarget,
		},
		StaleGenerations: *staleGens,
	}
	if *rateLimit > 0 {
		res.RateLimit = &resilience.RateLimiterConfig{
			RatePerSecond: *rateLimit,
			Burst:         *rateBurst,
		}
	}

	var err error
	switch {
	case *follow != "" && *route != "":
		err = errors.New("-follow and -route are mutually exclusive")
	case *follow != "":
		err = runFollower(*addr, *follow, *dataDir, *pprofOn, res, *commitBatch, *commitWindow)
	case *route != "":
		err = runRouter(*addr, *route, *routeMaxLag, *routeTimeout, *routeProbe)
	default:
		err = run(*addr, *empty, *dataDir, *ckptEvery, *pprofOn, res, *commitBatch, *commitWindow, *tenantQuota)
	}
	if err != nil {
		log.Fatalf("carcs-server: %v", err)
	}
}

func run(addr string, empty bool, dataDir string, ckptEvery time.Duration, pprofOn bool, res server.ResilienceConfig, commitBatch int, commitWindow time.Duration, tenantQuota int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		sys       *core.System
		persister *core.Persister
		err       error
	)
	if dataDir != "" {
		sys, persister, err = core.OpenDurable(dataDir, core.DurableOptions{
			Seed:         !empty,
			CommitBatch:  commitBatch,
			CommitWindow: commitWindow,
		})
	} else if empty {
		sys, err = core.New()
	} else {
		sys, err = core.NewSeeded()
	}
	if err != nil {
		return err
	}
	sys.Workflow().Register("editor", workflow.RoleEditor)
	sys.Workflow().Register("submitter", workflow.RoleSubmitter)

	srv := server.New(sys, os.Stderr)
	srv.SetResilience(res)
	if pprofOn {
		srv.EnablePprof()
		fmt.Println("carcs-server: profiling enabled at /debug/pprof/")
	}
	if persister != nil {
		// The durable workspace set owns tenant creation (journaled,
		// checkpointed); routes under /api/t/{name}/ resolve against it.
		srv.SetWorkspaces(persister.Workspaces())
		srv.SetPersister(persister)
		if ckptEvery > 0 {
			persister.Start(ckptEvery)
		}
		// A durable node exposes the replication endpoints, so followers
		// can bootstrap from its checkpoint and tail its WAL.
		srv.SetHub(replica.NewHub(persister, 0))
		fmt.Printf("carcs-server: journaling to %s (checkpoint every %v)\n", dataDir, ckptEvery)
		fmt.Println("carcs-server: replication endpoints at /api/replication/{checkpoint,wal}")
	}
	if tenantQuota > 0 {
		srv.Workspaces().SetQuota(tenantQuota)
		fmt.Printf("carcs-server: per-workspace material quota %d\n", tenantQuota)
	}

	st := sys.ComputeStats()
	fmt.Printf("carcs-server: %d materials in %v, CS13 %d entries, PDC12 %d entries\n",
		st.Materials, st.Collections, st.CS13Size, st.PDC12Size)
	fmt.Printf("carcs-server: listening on %s\n", addr)

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		if persister != nil {
			persister.Close()
		}
		return err
	case <-ctx.Done():
		stop() // a second signal now kills the process immediately
		fmt.Println("carcs-server: shutting down")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	// Drain background import jobs after the listener stops accepting new
	// submissions and before the final checkpoint, so the checkpoint
	// includes everything the jobs committed. On timeout, jobs are
	// cancelled between items — partial progress is already journaled.
	if err := srv.DrainJobs(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "carcs-server: job drain:", err)
	}
	if persister != nil {
		// Final checkpoint after the last request drains, so a clean
		// shutdown always restarts from a compact snapshot.
		if err := persister.Close(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Println("carcs-server: final checkpoint written")
	}
	if shutErr != nil && !errors.Is(shutErr, http.ErrServerClosed) {
		return shutErr
	}
	return nil
}

// runFollower bootstraps from the leader's checkpoint and serves read-only
// replicas of its state, tailing the WAL in the background. Falling behind
// the leader's retention horizon self-heals with an in-process
// re-bootstrap; only exhausted re-bootstrap attempts or an apply divergence
// exit the process for a supervisor restart. When dataDir is set, promotion
// is armed: POST /api/replication/promote turns this process into the
// leader of the next epoch, journaling to dataDir, and the process keeps
// serving.
func runFollower(addr, leaderURL, dataDir string, pprofOn bool, res server.ResilienceConfig, commitBatch int, commitWindow time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The leader may still be starting; retry the bootstrap with backoff
	// until it answers or we are told to shut down.
	var (
		f   *replica.Follower
		err error
	)
	bo := &resilience.Backoff{Max: 10 * time.Second}
	for {
		f, err = replica.Bootstrap(ctx, replica.FollowerConfig{LeaderURL: leaderURL})
		if err == nil {
			break
		}
		fmt.Fprintf(os.Stderr, "carcs-server: bootstrap from %s: %v (retrying)\n", leaderURL, err)
		if serr := bo.Sleep(ctx); serr != nil {
			return fmt.Errorf("bootstrap from %s: %w", leaderURL, err)
		}
	}
	fmt.Printf("carcs-server: bootstrapped from %s at seq %d\n", leaderURL, f.Applied())

	// No local account registration: a follower's accounts, like the rest
	// of its state, are whatever the leader's WAL says they are.
	srv := server.New(f.System(), os.Stderr)
	srv.SetWorkspaces(f.Workspaces())
	srv.SetResilience(res)
	srv.SetFollower(f)
	if dataDir != "" {
		srv.SetPromotion(dataDir, "", core.DurableOptions{
			CommitBatch:  commitBatch,
			CommitWindow: commitWindow,
		})
		fmt.Printf("carcs-server: promotion armed, journal target %s\n", dataDir)
	}
	if pprofOn {
		srv.EnablePprof()
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	runErr := make(chan error, 1)
	go func() { runErr <- f.Run(ctx) }()
	fmt.Printf("carcs-server: following %s, listening on %s\n", leaderURL, addr)

serving:
	for {
		select {
		case err := <-serveErr:
			if p := srv.Persister(); p != nil {
				p.Close()
			}
			return err
		case err := <-runErr:
			switch {
			case errors.Is(err, context.Canceled):
				break serving // shutdown signal, fall through to drain
			case errors.Is(err, replica.ErrPromoted):
				// The promote endpoint took over: this process now leads
				// the next epoch and keeps serving.
				fmt.Printf("carcs-server: promoted to leader at seq %d\n", f.Applied())
				continue
			}
			// Replication cannot continue (re-bootstrap attempts exhausted,
			// or an apply diverged): serving ever-staler reads silently
			// would be worse than restarting into a clean bootstrap.
			httpSrv.Close()
			return fmt.Errorf("replication stopped: %w", err)
		case <-ctx.Done():
			stop()
			fmt.Println("carcs-server: shutting down")
			break serving
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	if err := srv.DrainJobs(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "carcs-server: job drain:", err)
	}
	if p := srv.Persister(); p != nil {
		// This follower was promoted mid-run and owns a journal now: close
		// it through the same final-checkpoint path a -data leader takes.
		if err := p.Close(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Println("carcs-server: final checkpoint written")
	}
	if shutErr != nil && !errors.Is(shutErr, http.ErrServerClosed) {
		return shutErr
	}
	return nil
}

// runRouter serves the thin read router over the listed backends.
func runRouter(addr, backends string, maxLag uint64, timeout, probe time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var urls []string
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	rt, err := replica.NewRouter(replica.RouterConfig{
		Backends:       urls,
		MaxLag:         maxLag,
		BackendTimeout: timeout,
		ProbeInterval:  probe,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("carcs-server: routing %d backends (leadership probed), listening on %s\n",
		len(urls), addr)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop()
		fmt.Println("carcs-server: shutting down")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
