// Command carcs-server runs the CAR-CS web service: the reproduction's
// equivalent of the paper's Django/Heroku prototype. It seeds the system
// with the three paper collections (Nifty, Peachy, ITCS 3145), registers a
// default editor account, and serves the JSON API.
//
// Usage:
//
//	carcs-server [-addr :8080] [-empty] [-data DIR] [-pprof]
//
// With -data, every mutation is journaled to DIR before it is applied and
// periodic checkpoints compact the journal; restarting with the same DIR
// restores the full state, including anything written between checkpoints.
// SIGINT/SIGTERM drain in-flight requests and write a final checkpoint.
//
// Try:
//
//	curl localhost:8080/api/status
//	curl localhost:8080/api/health
//	curl 'localhost:8080/api/coverage?ontology=pdc12&collection=itcs3145'
//	curl 'localhost:8080/api/similarity?left=nifty&right=peachy'
//	curl 'localhost:8080/api/ontologies/cs13/search?q=parallel'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carcs/internal/core"
	"carcs/internal/resilience"
	"carcs/internal/server"
	"carcs/internal/workflow"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	empty := flag.Bool("empty", false, "start without the seeded collections")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory only)")
	ckptEvery := flag.Duration("checkpoint-interval", time.Minute, "background checkpoint interval when -data is set")
	pprofOn := flag.Bool("pprof", false, "serve profiling handlers under /debug/pprof/")
	limitInitial := flag.Int("limit-initial", 0, "starting concurrency limit (0 = default)")
	limitMax := flag.Int("limit-max", 0, "concurrency limit ceiling (0 = default)")
	latencyTarget := flag.Duration("latency-target", 0, "service-latency setpoint for the adaptive limiter (0 = default)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 = disabled)")
	rateBurst := flag.Float64("rate-burst", 0, "per-client burst allowance when -rate-limit is set (0 = default)")
	staleGens := flag.Uint64("stale-generations", 1, "how many generations behind a shed read may serve from cache (0 = never serve stale)")
	flag.Parse()

	res := server.ResilienceConfig{
		Limiter: resilience.LimiterConfig{
			Initial:       *limitInitial,
			Max:           *limitMax,
			LatencyTarget: *latencyTarget,
		},
		StaleGenerations: *staleGens,
	}
	if *rateLimit > 0 {
		res.RateLimit = &resilience.RateLimiterConfig{
			RatePerSecond: *rateLimit,
			Burst:         *rateBurst,
		}
	}

	if err := run(*addr, *empty, *dataDir, *ckptEvery, *pprofOn, res); err != nil {
		log.Fatalf("carcs-server: %v", err)
	}
}

func run(addr string, empty bool, dataDir string, ckptEvery time.Duration, pprofOn bool, res server.ResilienceConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		sys       *core.System
		persister *core.Persister
		err       error
	)
	if dataDir != "" {
		sys, persister, err = core.OpenDurable(dataDir, core.DurableOptions{Seed: !empty})
	} else if empty {
		sys, err = core.New()
	} else {
		sys, err = core.NewSeeded()
	}
	if err != nil {
		return err
	}
	sys.Workflow().Register("editor", workflow.RoleEditor)
	sys.Workflow().Register("submitter", workflow.RoleSubmitter)

	srv := server.New(sys, os.Stderr)
	srv.SetResilience(res)
	if pprofOn {
		srv.EnablePprof()
		fmt.Println("carcs-server: profiling enabled at /debug/pprof/")
	}
	if persister != nil {
		srv.SetPersister(persister)
		if ckptEvery > 0 {
			persister.Start(ckptEvery)
		}
		fmt.Printf("carcs-server: journaling to %s (checkpoint every %v)\n", dataDir, ckptEvery)
	}

	st := sys.ComputeStats()
	fmt.Printf("carcs-server: %d materials in %v, CS13 %d entries, PDC12 %d entries\n",
		st.Materials, st.Collections, st.CS13Size, st.PDC12Size)
	fmt.Printf("carcs-server: listening on %s\n", addr)

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		if persister != nil {
			persister.Close()
		}
		return err
	case <-ctx.Done():
		stop() // a second signal now kills the process immediately
		fmt.Println("carcs-server: shutting down")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	// Drain background import jobs after the listener stops accepting new
	// submissions and before the final checkpoint, so the checkpoint
	// includes everything the jobs committed. On timeout, jobs are
	// cancelled between items — partial progress is already journaled.
	if err := srv.DrainJobs(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "carcs-server: job drain:", err)
	}
	if persister != nil {
		// Final checkpoint after the last request drains, so a clean
		// shutdown always restarts from a compact snapshot.
		if err := persister.Close(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Println("carcs-server: final checkpoint written")
	}
	if shutErr != nil && !errors.Is(shutErr, http.ErrServerClosed) {
		return shutErr
	}
	return nil
}
