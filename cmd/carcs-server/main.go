// Command carcs-server runs the CAR-CS web service: the reproduction's
// equivalent of the paper's Django/Heroku prototype. It seeds the system
// with the three paper collections (Nifty, Peachy, ITCS 3145), registers a
// default editor account, and serves the JSON API.
//
// Usage:
//
//	carcs-server [-addr :8080] [-empty]
//
// Try:
//
//	curl localhost:8080/api/status
//	curl 'localhost:8080/api/coverage?ontology=pdc12&collection=itcs3145'
//	curl 'localhost:8080/api/similarity?left=nifty&right=peachy'
//	curl 'localhost:8080/api/ontologies/cs13/search?q=parallel'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"carcs/internal/core"
	"carcs/internal/server"
	"carcs/internal/workflow"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	empty := flag.Bool("empty", false, "start without the seeded collections")
	flag.Parse()

	var sys *core.System
	var err error
	if *empty {
		sys, err = core.New()
	} else {
		sys, err = core.NewSeeded()
	}
	if err != nil {
		log.Fatalf("carcs-server: %v", err)
	}
	sys.Workflow().Register("editor", workflow.RoleEditor)
	sys.Workflow().Register("submitter", workflow.RoleSubmitter)

	st := sys.ComputeStats()
	fmt.Printf("carcs-server: %d materials in %v, CS13 %d entries, PDC12 %d entries\n",
		st.Materials, st.Collections, st.CS13Size, st.PDC12Size)
	fmt.Printf("carcs-server: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, server.New(sys, os.Stderr)); err != nil {
		log.Fatalf("carcs-server: %v", err)
	}
}
