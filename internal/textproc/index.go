package textproc

import (
	"math"
	"sort"
)

// Index is an inverted index from analyzed terms to document ids, with
// per-document term frequencies. It backs the free-text search endpoint of
// the reproduction's web service.
type Index struct {
	postings map[string]map[string]int // term -> doc id -> tf
	lengths  map[string]int            // doc id -> token count
	n        int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string]map[string]int),
		lengths:  make(map[string]int),
	}
}

// Add indexes text under the document id, replacing any previous content for
// the same id.
func (ix *Index) Add(id, text string) {
	if _, ok := ix.lengths[id]; ok {
		ix.Remove(id)
	}
	terms := Terms(text)
	ix.lengths[id] = len(terms)
	ix.n++
	for t, tf := range CountTerms(terms) {
		m := ix.postings[t]
		if m == nil {
			m = make(map[string]int)
			ix.postings[t] = m
		}
		m[id] = tf
	}
}

// Remove deletes a document from the index; unknown ids are a no-op.
func (ix *Index) Remove(id string) {
	if _, ok := ix.lengths[id]; !ok {
		return
	}
	delete(ix.lengths, id)
	ix.n--
	for t, m := range ix.postings {
		if _, ok := m[id]; ok {
			delete(m, id)
			if len(m) == 0 {
				delete(ix.postings, t)
			}
		}
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return ix.n }

// Search scores documents against the query with a TF-IDF sum (lnc-style),
// returning the top k best-first; k <= 0 returns all matches. Documents must
// contain at least one query term to appear.
func (ix *Index) Search(query string, k int) []Scored {
	qterms := Terms(query)
	if len(qterms) == 0 {
		return nil
	}
	scores := make(map[string]float64)
	for qt, qtf := range CountTerms(qterms) {
		m := ix.postings[qt]
		if len(m) == 0 {
			continue
		}
		idf := idfOf(ix.n, len(m))
		for id, tf := range m {
			norm := float64(ix.lengths[id])
			if norm == 0 {
				norm = 1
			}
			scores[id] += float64(qtf) * idf * (1 + logf(tf)) / norm
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Scored, 0, len(scores))
	for id, s := range scores {
		out = append(out, Scored{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SearchAll returns the ids of documents containing every query term.
func (ix *Index) SearchAll(query string) []string {
	qterms := Terms(query)
	if len(qterms) == 0 {
		return nil
	}
	var candidate map[string]bool
	for _, qt := range qterms {
		m := ix.postings[qt]
		if len(m) == 0 {
			return nil
		}
		next := make(map[string]bool, len(m))
		for id := range m {
			if candidate == nil || candidate[id] {
				next[id] = true
			}
		}
		candidate = next
		if len(candidate) == 0 {
			return nil
		}
	}
	out := make([]string, 0, len(candidate))
	for id := range candidate {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func idfOf(n, df int) float64 {
	return math.Log((float64(n)+1)/(float64(df)+1)) + 1
}

func logf(tf int) float64 {
	return math.Log(float64(tf))
}
