package textproc

import (
	"math"
	"sort"

	"carcs/internal/pmap"
)

// Index is an inverted index from analyzed terms to document ids, with
// per-document term frequencies. It backs the free-text search endpoint of
// the reproduction's web service.
//
// The postings are persistent maps, so Snap captures an immutable snapshot
// in O(1); mutations on the live index path-copy only the postings they
// touch and never disturb a snapshot taken earlier.
type Index struct {
	postings *pmap.Map[string, *pmap.Map[string, int]] // term -> doc id -> tf
	lengths  *pmap.Map[string, int]                    // doc id -> token count
	n        int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: pmap.NewStrings[*pmap.Map[string, int]](),
		lengths:  pmap.NewStrings[int](),
	}
}

// Snap returns an immutable snapshot of the index: a frozen copy sharing
// all structure with the receiver. Snapshots must not be mutated; reads on
// them are safe concurrently with mutations of the live index.
func (ix *Index) Snap() *Index {
	cp := *ix
	return &cp
}

// Add indexes text under the document id, replacing any previous content for
// the same id.
func (ix *Index) Add(id, text string) { ix.AddTerms(id, Terms(text)) }

// AddTerms is Add for already-analyzed terms, so callers maintaining several
// indexes over the same text (the search engine, on every commit) analyze it
// once and share the term list.
func (ix *Index) AddTerms(id string, terms []string) {
	if _, ok := ix.lengths.Get(id); ok {
		ix.Remove(id)
	}
	ix.lengths = ix.lengths.Set(id, len(terms))
	ix.n++
	// One document touches many terms; a transient builder copies each
	// near-root trie node once for the whole batch instead of once per term.
	b := ix.postings.Builder()
	for t, tf := range CountTerms(terms) {
		inner := b.GetOr(t, nil)
		if inner == nil {
			inner = pmap.NewStrings[int]()
		}
		b.Set(t, inner.Set(id, tf))
	}
	ix.postings = b.Map()
}

// AddTermsBatch indexes many documents in one builder session, equivalent to
// calling AddTerms for each (id, terms) pair in order. The batch commit path
// uses it: postings trie nodes touched by several documents are copied once
// for the whole batch instead of once per document, which is where most of
// the per-record indexing cost went.
func (ix *Index) AddTermsBatch(ids []string, termLists [][]string) {
	lb := ix.lengths.Builder()
	b := ix.postings.Builder()
	// Per-term posting builders stay open across the whole batch: a term
	// occurring in many of the batch's documents copies its posting-list
	// nodes once, not once per document.
	inner := make(map[string]*pmap.Builder[string, int])
	seal := func() {
		for t, pb := range inner {
			b.Set(t, pb.Map())
		}
		clear(inner)
		ix.lengths = lb.Map()
		ix.postings = b.Map()
	}
	for i, id := range ids {
		terms := termLists[i]
		if _, ok := lb.Get(id); ok {
			// Replacement needs the full Remove walk; seal the session,
			// take the sequential route for this document, and re-open.
			seal()
			ix.AddTerms(id, terms)
			lb = ix.lengths.Builder()
			b = ix.postings.Builder()
			continue
		}
		lb.Set(id, len(terms))
		ix.n++
		for t, tf := range CountTerms(terms) {
			pb := inner[t]
			if pb == nil {
				m := b.GetOr(t, nil)
				if m == nil {
					m = pmap.NewStrings[int]()
				}
				pb = m.Builder()
				inner[t] = pb
			}
			pb.Set(id, tf)
		}
	}
	seal()
}

// Remove deletes a document from the index; unknown ids are a no-op.
func (ix *Index) Remove(id string) {
	if _, ok := ix.lengths.Get(id); !ok {
		return
	}
	ix.lengths = ix.lengths.Delete(id)
	ix.n--
	b := ix.postings.Builder()
	ix.postings.Range(func(t string, inner *pmap.Map[string, int]) bool {
		if _, ok := inner.Get(id); ok {
			if next := inner.Delete(id); next.Len() == 0 {
				b.Delete(t)
			} else {
				b.Set(t, next)
			}
		}
		return true
	})
	ix.postings = b.Map()
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return ix.n }

// Search scores documents against the query with a TF-IDF sum (lnc-style),
// returning the top k best-first; k <= 0 returns all matches. Documents must
// contain at least one query term to appear.
func (ix *Index) Search(query string, k int) []Scored {
	qterms := Terms(query)
	if len(qterms) == 0 {
		return nil
	}
	scores := make(map[string]float64)
	for qt, qtf := range CountTerms(qterms) {
		m := ix.postings.GetOr(qt, nil)
		if m.Len() == 0 {
			continue
		}
		idf := idfOf(ix.n, m.Len())
		m.Range(func(id string, tf int) bool {
			norm := float64(ix.lengths.GetOr(id, 0))
			if norm == 0 {
				norm = 1
			}
			scores[id] += float64(qtf) * idf * (1 + logf(tf)) / norm
			return true
		})
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Scored, 0, len(scores))
	for id, s := range scores {
		out = append(out, Scored{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SearchAll returns the ids of documents containing every query term.
func (ix *Index) SearchAll(query string) []string {
	qterms := Terms(query)
	if len(qterms) == 0 {
		return nil
	}
	var candidate map[string]bool
	for _, qt := range qterms {
		m := ix.postings.GetOr(qt, nil)
		if m.Len() == 0 {
			return nil
		}
		next := make(map[string]bool, m.Len())
		m.Range(func(id string, _ int) bool {
			if candidate == nil || candidate[id] {
				next[id] = true
			}
			return true
		})
		candidate = next
		if len(candidate) == 0 {
			return nil
		}
	}
	out := make([]string, 0, len(candidate))
	for id := range candidate {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func idfOf(n, df int) float64 {
	return math.Log((float64(n)+1)/(float64(df)+1)) + 1
}

func logf(tf int) float64 {
	return math.Log(float64(tf))
}
