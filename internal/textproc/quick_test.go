package textproc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// alphaWord converts arbitrary fuzz bytes into a lower-case ASCII word so
// properties exercise the algorithms rather than the Unicode edge handling
// covered by example tests.
func alphaWord(raw []byte, maxLen int) string {
	var b strings.Builder
	for _, c := range raw {
		b.WriteByte('a' + c%26)
		if b.Len() >= maxLen {
			break
		}
	}
	return b.String()
}

func TestQuickStemNeverGrows(t *testing.T) {
	f := func(raw []byte) bool {
		w := alphaWord(raw, 24)
		return len(Stem(w)) <= len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickStemDeterministic(t *testing.T) {
	f := func(raw []byte) bool {
		w := alphaWord(raw, 24)
		return Stem(w) == Stem(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTokenizeLowercaseAndClean(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			if strings.TrimFunc(tok, func(r rune) bool { return true }) != "" {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
			if strings.HasPrefix(tok, "-") || strings.HasSuffix(tok, "-") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCosineBoundsAndSymmetry(t *testing.T) {
	gen := func(r *rand.Rand) Vector {
		v := Vector{}
		for i, n := 0, r.Intn(6); i < n; i++ {
			v[alphaWord([]byte{byte(r.Intn(256)), byte(r.Intn(256))}, 2)] = r.Float64() + 0.01
		}
		return v
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := gen(r), gen(r)
		s1, s2 := Cosine(a, b), Cosine(b, a)
		if d := s1 - s2; d > 1e-9 || d < -1e-9 {
			t.Fatalf("cosine asymmetric: %v vs %v", s1, s2)
		}
		if s1 < 0 || s1 > 1+1e-9 {
			t.Fatalf("cosine out of bounds: %v for %v %v", s1, a, b)
		}
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if j1 != j2 || j1 < 0 || j1 > 1 {
			t.Fatalf("jaccard bad: %v %v", j1, j2)
		}
	}
}

func TestQuickIndexAddRemoveInverse(t *testing.T) {
	f := func(raws [][]byte) bool {
		ix := NewIndex()
		ix.Add("keep", "stable background document about parallel computing")
		base := ix.Search("parallel", 0)
		for i, raw := range raws {
			id := alphaWord([]byte{byte(i)}, 1) + "x"
			words := make([]string, 0, len(raw))
			for _, c := range raw {
				words = append(words, alphaWord([]byte{c, c ^ 17}, 2))
			}
			ix.Add(id, strings.Join(words, " "))
			ix.Remove(id)
		}
		after := ix.Search("parallel", 0)
		if len(base) != len(after) || len(after) != 1 {
			return false
		}
		return base[0] == after[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
