package textproc

import "sort"

// PositionalIndex is an inverted index that also records token positions,
// enabling exact phrase queries ("monte carlo", "data race") on top of the
// bag-of-words ranking the plain Index provides.
type PositionalIndex struct {
	postings map[string]map[string][]int // term -> doc -> sorted positions
	docs     map[string]int              // doc -> analyzed length
}

// NewPositionalIndex returns an empty positional index.
func NewPositionalIndex() *PositionalIndex {
	return &PositionalIndex{
		postings: make(map[string]map[string][]int),
		docs:     make(map[string]int),
	}
}

// Add indexes text under id, replacing any previous content.
func (ix *PositionalIndex) Add(id, text string) {
	if _, ok := ix.docs[id]; ok {
		ix.Remove(id)
	}
	terms := Terms(text)
	ix.docs[id] = len(terms)
	for pos, t := range terms {
		m := ix.postings[t]
		if m == nil {
			m = make(map[string][]int)
			ix.postings[t] = m
		}
		m[id] = append(m[id], pos)
	}
}

// Remove drops a document.
func (ix *PositionalIndex) Remove(id string) {
	if _, ok := ix.docs[id]; !ok {
		return
	}
	delete(ix.docs, id)
	for t, m := range ix.postings {
		if _, ok := m[id]; ok {
			delete(m, id)
			if len(m) == 0 {
				delete(ix.postings, t)
			}
		}
	}
}

// Len returns the number of indexed documents.
func (ix *PositionalIndex) Len() int { return len(ix.docs) }

// Phrase returns the sorted ids of documents containing the exact analyzed
// phrase (stop words removed, terms stemmed — so "monte carlo methods"
// matches "Monte Carlo method"). Empty or all-stopword phrases return nil.
func (ix *PositionalIndex) Phrase(phrase string) []string {
	terms := Terms(phrase)
	if len(terms) == 0 {
		return nil
	}
	// Candidate docs must contain every term.
	first := ix.postings[terms[0]]
	if len(first) == 0 {
		return nil
	}
	var out []string
docs:
	for id, basePositions := range first {
		// For each start position of the first term, check the rest
		// follow consecutively.
		for _, p := range basePositions {
			ok := true
			for off := 1; off < len(terms); off++ {
				if !contains(ix.postings[terms[off]][id], p+off) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, id)
				continue docs
			}
		}
	}
	sort.Strings(out)
	return out
}

// Near returns the sorted ids of documents where all the phrase's terms
// occur within a window of the given size (in analyzed-token positions),
// in any order. window < len(terms) always yields nil.
func (ix *PositionalIndex) Near(phrase string, window int) []string {
	terms := Terms(phrase)
	if len(terms) == 0 || window < len(terms) {
		return nil
	}
	// Candidates: docs containing all terms.
	candidate := map[string]bool{}
	for i, t := range terms {
		m := ix.postings[t]
		if len(m) == 0 {
			return nil
		}
		next := map[string]bool{}
		for id := range m {
			if i == 0 || candidate[id] {
				next[id] = true
			}
		}
		candidate = next
	}
	var out []string
	for id := range candidate {
		// Merge all positions tagged by term, then slide the window.
		type tagged struct{ pos, term int }
		var all []tagged
		for ti, t := range terms {
			for _, p := range ix.postings[t][id] {
				all = append(all, tagged{p, ti})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
		count := make([]int, len(terms))
		have := 0
		lo := 0
		for hi := 0; hi < len(all); hi++ {
			if count[all[hi].term] == 0 {
				have++
			}
			count[all[hi].term]++
			for all[hi].pos-all[lo].pos >= window {
				count[all[lo].term]--
				if count[all[lo].term] == 0 {
					have--
				}
				lo++
			}
			if have == len(terms) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// contains reports whether the sorted ints include x.
func contains(sortedInts []int, x int) bool {
	i := sort.SearchInts(sortedInts, x)
	return i < len(sortedInts) && sortedInts[i] == x
}
