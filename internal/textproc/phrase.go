package textproc

import (
	"sort"

	"carcs/internal/pmap"
)

// PositionalIndex is an inverted index that also records token positions,
// enabling exact phrase queries ("monte carlo", "data race") on top of the
// bag-of-words ranking the plain Index provides. Like Index, its postings
// are persistent maps: Snap is O(1) and snapshots are immune to later
// mutations. Stored position slices are written once at Add time and never
// modified afterwards.
type PositionalIndex struct {
	postings *pmap.Map[string, *pmap.Map[string, []int]] // term -> doc -> sorted positions
	docs     *pmap.Map[string, int]                      // doc -> analyzed length
}

// NewPositionalIndex returns an empty positional index.
func NewPositionalIndex() *PositionalIndex {
	return &PositionalIndex{
		postings: pmap.NewStrings[*pmap.Map[string, []int]](),
		docs:     pmap.NewStrings[int](),
	}
}

// Snap returns an immutable snapshot sharing all structure with the
// receiver; see Index.Snap.
func (ix *PositionalIndex) Snap() *PositionalIndex {
	cp := *ix
	return &cp
}

// Add indexes text under id, replacing any previous content.
func (ix *PositionalIndex) Add(id, text string) { ix.AddTerms(id, Terms(text)) }

// AddTerms is Add for already-analyzed terms; see Index.AddTerms.
func (ix *PositionalIndex) AddTerms(id string, terms []string) {
	if _, ok := ix.docs.Get(id); ok {
		ix.Remove(id)
	}
	ix.docs = ix.docs.Set(id, len(terms))
	// Collect each term's positions fully before storing, so the slice in
	// the index is never appended to after publication.
	byTerm := make(map[string][]int)
	for pos, t := range terms {
		byTerm[t] = append(byTerm[t], pos)
	}
	b := ix.postings.Builder()
	for t, positions := range byTerm {
		inner := b.GetOr(t, nil)
		if inner == nil {
			inner = pmap.NewStrings[[]int]()
		}
		b.Set(t, inner.Set(id, positions))
	}
	ix.postings = b.Map()
}

// AddTermsBatch indexes many documents in one builder session; see
// Index.AddTermsBatch. Equivalent to calling AddTerms for each pair in order.
func (ix *PositionalIndex) AddTermsBatch(ids []string, termLists [][]string) {
	db := ix.docs.Builder()
	b := ix.postings.Builder()
	inner := make(map[string]*pmap.Builder[string, []int])
	seal := func() {
		for t, pb := range inner {
			b.Set(t, pb.Map())
		}
		clear(inner)
		ix.docs = db.Map()
		ix.postings = b.Map()
	}
	for i, id := range ids {
		terms := termLists[i]
		if _, ok := db.Get(id); ok {
			seal()
			ix.AddTerms(id, terms)
			db = ix.docs.Builder()
			b = ix.postings.Builder()
			continue
		}
		db.Set(id, len(terms))
		byTerm := make(map[string][]int)
		for pos, t := range terms {
			byTerm[t] = append(byTerm[t], pos)
		}
		for t, positions := range byTerm {
			pb := inner[t]
			if pb == nil {
				m := b.GetOr(t, nil)
				if m == nil {
					m = pmap.NewStrings[[]int]()
				}
				pb = m.Builder()
				inner[t] = pb
			}
			pb.Set(id, positions)
		}
	}
	seal()
}

// Remove drops a document.
func (ix *PositionalIndex) Remove(id string) {
	if _, ok := ix.docs.Get(id); !ok {
		return
	}
	ix.docs = ix.docs.Delete(id)
	b := ix.postings.Builder()
	ix.postings.Range(func(t string, inner *pmap.Map[string, []int]) bool {
		if _, ok := inner.Get(id); ok {
			if next := inner.Delete(id); next.Len() == 0 {
				b.Delete(t)
			} else {
				b.Set(t, next)
			}
		}
		return true
	})
	ix.postings = b.Map()
}

// Len returns the number of indexed documents.
func (ix *PositionalIndex) Len() int { return ix.docs.Len() }

// positionsOf returns the recorded positions of term in doc id.
func (ix *PositionalIndex) positionsOf(term, id string) []int {
	inner := ix.postings.GetOr(term, nil)
	if inner == nil {
		return nil
	}
	return inner.GetOr(id, nil)
}

// Phrase returns the sorted ids of documents containing the exact analyzed
// phrase (stop words removed, terms stemmed — so "monte carlo methods"
// matches "Monte Carlo method"). Empty or all-stopword phrases return nil.
func (ix *PositionalIndex) Phrase(phrase string) []string {
	terms := Terms(phrase)
	if len(terms) == 0 {
		return nil
	}
	// Candidate docs must contain every term.
	first := ix.postings.GetOr(terms[0], nil)
	if first.Len() == 0 {
		return nil
	}
	var out []string
	first.Range(func(id string, basePositions []int) bool {
		// For each start position of the first term, check the rest
		// follow consecutively.
		for _, p := range basePositions {
			ok := true
			for off := 1; off < len(terms); off++ {
				if !contains(ix.positionsOf(terms[off], id), p+off) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, id)
				break
			}
		}
		return true
	})
	sort.Strings(out)
	return out
}

// Near returns the sorted ids of documents where all the phrase's terms
// occur within a window of the given size (in analyzed-token positions),
// in any order. window < len(terms) always yields nil.
func (ix *PositionalIndex) Near(phrase string, window int) []string {
	terms := Terms(phrase)
	if len(terms) == 0 || window < len(terms) {
		return nil
	}
	// Candidates: docs containing all terms.
	candidate := map[string]bool{}
	for i, t := range terms {
		m := ix.postings.GetOr(t, nil)
		if m.Len() == 0 {
			return nil
		}
		next := map[string]bool{}
		prev := candidate
		first := i == 0
		m.Range(func(id string, _ []int) bool {
			if first || prev[id] {
				next[id] = true
			}
			return true
		})
		candidate = next
	}
	var out []string
	for id := range candidate {
		// Merge all positions tagged by term, then slide the window.
		type tagged struct{ pos, term int }
		var all []tagged
		for ti, t := range terms {
			for _, p := range ix.positionsOf(t, id) {
				all = append(all, tagged{p, ti})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
		count := make([]int, len(terms))
		have := 0
		lo := 0
		for hi := 0; hi < len(all); hi++ {
			if count[all[hi].term] == 0 {
				have++
			}
			count[all[hi].term]++
			for all[hi].pos-all[lo].pos >= window {
				count[all[lo].term]--
				if count[all[lo].term] == 0 {
					have--
				}
				lo++
			}
			if have == len(terms) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// contains reports whether the sorted ints include x.
func contains(sortedInts []int, x int) bool {
	i := sort.SearchInts(sortedInts, x)
	return i < len(sortedInts) && sortedInts[i] == x
}
