package textproc

import (
	"math"
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"Amdahl's law", []string{"amdahl", "law"}},
		{"divide-and-conquer", []string{"divide", "and", "conquer"}},
		{"OpenMP for-loops in C++14", []string{"openmp", "for", "loops", "in", "c", "14"}},
		{"", nil},
		{"   \t\n", nil},
		{"e.g., MPI; pthreads", []string{"e", "g", "mpi", "pthreads"}},
		{"don't", []string{"don't"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTermsDropsStopwordsAndStems(t *testing.T) {
	got := Terms("The students are implementing parallel sorting algorithms")
	want := []string{"implement", "parallel", "sort", "algorithm"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
	if !IsStopword("the") || IsStopword("parallel") {
		t.Error("IsStopword misbehaves")
	}
}

func TestPorterFixtures(t *testing.T) {
	// Classic fixtures from Porter's paper plus domain vocabulary.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		// Domain words used across classification matching.
		"parallelism":  "parallel",
		"scheduling":   "schedul",
		"synchronized": "synchron",
		"programming":  "program",
		"computation":  "comput",
		"computing":    "comput",
		"distributed":  "distribut",
		"arrays":       "arrai",
		"iteration":    "iter",
		"recursion":    "recurs",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnVocabulary(t *testing.T) {
	// The Porter stemmer is not idempotent on all of English, but it must
	// be on the vocabulary our pipeline actually produces, so repeated
	// analysis never drifts.
	vocab := []string{
		"parallel", "schedul", "comput", "distribut", "program", "thread",
		"messag", "memori", "array", "sort", "search", "graph", "matrix",
		"integr", "fractal", "simul", "loop", "openmp", "mpi", "pthread",
	}
	for _, w := range vocab {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not idempotent: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"a b", "b c", "c d"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 4); !reflect.DeepEqual(got, []string{"a b c d"}) {
		t.Errorf("4-grams = %v", got)
	}
	if NGrams(toks, 5) != nil || NGrams(toks, 0) != nil {
		t.Error("degenerate n-grams should be nil")
	}
}

func TestCosineProperties(t *testing.T) {
	a := Vector{"x": 1, "y": 2}
	b := Vector{"x": 2, "y": 4}
	if s := Cosine(a, b); math.Abs(s-1) > 1e-12 {
		t.Errorf("colinear cosine = %v", s)
	}
	if s := Cosine(a, Vector{"z": 3}); s != 0 {
		t.Errorf("orthogonal cosine = %v", s)
	}
	if Cosine(a, nil) != 0 || Cosine(nil, nil) != 0 {
		t.Error("empty cosine should be 0")
	}
	if Cosine(a, b) != Cosine(b, a) {
		t.Error("cosine not symmetric")
	}
}

func TestJaccard(t *testing.T) {
	a := Vector{"x": 1, "y": 1}
	b := Vector{"y": 1, "z": 1}
	if got := Jaccard(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v", got)
	}
	if Jaccard(nil, nil) != 0 {
		t.Error("empty Jaccard")
	}
	if Jaccard(a, a) != 1 {
		t.Error("self Jaccard")
	}
}

func TestCorpusSimilar(t *testing.T) {
	c := NewCorpus()
	c.Add("sort", "parallel merge sort on shared memory with OpenMP")
	c.Add("heat", "stencil computation for heat diffusion with MPI message passing")
	c.Add("game", "a console game of tic tac toe with menus")
	c.Finalize()
	got := c.Similar(c.Query("parallel sorting with OpenMP threads"), 2)
	if len(got) == 0 || got[0].ID != "sort" {
		t.Fatalf("Similar = %v", got)
	}
	for _, s := range got {
		if s.Score <= 0 || s.Score > 1+1e-9 {
			t.Errorf("score out of range: %+v", s)
		}
	}
	// Self-similarity of a stored doc with its own text is maximal.
	self := Cosine(c.Vector("sort"), c.Vector("sort"))
	if math.Abs(self-1) > 1e-12 {
		t.Errorf("self cosine = %v", self)
	}
}

func TestCorpusReAddReplaces(t *testing.T) {
	c := NewCorpus()
	c.Add("d", "alpha beta")
	c.Add("d", "gamma delta")
	c.Finalize()
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v := c.Vector("d"); v["alpha"] != 0 {
		t.Errorf("stale term survived re-add: %v", v)
	}
	if c.IDF("gamma") == 0 {
		t.Error("df not updated on re-add")
	}
}

func TestCorpusPanics(t *testing.T) {
	c := NewCorpus()
	c.Add("d", "x")
	mustPanic(t, func() { c.Vector("d") })
	mustPanic(t, func() { c.Query("x") })
	c.Finalize()
	c.Finalize() // idempotent
	mustPanic(t, func() { c.Add("e", "y") })
}

func TestIndexSearch(t *testing.T) {
	ix := NewIndex()
	ix.Add("n1", "simulate a hurricane tracker with arrays and loops")
	ix.Add("n2", "object oriented zoo with classes and inheritance")
	ix.Add("p1", "simulate a forest fire with monte carlo methods in parallel")
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.Search("simulating fires", 10)
	if len(got) == 0 || got[0].ID != "p1" {
		t.Fatalf("Search = %v", got)
	}
	if res := ix.Search("zzzz", 10); res != nil {
		t.Errorf("no-hit search = %v", res)
	}
	if res := ix.Search("", 10); res != nil {
		t.Errorf("empty search = %v", res)
	}
	all := ix.SearchAll("simulate")
	if !reflect.DeepEqual(all, []string{"n1", "p1"}) {
		t.Errorf("SearchAll = %v", all)
	}
	if ix.SearchAll("simulate inheritance") != nil {
		t.Error("conjunctive search should be empty")
	}
}

func TestIndexRemoveAndReAdd(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "parallel prefix scan")
	ix.Add("b", "parallel reduction tree")
	ix.Remove("a")
	if ix.Len() != 1 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	if got := ix.SearchAll("prefix"); got != nil {
		t.Errorf("removed doc still indexed: %v", got)
	}
	ix.Add("b", "sequential quicksort") // replace
	if got := ix.SearchAll("reduction"); got != nil {
		t.Errorf("replaced doc still indexed: %v", got)
	}
	if got := ix.SearchAll("quicksort"); len(got) != 1 || got[0] != "b" {
		t.Errorf("re-add not indexed: %v", got)
	}
	ix.Remove("ghost") // no-op
}

func TestCountTerms(t *testing.T) {
	got := CountTerms([]string{"a", "b", "a"})
	if got["a"] != 2 || got["b"] != 1 {
		t.Errorf("CountTerms = %v", got)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
