package textproc

// Stem reduces an English word to its stem using the classic Porter (1980)
// algorithm. Input should be a lower-case token; words shorter than three
// letters are returned unchanged, per the original paper.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant at position i: vowels are
// a, e, i, o, u; 'y' is a consonant when it follows a vowel position rule
// (y preceded by a consonant is a vowel).
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in the word: a word has
// form [C](VC){m}[V].
func measure(w []byte) int {
	m := 0
	i := 0
	n := len(w)
	// skip initial consonants
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		// in a vowel run
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

// containsVowel reports whether the stem contains a vowel.
func containsVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether the word ends with a doubled consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether the word ends consonant-vowel-consonant where the
// final consonant is not w, x, or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceIf replaces suffix old with new when the stem before old has
// measure > minM. It reports whether old matched (regardless of the measure
// condition), so callers can stop at the first matching rule.
func replaceIf(w []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(w, old) {
		return w, false
	}
	stem := w[:len(w)-len(old)]
	if measure(stem) > minM {
		return append(stem[:len(stem):len(stem)], new...), true
	}
	return w, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		stem := w[:len(w)-3]
		if measure(stem) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && containsVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && containsVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && containsVowel(w[:len(w)-1]) {
		out := append([]byte(nil), w...)
		out[len(out)-1] = 'i'
		return out
	}
	return w
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replaceIf(w, r.old, r.new, 0); matched {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replaceIf(w, r.old, r.new, 0); matched {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return w
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
