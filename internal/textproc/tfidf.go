package textproc

import (
	"math"
	"sort"
)

// Vector is a sparse term-weight vector.
type Vector map[string]float64

// Norm returns the Euclidean norm of the vector.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of two sparse vectors, in [0, 1] for
// non-negative weights; either vector being empty yields 0.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for t, wa := range a {
		if wb, ok := b[t]; ok {
			dot += wa * wb
		}
	}
	if dot == 0 {
		return 0
	}
	return dot / (a.Norm() * b.Norm())
}

// Jaccard returns |A ∩ B| / |A ∪ B| over the term sets of two vectors; two
// empty vectors yield 0.
func Jaccard(a, b Vector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if _, ok := b[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Corpus builds TF-IDF vectors over a set of documents identified by string
// keys. Add all documents, then call Finalize before querying; Vector and
// Similar panic if called earlier.
type Corpus struct {
	docs      map[string][]string // id -> analyzed terms
	df        map[string]int      // term -> number of docs containing it
	idf       map[string]float64
	vecs      map[string]Vector
	norms     map[string]float64   // id -> Euclidean norm, fixed at Finalize
	postings  map[string][]posting // term -> docs containing it, sorted by id
	finalized bool
}

// posting is one inverted-index entry: a document containing the term and
// the term's weight in that document's vector.
type posting struct {
	id string
	w  float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		docs: make(map[string][]string),
		df:   make(map[string]int),
	}
}

// Add analyzes text (tokenize, stop, stem) and registers it under id,
// replacing any previous document with the same id.
func (c *Corpus) Add(id, text string) {
	if c.finalized {
		panic("textproc: Add after Finalize")
	}
	if old, ok := c.docs[id]; ok {
		for t := range CountTerms(old) {
			c.df[t]--
			if c.df[t] == 0 {
				delete(c.df, t)
			}
		}
	}
	terms := Terms(text)
	c.docs[id] = terms
	for t := range CountTerms(terms) {
		c.df[t]++
	}
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Finalize computes IDF weights and document vectors. Idempotent.
func (c *Corpus) Finalize() {
	if c.finalized {
		return
	}
	n := float64(len(c.docs))
	c.idf = make(map[string]float64, len(c.df))
	for t, df := range c.df {
		// Smoothed IDF keeps terms present in every document from
		// vanishing entirely, which matters for tiny corpora such as
		// the 11 Peachy assignments.
		c.idf[t] = math.Log((n+1)/(float64(df)+1)) + 1
	}
	c.vecs = make(map[string]Vector, len(c.docs))
	for id, terms := range c.docs {
		c.vecs[id] = c.vectorize(terms)
	}
	// Precompute per-document norms and the inverted index so Similar costs
	// O(matching postings), not a full scan recomputing every norm — the
	// difference between ~3000 cosine evaluations per query over the CS13
	// entry corpus and a few dozen posting-list walks.
	c.norms = make(map[string]float64, len(c.vecs))
	c.postings = make(map[string][]posting, len(c.df))
	for id, v := range c.vecs {
		c.norms[id] = v.Norm()
		for t, w := range v {
			c.postings[t] = append(c.postings[t], posting{id: id, w: w})
		}
	}
	for _, ps := range c.postings {
		sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	}
	c.finalized = true
}

func (c *Corpus) vectorize(terms []string) Vector {
	tf := CountTerms(terms)
	v := make(Vector, len(tf))
	if len(terms) == 0 {
		return v
	}
	for t, n := range tf {
		idf, ok := c.idf[t]
		if !ok {
			idf = math.Log(float64(len(c.docs))+1) + 1 // unseen term
		}
		v[t] = (1 + math.Log(float64(n))) * idf
	}
	return v
}

// Vector returns the TF-IDF vector of a registered document, or nil for an
// unknown id.
func (c *Corpus) Vector(id string) Vector {
	c.mustFinal()
	return c.vecs[id]
}

// Query vectorizes ad-hoc text against the corpus IDF table.
func (c *Corpus) Query(text string) Vector {
	c.mustFinal()
	return c.vectorize(Terms(text))
}

// QueryTerms vectorizes already-analyzed terms against the corpus IDF
// table, so bulk pipelines that tokenize a document once can query several
// corpora without re-analyzing.
func (c *Corpus) QueryTerms(terms []string) Vector {
	c.mustFinal()
	return c.vectorize(terms)
}

// Scored pairs a document id with a similarity score.
type Scored struct {
	ID    string
	Score float64
}

// Similar returns the k documents most cosine-similar to the query vector,
// best first, excluding zero scores. k <= 0 returns all matches. Scoring
// walks the inverted index — only documents sharing a term with the query
// are touched — and iterates query terms in sorted order so each document's
// dot product accumulates identically on every run and every node.
func (c *Corpus) Similar(q Vector, k int) []Scored {
	c.mustFinal()
	if len(q) == 0 {
		return nil
	}
	qn := q.Norm()
	if qn == 0 {
		return nil
	}
	terms := make([]string, 0, len(q))
	for t := range q {
		if _, ok := c.postings[t]; ok {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	dots := make(map[string]float64, 64)
	for _, t := range terms {
		wq := q[t]
		for _, p := range c.postings[t] {
			dots[p.id] += wq * p.w
		}
	}
	out := make([]Scored, 0, len(dots))
	for id, dot := range dots {
		if dot > 0 {
			out = append(out, Scored{ID: id, Score: dot / (qn * c.norms[id])})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// IDF returns the inverse document frequency of an analyzed term (after
// stemming); unknown terms return 0.
func (c *Corpus) IDF(term string) float64 {
	c.mustFinal()
	return c.idf[term]
}

func (c *Corpus) mustFinal() {
	if !c.finalized {
		panic("textproc: corpus not finalized")
	}
}
