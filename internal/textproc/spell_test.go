package textproc

import "testing"

func trainedSpeller() *Speller {
	s := NewSpeller()
	s.Train("parallel sorting with merge sort and quick sort")
	s.Train("parallel prefix scan over arrays")
	s.Train("message passing with MPI ranks")
	s.Train("fractal rendering and simulation")
	return s
}

func TestSpellerKnownAndCorrect(t *testing.T) {
	s := trainedSpeller()
	if !s.Known("parallel") || !s.Known("sorting") {
		t.Error("trained terms unknown")
	}
	if s.Known("zebra") {
		t.Error("untrained term known")
	}
	// Stemmed identity: "sorting" stems to "sort", already known.
	if got := s.Correct("sorting", 2); got != "sort" {
		t.Errorf("Correct(sorting) = %q", got)
	}
	if got := s.Correct("paralell", 2); got != "parallel" {
		t.Errorf("Correct(paralell) = %q", got)
	}
	if got := s.Correct("fractel", 2); got != "fractal" {
		t.Errorf("Correct(fractel) = %q", got)
	}
	if got := s.Correct("xylophone", 2); got != "" {
		t.Errorf("Correct(xylophone) = %q", got)
	}
}

func TestCorrectQuery(t *testing.T) {
	s := trainedSpeller()
	fixed, changed := s.CorrectQuery("paralell sortng", 2)
	if !changed {
		t.Fatal("no correction applied")
	}
	if fixed != "parallel sort" {
		t.Errorf("corrected query = %q", fixed)
	}
	// Clean queries pass through untouched.
	same, changed := s.CorrectQuery("parallel scan", 2)
	if changed || same != "parallel scan" {
		t.Errorf("clean query changed: %q (%v)", same, changed)
	}
	// Stop words and short tokens are preserved, not corrected.
	q, _ := s.CorrectQuery("the mpi of it", 2)
	if q != "the mpi of it" {
		t.Errorf("stopword handling = %q", q)
	}
	// Unknown but uncorrectable terms survive.
	q, changed = s.CorrectQuery("quixotic", 2)
	if changed || q != "quixotic" {
		t.Errorf("uncorrectable = %q (%v)", q, changed)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b, 10); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Early exit: distance beyond the bound reports bound+1.
	if got := editDistance("aaaaaaaa", "zzzzzzzz", 2); got != 3 {
		t.Errorf("bounded distance = %d, want 3", got)
	}
}

func TestVocabularyOrder(t *testing.T) {
	s := NewSpeller()
	s.Train("alpha alpha beta")
	v := s.Vocabulary()
	if len(v) != 2 || v[0] != "alpha" || v[1] != "beta" {
		t.Errorf("Vocabulary = %v", v)
	}
}
