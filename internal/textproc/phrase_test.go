package textproc

import (
	"reflect"
	"testing"
)

func phraseIndex() *PositionalIndex {
	ix := NewPositionalIndex()
	ix.Add("fire", "Using a Monte Carlo pattern to simulate a forest fire across a grid")
	ix.Add("pi", "Estimate pi with Monte Carlo sampling of random points")
	ix.Add("carlo", "Carlo visits the monte every summer") // "carlo ... monte" out of order
	ix.Add("race", "find the data race in the threaded counter")
	return ix
}

func TestPhraseSearch(t *testing.T) {
	ix := phraseIndex()
	got := ix.Phrase("monte carlo")
	if !reflect.DeepEqual(got, []string{"fire", "pi"}) {
		t.Errorf("Phrase(monte carlo) = %v", got)
	}
	// Stemming applies: "simulating forests" ~ "simulate a forest".
	got = ix.Phrase("simulating forests")
	if !reflect.DeepEqual(got, []string{"fire"}) {
		t.Errorf("Phrase(simulating forests) = %v", got)
	}
	// Out-of-order tokens do not match a phrase.
	if got := ix.Phrase("carlo monte"); got != nil {
		t.Errorf("reversed phrase matched: %v", got)
	}
	if got := ix.Phrase("data race"); !reflect.DeepEqual(got, []string{"race"}) {
		t.Errorf("Phrase(data race) = %v", got)
	}
	if ix.Phrase("") != nil || ix.Phrase("the a of") != nil {
		t.Error("degenerate phrases should be nil")
	}
	if ix.Phrase("zebra unicorn") != nil {
		t.Error("absent phrase matched")
	}
}

func TestNearSearch(t *testing.T) {
	ix := phraseIndex()
	// "monte" and "carlo" within any window of 2+.
	got := ix.Near("monte carlo", 2)
	if !reflect.DeepEqual(got, []string{"fire", "pi"}) {
		t.Errorf("Near window 2 = %v", got)
	}
	// The reversed doc matches once the window is wide enough.
	got = ix.Near("monte carlo", 4)
	if !reflect.DeepEqual(got, []string{"carlo", "fire", "pi"}) {
		t.Errorf("Near window 4 = %v", got)
	}
	if got := ix.Near("monte carlo", 1); got != nil {
		t.Errorf("window smaller than phrase matched: %v", got)
	}
	if got := ix.Near("monte zebra", 10); got != nil {
		t.Errorf("absent term matched: %v", got)
	}
}

func TestPositionalAddRemove(t *testing.T) {
	ix := NewPositionalIndex()
	ix.Add("a", "parallel prefix scan")
	if ix.Len() != 1 {
		t.Fatal("Len")
	}
	ix.Add("a", "sequential quicksort") // replace
	if got := ix.Phrase("parallel prefix"); got != nil {
		t.Errorf("stale phrase: %v", got)
	}
	if got := ix.Phrase("sequential quicksort"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("replaced doc missing: %v", got)
	}
	ix.Remove("a")
	ix.Remove("ghost")
	if ix.Len() != 0 || ix.Phrase("sequential quicksort") != nil {
		t.Error("remove failed")
	}
}

func TestPhraseRepeatedTerm(t *testing.T) {
	ix := NewPositionalIndex()
	ix.Add("x", "scan scan scan the horizon")
	if got := ix.Phrase("scan scan"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("repeated-term phrase = %v", got)
	}
	if got := ix.Phrase("scan scan scan scan"); got != nil {
		t.Errorf("over-long repeated phrase = %v", got)
	}
}
