package textproc

import (
	"sort"

	"carcs/internal/pmap"
)

// Speller suggests corrections for misspelled query terms against a learned
// vocabulary — the "did you mean" assist for free-text search, so "paralell
// sortng" still finds the parallel sorting materials. The vocabulary is a
// persistent map, so Snap captures an immutable snapshot in O(1).
type Speller struct {
	// freq counts how often each analyzed term occurred in training text.
	freq *pmap.Map[string, int]
}

// NewSpeller returns an empty speller.
func NewSpeller() *Speller {
	return &Speller{freq: pmap.NewStrings[int]()}
}

// Snap returns an immutable snapshot sharing the vocabulary with the
// receiver; see Index.Snap.
func (s *Speller) Snap() *Speller {
	cp := *s
	return &cp
}

// Train adds the analyzed terms of the text to the vocabulary.
func (s *Speller) Train(text string) { s.TrainTerms(Terms(text)) }

// TrainTerms is Train for already-analyzed terms; see Index.AddTerms.
func (s *Speller) TrainTerms(terms []string) {
	b := s.freq.Builder()
	for _, t := range terms {
		b.Set(t, b.GetOr(t, 0)+1)
	}
	s.freq = b.Map()
}

// TrainTermsBatch trains on many term lists in one builder session,
// equivalent to calling TrainTerms for each in order; see Index.AddTermsBatch.
func (s *Speller) TrainTermsBatch(termLists [][]string) {
	b := s.freq.Builder()
	for _, terms := range termLists {
		for _, t := range terms {
			b.Set(t, b.GetOr(t, 0)+1)
		}
	}
	s.freq = b.Map()
}

// Forget removes one training occurrence of each analyzed term of the text,
// dropping terms whose count reaches zero. Passing exactly the text that
// was trained undoes that training.
func (s *Speller) Forget(text string) {
	b := s.freq.Builder()
	for _, t := range Terms(text) {
		switch f := b.GetOr(t, 0); {
		case f > 1:
			b.Set(t, f-1)
		case f == 1:
			b.Delete(t)
		}
	}
	s.freq = b.Map()
}

// Known reports whether the analyzed form of the word is in the vocabulary.
func (s *Speller) Known(word string) bool {
	return s.freq.GetOr(Stem(word), 0) > 0
}

// Correct returns the most frequent vocabulary term within edit distance
// maxDist of the word's analyzed form, or "" when none qualifies. The input
// itself is returned unchanged when already known.
func (s *Speller) Correct(word string, maxDist int) string {
	w := Stem(word)
	if s.freq.GetOr(w, 0) > 0 {
		return w
	}
	best, bestFreq, bestDist := "", 0, maxDist+1
	s.freq.Range(func(v string, f int) bool {
		// Cheap length bound before the DP.
		d := len(v) - len(w)
		if d < 0 {
			d = -d
		}
		if d > maxDist {
			return true
		}
		dist := editDistance(w, v, maxDist)
		if dist > maxDist {
			return true
		}
		if dist < bestDist || (dist == bestDist && f > bestFreq) ||
			(dist == bestDist && f == bestFreq && (best == "" || v < best)) {
			best, bestFreq, bestDist = v, f, dist
		}
		return true
	})
	return best
}

// CorrectQuery rewrites a query term by term, keeping known terms and
// substituting the best correction for unknown ones; terms with no
// correction survive unchanged. The second result reports whether anything
// changed.
func (s *Speller) CorrectQuery(query string, maxDist int) (string, bool) {
	toks := Tokenize(query)
	changed := false
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if IsStopword(tok) || len(tok) <= 2 || s.Known(tok) {
			out = append(out, tok)
			continue
		}
		if fix := s.Correct(tok, maxDist); fix != "" {
			out = append(out, fix)
			changed = true
			continue
		}
		out = append(out, tok)
	}
	return join(out), changed
}

// Vocabulary returns the terms sorted by descending frequency then
// alphabetically; mostly for diagnostics and tests.
func (s *Speller) Vocabulary() []string {
	out := make([]string, 0, s.freq.Len())
	s.freq.Range(func(t string, _ int) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		fi, fj := s.freq.GetOr(out[i], 0), s.freq.GetOr(out[j], 0)
		if fi != fj {
			return fi > fj
		}
		return out[i] < out[j]
	})
	return out
}

// editDistance computes Levenshtein distance with early exit once the
// distance provably exceeds bound.
func editDistance(a, b string, bound int) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func join(toks []string) string {
	n := 0
	for _, t := range toks {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range toks {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
