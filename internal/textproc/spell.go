package textproc

import "sort"

// Speller suggests corrections for misspelled query terms against a learned
// vocabulary — the "did you mean" assist for free-text search, so "paralell
// sortng" still finds the parallel sorting materials.
type Speller struct {
	// freq counts how often each analyzed term occurred in training text.
	freq map[string]int
}

// NewSpeller returns an empty speller.
func NewSpeller() *Speller {
	return &Speller{freq: make(map[string]int)}
}

// Train adds the analyzed terms of the text to the vocabulary.
func (s *Speller) Train(text string) {
	for _, t := range Terms(text) {
		s.freq[t]++
	}
}

// Known reports whether the analyzed form of the word is in the vocabulary.
func (s *Speller) Known(word string) bool {
	return s.freq[Stem(word)] > 0
}

// Correct returns the most frequent vocabulary term within edit distance
// maxDist of the word's analyzed form, or "" when none qualifies. The input
// itself is returned unchanged when already known.
func (s *Speller) Correct(word string, maxDist int) string {
	w := Stem(word)
	if s.freq[w] > 0 {
		return w
	}
	best, bestFreq, bestDist := "", 0, maxDist+1
	for v, f := range s.freq {
		// Cheap length bound before the DP.
		d := len(v) - len(w)
		if d < 0 {
			d = -d
		}
		if d > maxDist {
			continue
		}
		dist := editDistance(w, v, maxDist)
		if dist > maxDist {
			continue
		}
		if dist < bestDist || (dist == bestDist && f > bestFreq) {
			best, bestFreq, bestDist = v, f, dist
		}
	}
	return best
}

// CorrectQuery rewrites a query term by term, keeping known terms and
// substituting the best correction for unknown ones; terms with no
// correction survive unchanged. The second result reports whether anything
// changed.
func (s *Speller) CorrectQuery(query string, maxDist int) (string, bool) {
	toks := Tokenize(query)
	changed := false
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if IsStopword(tok) || len(tok) <= 2 || s.Known(tok) {
			out = append(out, tok)
			continue
		}
		if fix := s.Correct(tok, maxDist); fix != "" {
			out = append(out, fix)
			changed = true
			continue
		}
		out = append(out, tok)
	}
	return join(out), changed
}

// Vocabulary returns the terms sorted by descending frequency then
// alphabetically; mostly for diagnostics and tests.
func (s *Speller) Vocabulary() []string {
	out := make([]string, 0, len(s.freq))
	for t := range s.freq {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.freq[out[i]] != s.freq[out[j]] {
			return s.freq[out[i]] > s.freq[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// editDistance computes Levenshtein distance with early exit once the
// distance provably exceeds bound.
func editDistance(a, b string, bound int) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func join(toks []string) string {
	n := 0
	for _, t := range toks {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range toks {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
