// Package textproc is the text-processing substrate of the CAR-CS
// reproduction: tokenization, stop-word filtering, Porter stemming, n-grams,
// TF-IDF vectorization, similarity measures, and an inverted index.
//
// The paper's future-work items ("we should be able to suggest
// classifications", "leverage existing classification to provide
// recommendation") require comparing material descriptions with ontology
// entry labels; this package provides the machinery, built on the standard
// library only.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-case word tokens. A token is a maximal run
// of letters, digits, or intra-word apostrophes/hyphens; everything else
// separates tokens. Possessive "'s" endings are dropped so "Amdahl's"
// tokenizes as "amdahl".
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		cur.Reset()
		tok = strings.TrimSuffix(tok, "'s")
		tok = strings.Trim(tok, "'-")
		if tok != "" {
			tokens = append(tokens, tok)
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && cur.Len() > 0:
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	// Split retained hyphens into separate tokens ("divide-and-conquer"
	// yields divide, and, conquer) while keeping the joined form out: the
	// classification vocabularies use both forms inconsistently, and
	// per-part tokens match more robustly.
	var out []string
	for _, t := range tokens {
		if strings.ContainsRune(t, '-') {
			for _, p := range strings.Split(t, "-") {
				if p != "" {
					out = append(out, strings.Trim(p, "'"))
				}
			}
			continue
		}
		out = append(out, t)
	}
	return out
}

// stopwords is a compact English stop-word list tuned for curriculum text:
// it removes glue words but keeps domain words like "data" and "parallel".
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "can": true, "do": true, "e": true,
	"etc": true, "for": true, "from": true, "g": true, "has": true,
	"have": true, "how": true, "i": true, "in": true, "into": true,
	"is": true, "it": true, "its": true, "may": true, "must": true,
	"nor": true, "not": true, "of": true, "on": true, "or": true,
	"our": true, "s": true, "so": true, "such": true, "than": true,
	"that": true, "the": true, "their": true, "them": true, "then": true,
	"there": true, "these": true, "they": true, "this": true, "those": true,
	"to": true, "towards": true, "use": true, "used": true, "uses": true,
	"using": true, "versus": true, "via": true, "vs": true, "was": true,
	"we": true, "were": true, "what": true, "when": true, "where": true,
	"which": true, "while": true, "who": true, "why": true, "will": true,
	"with": true, "within": true, "without": true, "you": true, "your": true,
	"also": true, "each": true, "other": true, "some": true, "students": true,
	"student": true, "assignment": true, "course": true, "should": true,
}

// IsStopword reports whether the lower-case token is on the stop list.
func IsStopword(tok string) bool { return stopwords[tok] }

// Terms tokenizes text, removes stop words, and stems the remainder — the
// standard analysis pipeline used across the reproduction.
func Terms(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if stopwords[t] || len(t) == 1 {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// NGrams returns the n-grams of the token slice joined by spaces, e.g.
// bigrams of [a b c] are ["a b", "b c"]. n < 1 or too-short input yields
// nil.
func NGrams(tokens []string, n int) []string {
	if n < 1 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// CountTerms tallies term frequencies.
func CountTerms(terms []string) map[string]int {
	m := make(map[string]int, len(terms))
	for _, t := range terms {
		m[t]++
	}
	return m
}
