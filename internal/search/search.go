// Package search implements the query side of CAR-CS: attribute filters
// (course level, material kind, language, dataset usage, years), ontology
// subtree filters ("An instructor can search for materials on precise
// topics"), ranked free-text search over titles and descriptions, and the
// Sec. IV-D query — find materials similar to one you already use but that
// also cover PDC topics.
package search

import (
	"sort"

	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/pmap"
	"carcs/internal/similarity"
	"carcs/internal/textproc"
)

// Engine indexes a set of materials for querying. Add materials, then query;
// the engine re-indexes incrementally on Add. Internals are persistent, so
// Snap produces a frozen copy in O(1) that shares structure with the live
// engine; every read method works identically on a snapshot.
type Engine struct {
	cs13  *ontology.Ontology
	pdc12 *ontology.Ontology
	// mats is copy-on-write: Add of a new id may append in place, but any
	// replacement or removal copies the slice, so a Snap taken earlier
	// (which capped the slice) never observes mutation.
	mats  []*material.Material
	byID  *pmap.Map[string, *material.Material]
	index *textproc.Index
	// positional enables exact-phrase and proximity queries.
	positional *textproc.PositionalIndex
	// speller powers "did you mean" corrections for free-text queries.
	speller *textproc.Speller
}

// NewEngine returns an engine bound to the two curriculum ontologies.
func NewEngine(cs13, pdc12 *ontology.Ontology) *Engine {
	return &Engine{
		cs13:       cs13,
		pdc12:      pdc12,
		byID:       pmap.NewStrings[*material.Material](),
		index:      textproc.NewIndex(),
		positional: textproc.NewPositionalIndex(),
		speller:    textproc.NewSpeller(),
	}
}

// Snap returns an immutable snapshot of the engine at its current version.
// The snapshot shares structure with the live engine; subsequent Add/Remove
// calls on the live engine do not affect it.
func (e *Engine) Snap() *Engine {
	cp := *e
	cp.mats = e.mats[:len(e.mats):len(e.mats)]
	cp.index = e.index.Snap()
	cp.positional = e.positional.Snap()
	cp.speller = e.speller.Snap()
	return &cp
}

// Add indexes a material; re-adding an ID replaces the previous version.
func (e *Engine) Add(m *material.Material) {
	e.AddTerms(m, textproc.Terms(m.SearchText()))
}

// AddTerms is Add for a material whose search text has already been
// analyzed: the engine maintains three term-keyed structures over the same
// text, and the commit pipeline's incremental models tokenize it too, so
// analyzing once per commit and sharing the term list saves four
// re-tokenizations per material.
func (e *Engine) AddTerms(m *material.Material, terms []string) {
	if _, exists := e.byID.Get(m.ID); exists {
		next := make([]*material.Material, len(e.mats))
		copy(next, e.mats)
		for i, old := range next {
			if old.ID == m.ID {
				next[i] = m
				break
			}
		}
		e.mats = next
	} else {
		e.mats = append(e.mats, m)
	}
	e.byID = e.byID.Set(m.ID, m)
	e.index.AddTerms(m.ID, terms)
	e.positional.AddTerms(m.ID, terms)
	e.speller.TrainTerms(terms)
}

// AddTermsBatch indexes a batch of materials with one builder session per
// underlying structure, equivalent to calling AddTerms for each pair in
// order. termLists[i] must be the analyzed terms of ms[i]. Replacements
// (re-added ids) fall back to the sequential path, which the batch commit
// pipeline never takes — it rejects duplicate ids up front.
func (e *Engine) AddTermsBatch(ms []*material.Material, termLists [][]string) {
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if _, exists := e.byID.Get(m.ID); exists || seen[m.ID] {
			for i := range ms {
				e.AddTerms(ms[i], termLists[i])
			}
			return
		}
		seen[m.ID] = true
	}
	ids := make([]string, len(ms))
	bb := e.byID.Builder()
	for i, m := range ms {
		ids[i] = m.ID
		e.mats = append(e.mats, m)
		bb.Set(m.ID, m)
	}
	e.byID = bb.Map()
	e.index.AddTermsBatch(ids, termLists)
	e.positional.AddTermsBatch(ids, termLists)
	e.speller.TrainTermsBatch(termLists)
}

// Remove drops a material from the engine.
func (e *Engine) Remove(id string) {
	if _, exists := e.byID.Get(id); !exists {
		return
	}
	e.byID = e.byID.Delete(id)
	e.index.Remove(id)
	e.positional.Remove(id)
	next := make([]*material.Material, 0, len(e.mats)-1)
	for _, m := range e.mats {
		if m.ID != id {
			next = append(next, m)
		}
	}
	e.mats = next
}

// Get returns the indexed material with the given id, or nil.
func (e *Engine) Get(id string) *material.Material { return e.byID.GetOr(id, nil) }

// Len returns the number of indexed materials.
func (e *Engine) Len() int { return len(e.mats) }

// All returns the indexed materials in insertion order (copy of the slice).
func (e *Engine) All() []*material.Material {
	out := make([]*material.Material, len(e.mats))
	copy(out, e.mats)
	return out
}

// Filter is a material predicate.
type Filter func(*material.Material) bool

// ByKind matches materials of the given kind.
func ByKind(k material.Kind) Filter {
	return func(m *material.Material) bool { return m.Kind == k }
}

// ByLevel matches materials at the given course level.
func ByLevel(l material.Level) Filter {
	return func(m *material.Material) bool { return m.Level == l }
}

// ByLanguage matches materials in the given programming language.
func ByLanguage(lang string) Filter {
	return func(m *material.Material) bool { return m.Language == lang }
}

// ByCollection matches materials from the named collection.
func ByCollection(name string) Filter {
	return func(m *material.Material) bool { return m.Collection == name }
}

// ByYearRange matches materials published in [from, to] inclusive; zero
// bounds are open.
func ByYearRange(from, to int) Filter {
	return func(m *material.Material) bool {
		if from != 0 && m.Year < from {
			return false
		}
		if to != 0 && m.Year > to {
			return false
		}
		return true
	}
}

// UsesDataset matches materials that use any real-world dataset (the CORGIS
// dimension), or a specific one when name is non-empty.
func UsesDataset(name string) Filter {
	return func(m *material.Material) bool {
		if name == "" {
			return len(m.Datasets) > 0
		}
		for _, d := range m.Datasets {
			if d == name {
				return true
			}
		}
		return false
	}
}

// InSubtree builds a filter matching materials classified anywhere inside
// the subtree rooted at nodeID of the given ontology.
func InSubtree(o *ontology.Ontology, nodeID string) Filter {
	return func(m *material.Material) bool { return m.ClassifiedIn(o, nodeID) }
}

// HasEntry matches materials classified exactly at the given entry.
func HasEntry(nodeID string) Filter {
	return func(m *material.Material) bool { return m.HasClassification(nodeID) }
}

// AllOf is the conjunction of filters; with none it matches everything.
func AllOf(fs ...Filter) Filter {
	return func(m *material.Material) bool {
		for _, f := range fs {
			if !f(m) {
				return false
			}
		}
		return true
	}
}

// AnyOf is the disjunction; with none it matches nothing.
func AnyOf(fs ...Filter) Filter {
	return func(m *material.Material) bool {
		for _, f := range fs {
			if f(m) {
				return true
			}
		}
		return false
	}
}

// Not negates a filter.
func Not(f Filter) Filter {
	return func(m *material.Material) bool { return !f(m) }
}

// Select returns the indexed materials matching the filter, in insertion
// order. A nil filter matches everything.
func (e *Engine) Select(f Filter) []*material.Material {
	var out []*material.Material
	for _, m := range e.mats {
		if f == nil || f(m) {
			out = append(out, m)
		}
	}
	return out
}

// Phrase returns the indexed materials containing the exact analyzed
// phrase, in insertion order.
func (e *Engine) Phrase(phrase string) []*material.Material {
	ids := e.positional.Phrase(phrase)
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return e.Select(func(m *material.Material) bool { return set[m.ID] })
}

// Hit is one ranked search result.
type Hit struct {
	Material *material.Material
	Score    float64
}

// Text runs ranked free-text search over titles, descriptions, tags, and
// dataset names; optional filters restrict the candidates. Returns the top
// k hits (k <= 0 for all).
func (e *Engine) Text(query string, k int, filters ...Filter) []Hit {
	f := AllOf(filters...)
	var out []Hit
	for _, s := range e.index.Search(query, 0) {
		m := e.byID.GetOr(s.ID, nil)
		if m == nil || !f(m) {
			continue
		}
		out = append(out, Hit{Material: m, Score: s.Score})
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TextCorrected is Text with spelling assistance: when the raw query yields
// nothing, the engine corrects unknown terms against the indexed vocabulary
// and retries. The returned string is the corrected query when a correction
// was used ("did you mean"), empty otherwise.
func (e *Engine) TextCorrected(query string, k int, filters ...Filter) ([]Hit, string) {
	hits := e.Text(query, k, filters...)
	if len(hits) > 0 {
		return hits, ""
	}
	fixed, changed := e.speller.CorrectQuery(query, 2)
	if !changed {
		return hits, ""
	}
	return e.Text(fixed, k, filters...), fixed
}

// PDCCoverage reports whether the material covers any PDC content: a PDC12
// classification or a CS13 classification inside the PD area.
func (e *Engine) PDCCoverage(m *material.Material) bool {
	pdArea := e.cs13.AreaByCode("PD")
	for _, cl := range m.Classifications {
		if e.pdc12.Has(cl.NodeID) {
			return true
		}
		if pdArea != "" && e.cs13.Within(cl.NodeID, pdArea) {
			return true
		}
	}
	return false
}

// PDCReplacements implements the Sec. IV-D use case: given a (typically
// non-PDC) material, return indexed materials that share classification
// items with it AND cover PDC topics, ranked by shared count then rarity.
// This is the "replace a lecture on looping constructs with one that also
// includes parallel loops" query.
func (e *Engine) PDCReplacements(m *material.Material, minShared int, k int) []similarity.Edge {
	if minShared <= 0 {
		minShared = 2 // the paper's threshold
	}
	var candidates []*material.Material
	for _, c := range e.mats {
		if c.ID != m.ID && e.PDCCoverage(c) {
			candidates = append(candidates, c)
		}
	}
	edges := similarity.MostSimilar(m, candidates, similarity.SharedCount, 0)
	var out []similarity.Edge
	for _, ed := range edges {
		if int(ed.Score) >= minShared {
			out = append(out, ed)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].B < out[j].B
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// EntryUsage returns how often each classification entry is used across the
// indexed materials, for "understand how a topic or a learning outcome is
// typically covered" queries. Sorted by count descending, then ID.
type EntryCount struct {
	NodeID string
	Count  int
}

// EntryUsage tallies classification usage, optionally restricted to a
// subtree of one of the engine's ontologies (empty rootID for all entries).
func (e *Engine) EntryUsage(o *ontology.Ontology, rootID string) []EntryCount {
	counts := make(map[string]int)
	for _, m := range e.mats {
		for _, id := range m.ClassificationIDs() {
			if o != nil && !o.Has(id) {
				continue
			}
			if rootID != "" && !o.Within(id, rootID) {
				continue
			}
			counts[id]++
		}
	}
	out := make([]EntryCount, 0, len(counts))
	for id, n := range counts {
		out = append(out, EntryCount{NodeID: id, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].NodeID < out[j].NodeID
	})
	return out
}
