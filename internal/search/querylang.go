package search

import (
	"fmt"
	"strconv"
	"strings"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// ParsedQuery is the result of parsing a CAR-CS query string: a structured
// filter plus residual free text. The mini-language delivers the paper's
// goal of "a more expansive, fine-grained classification system that allows
// for greater expressiveness in assignment search queries":
//
//	collection:nifty kind:assignment level:CS1 language:Java
//	year:2010..2015        publication-year range (or year:2012)
//	dataset:any            uses any real-world dataset (or dataset:weather)
//	tag:simulation         free-form tag
//	in:cs13/pd             classified inside an ontology subtree
//	                       ("cs13" or "pdc12", then area code or node path)
//	entry:<node-id>        classified exactly at the entry
//	pdc:yes / pdc:no       covers (or not) any PDC content
//	-field:value           negates any clause
//	arrays "forest fire"   bare words and quoted phrases become free text
type ParsedQuery struct {
	Filter Filter
	Text   string
}

// ParseQuery parses the query string against the engine's ontologies.
func (e *Engine) ParseQuery(q string) (ParsedQuery, error) {
	var filters []Filter
	var text []string
	for _, tok := range tokenizeQuery(q) {
		if qi, ci := strings.IndexByte(tok, '"'), strings.IndexByte(tok, ':'); qi >= 0 && (ci < 0 || qi < ci) {
			// A quote before any colon means the whole token is a
			// quoted free-text phrase, colons included. A clause with
			// a quoted value (phrase:"monte carlo") falls through.
			text = append(text, strings.ReplaceAll(tok, `"`, ""))
			continue
		}
		neg := strings.HasPrefix(tok, "-") && strings.Contains(tok, ":")
		if neg {
			tok = tok[1:]
		}
		field, value, isClause := strings.Cut(tok, ":")
		value = strings.ReplaceAll(value, `"`, "")
		if !isClause || field == "" || value == "" {
			text = append(text, strings.ReplaceAll(tok, `"`, ""))
			continue
		}
		f, err := e.clauseFilter(strings.ToLower(field), value)
		if err != nil {
			return ParsedQuery{}, err
		}
		if neg {
			f = Not(f)
		}
		filters = append(filters, f)
	}
	return ParsedQuery{Filter: AllOf(filters...), Text: strings.Join(text, " ")}, nil
}

func (e *Engine) clauseFilter(field, value string) (Filter, error) {
	switch field {
	case "collection":
		return ByCollection(value), nil
	case "kind":
		k := material.Kind(strings.ToLower(value))
		if !material.ValidKind(k) {
			return nil, fmt.Errorf("search: unknown kind %q", value)
		}
		return ByKind(k), nil
	case "level":
		l := material.Level(value)
		if !material.ValidLevel(l) {
			// levels are case-typical ("CS1"); try upper.
			l = material.Level(strings.ToUpper(value))
		}
		if !material.ValidLevel(l) {
			return nil, fmt.Errorf("search: unknown level %q", value)
		}
		return ByLevel(l), nil
	case "language", "lang":
		return ByLanguage(value), nil
	case "tag":
		want := value
		return func(m *material.Material) bool {
			for _, t := range m.Tags {
				if t == want {
					return true
				}
			}
			return false
		}, nil
	case "year":
		from, to, err := parseYearRange(value)
		if err != nil {
			return nil, err
		}
		return ByYearRange(from, to), nil
	case "dataset":
		if value == "any" {
			return UsesDataset(""), nil
		}
		return UsesDataset(value), nil
	case "entry":
		return HasEntry(value), nil
	case "in":
		o, nodeID, err := e.resolveSubtree(value)
		if err != nil {
			return nil, err
		}
		return InSubtree(o, nodeID), nil
	case "phrase", "near":
		// Resolved against the positional index at parse time; the
		// resulting id set becomes an ordinary filter.
		var ids []string
		if field == "phrase" {
			ids = e.positional.Phrase(value)
		} else {
			ids = e.positional.Near(value, 8)
		}
		set := make(map[string]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		return func(m *material.Material) bool { return set[m.ID] }, nil
	case "pdc":
		switch strings.ToLower(value) {
		case "yes", "true":
			return e.PDCCoverage, nil
		case "no", "false":
			return Not(e.PDCCoverage), nil
		}
		return nil, fmt.Errorf("search: pdc wants yes/no, got %q", value)
	}
	return nil, fmt.Errorf("search: unknown field %q", field)
}

// resolveSubtree maps "cs13/pd" or "pdc12/pr/performance-issues" (or a full
// node ID) onto an ontology and node.
func (e *Engine) resolveSubtree(value string) (*ontology.Ontology, string, error) {
	// Full node IDs start with the ontology root slug.
	for _, o := range []*ontology.Ontology{e.cs13, e.pdc12} {
		if o.Has(value) {
			return o, value, nil
		}
	}
	name, rest, _ := strings.Cut(value, "/")
	var o *ontology.Ontology
	switch strings.ToLower(name) {
	case "cs13":
		o = e.cs13
	case "pdc12", "pdc":
		o = e.pdc12
	default:
		return nil, "", fmt.Errorf("search: unknown ontology in %q (want cs13/... or pdc12/...)", value)
	}
	if rest == "" {
		return o, o.RootID(), nil
	}
	// Try an area code first ("cs13/pd"), then a root-relative path.
	head, tail, _ := strings.Cut(rest, "/")
	base := o.AreaByCode(head)
	if base == "" {
		base = o.RootID() + "/" + ontology.Slug(head)
	}
	id := base
	if tail != "" {
		for _, seg := range strings.Split(tail, "/") {
			id += "/" + ontology.Slug(seg)
		}
	}
	if !o.Has(id) {
		return nil, "", fmt.Errorf("search: no subtree %q in %s", value, o.Name())
	}
	return o, id, nil
}

func parseYearRange(v string) (int, int, error) {
	if from, to, ok := strings.Cut(v, ".."); ok {
		f, err1 := strconv.Atoi(from)
		t, err2 := strconv.Atoi(to)
		if err1 != nil || err2 != nil || f > t {
			return 0, 0, fmt.Errorf("search: bad year range %q", v)
		}
		return f, t, nil
	}
	y, err := strconv.Atoi(v)
	if err != nil {
		return 0, 0, fmt.Errorf("search: bad year %q", v)
	}
	return y, y, nil
}

// tokenizeQuery splits on whitespace, keeping double-quoted phrases
// together.
func tokenizeQuery(q string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range q {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r) // keep the quote so ParseQuery sees phrases
		case !inQuote && (r == ' ' || r == '\t' || r == '\n'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// Query parses and executes a query string: structured clauses filter the
// candidates, free text (if any) ranks them; without free text, matches come
// back in insertion order with score 0. Returns the top k (k <= 0 for all).
func (e *Engine) Query(q string, k int) ([]Hit, error) {
	pq, err := e.ParseQuery(q)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(pq.Text) != "" {
		return e.Text(pq.Text, k, pq.Filter), nil
	}
	var out []Hit
	for _, m := range e.Select(pq.Filter) {
		out = append(out, Hit{Material: m})
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out, nil
}
