package search

import (
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
)

func seededEngine() *Engine {
	e := NewEngine(ontology.CS13(), ontology.PDC12())
	for _, m := range corpus.AllMaterials() {
		e.Add(m)
	}
	return e
}

func TestAddRemoveGet(t *testing.T) {
	e := NewEngine(ontology.CS13(), ontology.PDC12())
	m := &material.Material{ID: "x", Title: "X", Kind: material.Assignment, Level: material.CS1, Description: "parallel things"}
	e.Add(m)
	if e.Len() != 1 || e.Get("x") != m {
		t.Fatal("Add/Get failed")
	}
	m2 := &material.Material{ID: "x", Title: "X2", Kind: material.Slides, Level: material.CS2, Description: "sequential things"}
	e.Add(m2)
	if e.Len() != 1 || e.Get("x") != m2 {
		t.Fatal("replace on re-Add failed")
	}
	if hits := e.Text("parallel", 0); len(hits) != 0 {
		t.Error("stale text index after replace")
	}
	e.Remove("x")
	e.Remove("ghost") // no-op
	if e.Len() != 0 || e.Get("x") != nil {
		t.Fatal("Remove failed")
	}
}

func TestFilters(t *testing.T) {
	e := seededEngine()
	cs13 := ontology.CS13()

	slides := e.Select(ByKind(material.Slides))
	for _, m := range slides {
		if m.Kind != material.Slides {
			t.Fatalf("ByKind returned %v", m.Kind)
		}
	}
	if len(slides) != 12 { // the 12 ITCS 3145 decks
		t.Errorf("slides = %d, want 12", len(slides))
	}

	cs1 := e.Select(AllOf(ByLevel(material.CS1), ByCollection("nifty")))
	if len(cs1) == 0 {
		t.Error("no CS1 nifty materials")
	}
	for _, m := range cs1 {
		if m.Level != material.CS1 || m.Collection != "nifty" {
			t.Fatalf("filter leak: %+v", m)
		}
	}

	java := e.Select(ByLanguage("Java"))
	if len(java) == 0 {
		t.Error("no Java materials")
	}

	oldies := e.Select(ByYearRange(2003, 2005))
	for _, m := range oldies {
		if m.Year < 2003 || m.Year > 2005 {
			t.Fatalf("year filter leak: %d", m.Year)
		}
	}

	pdMaterials := e.Select(InSubtree(cs13, cs13.AreaByCode("PD")))
	for _, m := range pdMaterials {
		if m.Collection == "nifty" {
			t.Errorf("nifty material %s in PD subtree", m.ID)
		}
	}
	if len(pdMaterials) < 20 {
		t.Errorf("PD materials = %d, want peachy+itcs bulk", len(pdMaterials))
	}

	arrays := cs13.RootID() + "/sdf/fundamental-data-structures/arrays"
	withArrays := e.Select(HasEntry(arrays))
	if len(withArrays) < 10 {
		t.Errorf("Arrays materials = %d", len(withArrays))
	}

	none := e.Select(AnyOf())
	if none != nil {
		t.Error("empty AnyOf should match nothing")
	}
	all := e.Select(nil)
	if len(all) != e.Len() {
		t.Error("nil filter should match all")
	}
	notJava := e.Select(Not(ByLanguage("Java")))
	if len(notJava)+len(java) != e.Len() {
		t.Error("Not partition broken")
	}
	ds := e.Select(UsesDataset(""))
	_ = ds // datasets are optional metadata; just ensure the filter runs
}

func TestTextSearch(t *testing.T) {
	e := seededEngine()
	hits := e.Text("fractal", 5)
	if len(hits) == 0 {
		t.Fatal("no fractal hits")
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Score < hits[i].Score {
			t.Error("hits not ranked")
		}
	}
	// Filtered text search: only Peachy fractals.
	peachyHits := e.Text("fractal", 0, ByCollection("peachy"))
	if len(peachyHits) == 0 {
		t.Fatal("no peachy fractal hits")
	}
	for _, h := range peachyHits {
		if h.Material.Collection != "peachy" {
			t.Errorf("filter leak: %s", h.Material.ID)
		}
	}
	if got := e.Text("xyzzyqqq", 0); got != nil {
		t.Errorf("nonsense query hits = %v", got)
	}
}

func TestPDCCoverage(t *testing.T) {
	e := seededEngine()
	if e.PDCCoverage(e.Get("uno")) {
		t.Error("uno should not count as PDC")
	}
	if !e.PDCCoverage(e.Get("storm-of-high-energy-particles")) {
		t.Error("peachy storm should count as PDC")
	}
	if !e.PDCCoverage(e.Get("itcs3145-01-introduction-why-parallel-computing")) {
		t.Error("ITCS intro should count as PDC")
	}
}

// TestPDCReplacementQuery reproduces E10 (Sec. IV-D): for the named Nifty
// assignments, the "similar but adds PDC" query returns the named Peachy
// assignments.
func TestPDCReplacementQuery(t *testing.T) {
	e := seededEngine()
	wantPeachy := map[string]bool{
		"computing-a-movie-of-zooming-into-a-fractal":           true,
		"fire-simulator-and-fractal-growth":                     true,
		"using-a-monte-carlo-pattern-to-simulate-a-forest-fire": true,
		"storm-of-high-energy-particles":                        true,
	}
	for _, nid := range []string{"hurricane-tracker", "2048-in-python", "uno", "image-editor"} {
		m := e.Get(nid)
		if m == nil {
			t.Fatalf("missing %s", nid)
		}
		got := e.PDCReplacements(m, 2, 0)
		found := map[string]bool{}
		for _, ed := range got {
			found[ed.B] = true
		}
		for want := range wantPeachy {
			if !found[want] {
				t.Errorf("%s: replacement %s not found (got %v)", nid, want, found)
			}
		}
	}
	// A systems-only query has no replacements among CS1 content.
	boggle := e.Get("boggle")
	reps := e.PDCReplacements(boggle, 2, 0)
	if len(reps) != 0 {
		t.Errorf("boggle replacements = %v, want none (not in the cluster)", reps)
	}
	// k limiting.
	if got := e.PDCReplacements(e.Get("uno"), 2, 2); len(got) != 2 {
		t.Errorf("k limit broken: %d", len(got))
	}
}

func TestEntryUsage(t *testing.T) {
	e := seededEngine()
	cs13 := ontology.CS13()
	usage := e.EntryUsage(cs13, "")
	if len(usage) == 0 {
		t.Fatal("no usage")
	}
	if usage[0].Count < usage[len(usage)-1].Count {
		t.Error("usage not sorted")
	}
	// Within SDF only.
	sdf := cs13.AreaByCode("SDF")
	sdfUsage := e.EntryUsage(cs13, sdf)
	for _, u := range sdfUsage {
		if !cs13.Within(u.NodeID, sdf) {
			t.Errorf("entry %s outside SDF", u.NodeID)
		}
	}
	// Arrays and loops are among the heaviest-used SDF entries.
	top := map[string]bool{}
	for i := 0; i < 3 && i < len(sdfUsage); i++ {
		top[sdfUsage[i].NodeID] = true
	}
	if !top[cs13.RootID()+"/sdf/fundamental-data-structures/arrays"] &&
		!top[cs13.RootID()+"/sdf/fundamental-programming-concepts/conditional-and-iterative-control-structures"] {
		t.Errorf("expected arrays/loops among top SDF entries: %+v", sdfUsage[:3])
	}
}

func TestTextCorrected(t *testing.T) {
	e := seededEngine()
	// A typo'd query finds nothing raw, then recovers via correction.
	raw := e.Text("fractel zom", 5)
	if len(raw) != 0 {
		t.Skipf("typo unexpectedly matched: %v", raw)
	}
	hits, didYouMean := e.TextCorrected("fractel zom", 5)
	if didYouMean == "" || len(hits) == 0 {
		t.Fatalf("correction failed: %q, %d hits", didYouMean, len(hits))
	}
	found := false
	for _, h := range hits {
		if h.Material.ID == "computing-a-movie-of-zooming-into-a-fractal" {
			found = true
		}
	}
	if !found {
		t.Errorf("corrected hits missing fractal movie: %q", didYouMean)
	}
	// Clean queries report no correction.
	hits, didYouMean = e.TextCorrected("parallel sorting", 5)
	if didYouMean != "" || len(hits) == 0 {
		t.Errorf("clean query corrected: %q", didYouMean)
	}
	// Hopeless queries stay empty without a spurious correction.
	hits, didYouMean = e.TextCorrected("qqqqzzzz wwwwxxxx", 5)
	if len(hits) != 0 {
		t.Errorf("hopeless query matched: %v, %q", hits, didYouMean)
	}
}
