package search

import (
	"testing"
)

func TestQueryLanguageClauses(t *testing.T) {
	e := seededEngine()
	cases := []struct {
		q       string
		wantAll func(h Hit) bool
		wantMin int
	}{
		{"collection:peachy", func(h Hit) bool { return h.Material.Collection == "peachy" }, 11},
		{"kind:slides", func(h Hit) bool { return string(h.Material.Kind) == "slides" }, 12},
		{"level:cs1 collection:nifty", func(h Hit) bool { return string(h.Material.Level) == "CS1" }, 5},
		{"language:Java year:2010..2013", func(h Hit) bool {
			return h.Material.Language == "Java" && h.Material.Year >= 2010 && h.Material.Year <= 2013
		}, 1},
		{"year:2018", func(h Hit) bool { return h.Material.Year == 2018 }, 3},
		{"tag:fractal", func(h Hit) bool { return true }, 2},
		{"pdc:yes kind:assignment", func(h Hit) bool { return h.Material.Collection != "nifty" }, 10},
		{"pdc:no collection:nifty", func(h Hit) bool { return h.Material.Collection == "nifty" }, 60},
		{"in:cs13/pd", func(h Hit) bool { return h.Material.Collection != "nifty" }, 20},
		{"in:pdc12/pr kind:slides", func(h Hit) bool { return h.Material.Collection == "itcs3145" }, 5},
		{"-collection:nifty -collection:peachy", func(h Hit) bool { return h.Material.Collection == "itcs3145" }, 21},
		{"dataset:any", func(h Hit) bool { return len(h.Material.Datasets) >= 0 }, 0},
	}
	for _, c := range cases {
		hits, err := e.Query(c.q, 0)
		if err != nil {
			t.Fatalf("%q: %v", c.q, err)
		}
		if len(hits) < c.wantMin {
			t.Errorf("%q: %d hits, want >= %d", c.q, len(hits), c.wantMin)
		}
		for _, h := range hits {
			if !c.wantAll(h) {
				t.Errorf("%q: leak %s (%s)", c.q, h.Material.ID, h.Material.Collection)
			}
		}
	}
}

func TestQueryLanguageFreeText(t *testing.T) {
	e := seededEngine()
	hits, err := e.Query(`collection:peachy "forest fire"`, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Material.ID != "using-a-monte-carlo-pattern-to-simulate-a-forest-fire" {
		t.Errorf("top hit = %s", hits[0].Material.ID)
	}
	for _, h := range hits {
		if h.Material.Collection != "peachy" {
			t.Errorf("filter leak: %s", h.Material.ID)
		}
		if h.Score <= 0 {
			t.Errorf("free-text hit without score: %+v", h)
		}
	}
	// Pure structured query returns unscored results.
	hits, err = e.Query("kind:exam", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("exam hits = %d, want 0 in seed corpus", len(hits))
	}
}

func TestQueryLanguageEntryAndFullNodeID(t *testing.T) {
	e := seededEngine()
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	hits, err := e.Query("entry:"+arrays, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 10 {
		t.Errorf("arrays hits = %d", len(hits))
	}
	// A full node ID also works with in:.
	hits2, err := e.Query("in:"+arrays, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits2) != len(hits) {
		t.Errorf("in:<full-id> = %d, entry = %d", len(hits2), len(hits))
	}
}

func TestQueryLanguageErrors(t *testing.T) {
	e := seededEngine()
	for _, q := range []string{
		"kind:poem",
		"level:CS99",
		"year:abc",
		"year:2015..2010",
		"in:fortran/xx",
		"in:cs13/zz-nothing",
		"pdc:maybe",
		"mystery:value",
	} {
		if _, err := e.Query(q, 0); err == nil {
			t.Errorf("%q: error expected", q)
		}
	}
	// Unbalanced quotes degrade gracefully to text.
	if _, err := e.Query(`"unterminated phrase`, 5); err != nil {
		t.Errorf("unterminated quote: %v", err)
	}
	// Colon inside quoted phrase stays text.
	hits, err := e.Query(`"ratio: compute"`, 0)
	if err != nil {
		t.Fatalf("quoted colon: %v", err)
	}
	_ = hits
}

func TestQueryLevelCaseInsensitive(t *testing.T) {
	e := seededEngine()
	a, err := e.Query("level:cs2 collection:nifty", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query("level:CS2 collection:nifty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Errorf("case sensitivity: %d vs %d", len(a), len(b))
	}
}

func TestQueryPhraseClause(t *testing.T) {
	e := seededEngine()
	hits, err := e.Query(`phrase:"monte carlo"`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no phrase hits")
	}
	ids := map[string]bool{}
	for _, h := range hits {
		ids[h.Material.ID] = true
	}
	if !ids["using-a-monte-carlo-pattern-to-simulate-a-forest-fire"] {
		t.Errorf("phrase hits = %v", ids)
	}
	// Reversed order does not phrase-match anything in the corpus.
	rev, err := e.Query(`phrase:"carlo monte"`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev) != 0 {
		t.Errorf("reversed phrase hits = %d", len(rev))
	}
	// near: allows reordering within the window.
	near, err := e.Query(`near:"carlo monte"`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(near) < len(hits) {
		t.Errorf("near (%d) should be at least as permissive as phrase (%d)", len(near), len(hits))
	}
	// Combined with a structured clause.
	both, err := e.Query(`collection:peachy phrase:"monte carlo"`, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range both {
		if h.Material.Collection != "peachy" {
			t.Errorf("leak: %s", h.Material.ID)
		}
	}
}

func TestEnginePhraseDirect(t *testing.T) {
	e := seededEngine()
	got := e.Phrase("heat diffusion")
	if len(got) == 0 {
		t.Fatal("no direct phrase hits")
	}
	for _, m := range got {
		found := false
		for _, id := range []string{"heat-diffusion-on-a-metal-plate"} {
			if m.ID == id {
				found = true
			}
		}
		if !found && m.Collection != "itcs3145" {
			t.Errorf("unexpected phrase hit %s", m.ID)
		}
	}
}
