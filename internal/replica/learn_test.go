package replica_test

import (
	"bytes"
	"testing"

	"carcs/internal/core"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/workflow"
)

func classifiedMat(id string, cls ...string) *material.Material {
	m := &material.Material{
		ID: id, Title: "Material " + id, Kind: material.Assignment,
		Level: material.CS1, Collection: "drill",
		Description: "an exercise about " + id,
	}
	for _, c := range cls {
		m.Classifications = append(m.Classifications, material.Classification{NodeID: c})
	}
	return m
}

func learnBytes(t *testing.T, s *core.System) []byte {
	t.Helper()
	b, err := s.LearnState().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func queueIDs(s *core.System) []int64 {
	var out []int64
	for _, it := range s.ReviewQueue() {
		out = append(out, it.Submission.ID)
	}
	return out
}

// TestFollowerReplicatesLearnedModel is the replication half of the model's
// durability story: training and online review updates are WAL ops, so a
// follower that applies the leader's stream must hold a byte-identical model
// — and therefore produce the same uncertainty-ordered review queue. Both
// replication paths are exercised: state reached via bootstrap (checkpoint +
// WAL catch-up) and updates streamed live after the follower is attached.
func TestFollowerReplicatesLearnedModel(t *testing.T) {
	l := startLeader(t)
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	stacks := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/stacks"
	loops := "acm-ieee-cs-curricula-2013/sdf/fundamental-programming-concepts/conditional-and-iterative-control-structures"
	for i, cls := range [][]string{{arrays}, {stacks}, {loops}, {arrays, loops}} {
		m := classifiedMat("corpus-"+string(rune('a'+i)), cls...)
		m.Description = "sorting arrays stacks loops exercise number " + m.ID
		if err := l.sys.AddMaterial(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.sys.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if err := l.sys.LearnFromReview(classifiedMat("rev-1", arrays), true); err != nil {
		t.Fatal(err)
	}
	if err := l.sys.LearnFromReview(classifiedMat("rev-2", stacks), false); err != nil {
		t.Fatal(err)
	}
	if _, err := l.sys.Workflow().Register("alice", workflow.RoleSubmitter); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"pending-a", "pending-b", "pending-c"} {
		m := classifiedMat(id, arrays)
		m.Description = "a submission about " + id + " and parallel loops"
		if _, err := l.sys.Workflow().Submit("alice", m); err != nil {
			t.Fatal(err)
		}
	}

	// Bootstrap path: checkpoint plus WAL catch-up must reproduce the
	// trained-and-updated model bit for bit.
	f := startFollower(t, l.ts.URL)
	f.waitApplied(t, l.p.Seq())
	want := learnBytes(t, l.sys)
	if got := learnBytes(t, f.f.System()); !bytes.Equal(want, got) {
		t.Fatalf("bootstrapped follower model differs from leader:\nleader:   %d bytes\nfollower: %d bytes", len(want), len(got))
	}
	wantQ := queueIDs(l.sys)
	if len(wantQ) != 3 {
		t.Fatalf("leader queue = %v, want 3 items", wantQ)
	}
	if gotQ := queueIDs(f.f.System()); !equalInt64s(wantQ, gotQ) {
		t.Fatalf("follower review queue order %v, leader %v", gotQ, wantQ)
	}

	// Live-stream path: a retrain and another online update arriving over
	// the WAL stream must keep the follower byte-identical.
	if err := l.sys.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if err := l.sys.LearnFromReview(classifiedMat("rev-3", loops), true); err != nil {
		t.Fatal(err)
	}
	f.waitApplied(t, l.p.Seq())
	want = learnBytes(t, l.sys)
	if got := learnBytes(t, f.f.System()); !bytes.Equal(want, got) {
		t.Fatal("follower model diverged after streamed train/update ops")
	}
	if gotQ := queueIDs(f.f.System()); !equalInt64s(queueIDs(l.sys), gotQ) {
		t.Fatalf("follower review queue diverged after streamed ops: %v", gotQ)
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
