// Package replica is the multi-process scale-out layer of the CAR-CS
// service: WAL-shipping replication plus fault-tolerant read routing.
//
// The design rides entirely on the durability layer. Every committed
// mutation is already a CRC-framed, sequence-stamped record in the leader's
// write-ahead log; replication ships exactly those frames over HTTP:
//
//   - The leader's Hub serves GET /api/replication/checkpoint (bootstrap:
//     the latest checkpoint payload plus the sequence it covers) and
//     GET /api/replication/wal?from=SEQ (a long-poll, chunked tail of
//     framed records with Seq > from, fed live from the append path).
//   - A Follower bootstraps from the checkpoint, applies the tail through
//     the ordinary commit pipeline (core.ApplyRecord), and publishes
//     snapshot-isolated views exactly like a local commit — reads on a
//     follower are the same lock-free reads as on the leader, just bounded
//     by the follower's applied sequence. Followers reject writes with 503
//     and a Leader header, and reconnect with jittered exponential backoff,
//     resuming idempotently from their last applied sequence.
//   - A Router fans reads out across followers (leader fallback), health-
//     checking members via /api/health/ready, ejecting dead or lagging
//     backends behind per-backend circuit breakers, and retrying a failed
//     read on the next backend so one dying replica never surfaces as a
//     read 5xx.
//
// Sequence numbers, not generations, are the cross-process coordinate:
// a node's state is fully determined by the last journal sequence folded
// into it, while view generations are process-local (they restart from the
// checkpoint on every boot). The follower therefore reports applied_seq,
// and the router's staleness budget compares sequences.
package replica

import (
	"net/http"
	"time"
)

// Wire protocol headers and defaults.
const (
	// HeaderLeaderSeq carries the leader's latest journaled sequence on
	// WAL stream responses, letting followers measure their lag.
	HeaderLeaderSeq = "CARCS-Leader-Seq"
	// HeaderCheckpointSeq carries the sequence a served checkpoint covers
	// (on bootstrap responses, and on 410s telling a follower its cursor
	// predates the leader's retention horizon).
	HeaderCheckpointSeq = "CARCS-Checkpoint-Seq"
	// HeaderAppliedSeq is set by followers on read responses: the journal
	// sequence their answer reflects — the staleness bound.
	HeaderAppliedSeq = "CARCS-Applied-Seq"
	// HeaderRoute is set by the router: which backend served the response.
	HeaderRoute = "CARCS-Route"
	// HeaderEpoch carries the leadership epoch: the term a served
	// checkpoint or WAL stream was written under, and — stamped by
	// followers on reads and by the router on proxied responses — the term
	// a node's state reflects.
	HeaderEpoch = "CARCS-Epoch"
	// WALContentType marks a stream of CRC-framed journal records.
	WALContentType = "application/x-carcs-wal"

	// DefaultPollWait is how long a WAL stream runs before the leader
	// closes it and the follower reconnects; MaxPollWait caps what a
	// client may request. Bounded streams keep dead followers from
	// pinning connections and give lag a natural heartbeat.
	DefaultPollWait = 20 * time.Second
	MaxPollWait     = 45 * time.Second
)

// Status describes a node's replication role for /api/health.
type Status struct {
	// Role is "leader", "follower", or "fenced" (a deposed leader that has
	// seen a higher epoch and refuses writes).
	Role string `json:"role"`
	// Epoch is the leadership term this node's state reflects.
	Epoch uint64 `json:"epoch"`
	// Leader is the leader URL a follower replicates from — or, on a
	// fenced node, the leader that deposed it.
	Leader string `json:"leader,omitempty"`
	// AppliedSeq is the last journal sequence applied locally (follower).
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	// LeaderSeq is the leader's latest sequence: its own journal horizon
	// on a leader, the last value observed from the stream on a follower.
	LeaderSeq uint64 `json:"leader_seq,omitempty"`
	// Connected reports whether a follower currently holds a live stream.
	Connected bool `json:"connected"`
	// Reconnects counts stream re-establishments (follower).
	Reconnects uint64 `json:"reconnects,omitempty"`
	// Rebootstraps counts in-process re-bootstraps after the follower fell
	// behind the leader's retention horizon (follower).
	Rebootstraps uint64 `json:"rebootstraps,omitempty"`
	// Streams counts WAL stream requests served (leader).
	Streams uint64 `json:"streams,omitempty"`
	// ActiveStreams is the number of followers currently tailing (leader).
	ActiveStreams int64 `json:"active_streams,omitempty"`
}

// defaultClient is the HTTP client for replication control requests
// (bootstrap, probes). Stream requests use per-request contexts instead of
// a client timeout, so the shared client must not impose one.
var defaultClient = &http.Client{Transport: &http.Transport{
	MaxIdleConnsPerHost:   4,
	ResponseHeaderTimeout: 15 * time.Second,
}}
