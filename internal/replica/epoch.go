package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Leadership epochs and split-brain fencing.
//
// Every leadership term has a number, stamped on every record the term's
// leader journals (journal.Record.Epoch). Promotion bumps the epoch, so two
// leaders can never write the same term: the deposed leader's records carry
// the old epoch, and every applier (follower stream, recovery replay,
// direct ApplyRecords) rejects records below its epoch high-water mark.
//
// Epoch-per-record rather than epoch-per-connection is deliberate: a
// connection-scoped epoch only fences the handshake, leaving records already
// buffered inside an established stream trusted forever. With the epoch on
// each record, fencing holds no matter how a record arrives — a stale
// stream, a replayed WAL segment, or a spliced file all fail the same check.
//
// A Fence is the deposed-leader half of the protocol: a durable node's view
// of the highest term it has seen anywhere. The moment it observes a term
// above its own — via the router's probe sweep, a promote handshake, or an
// explicit POST /api/replication/fence — it is fenced: it stops answering
// writes (503 + Leader header pointing at the new leader) and demotes itself
// to a read-only replica of its own final state.

// ErrPromoted is returned by Follower.Run when the follower was promoted to
// leader mid-run: replication stopped because this node now owns the write
// path, not because anything failed.
var ErrPromoted = fmt.Errorf("replica: follower promoted to leader")

// Fence tracks the leadership terms a durable node has observed. own is the
// node's, seen the highest observed anywhere; seen > own means the node has
// been deposed and must refuse writes.
type Fence struct {
	mu     sync.Mutex
	own    uint64
	seen   uint64
	leader string // URL claiming the highest seen term, if known
}

// NewFence starts tracking from the node's own term.
func NewFence(own uint64) *Fence {
	return &Fence{own: own, seen: own}
}

// Observe folds one sighting of a leadership term (and, when known, the URL
// of the leader claiming it) into the fence. It reports whether the node is
// now fenced. Terms only accumulate — observing an old term never un-fences.
func (f *Fence) Observe(epoch uint64, leaderURL string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch > f.seen {
		f.seen = epoch
		if leaderURL != "" {
			f.leader = leaderURL
		}
	} else if epoch == f.seen && f.leader == "" && epoch > f.own {
		f.leader = leaderURL
	}
	return f.seen > f.own
}

// Fenced reports whether a higher term than the node's own has been seen.
func (f *Fence) Fenced() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen > f.own
}

// Own returns the node's own leadership term.
func (f *Fence) Own() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.own
}

// Seen returns the highest term observed anywhere.
func (f *Fence) Seen() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// Leader returns the URL of the leader claiming the highest seen term, empty
// when unknown.
func (f *Fence) Leader() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// fenceRequest is the POST /api/replication/fence body: "you have been
// deposed — epoch is the new term, leader (optional) is where writes go now".
type fenceRequest struct {
	Epoch  uint64 `json:"epoch"`
	Leader string `json:"leader,omitempty"`
}

// NotifyFence tells the node at baseURL that a leader exists at the given
// epoch. Best-effort by design: fencing does not depend on the notification
// arriving — appliers reject stale-epoch records regardless — it only
// shortens the window in which the deposed leader answers writes it can no
// longer replicate.
func NotifyFence(ctx context.Context, client *http.Client, baseURL string, epoch uint64, leaderURL string) error {
	if client == nil {
		client = defaultClient
	}
	body, err := json.Marshal(fenceRequest{Epoch: epoch, Leader: leaderURL})
	if err != nil {
		return err
	}
	nctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(nctx, http.MethodPost,
		baseURL+"/api/replication/fence", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: fence %s: %s", baseURL, resp.Status)
	}
	return nil
}
