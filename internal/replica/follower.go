package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"carcs/internal/core"
	"carcs/internal/journal"
	"carcs/internal/resilience"
)

// ErrOutOfSync means the follower's cursor fell behind the leader's
// retention horizon (checkpoint plus tail ring) — the shipped log no longer
// reaches back to where this follower stopped. The only correct recovery is
// a fresh bootstrap from the leader's checkpoint; the follower process
// exits with this error and its supervisor restarts it into one.
var ErrOutOfSync = errors.New("replica: follower behind leader retention horizon, re-bootstrap required")

// FollowerConfig tunes a follower. Zero values take defaults.
type FollowerConfig struct {
	// LeaderURL is the leader's base URL, e.g. "http://leader:8080".
	LeaderURL string
	// Client overrides the HTTP client (tests). It must not set a global
	// timeout — stream lifetimes are managed per request.
	Client *http.Client
	// PollWait is the requested WAL long-poll window.
	PollWait time.Duration
	// ReconnectBase and ReconnectMax bound the jittered exponential
	// backoff between reconnect attempts; zeros take the resilience
	// package defaults.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
}

// Follower replicates a leader's WAL into a local System. Construct with
// Bootstrap, serve reads from System(), and drive replication with Run.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	sys    *core.System
	ws     *core.Workspaces

	applied    atomic.Uint64
	leaderSeq  atomic.Uint64
	connected  atomic.Bool
	reconnects atomic.Uint64
}

// Bootstrap fetches the leader's checkpoint, restores a System from it, and
// returns a follower whose cursor sits at the checkpoint's sequence. The
// caller owns retrying a failed bootstrap (the leader may not be up yet).
func Bootstrap(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	f := &Follower{cfg: cfg, client: cfg.Client}
	if f.client == nil {
		f.client = defaultClient
	}
	f.cfg.LeaderURL = strings.TrimRight(cfg.LeaderURL, "/")
	if f.cfg.LeaderURL == "" {
		return nil, fmt.Errorf("replica: empty leader URL")
	}
	if f.cfg.PollWait <= 0 {
		f.cfg.PollWait = DefaultPollWait
	}

	ckCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ckCtx, http.MethodGet,
		f.cfg.LeaderURL+"/api/replication/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: bootstrap: leader answered %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderCheckpointSeq), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap: bad %s header: %w", HeaderCheckpointSeq, err)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap: read checkpoint: %w", err)
	}
	ws, err := core.RestoreWorkspaces(payload)
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap: %w", err)
	}
	f.ws = ws
	f.sys = ws.Default()
	f.applied.Store(seq)
	f.observeLeaderSeq(resp.Header)
	return f, nil
}

// System returns the replicated default-tenant system. Reads on it are the
// ordinary snapshot-isolated view reads; its state is the leader's at
// Applied().
func (f *Follower) System() *core.System { return f.sys }

// Workspaces returns the full replicated tenant set. Tenant-stamped records
// in the stream apply to their own workspaces; a workspace unseen at
// bootstrap is materialized when its first record arrives.
func (f *Follower) Workspaces() *core.Workspaces { return f.ws }

// LeaderURL returns the leader this follower replicates from.
func (f *Follower) LeaderURL() string { return f.cfg.LeaderURL }

// Applied returns the last leader sequence folded into the local system —
// the staleness bound every read on this follower is subject to.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// LeaderSeq returns the leader's latest sequence as last observed.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Connected reports whether a WAL stream is currently established.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Status reports the follower's replication state for /api/health.
func (f *Follower) Status() *Status {
	return &Status{
		Role:       "follower",
		Leader:     f.cfg.LeaderURL,
		AppliedSeq: f.applied.Load(),
		LeaderSeq:  f.leaderSeq.Load(),
		Connected:  f.connected.Load(),
		Reconnects: f.reconnects.Load(),
	}
}

// Run tails the leader's WAL until ctx is cancelled, applying every shipped
// record through the commit pipeline. Stream failures reconnect with
// jittered exponential backoff, resuming from the last applied sequence —
// re-shipped records are skipped by sequence, so re-apply is idempotent.
// Run returns ErrOutOfSync when the leader no longer retains the tail this
// follower needs (the caller should exit and re-bootstrap), or a fatal
// apply error (state divergence — never continue past one).
func (f *Follower) Run(ctx context.Context) error {
	bo := &resilience.Backoff{Base: f.cfg.ReconnectBase, Max: f.cfg.ReconnectMax}
	for {
		err := f.streamOnce(ctx)
		f.connected.Store(false)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err == nil:
			// Clean end of a poll window; reconnect immediately.
			bo.Reset()
			continue
		case errors.Is(err, ErrOutOfSync), errors.Is(err, errApply):
			return err
		}
		f.reconnects.Add(1)
		if serr := bo.Sleep(ctx); serr != nil {
			return serr
		}
	}
}

// errApply marks a record the commit pipeline refused — the follower's
// state can no longer be trusted to match the leader's, so Run stops.
var errApply = errors.New("replica: apply failed")

// streamOnce establishes one WAL stream and applies it to exhaustion. A nil
// return means the leader ended the poll window cleanly.
func (f *Follower) streamOnce(ctx context.Context) error {
	// Bound the whole stream: the leader closes it after PollWait, so a
	// socket outliving that by a wide margin is a partition, not a poll.
	sctx, cancel := context.WithTimeout(ctx, f.cfg.PollWait+30*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/api/replication/wal?from=%d&wait=%s",
		f.cfg.LeaderURL, f.applied.Load(), f.cfg.PollWait)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: connect: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return ErrOutOfSync
	default:
		return fmt.Errorf("replica: leader answered %s", resp.Status)
	}
	f.observeLeaderSeq(resp.Header)
	f.connected.Store(true)
	// Records are applied through the same batch path the leader's group
	// commit uses: everything already buffered on the stream folds into the
	// local system under one lock hold and one view publish. The batch
	// flushes as soon as the stream would block, so a trickle applies
	// record-at-a-time and a catch-up burst applies in big strides.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var batch []journal.Record
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := core.ApplyRecordsWorkspaces(f.ws, batch); err != nil {
			return fmt.Errorf("%w: %v", errApply, err)
		}
		f.applied.Store(batch[len(batch)-1].Seq)
		batch = batch[:0]
		return nil
	}
	for {
		rec, err := journal.ReadFrame(br)
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			// Apply the whole records already read before surfacing the
			// stream error; they are durable on the leader.
			if ferr := flush(); ferr != nil {
				return ferr
			}
			return fmt.Errorf("replica: stream: %w", err)
		}
		if rec.Seq > f.leaderSeq.Load() {
			f.leaderSeq.Store(rec.Seq)
		}
		if rec.Seq <= f.applied.Load() {
			continue // idempotent re-apply: already folded in
		}
		batch = append(batch, rec)
		if len(batch) >= followerApplyBatch || br.Buffered() == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// followerApplyBatch caps how many tailed records fold into the local system
// per lock hold, bounding both reader staleness and publish latency while a
// follower catches up from far behind.
const followerApplyBatch = 256

// observeLeaderSeq folds a CARCS-Leader-Seq response header into the lag
// estimate, never moving it backwards.
func (f *Follower) observeLeaderSeq(h http.Header) {
	seq, err := strconv.ParseUint(h.Get(HeaderLeaderSeq), 10, 64)
	if err == nil && seq > f.leaderSeq.Load() {
		f.leaderSeq.Store(seq)
	}
}
