package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"carcs/internal/core"
	"carcs/internal/journal"
	"carcs/internal/resilience"
)

// ErrOutOfSync means the follower's cursor fell behind the leader's
// retention horizon (checkpoint plus tail ring) — the shipped log no longer
// reaches back to where this follower stopped. Run heals this in process by
// re-bootstrapping from the leader's checkpoint; the error only surfaces
// when every bounded re-bootstrap attempt failed too.
var ErrOutOfSync = errors.New("replica: follower behind leader retention horizon, re-bootstrap required")

// DefaultRebootstrapLimit bounds consecutive in-process re-bootstrap
// attempts before Run gives up and surfaces ErrOutOfSync to the supervisor.
const DefaultRebootstrapLimit = 8

// FollowerConfig tunes a follower. Zero values take defaults.
type FollowerConfig struct {
	// LeaderURL is the leader's base URL, e.g. "http://leader:8080".
	LeaderURL string
	// Client overrides the HTTP client (tests). It must not set a global
	// timeout — stream lifetimes are managed per request.
	Client *http.Client
	// PollWait is the requested WAL long-poll window.
	PollWait time.Duration
	// ReconnectBase and ReconnectMax bound the jittered exponential
	// backoff between reconnect attempts; zeros take the resilience
	// package defaults.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// RebootstrapLimit caps consecutive in-process re-bootstrap attempts
	// after the cursor falls behind the leader's retention horizon; <= 0
	// takes DefaultRebootstrapLimit.
	RebootstrapLimit int
}

// Follower replicates a leader's WAL into a local System. Construct with
// Bootstrap, serve reads from System(), and drive replication with Run.
// Promote turns a follower into the leader of the next epoch in place.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	ws     *core.Workspaces

	applied      atomic.Uint64
	leaderSeq    atomic.Uint64
	epoch        atomic.Uint64
	connected    atomic.Bool
	reconnects   atomic.Uint64
	rebootstraps atomic.Uint64

	// Promotion coordination: promoted flips once, runCancel/runDone let
	// Promote halt a live Run loop and wait for it to unwind.
	promoted  atomic.Bool
	runMu     sync.Mutex
	runCancel context.CancelFunc
	runDone   chan struct{}
}

// Bootstrap fetches the leader's checkpoint, restores a System from it, and
// returns a follower whose cursor sits at the checkpoint's sequence. The
// caller owns retrying a failed bootstrap (the leader may not be up yet).
func Bootstrap(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	f := &Follower{cfg: cfg, client: cfg.Client}
	if f.client == nil {
		f.client = defaultClient
	}
	f.cfg.LeaderURL = strings.TrimRight(cfg.LeaderURL, "/")
	if f.cfg.LeaderURL == "" {
		return nil, fmt.Errorf("replica: empty leader URL")
	}
	if f.cfg.PollWait <= 0 {
		f.cfg.PollWait = DefaultPollWait
	}
	ws, seq, err := f.fetchCheckpoint(ctx)
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap: %w", err)
	}
	f.ws = ws
	f.applied.Store(seq)
	return f, nil
}

// fetchCheckpoint downloads and restores the leader's latest checkpoint,
// returning the restored workspace set and the sequence it covers. The
// restored set is fenced at the checkpoint's epoch, so records from terms
// older than the snapshot can never fold into it.
func (f *Follower) fetchCheckpoint(ctx context.Context) (*core.Workspaces, uint64, error) {
	ckCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ckCtx, http.MethodGet,
		f.cfg.LeaderURL+"/api/replication/checkpoint", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("leader answered %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderCheckpointSeq), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad %s header: %w", HeaderCheckpointSeq, err)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("read checkpoint: %w", err)
	}
	ws, err := core.RestoreWorkspaces(payload)
	if err != nil {
		return nil, 0, err
	}
	if e, perr := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64); perr == nil {
		ws.FenceEpoch(e)
		f.noteEpoch(e)
	}
	f.observeLeaderSeq(resp.Header)
	return ws, seq, nil
}

// System returns the replicated default-tenant system. Reads on it are the
// ordinary snapshot-isolated view reads; its state is the leader's at
// Applied(). Resolved through the workspace set on every call so an
// in-process re-bootstrap swap is immediately visible.
func (f *Follower) System() *core.System { return f.ws.Default() }

// Workspaces returns the full replicated tenant set. Tenant-stamped records
// in the stream apply to their own workspaces; a workspace unseen at
// bootstrap is materialized when its first record arrives.
func (f *Follower) Workspaces() *core.Workspaces { return f.ws }

// LeaderURL returns the leader this follower replicates from.
func (f *Follower) LeaderURL() string { return f.cfg.LeaderURL }

// Applied returns the last leader sequence folded into the local system —
// the staleness bound every read on this follower is subject to.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// LeaderSeq returns the leader's latest sequence as last observed.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Epoch returns the highest leadership term this follower has observed —
// from checkpoint and stream headers, and from the records themselves.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// Connected reports whether a WAL stream is currently established.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Rebootstraps counts in-process checkpoint re-bootstraps after the cursor
// fell behind the leader's retention horizon.
func (f *Follower) Rebootstraps() uint64 { return f.rebootstraps.Load() }

// Status reports the follower's replication state for /api/health.
func (f *Follower) Status() *Status {
	return &Status{
		Role:         "follower",
		Epoch:        f.epoch.Load(),
		Leader:       f.cfg.LeaderURL,
		AppliedSeq:   f.applied.Load(),
		LeaderSeq:    f.leaderSeq.Load(),
		Connected:    f.connected.Load(),
		Reconnects:   f.reconnects.Load(),
		Rebootstraps: f.rebootstraps.Load(),
	}
}

// Run tails the leader's WAL until ctx is cancelled, applying every shipped
// record through the commit pipeline. Stream failures reconnect with
// jittered exponential backoff, resuming from the last applied sequence —
// re-shipped records are skipped by sequence, so re-apply is idempotent.
// A cursor that fell behind the leader's retention horizon self-heals: the
// follower re-bootstraps from the leader's checkpoint in process (bounded
// attempts) and resumes tailing. Run returns ErrPromoted when Promote
// halted it, ErrOutOfSync when every re-bootstrap attempt failed, or a
// fatal apply error (state divergence — never continue past one).
func (f *Follower) Run(ctx context.Context) error {
	if f.promoted.Load() {
		return ErrPromoted
	}
	rctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	f.runMu.Lock()
	f.runCancel = cancel
	f.runDone = done
	f.runMu.Unlock()
	defer func() {
		cancel()
		close(done)
	}()

	bo := &resilience.Backoff{Base: f.cfg.ReconnectBase, Max: f.cfg.ReconnectMax}
	for {
		err := f.streamOnce(rctx)
		f.connected.Store(false)
		switch {
		case rctx.Err() != nil:
			if f.promoted.Load() && ctx.Err() == nil {
				return ErrPromoted
			}
			return rctx.Err()
		case err == nil:
			// Clean end of a poll window; reconnect immediately.
			bo.Reset()
			continue
		case errors.Is(err, ErrOutOfSync):
			if rerr := f.rebootstrap(rctx); rerr != nil {
				if f.promoted.Load() && ctx.Err() == nil {
					return ErrPromoted
				}
				return rerr
			}
			bo.Reset()
			continue
		case errors.Is(err, errApply):
			return err
		}
		f.reconnects.Add(1)
		if serr := bo.Sleep(rctx); serr != nil {
			if f.promoted.Load() && ctx.Err() == nil {
				return ErrPromoted
			}
			return serr
		}
	}
}

// rebootstrap heals an out-of-sync follower in process: fetch the leader's
// current checkpoint and swap it into the live workspace set, moving the
// cursor to the checkpoint's sequence. Readers see the gap close as one
// atomic swap — no restart, no window serving empty state. Attempts are
// bounded so a leader serving garbage cannot trap the follower in a loop.
func (f *Follower) rebootstrap(ctx context.Context) error {
	limit := f.cfg.RebootstrapLimit
	if limit <= 0 {
		limit = DefaultRebootstrapLimit
	}
	bo := &resilience.Backoff{Base: f.cfg.ReconnectBase, Max: f.cfg.ReconnectMax}
	var lastErr error
	for attempt := 0; attempt < limit; attempt++ {
		if attempt > 0 {
			if serr := bo.Sleep(ctx); serr != nil {
				return serr
			}
		}
		ws, seq, err := f.fetchCheckpoint(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		f.ws.AdoptFrom(ws)
		f.applied.Store(seq)
		f.rebootstraps.Add(1)
		return nil
	}
	return fmt.Errorf("%w: %d re-bootstrap attempts failed, last: %v", ErrOutOfSync, limit, lastErr)
}

// Promote turns this follower into the leader of the next epoch, in
// process: halt replication, drain whatever tail the old leader still
// serves, adopt the replicated state into a fresh durable journal at dir,
// and start a Hub so other followers can re-target. The old leader is told
// it has been deposed (best-effort — fencing never depends on the
// notification; appliers reject the old term's records regardless).
// advertise, when non-empty, is this node's own base URL, forwarded so the
// deposed leader's 503s can point writers at the new leader.
func (f *Follower) Promote(ctx context.Context, dir, advertise string, opts core.DurableOptions) (*core.Persister, *Hub, error) {
	if !f.promoted.CompareAndSwap(false, true) {
		return nil, nil, fmt.Errorf("replica: already promoted")
	}
	// Halt a live Run loop and wait for it to unwind; applying stream
	// records concurrently with adoption would race the journal handoff.
	f.runMu.Lock()
	cancel, done := f.runCancel, f.runDone
	f.runMu.Unlock()
	if cancel != nil {
		cancel()
		select {
		case <-done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	// Best-effort drain: pull any tail the (possibly dying) old leader can
	// still serve, so the new term starts from the highest reachable
	// sequence. Failure here is expected — the usual reason for promotion
	// is that the leader stopped answering.
	f.drainTail(ctx)
	f.connected.Store(false)

	epoch := f.epoch.Load() + 1
	p, err := core.AdoptDurable(dir, f.ws, f.applied.Load(), epoch, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: promote: %w", err)
	}
	f.noteEpoch(epoch)
	hub := NewHub(p, 0)
	go func() {
		_ = NotifyFence(context.Background(), f.client, f.cfg.LeaderURL, epoch, advertise)
	}()
	return p, hub, nil
}

// drainTail runs short-poll stream rounds against the old leader until no
// progress is made or the budget elapses. Purely opportunistic.
func (f *Follower) drainTail(ctx context.Context) {
	dctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	saved := f.cfg.PollWait
	f.cfg.PollWait = 500 * time.Millisecond
	defer func() { f.cfg.PollWait = saved }()
	for dctx.Err() == nil {
		before := f.applied.Load()
		if err := f.streamOnce(dctx); err != nil {
			return
		}
		if f.applied.Load() == before {
			return
		}
	}
}

// errApply marks a record the commit pipeline refused — the follower's
// state can no longer be trusted to match the leader's, so Run stops.
var errApply = errors.New("replica: apply failed")

// streamOnce establishes one WAL stream and applies it to exhaustion. A nil
// return means the leader ended the poll window cleanly.
func (f *Follower) streamOnce(ctx context.Context) error {
	// Bound the whole stream: the leader closes it after PollWait, so a
	// socket outliving that by a wide margin is a partition, not a poll.
	sctx, cancel := context.WithTimeout(ctx, f.cfg.PollWait+30*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/api/replication/wal?from=%d&wait=%s",
		f.cfg.LeaderURL, f.applied.Load(), f.cfg.PollWait)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: connect: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return ErrOutOfSync
	default:
		return fmt.Errorf("replica: leader answered %s", resp.Status)
	}
	f.observeLeaderSeq(resp.Header)
	f.observeEpoch(resp.Header)
	f.connected.Store(true)
	// Records are applied through the same batch path the leader's group
	// commit uses: everything already buffered on the stream folds into the
	// local system under one lock hold and one view publish. The batch
	// flushes as soon as the stream would block, so a trickle applies
	// record-at-a-time and a catch-up burst applies in big strides.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var batch []journal.Record
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := core.ApplyRecordsWorkspaces(f.ws, batch); err != nil {
			return fmt.Errorf("%w: %v", errApply, err)
		}
		f.applied.Store(batch[len(batch)-1].Seq)
		batch = batch[:0]
		return nil
	}
	for {
		rec, err := journal.ReadFrame(br)
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			// Apply the whole records already read before surfacing the
			// stream error; they are durable on the leader.
			if ferr := flush(); ferr != nil {
				return ferr
			}
			return fmt.Errorf("replica: stream: %w", err)
		}
		if rec.Seq > f.leaderSeq.Load() {
			f.leaderSeq.Store(rec.Seq)
		}
		f.noteEpoch(rec.Epoch)
		if rec.Seq <= f.applied.Load() {
			continue // idempotent re-apply: already folded in
		}
		batch = append(batch, rec)
		if len(batch) >= followerApplyBatch || br.Buffered() == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// followerApplyBatch caps how many tailed records fold into the local system
// per lock hold, bounding both reader staleness and publish latency while a
// follower catches up from far behind.
const followerApplyBatch = 256

// observeLeaderSeq folds a CARCS-Leader-Seq response header into the lag
// estimate, never moving it backwards.
func (f *Follower) observeLeaderSeq(h http.Header) {
	seq, err := strconv.ParseUint(h.Get(HeaderLeaderSeq), 10, 64)
	if err == nil && seq > f.leaderSeq.Load() {
		f.leaderSeq.Store(seq)
	}
}

// observeEpoch folds a CARCS-Epoch response header into the observed term.
func (f *Follower) observeEpoch(h http.Header) {
	if e, err := strconv.ParseUint(h.Get(HeaderEpoch), 10, 64); err == nil {
		f.noteEpoch(e)
	}
}

// noteEpoch raises the observed leadership term, forward-only.
func (f *Follower) noteEpoch(e uint64) {
	for {
		cur := f.epoch.Load()
		if e <= cur || f.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}
