// Tests live in replica_test because they drive full leader/follower/router
// topologies through the server package, which itself imports replica.
package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"carcs/internal/core"
	"carcs/internal/journal"
	"carcs/internal/material"
	"carcs/internal/replica"
	"carcs/internal/resilience"
	"carcs/internal/server"
	"carcs/internal/workflow"
)

// leaderNode is a durable carcs-server acting as a replication leader.
type leaderNode struct {
	sys *core.System
	p   *core.Persister
	srv *server.Server
	ts  *httptest.Server
}

func startLeader(t *testing.T) *leaderNode {
	t.Helper()
	sys, p, err := core.OpenDurable(t.TempDir(), core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	sys.Workflow().Register("editor", workflow.RoleEditor)
	srv := server.New(sys, io.Discard)
	srv.SetPersister(p)
	srv.SetHub(replica.NewHub(p, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &leaderNode{sys: sys, p: p, srv: srv, ts: ts}
}

func (l *leaderNode) addMaterial(t *testing.T, id string) {
	t.Helper()
	err := l.sys.AddMaterial(&material.Material{
		ID: id, Title: "Material " + id, Kind: material.Assignment,
		Level: material.Intermediate, Collection: "drill",
	})
	if err != nil {
		t.Fatalf("add %s: %v", id, err)
	}
}

// followerNode is a read-only follower with a restartable HTTP listener.
type followerNode struct {
	f    *replica.Follower
	srv  *server.Server
	addr string

	hs     *http.Server
	cancel context.CancelFunc
	runErr chan error
}

func startFollower(t *testing.T, leaderURL string) *followerNode {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	f, err := replica.Bootstrap(ctx, replica.FollowerConfig{
		LeaderURL:     leaderURL,
		PollWait:      2 * time.Second,
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	srv := server.New(f.System(), io.Discard)
	srv.SetWorkspaces(f.Workspaces())
	srv.SetFollower(f)
	fn := &followerNode{f: f, srv: srv, runErr: make(chan error, 1)}
	fn.start(t, "127.0.0.1:0")
	t.Cleanup(func() { fn.kill(t) })
	return fn
}

// start listens on addr ("127.0.0.1:0" for the first boot, the recorded
// address on a restart) and launches both the HTTP listener and the
// replication loop.
func (fn *followerNode) start(t *testing.T, addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("follower listen %s: %v", addr, err)
	}
	fn.addr = ln.Addr().String()
	fn.hs = &http.Server{Handler: fn.srv}
	go fn.hs.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	fn.cancel = cancel
	fn.runErr = make(chan error, 1)
	go func() { fn.runErr <- fn.f.Run(ctx) }()
}

// kill simulates a crash: the replication loop stops and the listener drops
// every connection immediately (no graceful drain).
func (fn *followerNode) kill(t *testing.T) {
	t.Helper()
	if fn.cancel == nil {
		return
	}
	fn.cancel()
	fn.cancel = nil
	_ = fn.hs.Close()
	select {
	case <-fn.runErr:
	case <-time.After(10 * time.Second):
		t.Fatal("follower replication loop did not stop")
	}
}

func (fn *followerNode) url() string { return "http://" + fn.addr }

// waitApplied blocks until the follower has applied through seq.
func (fn *followerNode) waitApplied(t *testing.T, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for fn.f.Applied() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d", fn.f.Applied(), seq)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHubServesCheckpointAndWAL(t *testing.T) {
	l := startLeader(t)
	l.addMaterial(t, "m1")
	l.addMaterial(t, "m2")

	resp, err := http.Get(l.ts.URL + "/api/replication/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status = %d", resp.StatusCode)
	}
	if resp.Header.Get(replica.HeaderCheckpointSeq) == "" || len(body) == 0 {
		t.Fatalf("checkpoint response missing seq header or payload")
	}
	if _, err := core.RestoreFromCheckpoint(body); err != nil {
		t.Fatalf("served checkpoint does not restore: %v", err)
	}

	// The WAL stream from seq 0 must carry every record (registration +
	// both materials), CRC-framed, and end cleanly at the wait deadline.
	resp, err = http.Get(l.ts.URL + "/api/replication/wal?from=0&wait=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != replica.WALContentType {
		t.Fatalf("wal content type = %q", ct)
	}
	var seqs []uint64
	for {
		rec, err := journal.ReadFrame(resp.Body)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		seqs = append(seqs, rec.Seq)
	}
	want := l.p.Seq()
	if len(seqs) == 0 || seqs[len(seqs)-1] != want {
		t.Fatalf("streamed seqs %v, want tail through %d", seqs, want)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("stream gap: %v", seqs)
		}
	}

	// Malformed cursor: 400 with the error envelope.
	resp, err = http.Get(l.ts.URL + "/api/replication/wal?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status = %d, want 400", resp.StatusCode)
	}
}

func TestHubAnswersGoneBehindRetentionHorizon(t *testing.T) {
	// Build history and checkpoint it away BEFORE the hub attaches: the
	// ring never saw those records and the WAL is truncated, so a cursor
	// from before the checkpoint is unservable.
	dir := t.TempDir()
	sys, p, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sys.Workflow().Register("editor", workflow.RoleEditor)
	if err := sys.AddMaterial(&material.Material{
		ID: "old", Title: "Old", Kind: material.Assignment,
		Level: material.Intermediate, Collection: "drill",
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, io.Discard)
	srv.SetPersister(p)
	srv.SetHub(replica.NewHub(p, 0))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/replication/wal?from=0&wait=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status = %d, want 410 Gone", resp.StatusCode)
	}
	if resp.Header.Get(replica.HeaderCheckpointSeq) == "" {
		t.Fatal("410 missing the checkpoint-seq header directing the bootstrap")
	}
}

func TestFollowerReplicatesAndRejectsWrites(t *testing.T) {
	l := startLeader(t)
	l.addMaterial(t, "m1")
	fn := startFollower(t, l.ts.URL)

	l.addMaterial(t, "m2")
	l.addMaterial(t, "m3")
	fn.waitApplied(t, l.p.Seq())

	// The replicated state answers ordinary reads, stamped with the
	// staleness bound.
	resp, err := http.Get(fn.url() + "/api/materials")
	if err != nil {
		t.Fatal(err)
	}
	var listing []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing) != 3 {
		t.Fatalf("follower sees %d materials, want 3", len(listing))
	}
	if resp.Header.Get(replica.HeaderAppliedSeq) == "" {
		t.Fatal("follower read missing CARCS-Applied-Seq")
	}

	// A mutation on the follower: 503, Leader header, standard envelope
	// with Retry-After — even from a fully privileged account.
	req, _ := http.NewRequest(http.MethodPost, fn.url()+"/api/materials",
		strings.NewReader(`{"id":"nope","title":"X","kind":"assignment","level":"intermediate"}`))
	req.Header.Set("X-User", "editor")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower write status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Leader"); got != l.ts.URL {
		t.Fatalf("Leader header = %q, want %q", got, l.ts.URL)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("follower write rejection missing Retry-After")
	}
	var env struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == "" || env.RetryAfterSeconds < 1 {
		t.Fatalf("rejection envelope = %+v, want error + retry_after_seconds", env)
	}

	// The follower's ready probe reports its applied seq for the router.
	resp, err = http.Get(fn.url() + "/api/health/ready")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Status string `json:"status"`
		Seq    uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Seq != l.p.Seq() {
		t.Fatalf("ready = %+v, want ready at seq %d", ready, l.p.Seq())
	}
}

func TestFollowerResumesAcrossLeaderCheckpoint(t *testing.T) {
	l := startLeader(t)
	fn := startFollower(t, l.ts.URL)
	l.addMaterial(t, "m1")
	fn.waitApplied(t, l.p.Seq())

	// Checkpoint truncates the leader's WAL; the hub ring must keep the
	// shipped tail alive so the follower's next resume still works.
	if err := l.p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fn.kill(t)
	l.addMaterial(t, "m2")
	fn.start(t, fn.addr)
	fn.waitApplied(t, l.p.Seq())

	var leaderSnap, followerSnap bytes.Buffer
	if err := l.sys.Snapshot(&leaderSnap); err != nil {
		t.Fatal(err)
	}
	if err := fn.f.System().Snapshot(&followerSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(leaderSnap.Bytes(), followerSnap.Bytes()) {
		t.Fatal("follower state diverged from leader after checkpoint-crossing resume")
	}
}

func TestRouterRoutesReadsAndWrites(t *testing.T) {
	l := startLeader(t)
	l.addMaterial(t, "m1")
	fn := startFollower(t, l.ts.URL)
	fn.waitApplied(t, l.p.Seq())

	rt, err := replica.NewRouter(replica.RouterConfig{
		Backends:      []string{l.ts.URL, fn.url()},
		ProbeInterval: 25 * time.Millisecond,
		MaxLag:        100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// Reads prefer the in-sync follower and say which backend answered.
	resp, err := http.Get(rts.URL + "/api/materials")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed read status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(replica.HeaderRoute); got != fn.url() {
		t.Fatalf("read routed to %q, want follower %q", got, fn.url())
	}

	// Writes go to the leader, and the commit replicates back out.
	req, _ := http.NewRequest(http.MethodPost, rts.URL+"/api/materials",
		strings.NewReader(`{"id":"viarouter","title":"Routed","kind":"assignment","level":"intermediate"}`))
	req.Header.Set("X-User", "editor")
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed write status = %d, want 201", resp.StatusCode)
	}
	if got := resp.Header.Get(replica.HeaderRoute); got != l.ts.URL {
		t.Fatalf("write routed to %q, want leader %q", got, l.ts.URL)
	}
	fn.waitApplied(t, l.p.Seq())
	if m := fn.f.System().Material("viarouter"); m == nil {
		t.Fatal("routed write did not replicate to the follower")
	}
}

// TestRouterLeaderCoolingFailureIs502 pins a regression: a failed read
// against a cooling leader was reported as served because the cumulative
// served counter was consulted instead of the attempt's own outcome, so
// clients received empty-body 200s during a leader outage.
func TestRouterLeaderCoolingFailureIs502(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`)
	}))
	defer backend.Close()

	rt, err := replica.NewRouter(replica.RouterConfig{
		Backends: []string{backend.URL},
		Breaker:  resilience.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	get := func() (int, []byte) {
		t.Helper()
		resp, err := http.Get(rts.URL + "/api/materials")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Seed one success so the leader's served counter is non-zero.
	if status, _ := get(); status != http.StatusOK {
		t.Fatalf("seed read status = %d, want 200", status)
	}

	backend.Close() // leader outage

	// The first failed attempt trips the breaker open.
	if status, _ := get(); status != http.StatusBadGateway {
		t.Fatalf("outage read status = %d, want 502", status)
	}

	// Breaker cooling: the last-resort attempt against the leader fails
	// too, and the client must see the 502 envelope, not an empty 200.
	status, body := get()
	if status != http.StatusBadGateway {
		t.Fatalf("cooling read status = %d (body %q), want 502", status, body)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
		t.Fatalf("cooling read body = %q, want error envelope", body)
	}
}

// TestWALStreamHeadersBeforeLongPoll pins a regression: an idle WAL
// long-poll sent no response headers until the wait deadline fired, so any
// client-side response-header timeout shorter than the poll window aborted
// every idle stream and flapped the follower's connection.
func TestWALStreamHeadersBeforeLongPoll(t *testing.T) {
	l := startLeader(t)
	l.addMaterial(t, "m1")

	client := &http.Client{Transport: &http.Transport{
		ResponseHeaderTimeout: 500 * time.Millisecond,
	}}
	start := time.Now()
	resp, err := client.Get(l.ts.URL + "/api/replication/wal?from=" +
		strconv.FormatUint(l.p.Seq(), 10) + "&wait=2s")
	if err != nil {
		t.Fatalf("idle long-poll aborted before headers: %v", err)
	}
	defer resp.Body.Close()
	if waited := time.Since(start); waited >= 2*time.Second {
		t.Fatalf("headers arrived after %v, want before the poll window ends", waited)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idle stream status = %d, want 200", resp.StatusCode)
	}
	if _, err := journal.ReadFrame(resp.Body); err != io.EOF {
		t.Fatalf("idle stream read = %v, want clean EOF at window end", err)
	}
}

// waitRouterSeesReady polls the router's health view until want backends
// report ready.
func waitRouterSeesReady(t *testing.T, routerURL string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(routerURL + "/api/health")
		if err == nil {
			var health struct {
				Backends []struct {
					Ready bool `json:"ready"`
				} `json:"backends"`
			}
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if err == nil {
				ready := 0
				for _, b := range health.Backends {
					if b.Ready {
						ready++
					}
				}
				if ready >= want {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never saw %d ready backends", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
