package replica

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"carcs/internal/core"
	"carcs/internal/journal"
)

// DefaultRingSize is how many recent records the hub retains in memory.
// The ring survives checkpoint truncation of the on-disk WAL, so a
// follower that blinks across a checkpoint boundary can still resume from
// its cursor instead of re-bootstrapping.
const DefaultRingSize = 4096

// Hub is the leader side of replication: it taps the persister's append
// path, keeps a bounded in-memory tail of recent records, and serves the
// bootstrap and WAL-stream endpoints. A record is visible to followers the
// instant its fsync completes — the sink runs inside the commit, so the
// stream order is exactly the commit order.
type Hub struct {
	p       *core.Persister
	maxRing int

	mu     sync.Mutex
	ring   []journal.Record
	notify chan struct{}

	streams atomic.Uint64
	active  atomic.Int64
}

// NewHub wires a hub to the persister's replication sink. ringSize <= 0
// takes DefaultRingSize.
func NewHub(p *core.Persister, ringSize int) *Hub {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	h := &Hub{p: p, maxRing: ringSize, notify: make(chan struct{})}
	p.SetReplicationSink(h.append)
	return h
}

// append observes one committed record: fold it into the ring and wake
// every long-polling stream. Runs on the write path under the system's
// mutation lock — O(1), no I/O.
func (h *Hub) append(rec journal.Record) {
	h.mu.Lock()
	h.ring = append(h.ring, rec)
	if len(h.ring) > h.maxRing {
		// Drop the oldest half in one copy instead of sliding every
		// append, amortizing the trim.
		keep := h.maxRing / 2
		h.ring = append(h.ring[:0:0], h.ring[len(h.ring)-keep:]...)
	}
	ch := h.notify
	h.notify = make(chan struct{})
	h.mu.Unlock()
	close(ch)
}

// waitCh returns the channel closed by the next append. Grab it before
// checking for records so a commit landing between the check and the wait
// is never missed.
func (h *Hub) waitCh() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.notify
}

// tailSince returns committed records with Seq > from: from the in-memory
// ring when it reaches back far enough, else from the on-disk WAL. A
// cursor behind both horizons returns journal.ErrCompacted.
func (h *Hub) tailSince(from uint64) ([]journal.Record, error) {
	h.mu.Lock()
	if n := len(h.ring); n > 0 && from+1 >= h.ring[0].Seq {
		// Binary search the first record past the cursor.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if h.ring[mid].Seq <= from {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out := append([]journal.Record(nil), h.ring[lo:]...)
		h.mu.Unlock()
		return out, nil
	}
	h.mu.Unlock()
	return h.p.TailSince(from)
}

// Status reports the leader's replication state for /api/health.
func (h *Hub) Status() *Status {
	return &Status{
		Role:          "leader",
		Epoch:         h.p.Epoch(),
		LeaderSeq:     h.p.Seq(),
		Connected:     true,
		Streams:       h.streams.Load(),
		ActiveStreams: h.active.Load(),
	}
}

// Seq returns the leader's latest journaled sequence.
func (h *Hub) Seq() uint64 { return h.p.Seq() }

// Epoch returns the leadership term this hub's records are stamped with.
func (h *Hub) Epoch() uint64 { return h.p.Epoch() }

func hubError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ServeCheckpoint handles GET /api/replication/checkpoint: the latest
// checkpoint payload, with the covered sequence in CARCS-Checkpoint-Seq.
func (h *Hub) ServeCheckpoint(w http.ResponseWriter, r *http.Request) {
	payload, seq, epoch, err := h.p.CheckpointPayload()
	if err != nil {
		hubError(w, http.StatusInternalServerError, "checkpoint unavailable: "+err.Error())
		return
	}
	w.Header().Set(HeaderCheckpointSeq, strconv.FormatUint(seq, 10))
	w.Header().Set(HeaderLeaderSeq, strconv.FormatUint(h.p.Seq(), 10))
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	if r.Method != http.MethodHead {
		_, _ = w.Write(payload)
	}
}

// ServeWAL handles GET /api/replication/wal?from=SEQ[&wait=DUR]: a chunked
// stream of CRC-framed records with Seq > from. When the log is drained the
// stream long-polls — each new commit is framed and flushed immediately —
// until the wait budget elapses and the stream ends cleanly (the follower
// reconnects from its advanced cursor). A cursor older than the leader's
// retention horizon (checkpoint + ring) gets 410 Gone with the checkpoint
// sequence, directing the follower to bootstrap.
func (h *Hub) ServeWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		hubError(w, http.StatusBadRequest, `parameter "from" must be a sequence number`)
		return
	}
	wait := DefaultPollWait
	if raw := q.Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			hubError(w, http.StatusBadRequest, `parameter "wait" must be a positive duration`)
			return
		}
		wait = min(d, MaxPollWait)
	}
	flusher, canFlush := w.(http.Flusher)

	h.streams.Add(1)
	h.active.Add(1)
	defer h.active.Add(-1)

	w.Header().Set("Content-Type", WALContentType)
	w.Header().Set(HeaderLeaderSeq, strconv.FormatUint(h.p.Seq(), 10))
	w.Header().Set(HeaderEpoch, strconv.FormatUint(h.p.Epoch(), 10))

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	sent := from
	wrote := false
	for {
		wake := h.waitCh()
		recs, err := h.tailSince(sent)
		switch {
		case errors.Is(err, journal.ErrCompacted):
			if !wrote {
				w.Header().Set(HeaderCheckpointSeq, strconv.FormatUint(h.p.CheckpointSeq(), 10))
				hubError(w, http.StatusGone,
					"requested tail compacted into checkpoint; bootstrap from /api/replication/checkpoint")
			}
			return
		case err != nil:
			if !wrote {
				hubError(w, http.StatusInternalServerError, "wal read: "+err.Error())
			}
			return
		}
		for _, rec := range recs {
			frame, err := journal.EncodeRecord(rec)
			if err != nil {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return // follower went away
			}
			sent = rec.Seq
		}
		if !wrote && len(recs) == 0 {
			// Commit the 200 before the first wait: followers bound the
			// time to response headers client-side, and an idle long-poll
			// must not be mistaken for a dead leader.
			w.WriteHeader(http.StatusOK)
		}
		wrote = true
		if canFlush {
			flusher.Flush()
		}
		select {
		case <-wake:
		case <-deadline.C:
			return // poll window over; the follower reconnects
		case <-r.Context().Done():
			return
		}
	}
}
