package replica_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carcs/internal/replica"
)

// TestChaosReplicaKillDrill is the replication layer's acceptance drill:
// a leader, two followers, and a router take mixed read/write traffic while
// one follower is crashed mid-stream and restarted on the same address.
//
// It must hold that
//   - not a single routed read surfaces a 5xx while the follower is down
//     (the router retries onto the surviving backends),
//   - the restarted follower reconnects on its own, resumes from its last
//     applied sequence, and catches up to the leader, and
//   - the final follower states are byte-identical to the leader's.
func TestChaosReplicaKillDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill needs real listeners and wall-clock traffic")
	}
	l := startLeader(t)
	l.addMaterial(t, "seed-0")
	f1 := startFollower(t, l.ts.URL)
	f2 := startFollower(t, l.ts.URL)
	f1.waitApplied(t, l.p.Seq())
	f2.waitApplied(t, l.p.Seq())

	rt, err := replica.NewRouter(replica.RouterConfig{
		Backends:      []string{l.ts.URL, f1.url(), f2.url()},
		ProbeInterval: 50 * time.Millisecond,
		MaxLag:        1 << 20, // the drill exercises failover, not lag ejection
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()
	waitRouterSeesReady(t, rts.URL, 3)

	// Mixed traffic: one writer POSTing materials through the router, four
	// readers hammering read endpoints through it. Readers tally every
	// status >= 500 — the drill's zero-tolerance budget.
	var (
		stop        atomic.Bool
		read5xx     atomic.Uint64
		readTotal   atomic.Uint64
		writeErrs   atomic.Uint64
		writeTotal  atomic.Uint64
		trafficDone sync.WaitGroup
	)
	client := &http.Client{Timeout: 20 * time.Second}
	trafficDone.Add(1)
	go func() {
		defer trafficDone.Done()
		for i := 0; !stop.Load(); i++ {
			body := fmt.Sprintf(`{"id":"drill-%d","title":"Drill %d","kind":"assignment","level":"intermediate","collection":"drill"}`, i, i)
			req, _ := http.NewRequest(http.MethodPost, rts.URL+"/api/materials", strings.NewReader(body))
			req.Header.Set("X-User", "editor")
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			writeTotal.Add(1)
			if err != nil {
				writeErrs.Add(1)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				writeErrs.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	readPaths := []string{"/api/materials", "/api/status", "/api/materials", "/api/search?q=drill"}
	for ri := 0; ri < 4; ri++ {
		path := readPaths[ri%len(readPaths)]
		trafficDone.Add(1)
		go func(path string) {
			defer trafficDone.Done()
			for !stop.Load() {
				resp, err := client.Get(rts.URL + path)
				if err != nil {
					continue // a client-side error is not a served 5xx
				}
				readTotal.Add(1)
				if resp.StatusCode >= 500 {
					read5xx.Add(1)
					b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
					t.Errorf("routed read %s answered %d: %s", path, resp.StatusCode, b)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	// Let the cluster take healthy traffic, then crash follower 1 hard.
	time.Sleep(500 * time.Millisecond)
	appliedAtKill := f1.f.Applied()
	f1.kill(t)
	t.Logf("killed follower 1 at applied seq %d", appliedAtKill)

	// Traffic keeps flowing over the survivors while it is down.
	time.Sleep(1 * time.Second)

	// Restart on the SAME address with the same follower object: it must
	// resume from its last applied sequence, not re-bootstrap.
	f1.start(t, f1.addr)
	t.Log("restarted follower 1")

	// Let it rejoin under live traffic, then stop the load.
	time.Sleep(1 * time.Second)
	stop.Store(true)
	trafficDone.Wait()

	if got := read5xx.Load(); got != 0 {
		t.Fatalf("%d of %d routed reads answered 5xx during the drill", got, readTotal.Load())
	}
	if wt := writeTotal.Load(); wt == 0 {
		t.Fatal("writer made no requests")
	}
	if we := writeErrs.Load(); we > 0 {
		// Writes go straight to the always-up leader; they should not
		// have failed either.
		t.Fatalf("%d of %d routed writes failed", we, writeTotal.Load())
	}
	if rtot := readTotal.Load(); rtot < 100 {
		t.Fatalf("only %d routed reads — the drill did not generate real load", rtot)
	}

	// The restarted follower must catch up to the leader's final horizon
	// from where it left off.
	finalSeq := l.p.Seq()
	f1.waitApplied(t, finalSeq)
	f2.waitApplied(t, finalSeq)
	if f1.f.Applied() < appliedAtKill {
		t.Fatalf("follower restarted behind its pre-kill cursor: %d < %d", f1.f.Applied(), appliedAtKill)
	}

	// Byte-identical state: leader vs both followers.
	var leaderSnap bytes.Buffer
	if err := l.sys.Snapshot(&leaderSnap); err != nil {
		t.Fatal(err)
	}
	for i, fn := range []*followerNode{f1, f2} {
		var snap bytes.Buffer
		if err := fn.f.System().Snapshot(&snap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(leaderSnap.Bytes(), snap.Bytes()) {
			t.Fatalf("follower %d state diverged from leader (%d vs %d snapshot bytes)",
				i+1, snap.Len(), leaderSnap.Len())
		}
	}
	t.Logf("drill: %d reads (0 5xx), %d writes, follower resumed %d -> %d",
		readTotal.Load(), writeTotal.Load(), appliedAtKill, finalSeq)
}
