// Failover tests: follower promotion, epoch fencing, follower self-heal,
// and the leader-kill chaos drill.
package replica_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carcs/internal/core"
	"carcs/internal/material"
	"carcs/internal/replica"
	"carcs/internal/server"
	"carcs/internal/workflow"
)

// promoteResp is the POST /api/replication/promote answer.
type promoteResp struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Seq      uint64 `json:"seq"`
	Promoted bool   `json:"promoted"`
}

// promote POSTs the promotion request to a follower and decodes the answer.
func promote(t *testing.T, followerURL, advertise string) (promoteResp, int) {
	t.Helper()
	body := strings.NewReader(fmt.Sprintf(`{"advertise":%q}`, advertise))
	resp, err := http.Post(followerURL+"/api/replication/promote", "application/json", body)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer resp.Body.Close()
	var pr promoteResp
	_ = json.NewDecoder(resp.Body).Decode(&pr)
	return pr, resp.StatusCode
}

// postMaterial writes one material as the editor account, returning the
// response (body drained and closed) for status/header assertions.
func postMaterial(t *testing.T, client *http.Client, baseURL, id string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"title":"Material %s","kind":"assignment","level":"intermediate","collection":"drill"}`, id, id)
	req, err := http.NewRequest(http.MethodPost, baseURL+"/api/materials", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-User", "editor")
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("post material %s: %v", id, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func TestPromoteFollowerTakesOverWrites(t *testing.T) {
	l := startLeader(t)
	l.addMaterial(t, "m1")
	l.addMaterial(t, "m2")
	fn := startFollower(t, l.ts.URL)
	fn.srv.SetPromotion(t.TempDir(), "", core.DurableOptions{})
	fn.waitApplied(t, l.p.Seq())
	handoverSeq := l.p.Seq()

	pr, code := promote(t, fn.url(), fn.url())
	if code != http.StatusOK {
		t.Fatalf("promote status = %d, want 200", code)
	}
	if pr.Role != "leader" || pr.Epoch != 1 || !pr.Promoted {
		t.Fatalf("promote answer = %+v, want promoted leader at epoch 1", pr)
	}
	if pr.Seq != handoverSeq {
		t.Fatalf("promoted at seq %d, want the replicated horizon %d", pr.Seq, handoverSeq)
	}

	// The promoted node answers writes — the editor registration rode the
	// replicated WAL, so the same credentials work on the new leader.
	if resp := postMaterial(t, http.DefaultClient, fn.url(), "m3"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("write on promoted leader = %d, want 201", resp.StatusCode)
	}

	// Promotion is idempotent: asking again reports the current identity.
	pr, code = promote(t, fn.url(), fn.url())
	if code != http.StatusOK || pr.Promoted || pr.Role != "leader" || pr.Epoch != 1 {
		t.Fatalf("second promote = %+v (status %d), want 200 leader/epoch 1/promoted=false", pr, code)
	}

	// The old leader was notified and fences itself: writes answer 503
	// with the new leader's location; reads keep flowing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postMaterial(t, http.DefaultClient, l.ts.URL, "should-fence")
		if resp.StatusCode == http.StatusServiceUnavailable {
			if got := resp.Header.Get("Leader"); got != fn.url() {
				t.Fatalf("fenced Leader header = %q, want %q", got, fn.url())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old leader never fenced; last write status = %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get(l.ts.URL + "/api/materials")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on fenced leader = %d, want 200", resp.StatusCode)
	}

	// A brand-new follower bootstraps from the promoted leader and sees
	// both terms' history, stamped with the new epoch.
	nf := startFollower(t, fn.url())
	nf.waitApplied(t, handoverSeq+1)
	if got := nf.f.System().Len(); got != 3 {
		t.Fatalf("new follower sees %d materials, want 3", got)
	}
	if got := nf.f.Epoch(); got != 1 {
		t.Fatalf("new follower epoch = %d, want 1", got)
	}
}

func TestPromoteRequiresArming(t *testing.T) {
	l := startLeader(t)
	l.addMaterial(t, "m1")
	fn := startFollower(t, l.ts.URL)
	// No SetPromotion: the node has no data dir to adopt the state into.
	if _, code := promote(t, fn.url(), fn.url()); code != http.StatusConflict {
		t.Fatalf("unarmed promote status = %d, want 409", code)
	}
}

func TestFollowerSelfHealsPastRetentionHorizon(t *testing.T) {
	// A leader whose hub retains only ONE record in its ring, so any
	// checkpoint strands a disconnected follower behind the horizon.
	sys, p, err := core.OpenDurable(t.TempDir(), core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	sys.Workflow().Register("editor", workflow.RoleEditor)
	srv := server.New(sys, io.Discard)
	srv.SetWorkspaces(p.Workspaces())
	srv.SetPersister(p)
	srv.SetHub(replica.NewHub(p, 1))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	add := func(id string) {
		t.Helper()
		if err := sys.AddMaterial(&material.Material{
			ID: id, Title: "Material " + id, Kind: material.Assignment,
			Level: material.Intermediate, Collection: "drill",
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("m1")
	fn := startFollower(t, ts.URL)
	fn.waitApplied(t, p.Seq())

	// Crash the follower, move history past it, and checkpoint: the WAL
	// truncates and the one-slot ring cannot serve its old cursor.
	fn.kill(t)
	for i := 2; i <= 6; i++ {
		add(fmt.Sprintf("m%d", i))
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// On restart the resume cursor answers 410 Gone; the follower must
	// re-bootstrap in process — no operator, no restart — and catch up.
	fn.start(t, fn.addr)
	fn.waitApplied(t, p.Seq())
	if got := fn.f.Rebootstraps(); got < 1 {
		t.Fatalf("rebootstraps = %d, want >= 1", got)
	}
	if got := fn.f.System().Len(); got != 6 {
		t.Fatalf("follower sees %d materials after self-heal, want 6", got)
	}

	// The follower's HTTP surface serves the adopted state (the server
	// resolves workspaces through the swapped set) and reports the heal.
	resp, err := http.Get(fn.url() + "/api/materials")
	if err != nil {
		t.Fatal(err)
	}
	var listing []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing) != 6 {
		t.Fatalf("follower HTTP listing has %d materials, want 6", len(listing))
	}
	resp, err = http.Get(fn.url() + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Replication *replica.Status `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Replication == nil || health.Replication.Rebootstraps < 1 {
		t.Fatalf("health replication block = %+v, want rebootstraps >= 1", health.Replication)
	}
}

// killableLeader is a durable leader on a restartable listener, so the
// chaos drill can crash it hard and later revive it on the same address.
type killableLeader struct {
	sys  *core.System
	p    *core.Persister
	srv  *server.Server
	addr string
	hs   *http.Server
}

func startKillableLeader(t *testing.T) *killableLeader {
	t.Helper()
	sys, p, err := core.OpenDurable(t.TempDir(), core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	sys.Workflow().Register("editor", workflow.RoleEditor)
	srv := server.New(sys, io.Discard)
	srv.SetWorkspaces(p.Workspaces())
	srv.SetPersister(p)
	srv.SetHub(replica.NewHub(p, 0))
	kl := &killableLeader{sys: sys, p: p, srv: srv}
	kl.serve(t, "127.0.0.1:0")
	t.Cleanup(func() { _ = kl.hs.Close() })
	return kl
}

func (kl *killableLeader) serve(t *testing.T, addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("leader listen %s: %v", addr, err)
	}
	kl.addr = ln.Addr().String()
	kl.hs = &http.Server{Handler: kl.srv}
	go kl.hs.Serve(ln)
}

func (kl *killableLeader) kill()               { _ = kl.hs.Close() }
func (kl *killableLeader) revive(t *testing.T) { kl.serve(t, kl.addr) }
func (kl *killableLeader) url() string         { return "http://" + kl.addr }

func (kl *killableLeader) addMaterial(t *testing.T, id string) {
	t.Helper()
	if err := kl.sys.AddMaterial(&material.Material{
		ID: id, Title: "Material " + id, Kind: material.Assignment,
		Level: material.Intermediate, Collection: "drill",
	}); err != nil {
		t.Fatalf("add %s: %v", id, err)
	}
}

// TestChaosLeaderKillFailover is the failover acceptance drill: a leader,
// a promotion-armed follower, a plain follower, and a router take mixed
// traffic; the leader is crashed hard; the armed follower is promoted; the
// old leader is later revived and must be fenced out.
//
// It must hold that
//   - not a single routed read surfaces a 5xx at any point in the drill,
//   - every write the cluster ever acknowledged (201) is present on the
//     new leader — zero acked-write loss,
//   - during the election window routed writes answer 503 with Retry-After
//     (an honest "retry shortly", never a hang or a bare 502),
//   - the promoted leader's state at the handover sequence is byte-
//     identical to the old leader's, and
//   - the revived old leader refuses writes with 503 + the new leader's
//     location.
func TestChaosLeaderKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill needs real listeners and wall-clock traffic")
	}
	l := startKillableLeader(t)
	l.addMaterial(t, "seed-0")
	f1 := startFollower(t, l.url())
	f1.srv.SetPromotion(t.TempDir(), "", core.DurableOptions{})
	f2 := startFollower(t, l.url())
	f1.waitApplied(t, l.p.Seq())
	f2.waitApplied(t, l.p.Seq())

	rt, err := replica.NewRouter(replica.RouterConfig{
		Backends:      []string{l.url(), f1.url(), f2.url()},
		ProbeInterval: 50 * time.Millisecond,
		MaxLag:        1 << 20, // the drill exercises failover, not lag ejection
		ElectionWait:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()
	waitRouterSeesReady(t, rts.URL, 3)

	// Four readers hammer the router for the whole drill; every served
	// status >= 500 burns the zero-tolerance budget.
	var (
		stopReads sync.WaitGroup
		stop      atomic.Bool
		read5xx   atomic.Uint64
		readTotal atomic.Uint64
	)
	client := &http.Client{Timeout: 20 * time.Second}
	readPaths := []string{"/api/materials", "/api/status", "/api/materials", "/api/search?q=drill"}
	for ri := 0; ri < 4; ri++ {
		path := readPaths[ri%len(readPaths)]
		stopReads.Add(1)
		go func(path string) {
			defer stopReads.Done()
			for !stop.Load() {
				resp, err := client.Get(rts.URL + path)
				if err != nil {
					continue // a client-side error is not a served 5xx
				}
				readTotal.Add(1)
				if resp.StatusCode >= 500 {
					read5xx.Add(1)
					b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
					t.Errorf("routed read %s answered %d: %s", path, resp.StatusCode, b)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	// Phase 1: routed writes against the healthy cluster. Every 201 is an
	// acknowledgement the cluster must never lose.
	acked := make(map[string]bool)
	writeBurst := func(prefix string, n int, wantAcks bool) (acks, rejects int) {
		t.Helper()
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("%s-%d", prefix, i)
			resp := postMaterial(t, client, rts.URL, id)
			switch resp.StatusCode {
			case http.StatusCreated:
				acked[id] = true
				acks++
			case http.StatusServiceUnavailable:
				// The election window's honest answer; must carry Retry-After.
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("write 503 without Retry-After during election")
				}
				rejects++
			default:
				t.Errorf("routed write %s answered %d", id, resp.StatusCode)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if wantAcks && acks == 0 {
			t.Fatalf("burst %s: no write was acknowledged", prefix)
		}
		return acks, rejects
	}
	writeBurst("healthy", 50, true)

	// Quiesce writes and let both followers reach the leader's horizon, so
	// the handover point is a well-defined sequence. (Reads keep flowing.)
	f1.waitApplied(t, l.p.Seq())
	f2.waitApplied(t, l.p.Seq())
	handoverSeq := l.p.Seq()
	var preKill bytes.Buffer
	if err := l.sys.Snapshot(&preKill); err != nil {
		t.Fatal(err)
	}

	// Crash the leader hard and let the router's probes notice.
	l.kill()
	t.Logf("killed leader at seq %d", handoverSeq)
	time.Sleep(200 * time.Millisecond)

	// The election window: routed writes answer 503 + Retry-After.
	if acks, rejects := writeBurst("window", 3, false); acks != 0 || rejects != 3 {
		t.Fatalf("election-window burst: %d acks, %d rejects, want 0/3", acks, rejects)
	}

	// Promote the armed follower. It adopts the replicated state at the
	// handover sequence under epoch 1.
	pr, code := promote(t, f1.url(), f1.url())
	if code != http.StatusOK || !pr.Promoted || pr.Epoch != 1 {
		t.Fatalf("promote = %+v (status %d), want promoted at epoch 1", pr, code)
	}
	if pr.Seq != handoverSeq {
		t.Fatalf("promoted at seq %d, want %d", pr.Seq, handoverSeq)
	}

	// Byte-identical at equal seq: the new leader's state at the handover
	// sequence is exactly what the old leader acknowledged.
	var adopted bytes.Buffer
	if err := f1.f.System().Snapshot(&adopted); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preKill.Bytes(), adopted.Bytes()) {
		t.Fatalf("promoted state diverged from the old leader at seq %d (%d vs %d snapshot bytes)",
			handoverSeq, adopted.Len(), preKill.Len())
	}

	// Phase 2: the router discovers the new leader and writes flow again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postMaterial(t, client, rts.URL, "failover-probe")
		if resp.StatusCode == http.StatusCreated {
			acked["failover-probe"] = true
			if got := resp.Header.Get(replica.HeaderEpoch); got != "1" {
				t.Fatalf("post-failover write epoch header = %q, want 1", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never routed a write to the new leader; last status %d", resp.StatusCode)
		}
		time.Sleep(25 * time.Millisecond)
	}
	writeBurst("newterm", 30, true)

	// Revive the old leader on its old address. It still believes it
	// leads at epoch 0; the router must fence it out, and it must refuse
	// writes pointing at the real leader.
	l.revive(t)
	t.Log("revived old leader")
	// Fencing is reactive: the router's next probe sweep spots the stale
	// claimant and delivers the deposition notice. Wait for the role to
	// flip (the router never ROUTES to a stale-epoch claimant, so routed
	// traffic is safe throughout this window), then assert the refusal.
	deadline = time.Now().Add(10 * time.Second)
	for {
		var zh struct {
			Role string `json:"role"`
		}
		resp, err := client.Get(l.url() + "/api/health")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&zh)
			resp.Body.Close()
		}
		if err == nil && zh.Role == "fenced" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revived old leader never fenced; role %q", zh.Role)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if resp := postMaterial(t, client, l.url(), "zombie-write"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on fenced old leader = %d, want 503", resp.StatusCode)
	} else if got := resp.Header.Get("Leader"); got != f1.url() {
		t.Fatalf("fenced old leader points at %q, want %q", got, f1.url())
	}
	// Its reads stay up: a fenced node is a frozen replica, not a corpse.
	resp, err := client.Get(l.url() + "/api/materials")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on fenced old leader = %d, want 200", resp.StatusCode)
	}
	writeBurst("postfence", 20, true)

	stop.Store(true)
	stopReads.Wait()

	if got := read5xx.Load(); got != 0 {
		t.Fatalf("%d of %d routed reads answered 5xx during the drill", got, readTotal.Load())
	}
	if rtot := readTotal.Load(); rtot < 100 {
		t.Fatalf("only %d routed reads — the drill did not generate real load", rtot)
	}

	// Zero acked-write loss: every 201 the cluster ever answered is
	// present on the current leader.
	view := f1.f.System().View()
	missing := 0
	for id := range acked {
		if view.Material(id) == nil {
			missing++
			t.Errorf("acked write %s lost across failover", id)
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acked writes lost", missing, len(acked))
	}

	// The bystander follower froze at the handover sequence (its leader
	// died there) with byte-identical state.
	if got := f2.f.Applied(); got != handoverSeq {
		t.Fatalf("bystander follower at seq %d, want %d", got, handoverSeq)
	}
	var bystander bytes.Buffer
	if err := f2.f.System().Snapshot(&bystander); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preKill.Bytes(), bystander.Bytes()) {
		t.Fatal("bystander follower state diverged from the handover snapshot")
	}

	// Role accounting on both sides of the fence.
	var health struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	for _, probe := range []struct {
		url, role string
		epoch     uint64
	}{{f1.url(), "leader", 1}, {l.url(), "fenced", 0}} {
		resp, err := client.Get(probe.url + "/api/health")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Role != probe.role || health.Epoch != probe.epoch {
			t.Fatalf("%s reports %s/epoch %d, want %s/epoch %d",
				probe.url, health.Role, health.Epoch, probe.role, probe.epoch)
		}
	}
	t.Logf("drill: %d reads (0 5xx), %d acked writes all present, handover at seq %d",
		readTotal.Load(), len(acked), handoverSeq)
}
