package replica_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"carcs/internal/core"
	"carcs/internal/journal"
	"carcs/internal/material"
)

// startTenantLeader is startLeader with the workspace set wired through to
// the HTTP layer, mirroring carcs-server's durable-mode wiring.
func startTenantLeader(t *testing.T) *leaderNode {
	t.Helper()
	l := startLeader(t)
	l.srv.SetWorkspaces(l.p.Workspaces())
	return l
}

func tenantIDs(t *testing.T, sys *core.System) []string {
	t.Helper()
	var ids []string
	for _, m := range sys.View().SortedMaterials("", nil) {
		ids = append(ids, m.ID)
	}
	return ids
}

// TestTenantOpsReplicate proves the tenant dimension rides the existing
// replication stream untouched: a workspace created on the leader
// materializes on the follower from the WAL alone, every workspace's
// materials land in the right follower workspace, and the stamped records
// the wire carries are the leader's journal bytes verbatim.
func TestTenantOpsReplicate(t *testing.T) {
	l := startTenantLeader(t)

	// Tenant created via the management route so the create itself is
	// journaled (the path a real operator takes).
	req, _ := http.NewRequest(http.MethodPut, l.ts.URL+"/api/t/alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT /api/t/alpha = %d", resp.StatusCode)
	}

	alpha, ok := l.p.Workspaces().Get("alpha")
	if !ok {
		t.Fatal("alpha missing on leader")
	}
	l.addMaterial(t, "def-1")
	for _, id := range []string{"alpha-1", "alpha-2"} {
		if err := alpha.AddMaterial(&material.Material{
			ID: id, Title: "Material " + id, Kind: material.Assignment,
			Level: material.Intermediate, Collection: "drill",
		}); err != nil {
			t.Fatal(err)
		}
	}
	l.addMaterial(t, "def-2")

	// The wire tail must carry the tenant stamps exactly as journaled:
	// default records with no tenant field at all, alpha records stamped.
	wresp, err := http.Get(l.ts.URL + "/api/replication/wal?from=0&wait=50ms")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("wal tail = %d", wresp.StatusCode)
	}
	recs, _, err := journal.DecodeAll(raw)
	if err != nil {
		t.Fatalf("decode wire tail: %v", err)
	}
	var sawCreate, sawAlphaOp bool
	var reframed bytes.Buffer
	for _, rec := range recs {
		frame, err := journal.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		reframed.Write(frame)
		switch rec.Op {
		case core.OpTenantCreate:
			sawCreate = true
			if rec.Tenant != "alpha" {
				t.Errorf("tenant.create stamped %q", rec.Tenant)
			}
		default:
			if rec.Tenant == "alpha" {
				sawAlphaOp = true
			}
		}
	}
	if !sawCreate || !sawAlphaOp {
		t.Fatalf("wire tail missing tenant records: create=%v alphaOp=%v", sawCreate, sawAlphaOp)
	}
	// Byte-identical round trip: re-framing the decoded records (omitempty
	// drops the tenant key on default records) reproduces the wire bytes
	// exactly, so default-workspace traffic is provably stamp-free.
	if !bytes.Equal(reframed.Bytes(), raw) {
		t.Fatal("re-encoded records differ from wire bytes; tenant stamping is not byte-stable")
	}

	fn := startFollower(t, l.ts.URL)
	fn.srv.SetWorkspaces(fn.f.Workspaces())
	fn.waitApplied(t, l.p.Seq())

	fAlpha, ok := fn.f.Workspaces().Get("alpha")
	if !ok {
		t.Fatal("follower did not materialize workspace alpha from the stream")
	}
	wantAlpha := tenantIDs(t, alpha)
	if got := tenantIDs(t, fAlpha); !equalStrings(got, wantAlpha) {
		t.Errorf("follower alpha = %v, want %v", got, wantAlpha)
	}
	wantDef := tenantIDs(t, l.sys)
	if got := tenantIDs(t, fn.f.System()); !equalStrings(got, wantDef) {
		t.Errorf("follower default = %v, want %v", got, wantDef)
	}
	for _, id := range wantDef {
		if fAlpha.Material(id) != nil {
			t.Errorf("default material %q leaked into follower alpha", id)
		}
	}

	// The follower's scoped HTTP surface serves the replicated workspace.
	rr := httptest.NewRecorder()
	fn.srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/t/alpha/materials/alpha-1", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("follower GET /api/t/alpha/materials/alpha-1 = %d", rr.Code)
	}

	// And refuses to create workspaces locally: its tenant set is the
	// leader's WAL, nothing else.
	rr = httptest.NewRecorder()
	fn.srv.ServeHTTP(rr, httptest.NewRequest(http.MethodPut, "/api/t/beta", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("follower PUT /api/t/beta = %d, want 503", rr.Code)
	}

	// Live tail after bootstrap: a tenant created and written while the
	// follower streams must appear without a re-bootstrap.
	req, _ = http.NewRequest(http.MethodPut, l.ts.URL+"/api/t/beta", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	beta, _ := l.p.Workspaces().Get("beta")
	if err := beta.AddMaterial(&material.Material{
		ID: "beta-1", Title: "Material beta-1", Kind: material.Assignment,
		Level: material.Intermediate, Collection: "drill",
	}); err != nil {
		t.Fatal(err)
	}
	fn.waitApplied(t, l.p.Seq())
	fBeta, ok := fn.f.Workspaces().Get("beta")
	if !ok {
		t.Fatal("follower missed live tenant.create")
	}
	if fBeta.Material("beta-1") == nil {
		t.Error("follower missed write to live-created workspace")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
