package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"carcs/internal/resilience"
)

// Router defaults.
const (
	// DefaultProbeInterval paces the readiness sweep over all backends.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultBackendTimeout bounds one proxied read attempt; a write gets
	// double (it pays an fsync).
	DefaultBackendTimeout = 5 * time.Second
	// DefaultMaxLag is the staleness budget in journal sequences: a
	// follower further behind the leader is routed around until it
	// catches up.
	DefaultMaxLag = 1000
	// DefaultElectionWait is how long a write waits for a leader to appear
	// before the router gives up with 503 + Retry-After. Sized to cover a
	// promotion plus a probe sweep, not a full outage.
	DefaultElectionWait = 2 * time.Second
)

// RouterConfig tunes the router. Zero values take defaults.
type RouterConfig struct {
	// Backends are the member base URLs. Leadership is discovered by
	// probing each member's /api/health/ready (role + epoch), not assumed
	// from order; the first entry only serves as the compatibility leader
	// for backends too old to report a role.
	Backends []string
	// ProbeInterval paces health probes.
	ProbeInterval time.Duration
	// BackendTimeout bounds one proxied read attempt.
	BackendTimeout time.Duration
	// MaxLag is the staleness budget in sequences.
	MaxLag uint64
	// ElectionWait bounds how long a write waits for leader discovery
	// before answering 503; <= 0 takes DefaultElectionWait.
	ElectionWait time.Duration
	// Breaker tunes the per-backend ejection breaker. The router default
	// ejects on the first failure (a retry already saved the client) and
	// re-probes after a short cooldown — half-open, one probe at a time,
	// exactly like the journal write breaker.
	Breaker resilience.BreakerConfig
}

// Probed backend roles.
const (
	roleUnknown int32 = iota // probe never decoded a role (legacy backend)
	roleLeader
	roleFollower
	roleFenced
	roleOther
)

func roleString(r int32) string {
	switch r {
	case roleLeader:
		return "leader"
	case roleFollower:
		return "follower"
	case roleFenced:
		return "fenced"
	case roleOther:
		return "other"
	}
	return "unknown"
}

// backend is one routed member with its ejection breaker and last-probed
// replication position.
type backend struct {
	url     string
	first   bool // config order; leader-compat for backends with no role
	breaker *resilience.Breaker

	role     atomic.Int32
	epoch    atomic.Uint64
	seq      atomic.Uint64
	ready    atomic.Bool
	lastErr  atomic.Pointer[string]
	served   atomic.Uint64
	failures atomic.Uint64
}

// claimsLeader reports whether this backend's last probe claimed the write
// path: an explicit leader role, or — for backends predating role
// reporting — the configured first position.
func (b *backend) claimsLeader() bool {
	switch b.role.Load() {
	case roleLeader:
		return true
	case roleUnknown:
		return b.first
	}
	return false
}

// Router fans reads out across followers with the leader as fallback, and
// proxies writes to the discovered leader. A failed read attempt is retried
// on the next candidate before anything reaches the client, so a backend
// dying mid-request degrades to a slower answer, never a 5xx. Leadership is
// probed, not configured: writes follow whichever backend claims the
// highest epoch, and a backend still claiming leadership at a stale epoch
// is ejected from rotation and told it has been deposed.
type Router struct {
	cfg      RouterConfig
	backends []*backend
	client   *http.Client

	lastLeader atomic.Pointer[backend]

	rr atomic.Uint64

	reads           atomic.Uint64
	writes          atomic.Uint64
	retries         atomic.Uint64
	leaderFallbacks atomic.Uint64
	writeUnrouted   atomic.Uint64
	fenced          atomic.Uint64

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewRouter builds a router over the given backends.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("replica: router needs at least one backend")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.BackendTimeout <= 0 {
		cfg.BackendTimeout = DefaultBackendTimeout
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.ElectionWait <= 0 {
		cfg.ElectionWait = DefaultElectionWait
	}
	if cfg.Breaker.FailureThreshold == 0 {
		cfg.Breaker.FailureThreshold = 1
	}
	if cfg.Breaker.Cooldown == 0 {
		cfg.Breaker.Cooldown = 2 * time.Second
	}
	// One tuned transport serves every proxied read: a deep idle pool per
	// backend (the scatter pattern reopens connections constantly under the
	// default 2-per-host cap), no bound on total idle connections, and a
	// generous idle timeout so steady read traffic never pays connection
	// setup. ForceAttemptHTTP2 is left off — backends are plain HTTP/1.1 and
	// the proxy copies bodies verbatim.
	rt := &Router{cfg: cfg, client: &http.Client{Transport: &http.Transport{
		MaxIdleConns:        0, // unlimited; per-host cap governs
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}}}
	for i, raw := range cfg.Backends {
		rt.backends = append(rt.backends, &backend{
			url:     strings.TrimRight(raw, "/"),
			first:   i == 0,
			breaker: resilience.NewBreaker(cfg.Breaker),
		})
	}
	// Until the first probe lands, the first-configured backend is the best
	// leader guess: reads fall back to it rather than failing closed.
	rt.lastLeader.Store(rt.backends[0])
	return rt, nil
}

// Start launches the background probe loop (and runs one synchronous sweep
// first, so a freshly started router routes correctly immediately).
func (rt *Router) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.stop != nil {
		return
	}
	rt.probeAll()
	rt.stop = make(chan struct{})
	rt.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rt.probeAll()
			case <-stop:
				return
			}
		}
	}(rt.stop, rt.done)
}

// Close stops the probe loop.
func (rt *Router) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.stop == nil {
		return
	}
	close(rt.stop)
	<-rt.done
	rt.stop, rt.done = nil, nil
}

// probeAll sweeps every backend's /api/health/ready in parallel, then runs
// the fence sweep: if more than one ready backend claims leadership, only
// the highest epoch is real — stale claimants are ejected from rotation and
// notified that they have been deposed. Probes share the ejection breaker
// with live traffic: a probe against an ejected backend is exactly the
// breaker's half-open trial, so recovery needs no separate mechanism.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probe(b)
		}(b)
	}
	wg.Wait()

	var lead *backend
	var maxE uint64
	for _, b := range rt.backends {
		if !b.ready.Load() || !b.claimsLeader() {
			continue
		}
		if e := b.epoch.Load(); lead == nil || e > maxE {
			lead, maxE = b, e
		}
	}
	if lead == nil {
		return
	}
	rt.lastLeader.Store(lead)
	for _, b := range rt.backends {
		if b == lead || !b.ready.Load() || !b.claimsLeader() || b.epoch.Load() >= maxE {
			continue
		}
		// Split brain: this backend still believes it leads a term that has
		// been superseded. Never route to it, and shorten the window in
		// which it accepts writes it can no longer replicate.
		b.ready.Store(false)
		rt.fenced.Add(1)
		msg := fmt.Sprintf("stale leader claim: epoch %d, current %d at %s",
			b.epoch.Load(), maxE, lead.url)
		b.lastErr.Store(&msg)
		go func(url string) {
			_ = NotifyFence(context.Background(), rt.client, url, maxE, lead.url)
		}(b.url)
	}
}

// readyBody is the slice of /api/health/ready the router consumes.
type readyBody struct {
	Status     string `json:"status"`
	Role       string `json:"role"`
	Epoch      uint64 `json:"epoch"`
	Seq        uint64 `json:"seq"`
	AppliedSeq uint64 `json:"applied_seq"`
}

func (rt *Router) probe(b *backend) {
	_, err := b.breaker.Acquire()
	if err != nil {
		return // still cooling down; FastFail keeps it out of rotation
	}
	perr := func() error {
		ctx, cancel := context.WithTimeout(context.Background(),
			min(rt.cfg.BackendTimeout, 2*time.Second))
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/api/health/ready", nil)
		if err != nil {
			return err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var body readyBody
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); derr == nil {
			b.seq.Store(max(body.Seq, body.AppliedSeq))
			b.epoch.Store(body.Epoch)
			switch body.Role {
			case "leader", "standalone":
				b.role.Store(roleLeader)
			case "follower":
				b.role.Store(roleFollower)
			case "fenced":
				b.role.Store(roleFenced)
			case "":
				b.role.Store(roleUnknown)
			default:
				b.role.Store(roleOther)
			}
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("replica: %s unready (%s)", b.url, resp.Status)
		}
		return nil
	}()
	b.breaker.Record(perr)
	b.ready.Store(perr == nil)
	if perr != nil {
		msg := perr.Error()
		b.lastErr.Store(&msg)
	} else {
		b.lastErr.Store(nil)
	}
}

// leader returns the ready backend claiming leadership at the highest
// epoch, or nil during an election window when no live backend claims the
// write path.
func (rt *Router) leader() *backend {
	var lead *backend
	var maxE uint64
	for _, b := range rt.backends {
		if !b.ready.Load() || !b.claimsLeader() || b.breaker.FastFail() {
			continue
		}
		if e := b.epoch.Load(); lead == nil || e > maxE {
			lead, maxE = b, e
		}
	}
	if lead != nil {
		rt.lastLeader.Store(lead)
	}
	return lead
}

// awaitLeader polls for a discovered leader until the election-wait budget
// elapses. The background probe loop keeps sweeping meanwhile, so a
// promotion completing inside the window is picked up here.
func (rt *Router) awaitLeader(ctx context.Context) *backend {
	deadline := time.NewTimer(rt.cfg.ElectionWait)
	defer deadline.Stop()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		if b := rt.leader(); b != nil {
			return b
		}
		select {
		case <-tick.C:
		case <-deadline.C:
			return nil
		case <-ctx.Done():
			return nil
		}
	}
}

// horizon is the reference sequence lag is measured against: the leader's
// probed position, or — with no leader — the furthest-ahead ready backend.
func (rt *Router) horizon() uint64 {
	if lead := rt.lastLeader.Load(); lead != nil && lead.ready.Load() {
		return lead.seq.Load()
	}
	var m uint64
	for _, b := range rt.backends {
		if b.ready.Load() {
			m = max(m, b.seq.Load())
		}
	}
	return m
}

// lag returns how many sequences b trails the routing horizon.
func (rt *Router) lag(b *backend) uint64 {
	if h, bs := rt.horizon(), b.seq.Load(); h > bs {
		return h - bs
	}
	return 0
}

// readCandidates orders the backends to try for one read: in-budget, ready
// non-leader backends rotated round-robin, then the leader as the
// authoritative fallback (always, even when its own probe is stale — a
// read against it is the last thing standing between the client and a
// 502). During an election window the last known leader fills the fallback
// slot: its read-only state still beats an error.
func (rt *Router) readCandidates() (cands []*backend, lead *backend) {
	lead = rt.leader()
	var eligible []*backend
	for _, b := range rt.backends {
		if b == lead {
			continue
		}
		if b.ready.Load() && !b.breaker.FastFail() && rt.lag(b) <= rt.cfg.MaxLag {
			eligible = append(eligible, b)
		}
	}
	out := make([]*backend, 0, len(eligible)+1)
	if n := len(eligible); n > 0 {
		start := int(rt.rr.Add(1)) % n
		for i := 0; i < n; i++ {
			out = append(out, eligible[(start+i)%n])
		}
	} else if len(rt.backends) > 1 && lead != nil {
		rt.leaderFallbacks.Add(1)
	}
	if lead != nil {
		return append(out, lead), lead
	}
	if last := rt.lastLeader.Load(); last != nil {
		for _, b := range out {
			if b == last {
				return out, nil
			}
		}
		return append(out, last), nil
	}
	return out, nil
}

// ServeHTTP routes one request: router-local health endpoints, then reads
// scattered over the candidates, writes proxied to the leader.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/api/health":
		rt.serveHealth(w)
		return
	case "/api/health/live":
		writeRouterJSON(w, http.StatusOK, map[string]string{"status": "live", "role": "router"})
		return
	case "/api/health/ready":
		rt.serveReady(w)
		return
	}
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		rt.serveRead(w, r)
		return
	}
	rt.serveWrite(w, r)
}

// serveRead tries each candidate in order until one yields a non-5xx
// response. Conditional validators are stripped: ETags are view
// generations, which are process-local, so a validator minted by one
// backend must never produce a 304 on another.
func (rt *Router) serveRead(w http.ResponseWriter, r *http.Request) {
	rt.reads.Add(1)
	cands, lead := rt.readCandidates()
	tried := 0
	for i, b := range cands {
		if _, err := b.breaker.Acquire(); err != nil {
			if b == lead || i == len(cands)-1 {
				// Final fallback and its breaker is cooling down: a
				// stale read against it still beats a guaranteed 502.
				// attempt writes nothing on failure, so falling through
				// to the 502 below is safe.
				err := rt.attempt(w, r, b, rt.cfg.BackendTimeout)
				b.breaker.Record(err)
				if err == nil {
					return
				}
				b.failures.Add(1)
			}
			continue
		}
		tried++
		err := rt.attempt(w, r, b, rt.cfg.BackendTimeout)
		b.breaker.Record(err)
		if err == nil {
			return
		}
		b.failures.Add(1)
		rt.retries.Add(1)
	}
	writeRouterError(w, http.StatusBadGateway,
		fmt.Sprintf("no backend could serve the read (%d tried)", tried), 1)
}

// errBackend marks a failed proxy attempt that wrote nothing to the client
// (safe to retry on the next backend).
type errBackend struct{ err error }

func (e errBackend) Error() string { return e.err.Error() }

// attempt proxies one read to b. It buffers nothing: headers and status are
// only written once the backend has answered with a non-5xx status, so a
// failure before that point leaves the client connection untouched and
// retryable. Returns nil once the response has begun streaming.
func (rt *Router) attempt(w http.ResponseWriter, r *http.Request, b *backend, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, b.url+r.URL.RequestURI(), nil)
	if err != nil {
		return errBackend{err}
	}
	copyProxyHeaders(req.Header, r.Header)
	resp, err := rt.client.Do(req)
	if err != nil {
		return errBackend{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= http.StatusInternalServerError {
		// Drain a little so the connection can be reused, then retry
		// elsewhere.
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		return errBackend{fmt.Errorf("replica: %s answered %s", b.url, resp.Status)}
	}
	hdr := w.Header()
	for k, vv := range resp.Header {
		hdr[k] = vv
	}
	hdr.Del("Etag") // process-local validator; see serveRead
	hdr.Set(HeaderRoute, b.url)
	if hdr.Get(HeaderEpoch) == "" {
		if e := b.epoch.Load(); e > 0 {
			hdr.Set(HeaderEpoch, strconv.FormatUint(e, 10))
		}
	}
	w.WriteHeader(resp.StatusCode)
	b.served.Add(1)
	copyBody(w, resp.Body) // a mid-body failure is the client's truncation to detect
	return nil
}

// proxyBufPool recycles body-copy buffers across proxied requests: io.Copy
// would otherwise allocate a fresh 32 KiB buffer per read, which at router
// scatter rates is pure GC pressure.
var proxyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

func copyBody(dst io.Writer, src io.Reader) {
	bp := proxyBufPool.Get().(*[]byte)
	_, _ = io.CopyBuffer(dst, src, *bp)
	proxyBufPool.Put(bp)
}

// serveWrite proxies a mutation to the discovered leader, streaming the
// body through. With no leader (election window) it waits briefly for a
// promotion to land, then answers 503 with Retry-After and the last known
// leader — never a silent proxy to a node that may no longer own the write
// path.
func (rt *Router) serveWrite(w http.ResponseWriter, r *http.Request) {
	rt.writes.Add(1)
	b := rt.leader()
	if b == nil {
		b = rt.awaitLeader(r.Context())
	}
	if b == nil {
		rt.writeUnrouted.Add(1)
		msg := "no leader available; election in progress"
		if last := rt.lastLeader.Load(); last != nil {
			msg += "; last known leader " + last.url
		}
		writeRouterError(w, http.StatusServiceUnavailable, msg, 1)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*rt.cfg.BackendTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, b.url+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, err.Error(), 1)
		return
	}
	req.ContentLength = r.ContentLength
	copyProxyHeaders(req.Header, r.Header)
	resp, err := rt.client.Do(req)
	if err != nil {
		// The leader died under the write. The next probe sweep will eject
		// it and discover its successor; tell the client to retry rather
		// than surfacing a bare proxy error.
		b.failures.Add(1)
		b.ready.Store(false)
		rt.writeUnrouted.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable,
			"leader unreachable, retry: "+err.Error(), 1)
		return
	}
	defer resp.Body.Close()
	hdr := w.Header()
	for k, vv := range resp.Header {
		hdr[k] = vv
	}
	hdr.Set(HeaderRoute, b.url)
	if hdr.Get(HeaderEpoch) == "" {
		if e := b.epoch.Load(); e > 0 {
			hdr.Set(HeaderEpoch, strconv.FormatUint(e, 10))
		}
	}
	w.WriteHeader(resp.StatusCode)
	b.served.Add(1)
	copyBody(w, resp.Body)
}

// hop-by-hop and validator headers never forwarded to a backend.
var dropHeaders = map[string]bool{
	"Connection":        true,
	"Keep-Alive":        true,
	"Upgrade":           true,
	"Transfer-Encoding": true,
	"Te":                true,
	"Trailer":           true,
	"If-None-Match":     true, // process-local ETags; see serveRead
	"If-Match":          true,
}

func copyProxyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if dropHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append([]string(nil), vv...)
	}
}

// backendJSON is one member's state in the router health payload.
type backendJSON struct {
	URL      string                  `json:"url"`
	Leader   bool                    `json:"leader"`
	Role     string                  `json:"role"`
	Epoch    uint64                  `json:"epoch"`
	Ready    bool                    `json:"ready"`
	Seq      uint64                  `json:"seq"`
	Lag      uint64                  `json:"lag"`
	Served   uint64                  `json:"served"`
	Failures uint64                  `json:"failures"`
	Breaker  resilience.BreakerStats `json:"breaker"`
	LastErr  string                  `json:"last_error,omitempty"`
}

func (rt *Router) serveHealth(w http.ResponseWriter) {
	lead := rt.leader()
	members := make([]backendJSON, 0, len(rt.backends))
	readable := 0
	for _, b := range rt.backends {
		bj := backendJSON{
			URL: b.url, Leader: b == lead, Role: roleString(b.role.Load()),
			Epoch: b.epoch.Load(), Ready: b.ready.Load(),
			Seq: b.seq.Load(), Lag: rt.lag(b),
			Served: b.served.Load(), Failures: b.failures.Load(),
			Breaker: b.breaker.Stats(),
		}
		if msg := b.lastErr.Load(); msg != nil {
			bj.LastErr = *msg
		}
		if bj.Ready {
			readable++
		}
		members = append(members, bj)
	}
	status, code := "ok", http.StatusOK
	switch {
	case readable == 0:
		status, code = "degraded", http.StatusServiceUnavailable
	case lead == nil:
		status = "no-leader"
	}
	writeRouterJSON(w, code, map[string]any{
		"status":   status,
		"role":     "router",
		"backends": members,
		"stats": map[string]uint64{
			"reads":            rt.reads.Load(),
			"writes":           rt.writes.Load(),
			"read_retries":     rt.retries.Load(),
			"leader_fallbacks": rt.leaderFallbacks.Load(),
			"writes_unrouted":  rt.writeUnrouted.Load(),
			"backends_fenced":  rt.fenced.Load(),
		},
	})
}

func (rt *Router) serveReady(w http.ResponseWriter) {
	anyReady := false
	for _, b := range rt.backends {
		if b.ready.Load() {
			anyReady = true
			break
		}
	}
	if !anyReady {
		writeRouterJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready", "role": "router", "reasons": []string{"no backend ready"},
		})
		return
	}
	body := map[string]any{"status": "ready", "role": "router", "seq": rt.horizon()}
	if lead := rt.leader(); lead != nil {
		body["leader"] = lead.url
		body["epoch"] = lead.epoch.Load()
		body["seq"] = lead.seq.Load()
	}
	writeRouterJSON(w, http.StatusOK, body)
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRouterError mirrors the server's overload envelope: the standard
// {"error","retry_after_seconds"} body plus a Retry-After header.
func writeRouterError(w http.ResponseWriter, status int, msg string, retrySecs int) {
	w.Header().Set("Retry-After", strconv.Itoa(retrySecs))
	writeRouterJSON(w, status, map[string]any{
		"error":               msg,
		"retry_after_seconds": retrySecs,
	})
}
