package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// wrapTracker hands every (re)opened WAL sink to a FaultWriter and keeps the
// newest one so the test can sever the live writer mid-run.
type wrapTracker struct {
	mu   sync.Mutex
	cur  *FaultWriter
	sick bool // sever each new writer immediately (disk still broken)
}

func (wt *wrapTracker) wrap(ws WriteSyncer) WriteSyncer {
	fw := NewFaultWriter(ws, -1, false)
	wt.mu.Lock()
	wt.cur = fw
	if wt.sick {
		fw.SeverAfter(0)
	}
	wt.mu.Unlock()
	return fw
}

func (wt *wrapTracker) sever(n int64) {
	wt.mu.Lock()
	wt.sick = true
	wt.cur.SeverAfter(n)
	wt.mu.Unlock()
}

func (wt *wrapTracker) heal() {
	wt.mu.Lock()
	wt.sick = false
	wt.mu.Unlock()
}

func TestStoreRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"a", "b"} {
		if _, err := s.Append(op, map[string]string{"op": op}); err != nil {
			t.Fatal(err)
		}
	}

	// Sever mid-frame: 4 bytes of the next record land, then the write
	// fails, leaving a torn frame and a sticky writer error.
	wt.sever(4)
	if _, err := s.Append("torn", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("severed append err = %v, want ErrFault", err)
	}
	if _, err := s.Append("after", nil); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	if s.Stats().Err == "" {
		t.Fatal("sticky error not surfaced in stats")
	}

	wt.heal()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if s.Stats().Err != "" {
		t.Fatalf("stats err after recover = %q, want healthy", s.Stats().Err)
	}
	if seq, err := s.Append("c", map[string]string{"op": "c"}); err != nil || seq != 3 {
		t.Fatalf("post-recover append = (%d, %v), want seq 3", seq, err)
	}
	s.Close()

	// A fresh open must replay exactly a, b, c — the torn frame is gone.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var ops []string
	if _, err := s2.Replay(func(rec Record) error {
		ops = append(ops, rec.Op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(ops) != len(want) {
		t.Fatalf("replayed ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("replayed ops = %v, want %v", ops, want)
		}
	}
}

func TestStoreRecoverDropsUnacknowledgedRecord(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", nil); err != nil {
		t.Fatal(err)
	}

	// Fail the fsync: the frame reaches the file intact, but the client is
	// told the write failed. That record must NOT survive recovery — the
	// caller already rolled back / reported an error for it.
	wt.mu.Lock()
	wt.cur.SeverOnSync()
	wt.mu.Unlock()
	if _, err := s.Append("phantom", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("sync-severed append err = %v, want ErrFault", err)
	}

	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// The freed sequence number is reused by the next acknowledged append.
	if seq, err := s.Append("b", nil); err != nil || seq != 2 {
		t.Fatalf("post-recover append = (%d, %v), want seq 2", seq, err)
	}
	s.Close()

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var ops []string
	if _, err := s2.Replay(func(rec Record) error {
		ops = append(ops, rec.Op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0] != "a" || ops[1] != "b" {
		t.Fatalf("replayed ops = %v, want [a b] (phantom dropped)", ops)
	}
}

func TestStoreRecoverWhileStillSickFailsNextAppend(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	wt.sever(0)
	if _, err := s.Append("x", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	// Recover succeeds (the file itself is readable) but the medium is
	// still sick, so the next append fails again — the probe-failure path.
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, err := s.Append("y", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("append on still-sick medium err = %v, want ErrFault", err)
	}
}

// TestReplayTornTailAcrossCheckpointBoundary cuts the log at EVERY byte
// offset inside the final frame and asserts replay always recovers exactly
// the whole records, with the checkpoint still covering its part. This is
// the crash geometry a kill-9 during an append after a checkpoint leaves
// behind: checkpoint at seq 3, one whole post-checkpoint record, one torn
// one.
func TestReplayTornTailAcrossCheckpointBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"a", "b", "c"} {
		if _, err := s.Append(op, map[string]string{"op": op}); err != nil {
			t.Fatal(err)
		}
	}
	// Fold a..c (seqs 1..3) into the checkpoint; the WAL resets.
	payload := []byte(`{"snapshot":"abc"}`)
	if err := s.WriteCheckpoint(func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("d", map[string]string{"op": "d"}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	finalStart := int64(len(whole)) // record e starts where d's frame ends
	if _, err := s.Append("e", map[string]string{"op": "e"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}

	for cut := finalStart; cut <= int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, checkpointFile), ckpt, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cdir, walFile), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			cs, err := Open(cdir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cs.Close()
			var ops []string
			if _, err := cs.Replay(func(rec Record) error {
				ops = append(ops, rec.Op)
				return nil
			}); err != nil {
				t.Fatalf("replay with tail cut at %d: %v", cut, err)
			}
			want := []string{"d"}
			wantSeq := uint64(4)
			if cut == int64(len(full)) {
				want = []string{"d", "e"}
				wantSeq = 5
			}
			if len(ops) != len(want) {
				t.Fatalf("replayed ops = %v, want %v", ops, want)
			}
			for i := range want {
				if ops[i] != want[i] {
					t.Fatalf("replayed ops = %v, want %v", ops, want)
				}
			}
			st := cs.Stats()
			if st.Seq != wantSeq || st.CheckpointSeq != 3 {
				t.Fatalf("stats = (seq %d, checkpoint %d), want (%d, 3)", st.Seq, st.CheckpointSeq, wantSeq)
			}
			// The torn bytes must be gone from disk, so the next append
			// lands on a frame boundary.
			if seq, err := cs.Append("f", nil); err != nil || seq != wantSeq+1 {
				t.Fatalf("post-replay append = (%d, %v), want seq %d", seq, err, wantSeq+1)
			}
		})
	}
}

// TestRecoverRacesAppend hammers Append from several writers while another
// goroutine periodically severs the medium, heals it, and calls Recover —
// the half-open probe path under live write pressure. Every acknowledged
// append must survive the final reopen; every failed one must not.
func TestRecoverRacesAppend(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}

	var (
		ackMu sync.Mutex
		acked = make(map[uint64]string)
	)
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				op := fmt.Sprintf("w%d-%d", wid, i)
				seq, err := s.Append(op, nil)
				if err != nil {
					continue // unacked: must NOT survive recovery
				}
				ackMu.Lock()
				acked[seq] = op
				ackMu.Unlock()
			}
		}(wid)
	}
	// The chaos goroutine: sever the live writer, let a few appends fail,
	// heal, recover. Loops until the writers are done.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for healthy := true; ; {
		select {
		case <-done:
		default:
			if healthy {
				wt.sever(2) // torn frame: 2 bytes land, then the write dies
			} else {
				wt.heal()
				if err := s.Recover(); err != nil {
					t.Errorf("recover: %v", err)
				}
			}
			healthy = !healthy
			continue
		}
		break
	}
	// Leave the store healthy for the final drain.
	wt.heal()
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	replayed := make(map[uint64]string)
	if _, err := s2.Replay(func(rec Record) error {
		if _, dup := replayed[rec.Seq]; dup {
			return fmt.Errorf("duplicate seq %d", rec.Seq)
		}
		replayed[rec.Seq] = rec.Op
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for seq, op := range acked {
		if got, ok := replayed[seq]; !ok || got != op {
			t.Fatalf("acked seq %d (%s) missing or wrong after replay (got %q, present %v)", seq, op, got, ok)
		}
	}
}
