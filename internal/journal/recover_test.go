package journal

import (
	"errors"
	"sync"
	"testing"
)

// wrapTracker hands every (re)opened WAL sink to a FaultWriter and keeps the
// newest one so the test can sever the live writer mid-run.
type wrapTracker struct {
	mu   sync.Mutex
	cur  *FaultWriter
	sick bool // sever each new writer immediately (disk still broken)
}

func (wt *wrapTracker) wrap(ws WriteSyncer) WriteSyncer {
	fw := NewFaultWriter(ws, -1, false)
	wt.mu.Lock()
	wt.cur = fw
	if wt.sick {
		fw.SeverAfter(0)
	}
	wt.mu.Unlock()
	return fw
}

func (wt *wrapTracker) sever(n int64) {
	wt.mu.Lock()
	wt.sick = true
	wt.cur.SeverAfter(n)
	wt.mu.Unlock()
}

func (wt *wrapTracker) heal() {
	wt.mu.Lock()
	wt.sick = false
	wt.mu.Unlock()
}

func TestStoreRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"a", "b"} {
		if _, err := s.Append(op, map[string]string{"op": op}); err != nil {
			t.Fatal(err)
		}
	}

	// Sever mid-frame: 4 bytes of the next record land, then the write
	// fails, leaving a torn frame and a sticky writer error.
	wt.sever(4)
	if _, err := s.Append("torn", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("severed append err = %v, want ErrFault", err)
	}
	if _, err := s.Append("after", nil); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	if s.Stats().Err == "" {
		t.Fatal("sticky error not surfaced in stats")
	}

	wt.heal()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if s.Stats().Err != "" {
		t.Fatalf("stats err after recover = %q, want healthy", s.Stats().Err)
	}
	if seq, err := s.Append("c", map[string]string{"op": "c"}); err != nil || seq != 3 {
		t.Fatalf("post-recover append = (%d, %v), want seq 3", seq, err)
	}
	s.Close()

	// A fresh open must replay exactly a, b, c — the torn frame is gone.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var ops []string
	if _, err := s2.Replay(func(rec Record) error {
		ops = append(ops, rec.Op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(ops) != len(want) {
		t.Fatalf("replayed ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("replayed ops = %v, want %v", ops, want)
		}
	}
}

func TestStoreRecoverDropsUnacknowledgedRecord(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", nil); err != nil {
		t.Fatal(err)
	}

	// Fail the fsync: the frame reaches the file intact, but the client is
	// told the write failed. That record must NOT survive recovery — the
	// caller already rolled back / reported an error for it.
	wt.mu.Lock()
	wt.cur.SeverOnSync()
	wt.mu.Unlock()
	if _, err := s.Append("phantom", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("sync-severed append err = %v, want ErrFault", err)
	}

	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// The freed sequence number is reused by the next acknowledged append.
	if seq, err := s.Append("b", nil); err != nil || seq != 2 {
		t.Fatalf("post-recover append = (%d, %v), want seq 2", seq, err)
	}
	s.Close()

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var ops []string
	if _, err := s2.Replay(func(rec Record) error {
		ops = append(ops, rec.Op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0] != "a" || ops[1] != "b" {
		t.Fatalf("replayed ops = %v, want [a b] (phantom dropped)", ops)
	}
}

func TestStoreRecoverWhileStillSickFailsNextAppend(t *testing.T) {
	dir := t.TempDir()
	wt := &wrapTracker{}
	s, err := Open(dir, &Options{WrapWAL: wt.wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	wt.sever(0)
	if _, err := s.Append("x", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	// Recover succeeds (the file itself is readable) but the medium is
	// still sick, so the next append fails again — the probe-failure path.
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, err := s.Append("y", nil); !errors.Is(err, ErrFault) {
		t.Fatalf("append on still-sick medium err = %v, want ErrFault", err)
	}
}
