package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// memWS is an in-memory WriteSyncer counting syncs.
type memWS struct {
	buf   bytes.Buffer
	syncs int
}

func (m *memWS) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memWS) Sync() error                 { m.syncs++; return nil }

func TestWriterScanRoundTrip(t *testing.T) {
	ws := &memWS{}
	w := NewWriter(ws, 0)
	type payload struct {
		Name string `json:"name"`
	}
	for i := 1; i <= 5; i++ {
		seq, err := w.Append("op", payload{Name: fmt.Sprintf("rec-%d", i)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if ws.syncs != 5 {
		t.Errorf("syncs = %d, want 5 (one per record)", ws.syncs)
	}
	recs, valid, err := DecodeAll(ws.buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if valid != int64(ws.buf.Len()) {
		t.Errorf("valid prefix %d != %d written", valid, ws.buf.Len())
	}
	if len(recs) != 5 {
		t.Fatalf("decoded %d records, want 5", len(recs))
	}
	var p payload
	if err := json.Unmarshal(recs[2].Data, &p); err != nil || p.Name != "rec-3" {
		t.Errorf("record 3 payload = %+v, %v", p, err)
	}
}

func TestScanTornTailTruncates(t *testing.T) {
	ws := &memWS{}
	w := NewWriter(ws, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append("op", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	whole := ws.buf.Len()
	// Chop the final record at every possible byte boundary: header torn,
	// payload torn — each must recover exactly the first two records.
	recs, _, err := DecodeAll(ws.buf.Bytes())
	if err != nil || len(recs) != 3 {
		t.Fatalf("setup decode: %d recs, %v", len(recs), err)
	}
	// Find offset where record 3 begins by re-encoding records 1-2.
	var prefix []byte
	for _, r := range recs[:2] {
		b, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, b...)
	}
	for cut := len(prefix) + 1; cut < whole; cut++ {
		got, valid, err := DecodeAll(ws.buf.Bytes()[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, len(got))
		}
		if valid != int64(len(prefix)) {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, len(prefix))
		}
	}
}

func TestScanCorruptInteriorRefused(t *testing.T) {
	ws := &memWS{}
	w := NewWriter(ws, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append("op", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	data := append([]byte(nil), ws.buf.Bytes()...)
	// Flip a byte in the middle of the first record's payload.
	data[headerSize+4] ^= 0xFF
	_, _, err := DecodeAll(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption error = %v, want ErrCorrupt", err)
	}

	// The same flip in the final record is a torn tail, not corruption.
	data = append([]byte(nil), ws.buf.Bytes()...)
	data[len(data)-3] ^= 0xFF
	recs, _, err := DecodeAll(data)
	if err != nil {
		t.Fatalf("final-record corruption: %v, want clean truncation", err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
}

func TestScanAbsurdLengthIsCorrupt(t *testing.T) {
	ws := &memWS{}
	w := NewWriter(ws, 0)
	if _, err := w.Append("op", map[string]int{"i": 1}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), ws.buf.Bytes()...)
	// Overwrite the length field with a value no Writer can produce.
	data[0], data[1], data[2], data[3] = 0xFF, 0xFF, 0xFF, 0x7F
	_, _, err := DecodeAll(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length error = %v, want ErrCorrupt", err)
	}
}

func TestScanNonIncreasingSeqIsCorrupt(t *testing.T) {
	r1, err := EncodeRecord(Record{Seq: 2, Op: "a"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EncodeRecord(Record{Seq: 2, Op: "b"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = DecodeAll(append(r1, r2...))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate seq error = %v, want ErrCorrupt", err)
	}
}

func TestWriterStickyFailure(t *testing.T) {
	ws := &memWS{}
	fw := NewFaultWriter(ws, 10, false)
	w := NewWriter(fw, 0)
	if _, err := w.Append("op", map[string]string{"k": "a long enough payload"}); !errors.Is(err, ErrFault) {
		t.Fatalf("append past budget = %v, want ErrFault", err)
	}
	if _, err := w.Append("op", map[string]int{"i": 1}); err == nil {
		t.Fatal("second append after failure succeeded; writer must be sticky")
	}
	if ws.buf.Len() != 10 {
		t.Errorf("underlying got %d bytes, want exactly the 10-byte budget", ws.buf.Len())
	}
}

func TestFaultWriterSyncFailure(t *testing.T) {
	ws := &memWS{}
	fw := NewFaultWriter(ws, -1, true)
	w := NewWriter(fw, 0)
	if _, err := w.Append("op", map[string]int{"i": 1}); !errors.Is(err, ErrFault) {
		t.Fatalf("append with failing sync = %v, want ErrFault", err)
	}
	if !fw.Failed() {
		t.Error("fault writer not marked failed")
	}
}

func TestStoreAppendReplayCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("x", nil); err == nil {
		t.Fatal("append before Replay succeeded")
	}
	if n, err := st.Replay(nil); err != nil || n != 0 {
		t.Fatalf("empty replay = %d, %v", n, err)
	}
	for i := 0; i < 4; i++ {
		if _, err := st.Append("op", map[string]int{"i": i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := st.WriteCheckpoint(func(w io.Writer) error {
		_, err := w.Write([]byte(`{"state":"four"}`))
		return err
	}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := st.Append("op", map[string]int{"i": 4}); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Seq != 5 || stats.CheckpointSeq != 4 || stats.WALRecords != 1 {
		t.Errorf("stats = %+v, want seq 5, checkpoint 4, 1 wal record", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: checkpoint payload intact, only the post-checkpoint record
	// replays.
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload, ok, err := st2.Checkpoint()
	if err != nil || !ok {
		t.Fatalf("checkpoint read = %v, ok=%v", err, ok)
	}
	if string(payload) != `{"state":"four"}` {
		t.Errorf("checkpoint payload = %q", payload)
	}
	var seqs []uint64
	n, err := st2.Replay(func(rec Record) error {
		seqs = append(seqs, rec.Seq)
		return nil
	})
	if err != nil || n != 1 || len(seqs) != 1 || seqs[0] != 5 {
		t.Fatalf("replay = %d records %v, err %v; want just seq 5", n, seqs, err)
	}
	// Sequence numbering continues past the recovered state.
	if seq, err := st2.Append("op", nil); err != nil || seq != 6 {
		t.Fatalf("post-recovery append seq = %d, %v; want 6", seq, err)
	}
	st2.Close()
}

func TestStoreCheckpointIsAtomic(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(func(w io.Writer) error {
		_, _ = w.Write([]byte("good"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A failing snapshot writer must leave the previous checkpoint intact
	// and no temp file behind.
	boom := errors.New("boom")
	if err := st.WriteCheckpoint(func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failed checkpoint err = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointTemp)); !os.IsNotExist(err) {
		t.Errorf("temp checkpoint left behind: %v", err)
	}
	payload, ok, err := st.Checkpoint()
	if err != nil || !ok || string(payload) != "good" {
		t.Errorf("surviving checkpoint = %q, ok=%v, err=%v", payload, ok, err)
	}
	st.Close()
}

func TestStoreTornWALRecordDiscardedOnReplay(t *testing.T) {
	dir := t.TempDir()
	var fw *FaultWriter
	opts := &Options{WrapWAL: func(ws WriteSyncer) WriteSyncer {
		fw = NewFaultWriter(ws, -1, false)
		return fw
	}}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("keep", map[string]int{"i": 1}); err != nil {
		t.Fatal(err)
	}
	// Sever the writer mid-record: allow 5 more bytes, then cut.
	fw.mu.Lock()
	fw.limited, fw.remaining = true, 5
	fw.mu.Unlock()
	if _, err := st.Append("lost", map[string]int{"i": 2}); !errors.Is(err, ErrFault) {
		t.Fatalf("severed append = %v, want ErrFault", err)
	}
	st.Close()

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	if _, err := st2.Replay(func(rec Record) error {
		ops = append(ops, rec.Op)
		return nil
	}); err != nil {
		t.Fatalf("replay after tear: %v", err)
	}
	if strings.Join(ops, ",") != "keep" {
		t.Fatalf("replayed ops = %v, want only the committed record", ops)
	}
	// The torn bytes were truncated from disk.
	fi, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st2.Stats().WALBytes {
		t.Errorf("wal size %d != stats %d", fi.Size(), st2.Stats().WALBytes)
	}
	st2.Close()
}

func TestStoreCorruptInteriorRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append("op", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Replay(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over corrupt interior = %v, want ErrCorrupt", err)
	}
}
