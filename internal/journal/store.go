package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// File names inside a journal directory.
const (
	checkpointFile = "checkpoint.json"
	checkpointTemp = "checkpoint.json.tmp"
	walFile        = "journal.wal"
)

// ErrCompacted reports that the requested tail of the log has already been
// folded into a checkpoint and truncated away. A replication follower that
// sees it must re-bootstrap from the checkpoint instead of the log.
var ErrCompacted = errors.New("journal: records compacted into checkpoint")

// Options configure a Store.
type Options struct {
	// WrapWAL, if set, wraps the write-ahead log's sink whenever it is
	// (re)opened — the hook fault-injection tests use to sever writes.
	WrapWAL func(WriteSyncer) WriteSyncer
}

// Store manages one durability directory: a checkpoint snapshot plus the
// write-ahead log of mutations since. The on-disk protocol:
//
//   - checkpoint.json: one JSON meta line {"seq": N} followed by the
//     caller's snapshot payload, written to checkpoint.json.tmp, fsync'd,
//     and renamed into place so a crash never leaves a half checkpoint.
//   - journal.wal: framed records (see Scan). Records with Seq <= the
//     checkpoint's N are already folded into the snapshot and skipped on
//     replay, which makes the checkpoint-then-truncate pair crash-safe in
//     either order.
type Store struct {
	dir  string
	wrap func(WriteSyncer) WriteSyncer

	mu        sync.Mutex
	f         *os.File
	w         *Writer
	recovered bool
	closed    bool

	checkpointSeq   uint64
	checkpointAt    time.Time
	checkpointBytes int64

	// epoch is the leadership term stamped on new records: the max of the
	// checkpoint meta's epoch, any epoch seen during replay, and explicit
	// SetEpoch bumps (promotion). It survives every Writer recreation —
	// Replay, Recover, and WriteCheckpoint all restamp the fresh Writer.
	epoch uint64

	walBytes   atomic.Int64
	walRecords uint64

	// Group-commit counters: batches is the number of AppendBatch syncs,
	// batchRecords the records those syncs covered. fsyncs saved =
	// batchRecords - batches. Both survive checkpoints (they describe the
	// store's lifetime, not the current log segment).
	batches      uint64
	batchRecords uint64

	// dirSyncErrors counts failed directory fsyncs after checkpoint
	// installs. A rename without a durable directory entry can be lost by
	// a crash, so degraded durability must be observable, not swallowed.
	dirSyncErrors atomic.Uint64
}

// checkpointMeta is the first line of a checkpoint file. Epoch is omitted
// when zero so a checkpoint written before failover existed — or by a
// deployment that never failed over — keeps its exact historical bytes.
type checkpointMeta struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// Open prepares the directory (creating it if needed) and reads the
// checkpoint metadata. Call Checkpoint and Replay to recover state, then
// Append to log new mutations.
func Open(dir string, opts *Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, wrap: func(ws WriteSyncer) WriteSyncer { return ws }}
	if opts != nil && opts.WrapWAL != nil {
		s.wrap = opts.WrapWAL
	}
	path := filepath.Join(dir, checkpointFile)
	fi, err := os.Stat(path)
	switch {
	case err == nil:
		meta, err := readCheckpointMeta(path)
		if err != nil {
			return nil, err
		}
		s.checkpointSeq = meta.Seq
		s.epoch = meta.Epoch
		s.checkpointAt = fi.ModTime()
		s.checkpointBytes = fi.Size()
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("journal: stat checkpoint: %w", err)
	}
	return s, nil
}

func readCheckpointMeta(path string) (checkpointMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return checkpointMeta{}, fmt.Errorf("journal: open checkpoint: %w", err)
	}
	defer f.Close()
	var meta checkpointMeta
	line, err := bufio.NewReader(f).ReadBytes('\n')
	if err != nil && err != io.EOF {
		return meta, fmt.Errorf("journal: read checkpoint meta: %w", err)
	}
	if err := json.Unmarshal(line, &meta); err != nil {
		return meta, fmt.Errorf("journal: parse checkpoint meta: %w", err)
	}
	return meta, nil
}

// Dir returns the journal directory.
func (s *Store) Dir() string { return s.dir }

// Checkpoint returns the latest snapshot payload (the bytes after the meta
// line) and whether a checkpoint exists.
func (s *Store) Checkpoint() ([]byte, bool, error) {
	path := filepath.Join(s.dir, checkpointFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("journal: open checkpoint: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	if _, err := r.ReadBytes('\n'); err != nil && err != io.EOF {
		return nil, false, fmt.Errorf("journal: read checkpoint meta: %w", err)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, false, fmt.Errorf("journal: read checkpoint: %w", err)
	}
	return payload, true, nil
}

// CheckpointWithMeta returns the latest snapshot payload together with the
// sequence number it covers, reading both from the same opened file so a
// concurrent checkpoint install (an atomic rename) can never mix the pair.
// The replication bootstrap endpoint serves exactly this pair: followers
// restore the payload and tail the log from the covered sequence.
func (s *Store) CheckpointWithMeta() (payload []byte, seq, epoch uint64, ok bool, err error) {
	path := filepath.Join(s.dir, checkpointFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, 0, false, nil
	}
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("journal: open checkpoint: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, 0, 0, false, fmt.Errorf("journal: read checkpoint meta: %w", err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(line, &meta); err != nil {
		return nil, 0, 0, false, fmt.Errorf("journal: parse checkpoint meta: %w", err)
	}
	payload, err = io.ReadAll(r)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("journal: read checkpoint: %w", err)
	}
	return payload, meta.Seq, meta.Epoch, true, nil
}

// TailSince reads every committed record with Seq > from still present in
// the write-ahead log, in order. Records already folded into a checkpoint
// are gone from the log; asking for them returns ErrCompacted and the
// caller must bootstrap from the checkpoint instead.
//
// The file read and CRC scan run outside the store lock so a follower
// resuming from a deep cursor never stalls the append path. That is safe
// because the log is append-only between checkpoints: the scan keeps only
// records at or below the acknowledged sequence captured up front (so
// never-acked phantoms that a racing Recover may truncate stay invisible,
// and a half-written racing append parses as a clean torn tail), and a
// checkpoint truncation racing the read moves checkpointSeq, which is
// re-checked afterwards and retried against the new horizon.
func (s *Store) TailSince(from uint64) ([]Record, error) {
	for {
		s.mu.Lock()
		if !s.recovered || s.closed {
			s.mu.Unlock()
			return nil, fmt.Errorf("journal: store not open for tail reads")
		}
		if from < s.checkpointSeq {
			ckpt := s.checkpointSeq
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: want seq > %d, checkpoint covers %d", ErrCompacted, from, ckpt)
		}
		ack := s.w.Seq()
		ckpt := s.checkpointSeq
		s.mu.Unlock()

		data, err := os.ReadFile(filepath.Join(s.dir, walFile))
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("journal: tail read wal: %w", err)
		}
		var out []Record
		_, serr := Scan(bytes.NewReader(data), func(rec Record) error {
			if rec.Seq > from && rec.Seq <= ack {
				out = append(out, rec)
			}
			return nil
		})

		s.mu.Lock()
		stable := s.checkpointSeq == ckpt
		s.mu.Unlock()
		if !stable {
			continue // checkpoint truncation raced the read; rescan
		}
		if serr != nil {
			return nil, serr
		}
		return out, nil
	}
}

// Replay scans the write-ahead log, invoking fn for every committed record
// newer than the checkpoint, truncates any torn tail, and opens the log for
// appending. It returns the number of records applied. Interior corruption
// (ErrCorrupt) refuses recovery; the caller decides whether to discard the
// directory.
func (s *Store) Replay(fn func(Record) error) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered {
		return 0, fmt.Errorf("journal: already recovered")
	}
	path := filepath.Join(s.dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("journal: read wal: %w", err)
	}
	applied := 0
	lastSeq := s.checkpointSeq
	valid, err := Scan(bytes.NewReader(data), func(rec Record) error {
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
		if rec.Seq <= s.checkpointSeq {
			return nil // already folded into the checkpoint
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return fmt.Errorf("journal: replay seq %d (%s): %w", rec.Seq, rec.Op, err)
			}
		}
		applied++
		return nil
	})
	if err != nil {
		return applied, err
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return applied, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return applied, fmt.Errorf("journal: open wal: %w", err)
	}
	s.f = f
	s.walBytes.Store(valid)
	s.walRecords = uint64(applied)
	s.w = NewWriter(s.wrap(&countingWS{f: f, n: &s.walBytes}), lastSeq)
	s.w.SetEpoch(s.epoch)
	s.recovered = true
	return applied, nil
}

// errUnacked stops a recovery scan at the first record the writer never
// acknowledged.
var errUnacked = errors.New("journal: unacknowledged record")

// Recover reopens the write-ahead log after a write failure. The sticky
// Writer error means the log may end in a torn frame, or in fully-written
// records whose Append nevertheless returned an error (for example a write
// that landed but whose fsync failed) — records the client was told did NOT
// commit. Recover truncates the log back to the last acknowledged sequence
// number, dropping both kinds of phantom, and installs a fresh Writer
// through the usual wrap hook. The circuit breaker's half-open probe calls
// this before its probe append; if the underlying medium is still sick the
// new writer fails again and the breaker re-opens.
func (s *Store) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || s.closed {
		return fmt.Errorf("journal: store not open for recovery")
	}
	ack := s.w.Seq()
	if s.f != nil {
		// Best-effort: the fd may already be poisoned by the failed write.
		_ = s.f.Close()
		s.f = nil
	}
	path := filepath.Join(s.dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: recover read wal: %w", err)
	}
	var live uint64
	valid, err := Scan(bytes.NewReader(data), func(rec Record) error {
		if rec.Seq > ack {
			return errUnacked
		}
		if rec.Seq > s.checkpointSeq {
			live++
		}
		return nil
	})
	if err != nil && !errors.Is(err, errUnacked) {
		return err
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("journal: recover truncate: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: recover reopen wal: %w", err)
	}
	s.f = f
	s.walBytes.Store(valid)
	s.walRecords = live
	s.w = NewWriter(s.wrap(&countingWS{f: f, n: &s.walBytes}), ack)
	s.w.SetEpoch(s.epoch)
	return nil
}

// Append journals one mutation: framed, written, and fsync'd before it
// returns. It must not be called before Replay.
func (s *Store) Append(op string, data any) (uint64, error) {
	rec, err := s.AppendRecord(op, data)
	return rec.Seq, err
}

// AppendRecord is Append returning the committed record, for callers that
// forward the log downstream (the replication hub feeds its in-memory tail
// ring from exactly what hit the disk).
func (s *Store) AppendRecord(op string, data any) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || s.closed {
		return Record{}, fmt.Errorf("journal: store not open for appends")
	}
	rec, err := s.w.AppendRecord(op, data)
	if err != nil {
		return Record{}, err
	}
	s.walRecords++
	return rec, nil
}

// AppendBatch journals every op with one buffered write and one fsync,
// returning the committed records in order. All-or-nothing: on failure no
// sequence number is consumed and no record is acknowledged.
func (s *Store) AppendBatch(ops []BatchOp) ([]Record, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || s.closed {
		return nil, fmt.Errorf("journal: store not open for appends")
	}
	recs, err := s.w.AppendBatch(ops)
	if err != nil {
		return nil, err
	}
	s.walRecords += uint64(len(recs))
	s.batches++
	s.batchRecords += uint64(len(recs))
	return recs, nil
}

// WriteCheckpoint atomically persists a new snapshot — the caller's write
// callback streams the payload — and resets the write-ahead log. The caller
// must guarantee no mutation is in flight (freeze the state it snapshots)
// so the snapshot and the log agree on the covered sequence number.
func (s *Store) WriteCheckpoint(write func(io.Writer) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || s.closed {
		return fmt.Errorf("journal: store not open for checkpoints")
	}
	seq := s.w.Seq()
	tmp := filepath.Join(s.dir, checkpointTemp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: create checkpoint temp: %w", err)
	}
	meta, _ := json.Marshal(checkpointMeta{Seq: seq, Epoch: s.epoch})
	err = func() error {
		if _, err := f.Write(append(meta, '\n')); err != nil {
			return err
		}
		if err := write(f); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: write checkpoint: %w", err)
	}
	final := filepath.Join(s.dir, checkpointFile)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: install checkpoint: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		// The rename landed but its directory entry may not be durable
		// yet. Counting instead of failing keeps checkpointing available
		// on filesystems that refuse directory syncs, while making the
		// degraded guarantee observable through Stats and /api/health.
		s.dirSyncErrors.Add(1)
	}
	fi, err := os.Stat(final)
	if err != nil {
		return fmt.Errorf("journal: stat checkpoint: %w", err)
	}
	s.checkpointSeq = seq
	s.checkpointAt = fi.ModTime()
	s.checkpointBytes = fi.Size()

	// The snapshot now covers every journaled record; truncate the log. A
	// crash before the truncate is safe — replay skips seq <= checkpoint.
	wal := filepath.Join(s.dir, walFile)
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("journal: close wal: %w", err)
		}
	}
	f2, err := os.OpenFile(wal, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reset wal: %w", err)
	}
	s.f = f2
	s.walBytes.Store(0)
	s.walRecords = 0
	s.w = NewWriter(s.wrap(&countingWS{f: f2, n: &s.walBytes}), seq)
	s.w.SetEpoch(s.epoch)
	return nil
}

// SetEpoch bumps the leadership epoch stamped on new records. Epochs only
// move forward; a value at or below the current epoch is a no-op. Promotion
// calls this after draining the old leader's tail and before accepting
// writes, so every post-promotion record carries the new term.
func (s *Store) SetEpoch(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.epoch {
		s.epoch = epoch
		if s.w != nil {
			s.w.SetEpoch(epoch)
		}
	}
}

// Epoch returns the current leadership epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// AdvanceTo fast-forwards the writer's sequence cursor to seq without
// writing anything, so the next append is seq+1. A promoted follower calls
// this on its freshly-created journal directory: the follower's applied
// state covers everything up to its replication cursor, and new writes must
// continue that line rather than restart from zero. Only forward moves are
// allowed, and only on an empty log segment — rewinding, or jumping over
// live records, would orphan journaled state.
func (s *Store) AdvanceTo(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || s.closed {
		return fmt.Errorf("journal: store not open for advance")
	}
	if s.walRecords != 0 {
		return fmt.Errorf("journal: advance over %d live records", s.walRecords)
	}
	if cur := s.w.Seq(); seq < cur {
		return fmt.Errorf("journal: advance to %d behind current %d", seq, cur)
	}
	s.w = NewWriter(s.wrap(&countingWS{f: s.f, n: &s.walBytes}), seq)
	s.w.SetEpoch(s.epoch)
	return nil
}

// Stats describe the durability state for health reporting.
type Stats struct {
	// Dir is the journal directory.
	Dir string `json:"dir"`
	// Seq is the last journaled sequence number.
	Seq uint64 `json:"seq"`
	// CheckpointSeq is the last sequence folded into the checkpoint.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Epoch is the leadership term stamped on new records; zero until the
	// first failover.
	Epoch uint64 `json:"epoch,omitempty"`
	// WALRecords counts live records in the write-ahead log.
	WALRecords uint64 `json:"wal_records"`
	// WALBytes is the log's on-disk size.
	WALBytes int64 `json:"wal_bytes"`
	// CheckpointAt is the last checkpoint's time, zero if none.
	CheckpointAt time.Time `json:"checkpoint_at"`
	// CheckpointBytes is the checkpoint's on-disk size.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// DirSyncErrors counts checkpoint installs whose directory fsync
	// failed — the rename may not survive a crash. Non-zero means
	// durability is degraded even though appends still succeed.
	DirSyncErrors uint64 `json:"dir_sync_errors"`
	// Batches counts group-commit fsync windows over the store's lifetime.
	Batches uint64 `json:"batches,omitempty"`
	// BatchRecords counts records those windows covered.
	BatchRecords uint64 `json:"batch_records,omitempty"`
	// FsyncsSaved = BatchRecords - Batches: syncs that per-record append
	// would have paid but group commit amortized away.
	FsyncsSaved uint64 `json:"fsyncs_saved,omitempty"`
	// Err reports a sticky journal write failure, empty when healthy.
	Err string `json:"err,omitempty"`
}

// Stats returns the current durability state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:             s.dir,
		CheckpointSeq:   s.checkpointSeq,
		Epoch:           s.epoch,
		WALRecords:      s.walRecords,
		WALBytes:        s.walBytes.Load(),
		CheckpointAt:    s.checkpointAt,
		CheckpointBytes: s.checkpointBytes,
		DirSyncErrors:   s.dirSyncErrors.Load(),
		Batches:         s.batches,
		BatchRecords:    s.batchRecords,
	}
	if s.batchRecords > s.batches {
		st.FsyncsSaved = s.batchRecords - s.batches
	}
	if s.w != nil {
		st.Seq = s.w.Seq()
		if err := s.w.Err(); err != nil {
			st.Err = err.Error()
		}
	} else {
		st.Seq = s.checkpointSeq
	}
	return st
}

// Close releases the write-ahead log file. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}

// countingWS tracks the bytes that actually reached the file, so health
// stats reflect on-disk size even after a severed partial write.
type countingWS struct {
	f *os.File
	n *atomic.Int64
}

func (c *countingWS) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingWS) Sync() error { return c.f.Sync() }

// syncDir fsyncs a directory so a rename is durable. The caller decides
// what a failure means — WriteCheckpoint counts it rather than failing the
// checkpoint, since some filesystems refuse directory syncs entirely.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
