package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// legacyRecord is Record exactly as it was encoded before epochs existed:
// same fields, same order, same tags, no Epoch. Marshaling through it
// produces the historical bytes the compatibility claim is about.
type legacyRecord struct {
	Seq    uint64          `json:"seq"`
	Tenant string          `json:"tenant,omitempty"`
	Op     string          `json:"op"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// TestEpochZeroFilesByteIdentical proves the compatibility contract from
// the raw bytes up: a WAL and a checkpoint written by an epoch-aware store
// that never failed over (epoch 0) are byte-for-byte identical to files
// framed with the pre-epoch record shape. A byte-level diff here is what
// would break old followers and old WAL archives, so the test compares
// files, not parsed structs.
func TestEpochZeroFilesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	ops := []string{"a", "b", "c"}
	for _, op := range ops {
		if _, err := s.Append(op, map[string]string{"op": op}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	var want []byte
	for i, op := range ops {
		data, err := json.Marshal(map[string]string{"op": op})
		if err != nil {
			t.Fatal(err)
		}
		payload, err := json.Marshal(legacyRecord{Seq: uint64(i) + 1, Op: op, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		want = appendFrame(want, payload)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("epoch-0 WAL differs from legacy framing:\n got: %q\nwant: %q", got, want)
	}
	if bytes.Contains(got, []byte(`"epoch"`)) {
		t.Fatalf("epoch-0 WAL mentions epoch: %q", got)
	}

	snapshot := []byte(`{"snapshot":"abc"}`)
	if err := s.WriteCheckpoint(func(w io.Writer) error {
		_, err := w.Write(snapshot)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := json.Marshal(struct {
		Seq uint64 `json:"seq"`
	}{3})
	if err != nil {
		t.Fatal(err)
	}
	wantCkpt := append(append(meta, '\n'), snapshot...)
	if !bytes.Equal(ckpt, wantCkpt) {
		t.Fatalf("epoch-0 checkpoint differs from legacy layout:\n got: %q\nwant: %q", ckpt, wantCkpt)
	}
	if bytes.Contains(ckpt, []byte(`"epoch"`)) {
		t.Fatalf("epoch-0 checkpoint mentions epoch: %q", ckpt)
	}
}

// TestScanRejectsEpochRegression: a record whose epoch is lower than an
// earlier record's is not a crash artifact — torn tails truncate, they do
// not rewrite history — so Scan must refuse the whole region as corrupt
// rather than silently replaying a deposed leader's writes.
func TestScanRejectsEpochRegression(t *testing.T) {
	f1, err := EncodeRecord(Record{Seq: 1, Epoch: 2, Op: "a"})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := EncodeRecord(Record{Seq: 2, Epoch: 1, Op: "b"})
	if err != nil {
		t.Fatal(err)
	}
	log := append(append([]byte{}, f1...), f2...)
	valid, err := Scan(bytes.NewReader(log), func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if valid != int64(len(f1)) {
		t.Fatalf("valid = %d, want %d (end of the last good frame)", valid, len(f1))
	}
}

// TestReplayTornTailAcrossEpochBoundary cuts the log at EVERY byte offset
// from the first post-promotion frame onward: the crash geometry of a
// kill-9 during the first writes of a new leadership term. Replay must
// recover exactly the whole records with their original epochs, report the
// highest surviving epoch in Stats, and stamp that epoch on the next
// append — a restart after a torn promotion write must not fall back to
// the old term.
func TestReplayTornTailAcrossEpochBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(nil); err != nil {
		t.Fatal(err)
	}
	s.SetEpoch(1)
	for _, op := range []string{"a", "b"} {
		if _, err := s.Append(op, map[string]string{"op": op}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walFile)
	pre, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	boundary := int64(len(pre)) // record c, the first epoch-2 frame, starts here
	s.SetEpoch(2)
	if _, err := s.Append("c", map[string]string{"op": "c"}); err != nil {
		t.Fatal(err)
	}
	mid, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	cEnd := int64(len(mid)) // end of c's frame; d starts here
	if _, err := s.Append("d", map[string]string{"op": "d"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := boundary; cut <= int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, walFile), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			cs, err := Open(cdir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cs.Close()
			var recs []Record
			if _, err := cs.Replay(func(rec Record) error {
				recs = append(recs, rec)
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			want := []struct {
				op    string
				epoch uint64
			}{{"a", 1}, {"b", 1}}
			wantEpoch := uint64(1)
			if cut >= cEnd {
				want = append(want, struct {
					op    string
					epoch uint64
				}{"c", 2})
				wantEpoch = 2
			}
			if cut == int64(len(full)) {
				want = append(want, struct {
					op    string
					epoch uint64
				}{"d", 2})
			}
			if len(recs) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(recs), len(want))
			}
			for i, w := range want {
				if recs[i].Op != w.op || recs[i].Epoch != w.epoch {
					t.Fatalf("record %d = {op %q epoch %d}, want {op %q epoch %d}",
						i, recs[i].Op, recs[i].Epoch, w.op, w.epoch)
				}
			}
			if got := cs.Stats().Epoch; got != wantEpoch {
				t.Fatalf("Stats().Epoch = %d, want %d", got, wantEpoch)
			}

			// The next append must land on a frame boundary (the tear was
			// truncated) and carry the recovered term forward.
			seq, err := cs.Append("z", nil)
			if err != nil {
				t.Fatal(err)
			}
			if wantSeq := uint64(len(want)) + 1; seq != wantSeq {
				t.Fatalf("post-replay append seq = %d, want %d", seq, wantSeq)
			}
			data, err := os.ReadFile(filepath.Join(cdir, walFile))
			if err != nil {
				t.Fatal(err)
			}
			all, valid, err := DecodeAll(data)
			if err != nil {
				t.Fatal(err)
			}
			if valid != int64(len(data)) {
				t.Fatalf("WAL holds %d valid of %d bytes after replay+append", valid, len(data))
			}
			last := all[len(all)-1]
			if last.Op != "z" || last.Epoch != wantEpoch {
				t.Fatalf("appended record = {op %q epoch %d}, want {op z epoch %d}",
					last.Op, last.Epoch, wantEpoch)
			}
		})
	}
}
