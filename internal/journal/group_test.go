package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWriterAppendBatchOneSyncPerBatch(t *testing.T) {
	ws := &memWS{}
	w := NewWriter(ws, 0)
	ops := make([]BatchOp, 10)
	for i := range ops {
		ops[i] = BatchOp{Op: "op", Data: map[string]int{"i": i}}
	}
	recs, err := w.AppendBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if ws.syncs != 1 {
		t.Errorf("syncs = %d, want 1 for the whole batch", ws.syncs)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("recs[%d].Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	decoded, valid, err := DecodeAll(ws.buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if valid != int64(ws.buf.Len()) || len(decoded) != 10 {
		t.Fatalf("decoded %d records over %d/%d bytes", len(decoded), valid, ws.buf.Len())
	}
	// A single append after a batch continues the sequence.
	seq, err := w.Append("op", map[string]int{"i": 10})
	if err != nil || seq != 11 {
		t.Fatalf("append after batch: seq %d, %v", seq, err)
	}
}

// TestAppendBatchTornAtEveryOffset cuts the journal at every byte offset
// inside a batched append and proves recovery always yields a prefix of
// whole records: the two records already durable plus zero or more complete
// records of the torn batch — never a partial record, never an error.
func TestAppendBatchTornAtEveryOffset(t *testing.T) {
	// First measure how many bytes the batch writes.
	probe := &memWS{}
	pw := NewWriter(probe, 0)
	if _, err := pw.Append("pre", map[string]int{"i": -1}); err != nil {
		t.Fatal(err)
	}
	preLen := probe.buf.Len()
	batch := []BatchOp{
		{Op: "op", Data: map[string]string{"k": "first-record-of-batch"}},
		{Op: "op", Data: map[string]string{"k": "second"}},
		{Op: "op", Data: map[string]string{"k": "third-and-longest-record-of-the-batch"}},
	}
	recs, err := pw.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	batchLen := probe.buf.Len() - preLen
	// Byte offsets where each whole record of the batch ends.
	ends := make([]int, 0, len(recs))
	off := 0
	for _, r := range recs {
		b, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		off += len(b)
		ends = append(ends, off)
	}
	if ends[len(ends)-1] != batchLen {
		t.Fatalf("frame sizes %v do not add up to batch length %d", ends, batchLen)
	}

	for cut := 0; cut <= batchLen; cut++ {
		ws := &memWS{}
		w := NewWriter(ws, 0)
		if _, err := w.Append("pre", map[string]int{"i": -1}); err != nil {
			t.Fatal(err)
		}
		fw := NewFaultWriter(ws, int64(cut), false)
		fjw := NewWriter(fw, w.Seq())
		if _, err := fjw.AppendBatch(batch); cut < batchLen && err == nil {
			t.Fatalf("cut %d: torn batch append succeeded", cut)
		}
		wantWhole := 0
		for _, e := range ends {
			if cut >= e {
				wantWhole++
			}
		}
		decoded, _, err := DecodeAll(ws.buf.Bytes())
		if err != nil {
			t.Fatalf("cut %d: recovery error: %v", cut, err)
		}
		if len(decoded) != 1+wantWhole {
			t.Fatalf("cut %d: recovered %d records, want 1+%d", cut, len(decoded), wantWhole)
		}
		for i, r := range decoded {
			if r.Seq != uint64(i+1) {
				t.Fatalf("cut %d: recovered seq %d at position %d", cut, r.Seq, i)
			}
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var mu sync.Mutex
	var committed []uint64
	g := NewGroup(st, GroupConfig{
		MaxWait: 2 * time.Millisecond,
		OnCommit: func(recs []Record) {
			mu.Lock()
			for _, r := range recs {
				committed = append(committed, r.Seq)
			}
			mu.Unlock()
		},
	})
	defer g.Close()

	const writers = 32
	var wg sync.WaitGroup
	seqs := make([]uint64, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := g.Append("op", map[string]int{"writer": i})
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
				return
			}
			seqs[i] = rec.Seq
		}(i)
	}
	wg.Wait()

	seen := make(map[uint64]bool, writers)
	for i, s := range seqs {
		if s == 0 || seen[s] {
			t.Fatalf("writer %d got seq %d (dup or zero)", i, s)
		}
		seen[s] = true
	}
	// OnCommit must deliver every record exactly once, in sequence order —
	// the replication tail ring depends on it.
	mu.Lock()
	defer mu.Unlock()
	if len(committed) != writers {
		t.Fatalf("OnCommit saw %d records, want %d", len(committed), writers)
	}
	for i := 1; i < len(committed); i++ {
		if committed[i] <= committed[i-1] {
			t.Fatalf("OnCommit out of order at %d: %v", i, committed)
		}
	}
	// Durability: everything a caller was told is committed must replay.
	stats := st.Stats()
	if stats.WALRecords != writers {
		t.Errorf("WALRecords = %d, want %d", stats.WALRecords, writers)
	}
	if stats.BatchRecords < stats.Batches {
		t.Errorf("batch stats inconsistent: %+v", stats)
	}
}

func TestGroupAppendManyKeepsBatchContiguous(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := NewGroup(st, GroupConfig{MaxWait: time.Millisecond})
	defer g.Close()

	const callers, per = 8, 5
	var wg sync.WaitGroup
	results := make([][]Record, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops := make([]BatchOp, per)
			for j := range ops {
				ops[j] = BatchOp{Op: "op", Data: map[string]int{"c": i, "j": j}}
			}
			recs, err := g.AppendMany(ops)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = recs
		}(i)
	}
	wg.Wait()
	for i, recs := range results {
		if len(recs) != per {
			t.Fatalf("caller %d got %d records", i, len(recs))
		}
		for j := 1; j < len(recs); j++ {
			if recs[j].Seq != recs[j-1].Seq+1 {
				t.Errorf("caller %d records not contiguous: %d then %d", i, recs[j-1].Seq, recs[j].Seq)
			}
		}
		var got struct{ C, J int }
		if err := json.Unmarshal(recs[per-1].Data, &got); err != nil || got.C != i || got.J != per-1 {
			t.Errorf("caller %d last payload = %+v, %v", i, got, err)
		}
	}
}

func TestGroupClosedRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := NewGroup(st, GroupConfig{})
	g.Close()
	if _, err := g.Append("op", map[string]int{"i": 0}); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("append after close = %v, want ErrGroupClosed", err)
	}
	g.Close() // double close must be safe
}

func TestGroupSurfacesWriteFailure(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := NewGroup(st, GroupConfig{})
	defer g.Close()
	if _, err := g.Append("op", func() {}); err == nil {
		t.Fatal("unmarshalable payload accepted")
	}
	// The group must stay usable after a marshal refusal.
	if _, err := g.Append("op", map[string]int{"i": 1}); err != nil {
		t.Fatalf("append after refused payload: %v", err)
	}
}

func TestWriterAppendBatchEmptyAndOversized(t *testing.T) {
	ws := &memWS{}
	w := NewWriter(ws, 0)
	recs, err := w.AppendBatch(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty batch: %v, %d recs", err, len(recs))
	}
	if ws.syncs != 0 {
		t.Errorf("empty batch synced")
	}
	huge := bytes.Repeat([]byte("x"), MaxRecord+1)
	_, err = w.AppendBatch([]BatchOp{
		{Op: "ok", Data: map[string]int{"i": 0}},
		{Op: "big", Data: map[string]string{"v": string(huge)}},
	})
	if err == nil {
		t.Fatal("oversized record accepted in batch")
	}
	if ws.buf.Len() != 0 {
		t.Errorf("refused batch still wrote %d bytes", ws.buf.Len())
	}
	if _, err := w.Append("op", map[string]int{"i": 1}); err != nil {
		t.Errorf("writer unusable after refused batch: %v", err)
	}
}
