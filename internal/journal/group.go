package journal

import (
	"errors"
	"sync"
	"time"
)

// Default group-commit tuning: how many records one fsync may cover and how
// long the flusher waits for stragglers once a batch has started forming.
const (
	DefaultGroupMaxBatch = 64
	DefaultGroupMaxWait  = 2 * time.Millisecond
)

// ErrGroupClosed is returned by Append after Close.
var ErrGroupClosed = errors.New("journal: group appender closed")

// GroupConfig tunes a Group.
type GroupConfig struct {
	// MaxBatch caps records per fsync window. <=0 means DefaultGroupMaxBatch.
	MaxBatch int
	// MaxWait bounds how long the flusher holds an open window waiting for
	// more writers once at least two are pending. <=0 means
	// DefaultGroupMaxWait. A lone writer is flushed immediately — sequential
	// callers pay no latency tax.
	MaxWait time.Duration
	// OnCommit, if set, observes every committed batch in sequence order,
	// from the flusher goroutine, before any waiter is unblocked. The
	// replication hub hangs off this: its tail ring requires ascending Seq,
	// which a single delivering goroutine guarantees and per-waiter wakeups
	// would not.
	OnCommit func([]Record)
}

// Group is a group-commit front end to a Store: concurrent Append and
// AppendMany calls are coalesced by a single flusher goroutine into one
// buffered write + one fsync per batch window. Each caller is unblocked only
// after its records are durably synced. The wait window follows the
// commit_delay/commit_siblings heuristic: it only opens when at least two
// commits are already pending, so a lone sequential writer never waits.
type Group struct {
	st  *Store
	cfg GroupConfig

	mu     sync.Mutex
	closed bool
	reqs   chan groupReq
	wg     sync.WaitGroup
}

type groupReq struct {
	ops  []BatchOp
	done chan groupResult
}

type groupResult struct {
	recs []Record
	err  error
}

// NewGroup starts a group-commit appender over st.
func NewGroup(st *Store, cfg GroupConfig) *Group {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultGroupMaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultGroupMaxWait
	}
	g := &Group{st: st, cfg: cfg, reqs: make(chan groupReq, cfg.MaxBatch)}
	g.wg.Add(1)
	go g.flusher()
	return g
}

// Append submits one operation and blocks until the fsync window containing
// it is durable (or failed). It returns the committed record.
func (g *Group) Append(op string, data any) (Record, error) {
	recs, err := g.AppendMany([]BatchOp{{Op: op, Data: data}})
	if err != nil {
		return Record{}, err
	}
	return recs[0], nil
}

// AppendMany submits a set of operations that commit contiguously, in order,
// within one fsync window (possibly alongside other callers' records). It
// blocks until the window is durable and returns the committed records.
func (g *Group) AppendMany(ops []BatchOp) ([]Record, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	req := groupReq{ops: ops, done: make(chan groupResult, 1)}
	// The send happens under g.mu so Close cannot close the channel between
	// the closed-check and the send. The flusher never takes g.mu, so a
	// blocking send here cannot deadlock: the flusher always drains reqs.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrGroupClosed
	}
	g.reqs <- req
	g.mu.Unlock()
	res := <-req.done
	return res.recs, res.err
}

// Close flushes pending appends and stops the flusher. Appends submitted
// after Close fail with ErrGroupClosed.
func (g *Group) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	close(g.reqs)
	g.mu.Unlock()
	g.wg.Wait()
}

// flusher is the single goroutine that forms and commits batches. Because it
// alone appends to the store and alone runs OnCommit, committed records are
// observed in strictly ascending sequence order.
func (g *Group) flusher() {
	defer g.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []groupReq
	for {
		req, ok := <-g.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		pending := len(req.ops)
		// Greedily absorb whatever is already queued.
		open := true
	drain:
		for pending < g.cfg.MaxBatch {
			select {
			case r, ok := <-g.reqs:
				if !ok {
					open = false
					break drain
				}
				batch = append(batch, r)
				pending += len(r.ops)
			default:
				break drain
			}
		}
		// commit_siblings: only a window that already has company is worth
		// holding open. A lone writer syncs immediately.
		if open && len(batch) > 1 && pending < g.cfg.MaxBatch {
			timer.Reset(g.cfg.MaxWait)
		window:
			for pending < g.cfg.MaxBatch {
				select {
				case r, ok := <-g.reqs:
					if !ok {
						open = false
						break window
					}
					batch = append(batch, r)
					pending += len(r.ops)
				case <-timer.C:
					break window
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		g.flush(batch)
		if !open {
			// Channel closed mid-drain: commit the stragglers queued before
			// the close, then exit.
			batch = batch[:0]
			pending = 0
			for r := range g.reqs {
				batch = append(batch, r)
				if pending += len(r.ops); pending >= g.cfg.MaxBatch {
					g.flush(batch)
					batch, pending = batch[:0], 0
				}
			}
			if len(batch) > 0 {
				g.flush(batch)
			}
			return
		}
	}
}

// flush commits one window: a single store append (one buffered write + one
// fsync), the ordered OnCommit callback, then per-waiter wakeups.
func (g *Group) flush(batch []groupReq) {
	var ops []BatchOp
	for _, r := range batch {
		ops = append(ops, r.ops...)
	}
	recs, err := g.st.AppendBatch(ops)
	if err != nil {
		for _, r := range batch {
			r.done <- groupResult{err: err}
		}
		return
	}
	if g.cfg.OnCommit != nil {
		g.cfg.OnCommit(recs)
	}
	off := 0
	for _, r := range batch {
		r.done <- groupResult{recs: recs[off : off+len(r.ops)]}
		off += len(r.ops)
	}
}
