// Package journal is the durability layer of the CAR-CS reproduction: an
// append-only, CRC-checksummed, fsync'd write-ahead log of mutating
// operations plus atomically-checkpointed snapshots, standing in for the
// crash-safety PostgreSQL gave the paper's Django prototype.
//
// Every record is framed as
//
//	[u32le payload length][u32le CRC-32 (IEEE) of payload][payload]
//
// where the payload is the JSON encoding of a Record. A crash mid-append
// leaves a torn final frame, which recovery truncates and continues past; a
// checksum failure on an interior frame means silent corruption and is
// refused, because replaying past it could resurrect a state the journal
// never committed.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// headerSize is the per-record frame overhead: length + checksum.
const headerSize = 8

// MaxRecord bounds a single record's payload. A frame declaring more than
// this cannot have been produced by a Writer, so recovery treats it as
// corruption rather than a torn tail.
const MaxRecord = 16 << 20

// ErrCorrupt marks an interior record whose checksum or framing is invalid.
// Unlike a torn tail it cannot be explained by a crash mid-append, so the
// journal refuses to open.
var ErrCorrupt = errors.New("journal: corrupt interior record")

// Record is one journaled mutation.
type Record struct {
	// Seq is the monotonically increasing sequence number, never reused
	// across checkpoints for the lifetime of a journal directory.
	Seq uint64 `json:"seq"`
	// Epoch is the leadership term that wrote the record. Zero means the
	// first (or only) leader and is omitted from the encoded record, so a
	// log written by a never-failed-over deployment is byte-identical to
	// one written before epochs existed — the same compatibility trick as
	// Tenant below. Appliers reject records whose epoch is below their
	// high-water mark, which fences a deposed leader's writes out of every
	// follower (see internal/replica).
	Epoch uint64 `json:"epoch,omitempty"`
	// Tenant names the workspace the mutation belongs to. Empty means the
	// default tenant and is omitted from the encoded record, so a journal
	// holding only default-tenant mutations is byte-identical to one
	// written before workspaces existed — old WALs replay unchanged, and
	// followers running older builds can still parse a default-only stream.
	Tenant string `json:"tenant,omitempty"`
	// Op names the mutation, e.g. "material.add".
	Op string `json:"op"`
	// Data is the op-specific JSON payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// BatchOp is one not-yet-sequenced operation handed to AppendBatch. Sequence
// numbers are assigned in slice order when the batch commits.
type BatchOp struct {
	// Tenant stamps the record with its workspace; empty means default.
	Tenant string
	Op     string
	Data   any
}

// WriteSyncer is the sink a Writer appends to: an io.Writer whose Sync
// flushes to stable storage. *os.File satisfies it; FaultWriter wraps one to
// simulate crashes.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// encState is pooled marshal scratch for op payloads: the encoder writes
// into a retained buffer and the payload is copied out right-sized. Payload
// marshalling runs outside the writer lock, on any goroutine, so unlike the
// Writer's own envelope buffer this scratch is a sync.Pool — concurrent
// group-commit callers each grab their own, and the buffer's grown capacity
// is amortized across appends instead of re-grown per record.
type encState struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	s := &encState{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

// marshalData encodes one op payload through the pooled scratch. The
// Encoder HTML-escapes exactly like json.Marshal and its trailing newline is
// trimmed, so the returned bytes match Marshal's byte-for-byte.
func marshalData(op string, data any) (json.RawMessage, error) {
	s := encPool.Get().(*encState)
	defer encPool.Put(s)
	s.buf.Reset()
	if err := s.enc.Encode(data); err != nil {
		return nil, fmt.Errorf("journal: marshal %s: %w", op, err)
	}
	b := s.buf.Bytes()
	raw := make(json.RawMessage, len(b)-1)
	copy(raw, b[:len(b)-1])
	return raw, nil
}

// appendFrame appends the framed payload to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Writer appends records to a WriteSyncer, fsyncing after every record so an
// acknowledged mutation survives a crash. Any write or sync failure is
// sticky: the journal may hold a torn frame, so further appends are refused
// until the journal is reopened (which truncates the tear).
type Writer struct {
	mu    sync.Mutex
	ws    WriteSyncer
	seq   uint64
	epoch uint64
	err   error

	// buf is the reusable frame buffer: frames for an append (or a whole
	// batch) are assembled here and handed to ws in one Write call, so the
	// frame bytes are allocated once per Writer, not once per record.
	buf []byte
	// encBuf/enc replace per-record json.Marshal of the Record envelope
	// with a reusable encoder writing into a reusable buffer. The Encoder
	// HTML-escapes exactly like Marshal, so on-disk bytes are unchanged.
	encBuf bytes.Buffer
	enc    *json.Encoder
}

// NewWriter returns a Writer appending to ws, continuing after lastSeq.
func NewWriter(ws WriteSyncer, lastSeq uint64) *Writer {
	return &Writer{ws: ws, seq: lastSeq}
}

// SetEpoch stamps every subsequent record with the given leadership epoch.
// Epochs only move forward: a lower value than the current one is ignored,
// so a late SetEpoch can never un-fence a writer.
func (w *Writer) SetEpoch(epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch > w.epoch {
		w.epoch = epoch
	}
}

// Epoch returns the leadership epoch stamped on new records.
func (w *Writer) Epoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Append marshals data, frames it with the next sequence number, writes and
// syncs. It returns the record's sequence number.
func (w *Writer) Append(op string, data any) (uint64, error) {
	rec, err := w.AppendRecord(op, data)
	return rec.Seq, err
}

// AppendRecord is Append returning the full committed record, so callers
// that re-ship the log (the replication hub) get the exact bytes-equivalent
// record without re-marshalling.
func (w *Writer) AppendRecord(op string, data any) (Record, error) {
	raw, err := marshalData(op, data)
	if err != nil {
		return Record{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return Record{}, fmt.Errorf("journal: writer failed earlier: %w", w.err)
	}
	rec := Record{Seq: w.seq + 1, Epoch: w.epoch, Op: op, Data: raw}
	w.buf = w.buf[:0]
	if err := w.frameLocked(rec); err != nil {
		return Record{}, err
	}
	if _, err := w.ws.Write(w.buf); err != nil {
		w.err = err
		return Record{}, fmt.Errorf("journal: append %s: %w", op, err)
	}
	if err := w.ws.Sync(); err != nil {
		w.err = err
		return Record{}, fmt.Errorf("journal: sync %s: %w", op, err)
	}
	w.seq = rec.Seq
	return rec, nil
}

// frameLocked encodes rec and appends its frame to w.buf. Caller holds w.mu.
func (w *Writer) frameLocked(rec Record) error {
	if w.enc == nil {
		w.enc = json.NewEncoder(&w.encBuf)
	}
	w.encBuf.Reset()
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	payload := w.encBuf.Bytes()
	// Encode appends a newline that Marshal would not; trim it so the
	// on-disk payload bytes match the pre-batching format exactly.
	payload = payload[:len(payload)-1]
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record %s exceeds %d bytes", rec.Op, MaxRecord)
	}
	w.buf = appendFrame(w.buf, payload)
	return nil
}

// AppendBatch frames every op with consecutive sequence numbers, writes all
// frames in a single Write, and syncs once — one fsync amortized across the
// whole batch. Either the entire batch is durably committed and returned, or
// none of it is acknowledged: on failure the writer goes sticky-failed and no
// sequence numbers are consumed. A crash mid-batch leaves a torn tail that
// recovery truncates to a prefix of whole records, exactly as for
// single-record appends.
func (w *Writer) AppendBatch(ops []BatchOp) ([]Record, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	raws := make([]json.RawMessage, len(ops))
	for i, op := range ops {
		raw, err := marshalData(op.Op, op.Data)
		if err != nil {
			return nil, err
		}
		raws[i] = raw
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, fmt.Errorf("journal: writer failed earlier: %w", w.err)
	}
	recs := make([]Record, len(ops))
	w.buf = w.buf[:0]
	for i, op := range ops {
		recs[i] = Record{Seq: w.seq + uint64(i) + 1, Epoch: w.epoch, Tenant: op.Tenant, Op: op.Op, Data: raws[i]}
		if err := w.frameLocked(recs[i]); err != nil {
			return nil, err
		}
	}
	if _, err := w.ws.Write(w.buf); err != nil {
		w.err = err
		return nil, fmt.Errorf("journal: append batch of %d: %w", len(ops), err)
	}
	if err := w.ws.Sync(); err != nil {
		w.err = err
		return nil, fmt.Errorf("journal: sync batch of %d: %w", len(ops), err)
	}
	w.seq = recs[len(recs)-1].Seq
	return recs, nil
}

// Seq returns the sequence number of the last successfully appended record.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Err returns the sticky write failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Scan reads framed records from r in order, invoking fn for each valid
// one. It returns the byte length of the valid prefix.
//
// A torn tail — an incomplete frame, or an invalid final frame — ends the
// scan cleanly: the caller should truncate the journal to the returned
// offset and continue. An invalid frame with further data behind it returns
// ErrCorrupt (wrapped), as does a non-increasing sequence number. An error
// from fn aborts the scan and is returned as-is.
func Scan(r io.Reader, fn func(Record) error) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("journal: read: %w", err)
	}
	var off int64
	n := int64(len(data))
	var lastSeq, lastEpoch uint64
	for off < n {
		if n-off < headerSize {
			return off, nil // torn header
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecord {
			return off, fmt.Errorf("%w: offset %d declares %d-byte payload", ErrCorrupt, off, length)
		}
		end := off + headerSize + length
		if end > n {
			return off, nil // torn payload
		}
		payload := data[off+headerSize : end]
		final := end == n
		if crc32.ChecksumIEEE(payload) != sum {
			if final {
				return off, nil // torn final record
			}
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			if final {
				return off, nil
			}
			return off, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, off, err)
		}
		if rec.Seq <= lastSeq {
			return off, fmt.Errorf("%w: sequence %d at offset %d not after %d", ErrCorrupt, rec.Seq, off, lastSeq)
		}
		if rec.Epoch < lastEpoch {
			// Epochs only advance within one log: a writer is created at
			// one epoch and only ever bumped. A regression means frames
			// from different terms were spliced together.
			return off, fmt.Errorf("%w: epoch %d at offset %d below %d", ErrCorrupt, rec.Epoch, off, lastEpoch)
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		lastSeq = rec.Seq
		lastEpoch = rec.Epoch
		off = end
	}
	return off, nil
}

// EncodeRecord frames a record as Writer would, for tests that need to craft
// journals byte-by-byte.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, payload), nil
}

// DecodeAll scans every record in data into a slice, a convenience for
// tests and tooling.
func DecodeAll(data []byte) ([]Record, int64, error) {
	var out []Record
	valid, err := Scan(bytes.NewReader(data), func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	return out, valid, err
}

// ReadFrame decodes exactly one framed record from r, blocking until the
// whole frame arrives. It is the streaming counterpart of Scan for readers
// that cannot buffer the entire log — a replication follower tailing a
// chunked HTTP response. io.EOF on a frame boundary means the stream ended
// cleanly; a partial frame returns io.ErrUnexpectedEOF. Unlike Scan,
// ReadFrame does not enforce sequence ordering across calls — the caller
// tracks its own cursor (and a follower skips already-applied sequences).
func ReadFrame(r io.Reader) (Record, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("journal: read frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecord {
		return Record{}, fmt.Errorf("%w: frame declares %d-byte payload", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("journal: read frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("%w: undecodable frame: %v", ErrCorrupt, err)
	}
	return rec, nil
}
