package journal

import (
	"errors"
	"fmt"
	"sync"
)

// ErrFault is the injected failure a FaultWriter returns once its budget is
// exhausted.
var ErrFault = errors.New("journal: injected fault")

// FaultWriter wraps a WriteSyncer and fails on command, so tests can prove
// crash recovery: it passes writes through until a byte budget runs out,
// then writes only the prefix that fits — leaving a torn frame on the
// underlying medium, exactly like a crash mid-append — and fails every call
// after that. It can also be armed to fail on Sync, modelling a crash after
// the data reached the page cache but before it reached the platter.
type FaultWriter struct {
	mu        sync.Mutex
	ws        WriteSyncer
	remaining int64
	limited   bool
	failSync  bool
	failed    bool
}

// NewFaultWriter wraps ws with a budget of failAfter bytes; failAfter < 0
// means unlimited. failSync arms a failure on the next Sync call.
func NewFaultWriter(ws WriteSyncer, failAfter int64, failSync bool) *FaultWriter {
	return &FaultWriter{ws: ws, remaining: failAfter, limited: failAfter >= 0, failSync: failSync}
}

// SeverAfter re-arms the writer to fail once n more bytes have passed
// through, letting a test run healthy for a while and then cut the journal
// mid-record.
func (f *FaultWriter) SeverAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limited, f.remaining = true, n
}

// SeverOnSync re-arms the writer to fail on the next Sync.
func (f *FaultWriter) SeverOnSync() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync = true
}

// Write forwards p to the underlying writer until the byte budget is spent,
// then writes the partial prefix and fails.
func (f *FaultWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed {
		return 0, fmt.Errorf("%w: writer already severed", ErrFault)
	}
	if f.limited && int64(len(p)) > f.remaining {
		n, _ := f.ws.Write(p[:f.remaining])
		f.failed = true
		return n, fmt.Errorf("%w: write severed after %d of %d bytes", ErrFault, f.remaining, len(p))
	}
	n, err := f.ws.Write(p)
	if f.limited {
		f.remaining -= int64(n)
	}
	if err != nil {
		f.failed = true
	}
	return n, err
}

// Sync forwards to the underlying syncer unless armed to fail.
func (f *FaultWriter) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed {
		return fmt.Errorf("%w: writer already severed", ErrFault)
	}
	if f.failSync {
		f.failed = true
		return fmt.Errorf("%w: sync severed", ErrFault)
	}
	return f.ws.Sync()
}

// Failed reports whether the fault has fired.
func (f *FaultWriter) Failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}
