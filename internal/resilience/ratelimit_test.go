package resilience

import (
	"fmt"
	"testing"
	"time"
)

// testClock is a controllable clock for deterministic refill tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRateLimiter(cfg RateLimiterConfig) (*RateLimiter, *testClock) {
	rl := NewRateLimiter(cfg)
	clk := &testClock{t: time.Unix(1_700_000_000, 0)}
	rl.now = clk.now
	return rl, clk
}

func TestRateLimiterBurstThenLimit(t *testing.T) {
	rl, _ := newTestRateLimiter(RateLimiterConfig{RatePerSecond: 10, Burst: 5})
	for i := 0; i < 5; i++ {
		if ok, _ := rl.Allow("alice"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := rl.Allow("alice")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if retry < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s floor", retry)
	}
	// A different client is unaffected.
	if ok, _ := rl.Allow("bob"); !ok {
		t.Fatal("independent client denied")
	}
}

func TestRateLimiterRefill(t *testing.T) {
	rl, clk := newTestRateLimiter(RateLimiterConfig{RatePerSecond: 10, Burst: 5})
	for i := 0; i < 5; i++ {
		rl.Allow("alice")
	}
	if ok, _ := rl.Allow("alice"); ok {
		t.Fatal("empty bucket allowed")
	}
	clk.advance(200 * time.Millisecond) // 2 tokens accrue
	if ok, _ := rl.Allow("alice"); !ok {
		t.Fatal("refilled bucket denied")
	}
	if ok, _ := rl.Allow("alice"); !ok {
		t.Fatal("second refilled token denied")
	}
	if ok, _ := rl.Allow("alice"); ok {
		t.Fatal("third request allowed with only 2 tokens refilled")
	}
	// Refill caps at burst.
	clk.advance(time.Hour)
	for i := 0; i < 5; i++ {
		if ok, _ := rl.Allow("alice"); !ok {
			t.Fatalf("request %d after long idle denied", i)
		}
	}
	if ok, _ := rl.Allow("alice"); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestRateLimiterLRUEviction(t *testing.T) {
	rl, _ := newTestRateLimiter(RateLimiterConfig{RatePerSecond: 1, Burst: 2, MaxClients: 3})
	for i := 0; i < 5; i++ {
		rl.Allow(fmt.Sprintf("client-%d", i))
	}
	st := rl.Stats()
	if st.Clients != 3 {
		t.Fatalf("clients = %d, want LRU cap 3", st.Clients)
	}
	if st.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted)
	}
	// client-0 was evicted; it returns with a fresh (full) bucket rather
	// than its spent one — the cost of bounding memory.
	if ok, _ := rl.Allow("client-0"); !ok {
		t.Fatal("re-admitted client denied")
	}
}

func TestRateLimiterStats(t *testing.T) {
	rl, _ := newTestRateLimiter(RateLimiterConfig{RatePerSecond: 1, Burst: 1})
	rl.Allow("a")
	rl.Allow("a")
	st := rl.Stats()
	if st.Allowed != 1 || st.Limited != 1 {
		t.Fatalf("stats = %+v, want 1 allowed 1 limited", st)
	}
}
