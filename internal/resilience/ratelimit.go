package resilience

import (
	"container/list"
	"math"
	"sync"
	"time"
)

// RateLimiter defaults.
const (
	// DefaultRatePerSecond is the steady-state tokens/s per client.
	DefaultRatePerSecond = 50
	// DefaultBurst is the bucket capacity (requests a quiet client may
	// issue back-to-back).
	DefaultBurst = 100
	// DefaultMaxClients bounds the bucket table; beyond it the least
	// recently seen client's bucket is evicted.
	DefaultMaxClients = 1024
)

// RateLimiterConfig tunes the per-client token buckets. Zero values take
// the defaults above.
type RateLimiterConfig struct {
	// RatePerSecond is the refill rate of each client's bucket.
	RatePerSecond float64
	// Burst is the bucket capacity.
	Burst float64
	// MaxClients caps the number of tracked buckets (LRU eviction).
	MaxClients int
}

func (c RateLimiterConfig) withDefaults() RateLimiterConfig {
	if c.RatePerSecond <= 0 {
		c.RatePerSecond = DefaultRatePerSecond
	}
	if c.Burst <= 0 {
		c.Burst = DefaultBurst
	}
	if c.MaxClients <= 0 {
		c.MaxClients = DefaultMaxClients
	}
	return c
}

type bucket struct {
	key    string
	tokens float64
	last   time.Time // last refill
}

// RateLimiter is a per-client token-bucket limiter. Buckets live in an
// LRU-bounded table so unbounded key churn (spoofed API keys, rotating
// addresses) cannot grow memory. All methods are safe for concurrent use.
type RateLimiter struct {
	cfg RateLimiterConfig

	mu      sync.Mutex
	buckets map[string]*list.Element
	order   *list.List // front = most recently seen; values are *bucket
	now     func() time.Time

	allowed uint64
	limited uint64
	evicted uint64
}

// NewRateLimiter builds a rate limiter from the config (zero value =
// defaults).
func NewRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	return &RateLimiter{
		cfg:     cfg.withDefaults(),
		buckets: make(map[string]*list.Element),
		order:   list.New(),
		now:     time.Now,
	}
}

// Allow spends one token from key's bucket. When the bucket is empty it
// returns ok=false and the wait until a token accrues — the Retry-After
// hint for the 429.
func (rl *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()

	var b *bucket
	if el, found := rl.buckets[key]; found {
		rl.order.MoveToFront(el)
		b = el.Value.(*bucket)
		b.tokens = math.Min(rl.cfg.Burst,
			b.tokens+now.Sub(b.last).Seconds()*rl.cfg.RatePerSecond)
		b.last = now
	} else {
		if rl.order.Len() >= rl.cfg.MaxClients {
			oldest := rl.order.Back()
			rl.order.Remove(oldest)
			delete(rl.buckets, oldest.Value.(*bucket).key)
			rl.evicted++
		}
		b = &bucket{key: key, tokens: rl.cfg.Burst, last: now}
		rl.buckets[key] = rl.order.PushFront(b)
	}

	if b.tokens >= 1 {
		b.tokens--
		rl.allowed++
		return true, 0
	}
	rl.limited++
	wait := time.Duration((1 - b.tokens) / rl.cfg.RatePerSecond * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// RateLimiterStats is the point-in-time state served by /api/health.
type RateLimiterStats struct {
	// Clients is the number of buckets currently tracked.
	Clients int `json:"clients"`
	// Allowed and Limited count admission decisions over the lifetime.
	Allowed uint64 `json:"allowed"`
	Limited uint64 `json:"limited"`
	// Evicted counts buckets dropped by the LRU cap.
	Evicted uint64 `json:"evicted"`
}

// Stats snapshots the rate limiter.
func (rl *RateLimiter) Stats() RateLimiterStats {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return RateLimiterStats{
		Clients: rl.order.Len(),
		Allowed: rl.allowed,
		Limited: rl.limited,
		Evicted: rl.evicted,
	}
}
