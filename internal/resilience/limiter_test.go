package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUnderLimit(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4})
	var releases []func()
	for i := 0; i < 4; i++ {
		rel, err := l.Acquire(context.Background(), ClassRead)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	st := l.Stats()
	if st.Inflight != 4 {
		t.Fatalf("inflight = %d, want 4", st.Inflight)
	}
	for _, rel := range releases {
		rel()
	}
	if got := l.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestLimiterHealthAlwaysAdmitted(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1})
	rel, err := l.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	for i := 0; i < 10; i++ {
		hrel, herr := l.Acquire(context.Background(), ClassHealth)
		if herr != nil {
			t.Fatalf("health acquire %d: %v", i, herr)
		}
		hrel()
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := NewLimiter(LimiterConfig{
		Initial:    1,
		Min:        1,
		QueueDepth: [4]int{0, -1, -1, -1},
	})
	// QueueDepth <= 0 takes defaults; use a config with explicit tiny queue.
	l = NewLimiter(LimiterConfig{Initial: 1, Min: 1, QueueDepth: [4]int{0, 1, 1, 1}})
	rel, err := l.Acquire(context.Background(), ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// One waiter fits in the queue; park it with a long deadline.
	parked := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r, aerr := l.Acquire(ctx, ClassWrite)
		if aerr == nil {
			r()
		}
		parked <- aerr
	}()
	waitFor(t, func() bool { return l.Stats().Queued["write"] == 1 })

	// The next write finds the queue full and sheds immediately.
	if _, err := l.Acquire(context.Background(), ClassWrite); !errors.Is(err, ErrShed) {
		t.Fatalf("queue-full acquire err = %v, want ErrShed", err)
	}
	rel() // frees the parked waiter
	if err := <-parked; err != nil {
		t.Fatalf("parked waiter err = %v, want admitted", err)
	}
}

func TestLimiterShedsNearDeadline(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, ShedMargin: 50 * time.Millisecond})
	rel, err := l.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Deadline closer than the shed margin: shed immediately, never queue.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := l.Acquire(ctx, ClassRead); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("near-deadline shed took %v, want immediate", d)
	}
}

func TestLimiterWaiterTimesOutWithinBudget(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, ShedMargin: 20 * time.Millisecond})
	rel, err := l.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = l.Acquire(ctx, ClassRead)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	// Must give up before the deadline (budget = deadline - margin), with
	// scheduling slack.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("waited %v, should shed before the 150ms deadline", elapsed)
	}
}

func TestLimiterPriorityWake(t *testing.T) {
	// Max: 1 pins the limit so each release wakes exactly one waiter.
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, Max: 1})
	rel, err := l.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	park := func(class Class, name string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, aerr := l.Acquire(context.Background(), class)
			if aerr != nil {
				t.Errorf("%s: %v", name, aerr)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			r()
		}()
	}
	// Park a bulk and a write waiter first, then a read waiter.
	park(ClassBulk, "bulk")
	waitFor(t, func() bool { return l.Stats().Queued["bulk"] == 1 })
	park(ClassWrite, "write")
	waitFor(t, func() bool { return l.Stats().Queued["write"] == 1 })
	park(ClassRead, "read")
	waitFor(t, func() bool { return l.Stats().Queued["read"] == 1 })

	rel()
	wg.Wait()
	want := []string{"read", "write", "bulk"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestLimiterAIMDDecreaseOnSlowLatency(t *testing.T) {
	l := NewLimiter(LimiterConfig{
		Initial:       16,
		Min:           2,
		LatencyTarget: time.Millisecond,
		DecreaseEvery: time.Nanosecond, // decrease on every slow completion
	})
	// Simulate slow completions by backdating admission.
	for i := 0; i < 20; i++ {
		l.mu.Lock()
		l.inflight++
		l.mu.Unlock()
		l.releaseFunc(time.Now().Add(-100 * time.Millisecond))()
	}
	st := l.Stats()
	if st.Limit >= 16 {
		t.Fatalf("limit = %v after sustained slow completions, want decreased", st.Limit)
	}
	if st.Limit < 2 {
		t.Fatalf("limit = %v fell below floor 2", st.Limit)
	}
	if st.Decreases == 0 {
		t.Fatal("no decreases recorded")
	}
}

func TestLimiterAIMDIncreaseOnFastLatency(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4, LatencyTarget: time.Second})
	for i := 0; i < 200; i++ {
		rel, err := l.Acquire(context.Background(), ClassRead)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if st := l.Stats(); st.Limit <= 4 {
		t.Fatalf("limit = %v after fast completions, want increased", st.Limit)
	}
}

func TestLimiterOverloadedAndSaturated(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, QueueDepth: [4]int{0, 1, 1, 1}})
	if l.Overloaded() || l.Saturated() {
		t.Fatal("fresh limiter reports pressure")
	}
	rel, err := l.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if l.Overloaded() {
		t.Fatal("full but empty-queue limiter reports overloaded")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if r, aerr := l.Acquire(ctx, ClassRead); aerr == nil {
			r()
		}
	}()
	waitFor(t, func() bool { return l.Overloaded() })
	if !l.Saturated() {
		t.Fatal("read queue at capacity but not saturated")
	}
	rel()
	<-done
}

func TestLimiterRetryAfterBounds(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if ra := l.RetryAfter(); ra < time.Second || ra > 30*time.Second {
		t.Fatalf("RetryAfter = %v, want within [1s, 30s]", ra)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 8, Min: 2, QueueDepth: [4]int{0, 32, 16, 4}})
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		class := Class(1 + i%3)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				rel, err := l.Acquire(ctx, class)
				if err == nil {
					admitted.Add(1)
					rel()
				} else {
					shed.Add(1)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("no requests admitted under stress")
	}
	if got := l.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after stress = %d, want 0 (slot leak)", got)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4})
	rel, err := l.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not corrupt inflight
	if got := l.Stats().Inflight; got != 0 {
		t.Fatalf("inflight = %d after double release, want 0", got)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met within 2s")
}
