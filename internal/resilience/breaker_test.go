package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour})
	boom := errors.New("disk on fire")
	for i := 0; i < 2; i++ {
		if _, err := b.Acquire(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		b.Record(boom)
		if b.Open() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	if _, err := b.Acquire(); err != nil {
		t.Fatal(err)
	}
	b.Record(boom)
	if !b.Open() {
		t.Fatal("breaker not open after 3 consecutive failures")
	}
	if !b.FastFail() {
		t.Fatal("FastFail false while open within cooldown")
	}
	if _, err := b.Acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("acquire while open = %v, want ErrCircuitOpen", err)
	}
	st := b.Stats()
	if st.State != "open" || st.Trips != 1 || st.Rejected == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour})
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		b.Acquire()
		b.Record(boom)
		b.Acquire()
		b.Record(nil) // interleaved success: never 3 consecutive
	}
	if b.Open() {
		t.Fatal("breaker opened despite interleaved successes")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 20 * time.Millisecond})
	b.Acquire()
	b.Record(errors.New("boom"))
	if !b.Open() {
		t.Fatal("not open")
	}
	time.Sleep(25 * time.Millisecond)
	if b.FastFail() {
		t.Fatal("FastFail true past cooldown")
	}
	probe, err := b.Acquire()
	if err != nil || !probe {
		t.Fatalf("post-cooldown acquire = (probe=%v, err=%v), want probe", probe, err)
	}
	// Concurrent acquires during the probe are rejected.
	if _, err := b.Acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("acquire during probe = %v, want ErrCircuitOpen", err)
	}
	b.Record(nil)
	if b.Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if probe, err := b.Acquire(); err != nil || probe {
		t.Fatalf("post-recovery acquire = (probe=%v, err=%v), want plain admit", probe, err)
	}
	b.Record(nil)
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 20 * time.Millisecond})
	b.Acquire()
	b.Record(errors.New("boom"))
	time.Sleep(25 * time.Millisecond)
	probe, err := b.Acquire()
	if err != nil || !probe {
		t.Fatalf("acquire = (%v, %v), want probe", probe, err)
	}
	b.Record(errors.New("still broken"))
	if !b.Open() || !b.FastFail() {
		t.Fatal("breaker not re-opened after failed probe")
	}
	if st := b.Stats(); st.Trips != 2 || st.Probes != 1 {
		t.Fatalf("stats = %+v, want 2 trips 1 probe", st)
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Second})
	if ra := b.RetryAfter(); ra != time.Second {
		t.Fatalf("closed RetryAfter = %v, want 1s floor", ra)
	}
	b.Acquire()
	b.Record(errors.New("boom"))
	ra := b.RetryAfter()
	if ra < time.Second || ra > 10*time.Second {
		t.Fatalf("open RetryAfter = %v, want within (1s, 10s]", ra)
	}
}
