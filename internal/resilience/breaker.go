package resilience

import (
	"sync"
	"time"
)

// Breaker defaults.
const (
	// DefaultFailureThreshold is the run of consecutive failures that
	// opens the breaker.
	DefaultFailureThreshold = 5
	// DefaultCooldown is how long the breaker stays open before allowing
	// a half-open probe.
	DefaultCooldown = 5 * time.Second
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState uint8

// Breaker states.
const (
	// StateClosed: traffic flows, failures are counted.
	StateClosed BreakerState = iota
	// StateOpen: traffic fast-fails until the cooldown elapses.
	StateOpen
	// StateHalfOpen: exactly one probe is in flight; its outcome decides
	// between Closed and Open.
	StateHalfOpen
)

// String names the state for stats and logs.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the circuit breaker. Zero values take defaults.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive failures that trips the
	// breaker open.
	FailureThreshold int
	// Cooldown is the open interval before a half-open probe is allowed.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker guarding the journal
// append path. Usage:
//
//	probe, err := b.Acquire()
//	if err != nil { /* fast-fail the write */ }
//	if probe { /* attempt recovery before the guarded call */ }
//	err = guardedCall()
//	b.Record(err)
//
// All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened

	trips     uint64
	rejected  uint64
	probes    uint64
	lastError string
}

// NewBreaker builds a breaker from the config (zero value = defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Acquire asks permission to perform the guarded operation. probe is true
// when this call is the half-open recovery probe — the caller should try to
// repair the underlying resource before the operation. Every successful
// Acquire must be matched by a Record with the operation's outcome.
func (b *Breaker) Acquire() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return false, nil
	case StateOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			b.rejected++
			return false, ErrCircuitOpen
		}
		b.state = StateHalfOpen
		b.probes++
		return true, nil
	default: // StateHalfOpen: a probe is already in flight
		b.rejected++
		return false, ErrCircuitOpen
	}
}

// Record reports the outcome of an operation admitted by Acquire. A success
// closes the breaker and resets the failure count; a failure increments it,
// opening the breaker at the threshold (immediately, if this was a probe).
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = StateClosed
		b.failures = 0
		b.lastError = ""
		return
	}
	b.lastError = err.Error()
	if b.state == StateHalfOpen {
		b.state = StateOpen
		b.openedAt = time.Now()
		b.trips++
		return
	}
	b.failures++
	if b.failures >= b.cfg.FailureThreshold {
		b.state = StateOpen
		b.openedAt = time.Now()
		b.trips++
		b.failures = 0
	}
}

// FastFail reports whether the breaker is open with cooldown remaining —
// i.e. an Acquire now would certainly fail. The HTTP layer uses this to
// reject writes before doing any work, without consuming the half-open
// probe slot (the probe belongs to the journal hook itself).
func (b *Breaker) FastFail() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateOpen && time.Since(b.openedAt) < b.cfg.Cooldown
}

// Open reports whether the breaker is currently open or probing — used by
// the readiness endpoint.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != StateClosed
}

// RetryAfter returns the remaining cooldown, the natural Retry-After hint
// for a fast-failed write. Minimum 1s so clients never busy-retry.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return time.Second
	}
	rem := b.cfg.Cooldown - time.Since(b.openedAt)
	if rem < time.Second {
		rem = time.Second
	}
	return rem
}

// BreakerStats is the point-in-time state served by /api/health.
type BreakerStats struct {
	// State is "closed", "open", or "half-open".
	State string `json:"state"`
	// ConsecutiveFailures is the current failure run while closed.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Trips counts closed→open transitions over the breaker lifetime.
	Trips uint64 `json:"trips"`
	// Rejected counts operations fast-failed while open.
	Rejected uint64 `json:"rejected"`
	// Probes counts half-open recovery attempts.
	Probes uint64 `json:"probes"`
	// LastError is the most recent recorded failure, "" after recovery.
	LastError string `json:"last_error,omitempty"`
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state.String(),
		ConsecutiveFailures: b.failures,
		Trips:               b.trips,
		Rejected:            b.rejected,
		Probes:              b.probes,
		LastError:           b.lastError,
	}
}
