package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff defaults, tuned for a follower re-dialing its leader: the first
// retry is nearly immediate, the cap keeps a dead leader from being probed
// less than every few seconds.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// Backoff produces exponentially growing, jittered delays for reconnect
// loops. Unlike jobs.RetryPolicy (which owns the whole retry loop around a
// closed operation), Backoff is a bare pacing primitive for long-lived
// loops that never give up: the replication follower re-dialing its leader,
// the router re-probing an ejected backend. Each Next roughly doubles the
// delay up to Max; Reset after a success starts the ramp over. Full jitter
// (a uniform draw over (0, delay]) de-synchronizes a fleet of followers
// reconnecting to a restarted leader, so the recovery moment is not a
// thundering herd.
type Backoff struct {
	// Base is the first delay; zero takes DefaultBackoffBase.
	Base time.Duration
	// Max caps the delay growth; zero takes DefaultBackoffMax.
	Max time.Duration

	mu  sync.Mutex
	cur time.Duration
}

// Next returns the delay to wait before the next attempt and advances the
// ramp.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	base := b.Base
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := b.Max
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if b.cur <= 0 {
		b.cur = base
	}
	d := b.cur
	b.cur *= 2
	if b.cur > max || b.cur <= 0 {
		b.cur = max
	}
	// Full jitter: uniform over (0, d]. Never zero, so a caller sleeping
	// on the result always yields.
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// Reset rewinds the ramp; call after a successful attempt.
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cur = 0
}

// Sleep blocks for Next()'s delay or until ctx is done, returning ctx.Err()
// in the latter case.
func (b *Backoff) Sleep(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
