// Package resilience is the overload-protection layer of the CAR-CS
// service. The paper's value proposition (Sec. IV) is that instructors can
// always browse, compare, and search the repository; under stress the
// service must therefore shed or degrade the write path first and keep the
// read path answering. Three cooperating mechanisms implement that policy:
//
//   - Limiter: an adaptive concurrency limiter (AIMD on observed service
//     latency) with a small deadline-aware wait queue per request class.
//     Requests that cannot be admitted within their deadline budget are
//     shed immediately with a Retry-After hint instead of queueing past
//     their timeout.
//   - Breaker: a circuit breaker for the journal append path. After a run
//     of consecutive durability failures, writes fast-fail while the
//     snapshot-isolated read path keeps serving; half-open probes attempt
//     recovery once the cooldown elapses.
//   - RateLimiter: a per-client token bucket (API key falling back to
//     remote address) bounding any single client's request rate, with an
//     LRU-bounded bucket table so hostile key churn cannot grow memory.
//
// The package has no HTTP dependencies; the server layer translates its
// errors into 429/503 responses with the standard JSON envelope.
package resilience

import "errors"

// Errors surfaced to the admission and write paths. The HTTP layer maps
// ErrShed and ErrRateLimited to 503 and 429 respectively, both with a
// computed Retry-After.
var (
	// ErrShed means the limiter could not admit the request within its
	// deadline budget (queue full, or waiting would exceed the deadline).
	ErrShed = errors.New("resilience: request shed by admission control")
	// ErrRateLimited means the client exhausted its token bucket.
	ErrRateLimited = errors.New("resilience: client rate limit exceeded")
	// ErrCircuitOpen means the write-path circuit breaker is refusing
	// traffic while the underlying fault cools down.
	ErrCircuitOpen = errors.New("resilience: circuit breaker open")
)

// Class partitions requests for admission control. Priorities are fixed:
// health probes are never queued or shed, reads outrank writes, and bulk
// imports yield to everything else — matching the paper's availability
// story, where browse/compare queries are the product and ingestion is
// background work.
type Class uint8

// Request classes, in decreasing priority.
const (
	// ClassHealth is liveness/readiness traffic; always admitted.
	ClassHealth Class = iota
	// ClassRead is the browse/compare/search read path.
	ClassRead
	// ClassWrite is interactive mutations (materials, workflow).
	ClassWrite
	// ClassBulk is bulk-import submission.
	ClassBulk

	numClasses
)

// String names the class for stats and logs.
func (c Class) String() string {
	switch c {
	case ClassHealth:
		return "health"
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassBulk:
		return "bulk"
	}
	return "unknown"
}

// wakeOrder is the order in which freed capacity is handed to waiters.
var wakeOrder = [...]Class{ClassRead, ClassWrite, ClassBulk}
