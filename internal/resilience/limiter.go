package resilience

import (
	"context"
	"math"
	"sync"
	"time"
)

// Limiter defaults. The initial limit is deliberately generous — AIMD
// converges down to what the hardware sustains; starting high means a cold
// service does not shed its first burst.
const (
	// DefaultInitialLimit is the starting concurrency limit.
	DefaultInitialLimit = 32
	// DefaultMinLimit is the AIMD floor; the limiter never throttles below
	// this, so a latency spike cannot choke the service entirely.
	DefaultMinLimit = 4
	// DefaultMaxLimit is the AIMD ceiling.
	DefaultMaxLimit = 1024
	// DefaultLatencyTarget is the service-latency setpoint: EWMA latency
	// above it decreases the limit, completions below it increase it.
	DefaultLatencyTarget = 500 * time.Millisecond
	// DefaultDecreaseFactor is the multiplicative-decrease applied when
	// the latency EWMA exceeds the target.
	DefaultDecreaseFactor = 0.85
	// DefaultDecreaseEvery rate-limits multiplicative decreases so one
	// burst of slow completions does not collapse the limit to the floor.
	DefaultDecreaseEvery = 250 * time.Millisecond
	// DefaultShedMargin is the slice of the request deadline reserved for
	// writing the shed response: a request is not queued unless it can be
	// admitted at least this long before its deadline.
	DefaultShedMargin = 50 * time.Millisecond
	// DefaultMaxWait bounds queue time for requests without a deadline.
	DefaultMaxWait = 2 * time.Second
)

// Default per-class wait-queue depths. Reads queue deepest (they are the
// product), writes shallower, bulk barely at all; health never queues.
var defaultQueueDepth = [numClasses]int{
	ClassHealth: 0,
	ClassRead:   256,
	ClassWrite:  64,
	ClassBulk:   8,
}

// LimiterConfig tunes the adaptive concurrency limiter. Zero values take
// the package defaults above.
type LimiterConfig struct {
	// Initial is the starting concurrency limit.
	Initial int
	// Min and Max clamp the AIMD limit.
	Min, Max int
	// LatencyTarget is the service-latency setpoint.
	LatencyTarget time.Duration
	// DecreaseFactor in (0,1) is the multiplicative decrease.
	DecreaseFactor float64
	// DecreaseEvery is the minimum interval between decreases.
	DecreaseEvery time.Duration
	// QueueDepth overrides the per-class wait-queue capacity; entries <= 0
	// keep the default for that class.
	QueueDepth [4]int
	// ShedMargin is the deadline slice reserved for the shed response.
	ShedMargin time.Duration
	// MaxWait bounds queue time for requests without a deadline.
	MaxWait time.Duration
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Initial <= 0 {
		c.Initial = DefaultInitialLimit
	}
	if c.Min <= 0 {
		c.Min = DefaultMinLimit
	}
	if c.Max <= 0 {
		c.Max = DefaultMaxLimit
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = DefaultLatencyTarget
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = DefaultDecreaseFactor
	}
	if c.DecreaseEvery <= 0 {
		c.DecreaseEvery = DefaultDecreaseEvery
	}
	for cl, d := range c.QueueDepth {
		if d <= 0 {
			c.QueueDepth[cl] = defaultQueueDepth[cl]
		}
	}
	c.QueueDepth[ClassHealth] = 0
	if c.ShedMargin <= 0 {
		c.ShedMargin = DefaultShedMargin
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
	return c
}

// waiter is one queued acquisition. admitted is flipped under the limiter
// lock before ch is closed, so a timed-out waiter can distinguish "I was
// admitted while my timer fired" from "still queued".
type waiter struct {
	ch       chan struct{}
	class    Class
	admitted bool
}

// Limiter is an adaptive concurrency limiter: a single AIMD-controlled
// concurrency budget shared by all request classes, with per-class
// deadline-aware wait queues drained in priority order. All methods are
// safe for concurrent use.
type Limiter struct {
	cfg LimiterConfig

	mu           sync.Mutex
	limit        float64
	inflight     int
	queues       [numClasses][]*waiter
	ewma         time.Duration // 0 until the first completion
	lastDecrease time.Time

	admitted  [numClasses]uint64
	shed      [numClasses]uint64
	decreases uint64
}

// NewLimiter builds a limiter from the config (zero value = all defaults).
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// Acquire admits the request or sheds it. Health-class requests are always
// admitted. On success the returned release function MUST be called exactly
// once when the request finishes; it reports the observed service latency
// back to the AIMD controller and hands the slot to the highest-priority
// waiter. On shed it returns ErrShed (or the context error if the caller's
// context ended first).
func (l *Limiter) Acquire(ctx context.Context, class Class) (release func(), err error) {
	if class == ClassHealth || class >= numClasses {
		return func() {}, nil
	}
	l.mu.Lock()
	if l.inflight < l.limitLocked() {
		l.inflight++
		l.admitted[class]++
		l.mu.Unlock()
		return l.releaseFunc(time.Now()), nil
	}
	// At capacity: queue if there is room and the deadline allows it.
	if len(l.queues[class]) >= l.cfg.QueueDepth[class] {
		l.shed[class]++
		l.mu.Unlock()
		return nil, ErrShed
	}
	budget := l.cfg.MaxWait
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl) - l.cfg.ShedMargin
		if remaining <= 0 {
			l.shed[class]++
			l.mu.Unlock()
			return nil, ErrShed
		}
		if remaining < budget {
			budget = remaining
		}
	}
	w := &waiter{ch: make(chan struct{}), class: class}
	l.queues[class] = append(l.queues[class], w)
	l.mu.Unlock()

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-w.ch:
		return l.releaseFunc(time.Now()), nil
	case <-ctx.Done():
		if l.abandon(w) {
			return nil, ctx.Err()
		}
		return l.releaseFunc(time.Now()), nil
	case <-timer.C:
		if l.abandon(w) {
			return nil, ErrShed
		}
		return l.releaseFunc(time.Now()), nil
	}
}

// abandon removes a waiter that gave up. It returns false when the waiter
// was admitted concurrently — in that case the caller owns a slot and must
// proceed (or release it) rather than shed.
func (l *Limiter) abandon(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.admitted {
		return false
	}
	q := l.queues[w.class]
	for i, qw := range q {
		if qw == w {
			l.queues[w.class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	l.shed[w.class]++
	return true
}

// releaseFunc closes over the admission time so release reports pure
// service latency — queue wait is excluded, otherwise backpressure-induced
// waiting would itself trigger decreases and spiral the limit down.
func (l *Limiter) releaseFunc(admittedAt time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			d := time.Since(admittedAt)
			l.mu.Lock()
			l.observeLocked(d)
			l.inflight--
			l.wakeLocked()
			l.mu.Unlock()
		})
	}
}

// observeLocked folds one completion into the AIMD controller.
func (l *Limiter) observeLocked(d time.Duration) {
	if l.ewma == 0 {
		l.ewma = d
	} else {
		l.ewma = (l.ewma*4 + d) / 5
	}
	if l.ewma > l.cfg.LatencyTarget {
		now := time.Now()
		if now.Sub(l.lastDecrease) >= l.cfg.DecreaseEvery {
			l.limit = math.Max(float64(l.cfg.Min), l.limit*l.cfg.DecreaseFactor)
			l.lastDecrease = now
			l.decreases++
		}
		return
	}
	if d <= l.cfg.LatencyTarget {
		l.limit = math.Min(float64(l.cfg.Max), l.limit+1/math.Max(l.limit, 1))
	}
}

func (l *Limiter) limitLocked() int {
	n := int(l.limit)
	if n < 1 {
		n = 1
	}
	return n
}

// wakeLocked hands freed capacity to waiters in priority order (reads
// before writes before bulk), FIFO within a class.
func (l *Limiter) wakeLocked() {
	for l.inflight < l.limitLocked() {
		var w *waiter
		for _, class := range wakeOrder {
			if q := l.queues[class]; len(q) > 0 {
				w = q[0]
				l.queues[class] = q[1:]
				break
			}
		}
		if w == nil {
			return
		}
		w.admitted = true
		l.inflight++
		l.admitted[w.class]++
		close(w.ch)
	}
}

// Overloaded reports whether the limiter is at capacity with work waiting —
// the signal the background-job runner uses to throttle its workers.
func (l *Limiter) Overloaded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight < l.limitLocked() {
		return false
	}
	for _, q := range l.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Saturated reports whether the read queue is at capacity, i.e. the next
// read would shed. The readiness endpoint serves 503 while this holds, so
// load balancers rotate traffic away before clients see sheds.
func (l *Limiter) Saturated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight >= l.limitLocked() &&
		len(l.queues[ClassRead]) >= l.cfg.QueueDepth[ClassRead]
}

// RetryAfter estimates when a shed client should retry: the time to drain
// the current queue at the observed service latency, clamped to [1s, 30s].
func (l *Limiter) RetryAfter() time.Duration {
	l.mu.Lock()
	waiting := 0
	for _, q := range l.queues {
		waiting += len(q)
	}
	ewma, limit := l.ewma, l.limit
	l.mu.Unlock()
	if ewma == 0 {
		ewma = 100 * time.Millisecond
	}
	est := time.Duration(float64(ewma) * float64(waiting+1) / math.Max(limit, 1))
	if est < time.Second {
		est = time.Second
	}
	if est > 30*time.Second {
		est = 30 * time.Second
	}
	return est
}

// LimiterStats is the point-in-time state served by /api/health.
type LimiterStats struct {
	// Limit is the current AIMD concurrency limit.
	Limit float64 `json:"limit"`
	// Inflight is the number of admitted requests currently running.
	Inflight int `json:"inflight"`
	// Queued maps class name to current wait-queue length.
	Queued map[string]int `json:"queued"`
	// Admitted and Shed map class name to lifetime counters.
	Admitted map[string]uint64 `json:"admitted"`
	Shed     map[string]uint64 `json:"shed"`
	// LatencyEWMAMillis is the smoothed service latency driving AIMD.
	LatencyEWMAMillis float64 `json:"latency_ewma_ms"`
	// Decreases counts multiplicative decreases over the limiter lifetime.
	Decreases uint64 `json:"decreases"`
	// Saturated mirrors Limiter.Saturated.
	Saturated bool `json:"saturated"`
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LimiterStats{
		Limit:             math.Round(l.limit*100) / 100,
		Inflight:          l.inflight,
		Queued:            make(map[string]int, 3),
		Admitted:          make(map[string]uint64, 3),
		Shed:              make(map[string]uint64, 3),
		LatencyEWMAMillis: float64(l.ewma) / float64(time.Millisecond),
		Decreases:         l.decreases,
	}
	for _, class := range wakeOrder {
		st.Queued[class.String()] = len(l.queues[class])
		st.Admitted[class.String()] = l.admitted[class]
		st.Shed[class.String()] = l.shed[class]
	}
	st.Saturated = l.inflight >= l.limitLocked() &&
		len(l.queues[ClassRead]) >= l.cfg.QueueDepth[ClassRead]
	return st
}
