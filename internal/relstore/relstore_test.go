package relstore

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func materialsTable(t *testing.T) (*Store, *Table) {
	t.Helper()
	s := NewStore()
	tbl, err := s.CreateTable(Schema{
		Name: "materials",
		Columns: []Column{
			{Name: "title", Type: String, Unique: true},
			{Name: "kind", Type: String, Indexed: true},
			{Name: "year", Type: Int, Indexed: true},
			{Name: "rating", Type: Float},
			{Name: "pdc", Type: Bool},
			{Name: "authors", Type: StringList},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func TestCreateTableErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable(Schema{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.CreateTable(Schema{Name: "x", Columns: []Column{{Name: "id", Type: Int}}}); err == nil {
		t.Error("reserved id column accepted")
	}
	if _, err := s.CreateTable(Schema{Name: "y", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := s.CreateTable(Schema{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(Schema{Name: "ok"}); err == nil {
		t.Error("duplicate table accepted")
	}
	if s.Table("missing") != nil {
		t.Error("missing table should be nil")
	}
	if got := s.TableNames(); !reflect.DeepEqual(got, []string{"ok", "x"}) && !reflect.DeepEqual(got, []string{"ok"}) {
		// "x" creation failed, so only "ok" must be present.
		if !reflect.DeepEqual(got, []string{"ok"}) {
			t.Errorf("TableNames = %v", got)
		}
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	_, tbl := materialsTable(t)
	id, err := tbl.Insert(Row{"title": "Nbody simulation", "kind": "assignment", "year": int64(2010), "pdc": false, "authors": []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	got := tbl.Get(id)
	if got["title"] != "Nbody simulation" || got.ID() != 1 {
		t.Errorf("Get = %v", got)
	}
	// Mutating the returned row must not affect the stored copy.
	got["title"] = "mutated"
	got["authors"].([]string)[0] = "zzz"
	if again := tbl.Get(id); again["title"] != "Nbody simulation" || again["authors"].([]string)[0] != "a" {
		t.Error("Get aliases internal state")
	}
	if err := tbl.Update(id, Row{"year": int64(2012), "rating": 4.5}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Get(id); got["year"] != int64(2012) || got["rating"] != 4.5 {
		t.Errorf("after update: %v", got)
	}
	// Clearing a column.
	if err := tbl.Update(id, Row{"rating": nil}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(id)["rating"]; ok {
		t.Error("cleared column still present")
	}
	if err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if tbl.Get(id) != nil || tbl.Len() != 0 {
		t.Error("delete failed")
	}
	if err := tbl.Delete(id); err == nil {
		t.Error("double delete accepted")
	}
	if err := tbl.Update(id, Row{"year": int64(1)}); err == nil {
		t.Error("update of deleted row accepted")
	}
}

func TestTypeChecking(t *testing.T) {
	_, tbl := materialsTable(t)
	if _, err := tbl.Insert(Row{"title": 42}); err == nil {
		t.Error("int into string column accepted")
	}
	if _, err := tbl.Insert(Row{"year": "2010"}); err == nil {
		t.Error("string into int column accepted")
	}
	if _, err := tbl.Insert(Row{"nope": "x"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.Insert(Row{"authors": []int{1}}); err == nil {
		t.Error("bad list type accepted")
	}
	if _, err := tbl.Insert(Row{"pdc": true, "rating": 1.0}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestUniqueConstraint(t *testing.T) {
	_, tbl := materialsTable(t)
	if _, err := tbl.Insert(Row{"title": "Uno"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{"title": "Uno"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate unique accepted: %v", err)
	}
	id2, err := tbl.Insert(Row{"title": "Dos"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(id2, Row{"title": "Uno"}); err == nil {
		t.Error("update into duplicate accepted")
	}
	// Updating a row to its own unique value is fine.
	if err := tbl.Update(id2, Row{"title": "Dos"}); err != nil {
		t.Errorf("self-update rejected: %v", err)
	}
	// After delete, the value is reusable.
	r := tbl.LookupUnique("title", "Uno")
	if r == nil {
		t.Fatal("LookupUnique failed")
	}
	if err := tbl.Delete(r.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{"title": "Uno"}); err != nil {
		t.Errorf("freed unique value rejected: %v", err)
	}
}

func TestLookupIndexed(t *testing.T) {
	_, tbl := materialsTable(t)
	for i, kind := range []string{"assignment", "slides", "assignment"} {
		if _, err := tbl.Insert(Row{"title": string(rune('A' + i)), "kind": kind, "year": int64(2000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	rows := tbl.LookupIndexed("kind", "assignment")
	if len(rows) != 2 || rows[0].ID() != 1 || rows[1].ID() != 3 {
		t.Errorf("LookupIndexed = %v", rows)
	}
	// Fallback scan on a non-indexed column.
	rows = tbl.LookupIndexed("title", "B")
	if len(rows) != 1 || rows[0]["kind"] != "slides" {
		t.Errorf("scan fallback = %v", rows)
	}
	// Index maintenance on update and delete.
	if err := tbl.Update(1, Row{"kind": "slides"}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.LookupIndexed("kind", "assignment"); len(got) != 1 {
		t.Errorf("index stale after update: %v", got)
	}
	if err := tbl.Delete(3); err != nil {
		t.Fatal(err)
	}
	if got := tbl.LookupIndexed("kind", "assignment"); len(got) != 0 {
		t.Errorf("index stale after delete: %v", got)
	}
	if got := tbl.LookupUnique("kind", "slides"); got != nil {
		t.Error("LookupUnique on non-unique column should be nil")
	}
}

func TestSelect(t *testing.T) {
	_, tbl := materialsTable(t)
	seed := []Row{
		{"title": "Fractal zoom", "kind": "assignment", "year": int64(2018), "pdc": true},
		{"title": "Uno", "kind": "assignment", "year": int64(2010), "pdc": false},
		{"title": "MPI slides", "kind": "slides", "year": int64(2017), "pdc": true},
		{"title": "Image editor", "kind": "assignment", "year": int64(2012), "pdc": false},
	}
	for _, r := range seed {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	got := tbl.Select(Query{Where: Eq("kind", "assignment"), OrderBy: "year"})
	if len(got) != 3 || got[0]["title"] != "Uno" || got[2]["title"] != "Fractal zoom" {
		t.Errorf("ordered select = %v", got)
	}
	got = tbl.Select(Query{Where: And(Eq("kind", "assignment"), Eq("pdc", true))})
	if len(got) != 1 || got[0]["title"] != "Fractal zoom" {
		t.Errorf("And select = %v", got)
	}
	got = tbl.Select(Query{Where: Or(Eq("kind", "slides"), ContainsFold("title", "uno"))})
	if len(got) != 2 {
		t.Errorf("Or select = %v", got)
	}
	got = tbl.Select(Query{Where: Not(Eq("pdc", true)), OrderBy: "title", Desc: true})
	if len(got) != 2 || got[0]["title"] != "Uno" {
		t.Errorf("Not/Desc select = %v", got)
	}
	got = tbl.Select(Query{OrderBy: "year", Offset: 1, Limit: 2})
	if len(got) != 2 || got[0]["year"] != int64(2012) {
		t.Errorf("paged select = %v", got)
	}
	if got := tbl.Select(Query{Offset: 99}); got != nil {
		t.Errorf("past-end select = %v", got)
	}
	if n := tbl.Count(Eq("pdc", true)); n != 2 {
		t.Errorf("Count = %d", n)
	}
	if n := tbl.Count(nil); n != 4 {
		t.Errorf("Count(nil) = %d", n)
	}
	if got := tbl.Select(Query{Where: HasElement("authors", "x")}); got != nil {
		t.Errorf("HasElement on empty lists = %v", got)
	}
}

func TestHasElement(t *testing.T) {
	_, tbl := materialsTable(t)
	if _, err := tbl.Insert(Row{"title": "T", "authors": []string{"saule", "payton"}}); err != nil {
		t.Fatal(err)
	}
	if n := tbl.Count(HasElement("authors", "payton")); n != 1 {
		t.Errorf("HasElement hit = %d", n)
	}
	if n := tbl.Count(HasElement("authors", "ghost")); n != 0 {
		t.Errorf("HasElement miss = %d", n)
	}
}

func TestLinkTable(t *testing.T) {
	s := NewStore()
	l, err := s.CreateLink("material_tags", "materials", "tags")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateLink("material_tags", "a", "b"); err == nil {
		t.Error("duplicate link accepted")
	}
	if _, err := s.CreateLink("", "a", "b"); err == nil {
		t.Error("empty link name accepted")
	}
	l.Add(1, 10)
	l.Add(1, 11)
	l.Add(2, 10)
	l.Add(1, 10) // idempotent
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if !l.Has(1, 10) || l.Has(2, 11) {
		t.Error("Has misbehaves")
	}
	if got := l.Rights(1); !reflect.DeepEqual(got, []int64{10, 11}) {
		t.Errorf("Rights = %v", got)
	}
	if got := l.Lefts(10); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Errorf("Lefts = %v", got)
	}
	l.Remove(1, 11)
	l.Remove(1, 99) // no-op
	if l.Has(1, 11) || l.Len() != 2 {
		t.Error("Remove failed")
	}
	if bad := l.CheckSymmetry(); len(bad) != 0 {
		t.Errorf("symmetry: %v", bad)
	}
	l.RemoveLeft(1)
	if l.Len() != 1 || len(l.Lefts(10)) != 1 {
		t.Errorf("RemoveLeft failed: %v", l.Pairs())
	}
	if got := s.LinkNames(); !reflect.DeepEqual(got, []string{"material_tags"}) {
		t.Errorf("LinkNames = %v", got)
	}
	if s.Link("ghost") != nil {
		t.Error("missing link should be nil")
	}
	if l.Name() != "material_tags" {
		t.Error("Name")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s, tbl := materialsTable(t)
	ids := make([]int64, 0, 3)
	for i, title := range []string{"A", "B", "C"} {
		id, err := tbl.Insert(Row{"title": title, "kind": "assignment", "year": int64(2000 + i), "pdc": i%2 == 0, "authors": []string{"x", "y"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tbl.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	l, _ := s.CreateLink("m2t", "materials", "tags")
	l.Add(ids[0], 7)
	l.Add(ids[2], 9)

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rt := restored.Table("materials")
	if rt.Len() != 2 {
		t.Fatalf("restored rows = %d", rt.Len())
	}
	if r := rt.Get(ids[0]); r == nil || r["title"] != "A" || !reflect.DeepEqual(r["authors"], []string{"x", "y"}) {
		t.Errorf("restored row = %v", r)
	}
	// nextID must continue past the deleted row so ids are never reused.
	nid, err := rt.Insert(Row{"title": "D"})
	if err != nil {
		t.Fatal(err)
	}
	if nid != 4 {
		t.Errorf("post-restore id = %d, want 4", nid)
	}
	// Unique index must be live after restore.
	if _, err := rt.Insert(Row{"title": "A"}); err == nil {
		t.Error("restored unique index not enforced")
	}
	rl := restored.Link("m2t")
	if !rl.Has(ids[0], 7) || !rl.Has(ids[2], 9) || rl.Len() != 2 {
		t.Errorf("restored links = %v", rl.Pairs())
	}
	// Snapshot of the restore equals a re-snapshot (determinism), modulo
	// the row we just inserted — so snapshot the restored store before
	// mutation instead.
	restored2, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := restored2.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("snapshot not deterministic across restore")
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	cases := []string{
		`not json`,
		`{"tables":[{"schema":{"Name":"t","Columns":[{"Name":"a","Type":0}]},"rows":[{"a":"x"}]}]}`,          // row without id
		`{"tables":[{"schema":{"Name":"t","Columns":[{"Name":"a","Type":0}]},"rows":[{"id":1,"ghost":1}]}]}`, // unknown column
		`{"tables":[{"schema":{"Name":"t","Columns":[{"Name":"a","Type":1}]},"rows":[{"id":1,"a":"s"}]}]}`,   // wrong type
		`{"tables":[{"schema":{"Name":"t"},"rows":[{"id":1},{"id":1}]}]}`,                                    // duplicate id
	}
	for i, c := range cases {
		if _, err := Restore(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	_, tbl := materialsTable(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := tbl.Insert(Row{"kind": "assignment", "year": int64(w*1000 + i)})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				tbl.Get(id)
				_ = tbl.Select(Query{Where: Eq("kind", "assignment"), Limit: 5})
				if i%3 == 0 {
					if err := tbl.Delete(id); err != nil {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// 8 workers x 50 inserts, every third deleted (i%3==0 -> 17 per worker).
	want := 8 * (50 - 17)
	if got := tbl.Len(); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{String: "string", Int: "int", Float: "float", Bool: "bool", StringList: "stringlist", Type(9): "Type(9)"} {
		if got := ty.String(); got != want {
			t.Errorf("%v", got)
		}
	}
}
