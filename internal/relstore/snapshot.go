package relstore

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// snapshot is the JSON wire form of a whole store.
type snapshot struct {
	Tables []tableSnapshot `json:"tables"`
	Links  []linkSnapshot  `json:"links"`
}

type tableSnapshot struct {
	Schema Schema           `json:"schema"`
	NextID int64            `json:"next_id"`
	Rows   []map[string]any `json:"rows"`
}

type linkSnapshot struct {
	Name  string     `json:"name"`
	Left  string     `json:"left"`
	Right string     `json:"right"`
	Pairs [][2]int64 `json:"pairs"`
}

// Snapshot serializes the whole store as JSON to w. The encoding is
// deterministic: tables, rows, and link pairs are emitted in sorted order.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	tableNames := make([]string, 0, len(s.tables))
	for n := range s.tables {
		tableNames = append(tableNames, n)
	}
	linkNames := make([]string, 0, len(s.links))
	for n := range s.links {
		linkNames = append(linkNames, n)
	}
	s.mu.RUnlock()
	sort.Strings(tableNames)
	sort.Strings(linkNames)

	var snap snapshot
	for _, name := range tableNames {
		t := s.Table(name)
		st := t.state.Load()
		ts := tableSnapshot{Schema: t.Schema(), NextID: st.nextID}
		for _, id := range st.sortedIDs() {
			r, _ := st.rows.Get(id)
			ts.Rows = append(ts.Rows, map[string]any(r.clone()))
		}
		snap.Tables = append(snap.Tables, ts)
	}
	for _, name := range linkNames {
		l := s.Link(name)
		snap.Links = append(snap.Links, linkSnapshot{
			Name: l.name, Left: l.left, Right: l.right, Pairs: l.Pairs(),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Restore reads a snapshot produced by Snapshot into a fresh store.
func Restore(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("relstore: decode snapshot: %w", err)
	}
	s := NewStore()
	for _, ts := range snap.Tables {
		t, err := s.CreateTable(ts.Schema)
		if err != nil {
			return nil, err
		}
		for _, raw := range ts.Rows {
			row, id, err := rowFromJSON(t, raw)
			if err != nil {
				return nil, err
			}
			if err := t.restoreRow(id, row); err != nil {
				return nil, err
			}
		}
		t.restoreNextID(ts.NextID)
	}
	for _, ls := range snap.Links {
		l, err := s.CreateLink(ls.Name, ls.Left, ls.Right)
		if err != nil {
			return nil, err
		}
		for _, p := range ls.Pairs {
			l.Add(p[0], p[1])
		}
	}
	return s, nil
}

// restoreRow installs a row under an explicit id (snapshot replay only).
func (t *Table) restoreRow(id int64, row Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if _, dup := st.rows.Get(id); dup {
		return fmt.Errorf("relstore: snapshot: duplicate id %d in %s", id, t.schema.Name)
	}
	ns := st.clone()
	row["id"] = id
	ns.rows = ns.rows.Set(id, row)
	ns.indexRow(id, row)
	t.state.Store(ns)
	return nil
}

// restoreNextID raises the id counter to at least n (snapshot replay only).
func (t *Table) restoreNextID(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if n <= st.nextID {
		return
	}
	ns := st.clone()
	ns.nextID = n
	t.state.Store(ns)
}

// rowFromJSON converts the generic JSON decoding of a row back into the
// typed representation the table schema demands (JSON numbers arrive as
// float64; lists arrive as []any).
func rowFromJSON(t *Table, raw map[string]any) (Row, int64, error) {
	row := make(Row, len(raw))
	var id int64
	for k, v := range raw {
		if k == "id" {
			f, ok := v.(float64)
			if !ok {
				return nil, 0, fmt.Errorf("relstore: snapshot: bad id %v", v)
			}
			id = int64(f)
			continue
		}
		col, ok := t.byCol[k]
		if !ok {
			return nil, 0, fmt.Errorf("relstore: snapshot: unknown column %q in %s", k, t.schema.Name)
		}
		if v == nil {
			continue
		}
		switch col.Type {
		case Int:
			f, ok := v.(float64)
			if !ok {
				return nil, 0, fmt.Errorf("relstore: snapshot: %s.%s: %T not int", t.schema.Name, k, v)
			}
			row[k] = int64(f)
		case Float:
			f, ok := v.(float64)
			if !ok {
				return nil, 0, fmt.Errorf("relstore: snapshot: %s.%s: %T not float", t.schema.Name, k, v)
			}
			row[k] = f
		case String:
			sv, ok := v.(string)
			if !ok {
				return nil, 0, fmt.Errorf("relstore: snapshot: %s.%s: %T not string", t.schema.Name, k, v)
			}
			row[k] = sv
		case Bool:
			bv, ok := v.(bool)
			if !ok {
				return nil, 0, fmt.Errorf("relstore: snapshot: %s.%s: %T not bool", t.schema.Name, k, v)
			}
			row[k] = bv
		case StringList:
			list, ok := v.([]any)
			if !ok {
				return nil, 0, fmt.Errorf("relstore: snapshot: %s.%s: %T not list", t.schema.Name, k, v)
			}
			ss := make([]string, 0, len(list))
			for _, e := range list {
				es, ok := e.(string)
				if !ok {
					return nil, 0, fmt.Errorf("relstore: snapshot: %s.%s: %T element not string", t.schema.Name, k, e)
				}
				ss = append(ss, es)
			}
			row[k] = ss
		}
	}
	if id == 0 {
		return nil, 0, fmt.Errorf("relstore: snapshot: row without id in %s", t.schema.Name)
	}
	return row, id, nil
}
