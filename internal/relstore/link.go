package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// LinkTable is a many-to-many association between two tables, the relational
// join tables of the CAR-CS schema ("Tags, items in the classification,
// dataset used, and authors are associated with an assignment using a
// many-to-many relationship"). Links are unordered pairs (left id, right id)
// with set semantics.
type LinkTable struct {
	mu          sync.RWMutex
	name        string
	left, right string // table names, documentation only
	fwd         map[int64]map[int64]bool
	rev         map[int64]map[int64]bool
}

// CreateLink adds a named link table relating the left and right tables.
func (s *Store) CreateLink(name, leftTable, rightTable string) (*LinkTable, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("relstore: empty link name")
	}
	if _, dup := s.links[name]; dup {
		return nil, fmt.Errorf("relstore: link %q exists", name)
	}
	l := &LinkTable{
		name: name, left: leftTable, right: rightTable,
		fwd: make(map[int64]map[int64]bool),
		rev: make(map[int64]map[int64]bool),
	}
	s.links[name] = l
	return l, nil
}

// Link returns the named link table, or nil.
func (s *Store) Link(name string) *LinkTable {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.links[name]
}

// LinkNames lists link tables, sorted.
func (s *Store) LinkNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.links))
	for n := range s.links {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the link table's name.
func (l *LinkTable) Name() string { return l.name }

// Add links left and right; re-adding an existing pair is a no-op.
func (l *LinkTable) Add(left, right int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fwd[left] == nil {
		l.fwd[left] = make(map[int64]bool)
	}
	l.fwd[left][right] = true
	if l.rev[right] == nil {
		l.rev[right] = make(map[int64]bool)
	}
	l.rev[right][left] = true
}

// Remove unlinks the pair; removing a missing pair is a no-op.
func (l *LinkTable) Remove(left, right int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m := l.fwd[left]; m != nil {
		delete(m, right)
		if len(m) == 0 {
			delete(l.fwd, left)
		}
	}
	if m := l.rev[right]; m != nil {
		delete(m, left)
		if len(m) == 0 {
			delete(l.rev, right)
		}
	}
}

// RemoveLeft drops every link whose left side is the given id.
func (l *LinkTable) RemoveLeft(left int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for right := range l.fwd[left] {
		delete(l.rev[right], left)
		if len(l.rev[right]) == 0 {
			delete(l.rev, right)
		}
	}
	delete(l.fwd, left)
}

// Has reports whether the pair is linked.
func (l *LinkTable) Has(left, right int64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.fwd[left][right]
}

// Rights returns the sorted right-side ids linked to left.
func (l *LinkTable) Rights(left int64) []int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return sortedKeys(l.fwd[left])
}

// Lefts returns the sorted left-side ids linked to right.
func (l *LinkTable) Lefts(right int64) []int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return sortedKeys(l.rev[right])
}

// Len returns the number of linked pairs.
func (l *LinkTable) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, m := range l.fwd {
		n += len(m)
	}
	return n
}

// Pairs returns every linked pair sorted by (left, right); used by the
// snapshot writer and by integrity tests.
func (l *LinkTable) Pairs() [][2]int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out [][2]int64
	for left, m := range l.fwd {
		for right := range m {
			out = append(out, [2]int64{left, right})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// CheckSymmetry verifies the forward and reverse maps describe the same
// relation, returning discrepancies (empty when consistent).
func (l *LinkTable) CheckSymmetry() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var bad []string
	for left, m := range l.fwd {
		for right := range m {
			if !l.rev[right][left] {
				bad = append(bad, fmt.Sprintf("fwd(%d,%d) missing in rev", left, right))
			}
		}
	}
	for right, m := range l.rev {
		for left := range m {
			if !l.fwd[left][right] {
				bad = append(bad, fmt.Sprintf("rev(%d,%d) missing in fwd", right, left))
			}
		}
	}
	sort.Strings(bad)
	return bad
}

func sortedKeys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
