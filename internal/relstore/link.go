package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"carcs/internal/pmap"
)

// linkState is one immutable version of a link table's relation.
type linkState struct {
	fwd   *pmap.Map[int64, *pmap.Map[int64, struct{}]]
	rev   *pmap.Map[int64, *pmap.Map[int64, struct{}]]
	pairs int
}

// LinkTable is a many-to-many association between two tables, the relational
// join tables of the CAR-CS schema ("Tags, items in the classification,
// dataset used, and authors are associated with an assignment using a
// many-to-many relationship"). Links are unordered pairs (left id, right id)
// with set semantics. Like Table, reads are lock-free against an atomically
// published immutable state.
type LinkTable struct {
	mu          sync.Mutex
	name        string
	left, right string // table names, documentation only
	state       atomic.Pointer[linkState]
}

func newLinkState() *linkState {
	return &linkState{
		fwd: pmap.NewInts[*pmap.Map[int64, struct{}]](),
		rev: pmap.NewInts[*pmap.Map[int64, struct{}]](),
	}
}

// CreateLink adds a named link table relating the left and right tables.
func (s *Store) CreateLink(name, leftTable, rightTable string) (*LinkTable, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("relstore: empty link name")
	}
	if _, dup := s.links[name]; dup {
		return nil, fmt.Errorf("relstore: link %q exists", name)
	}
	l := &LinkTable{name: name, left: leftTable, right: rightTable}
	l.state.Store(newLinkState())
	s.links[name] = l
	return l, nil
}

// Link returns the named link table, or nil.
func (s *Store) Link(name string) *LinkTable {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.links[name]
}

// LinkNames lists link tables, sorted.
func (s *Store) LinkNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.links))
	for n := range s.links {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the link table's name.
func (l *LinkTable) Name() string { return l.name }

// Snap returns an immutable snapshot of the link table at its current
// version; see Store.Snap.
func (l *LinkTable) Snap() *LinkTable {
	nl := &LinkTable{name: l.name, left: l.left, right: l.right}
	nl.state.Store(l.state.Load())
	return nl
}

// addTo links left->right in one direction map, returning the updated map
// and whether the pair was new.
func addTo(m *pmap.Map[int64, *pmap.Map[int64, struct{}]], from, to int64) (*pmap.Map[int64, *pmap.Map[int64, struct{}]], bool) {
	set := m.GetOr(from, nil)
	if set == nil {
		set = pmap.NewInts[struct{}]()
	} else if _, ok := set.Get(to); ok {
		return m, false
	}
	return m.Set(from, set.Set(to, struct{}{})), true
}

// removeFrom unlinks from->to, returning the updated map and whether the
// pair existed.
func removeFrom(m *pmap.Map[int64, *pmap.Map[int64, struct{}]], from, to int64) (*pmap.Map[int64, *pmap.Map[int64, struct{}]], bool) {
	set := m.GetOr(from, nil)
	if set == nil {
		return m, false
	}
	if _, ok := set.Get(to); !ok {
		return m, false
	}
	if next := set.Delete(to); next.Len() > 0 {
		return m.Set(from, next), true
	}
	return m.Delete(from), true
}

// Add links left and right; re-adding an existing pair is a no-op.
func (l *LinkTable) Add(left, right int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state.Load()
	fwd, added := addTo(st.fwd, left, right)
	if !added {
		return
	}
	rev, _ := addTo(st.rev, right, left)
	pairs := st.pairs + 1
	l.state.Store(&linkState{fwd: fwd, rev: rev, pairs: pairs})
}

// AddBatch links every (left, right) pair in one edit session — the outer
// direction maps are edited through pmap.Builders, so each trie node is
// copied at most once for the whole batch — and publishes a single new
// state. Pairs already linked are skipped, matching Add's set semantics.
func (l *LinkTable) AddBatch(pairs [][2]int64) {
	if len(pairs) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state.Load()
	fwdB := st.fwd.Builder()
	revB := st.rev.Builder()
	added := 0
	for _, p := range pairs {
		left, right := p[0], p[1]
		set := fwdB.GetOr(left, nil)
		if set == nil {
			set = pmap.NewInts[struct{}]()
		} else if _, ok := set.Get(right); ok {
			continue
		}
		fwdB.Set(left, set.Set(right, struct{}{}))
		rset := revB.GetOr(right, nil)
		if rset == nil {
			rset = pmap.NewInts[struct{}]()
		}
		revB.Set(right, rset.Set(left, struct{}{}))
		added++
	}
	if added == 0 {
		return
	}
	l.state.Store(&linkState{fwd: fwdB.Map(), rev: revB.Map(), pairs: st.pairs + added})
}

// Remove unlinks the pair; removing a missing pair is a no-op.
func (l *LinkTable) Remove(left, right int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state.Load()
	fwd, removed := removeFrom(st.fwd, left, right)
	if !removed {
		return
	}
	rev, _ := removeFrom(st.rev, right, left)
	l.state.Store(&linkState{fwd: fwd, rev: rev, pairs: st.pairs - 1})
}

// RemoveLeft drops every link whose left side is the given id.
func (l *LinkTable) RemoveLeft(left int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state.Load()
	set := st.fwd.GetOr(left, nil)
	if set == nil {
		return
	}
	rev := st.rev
	set.Range(func(right int64, _ struct{}) bool {
		rev, _ = removeFrom(rev, right, left)
		return true
	})
	l.state.Store(&linkState{
		fwd:   st.fwd.Delete(left),
		rev:   rev,
		pairs: st.pairs - set.Len(),
	})
}

// Has reports whether the pair is linked.
func (l *LinkTable) Has(left, right int64) bool {
	set := l.state.Load().fwd.GetOr(left, nil)
	if set == nil {
		return false
	}
	_, ok := set.Get(right)
	return ok
}

// Rights returns the sorted right-side ids linked to left.
func (l *LinkTable) Rights(left int64) []int64 {
	return sortedSet(l.state.Load().fwd.GetOr(left, nil))
}

// Lefts returns the sorted left-side ids linked to right.
func (l *LinkTable) Lefts(right int64) []int64 {
	return sortedSet(l.state.Load().rev.GetOr(right, nil))
}

// Len returns the number of linked pairs.
func (l *LinkTable) Len() int { return l.state.Load().pairs }

// Pairs returns every linked pair sorted by (left, right); used by the
// snapshot writer and by integrity tests.
func (l *LinkTable) Pairs() [][2]int64 {
	st := l.state.Load()
	var out [][2]int64
	st.fwd.Range(func(left int64, set *pmap.Map[int64, struct{}]) bool {
		set.Range(func(right int64, _ struct{}) bool {
			out = append(out, [2]int64{left, right})
			return true
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// CheckSymmetry verifies the forward and reverse maps describe the same
// relation, returning discrepancies (empty when consistent).
func (l *LinkTable) CheckSymmetry() []string {
	st := l.state.Load()
	var bad []string
	st.fwd.Range(func(left int64, set *pmap.Map[int64, struct{}]) bool {
		set.Range(func(right int64, _ struct{}) bool {
			if rs := st.rev.GetOr(right, nil); rs == nil {
				bad = append(bad, fmt.Sprintf("fwd(%d,%d) missing in rev", left, right))
			} else if _, ok := rs.Get(left); !ok {
				bad = append(bad, fmt.Sprintf("fwd(%d,%d) missing in rev", left, right))
			}
			return true
		})
		return true
	})
	st.rev.Range(func(right int64, set *pmap.Map[int64, struct{}]) bool {
		set.Range(func(left int64, _ struct{}) bool {
			if fs := st.fwd.GetOr(left, nil); fs == nil {
				bad = append(bad, fmt.Sprintf("rev(%d,%d) missing in fwd", right, left))
			} else if _, ok := fs.Get(right); !ok {
				bad = append(bad, fmt.Sprintf("rev(%d,%d) missing in fwd", right, left))
			}
			return true
		})
		return true
	})
	sort.Strings(bad)
	return bad
}

func sortedSet(set *pmap.Map[int64, struct{}]) []int64 {
	out := make([]int64, 0, set.Len())
	set.Range(func(k int64, _ struct{}) bool {
		out = append(out, k)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
