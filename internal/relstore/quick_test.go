package relstore

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickUniqueIndexIntegrity drives a table through random CRUD and
// verifies after every operation that (a) the unique index maps exactly the
// live rows' values and (b) no two live rows share a unique value.
func TestQuickUniqueIndexIntegrity(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore()
		tbl, err := s.CreateTable(Schema{Name: "t", Columns: []Column{
			{Name: "u", Type: Int, Unique: true},
			{Name: "k", Type: Int, Indexed: true},
		}})
		if err != nil {
			t.Fatal(err)
		}
		var live []int64
		for _, op := range ops {
			val := int64(op % 16) // small domain to force collisions
			switch op % 3 {
			case 0:
				if id, err := tbl.Insert(Row{"u": val, "k": val % 4}); err == nil {
					live = append(live, id)
				}
			case 1:
				if len(live) > 0 {
					id := live[int(op)%len(live)]
					_ = tbl.Update(id, Row{"u": val})
				}
			case 2:
				if len(live) > 0 {
					i := int(op) % len(live)
					if err := tbl.Delete(live[i]); err != nil {
						return false
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
			// Invariant: unique values over live rows are distinct.
			seen := map[int64]bool{}
			for _, r := range tbl.Select(Query{}) {
				u, ok := r["u"].(int64)
				if !ok {
					continue
				}
				if seen[u] {
					return false
				}
				seen[u] = true
				// And the unique lookup finds this row.
				if hit := tbl.LookupUnique("u", u); hit == nil || hit.ID() != r.ID() {
					return false
				}
			}
			if tbl.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinkSymmetry drives random link/unlink operations and checks the
// forward/reverse maps stay mirror images.
func TestQuickLinkSymmetry(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore()
		l, err := s.CreateLink("x", "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			left, right := int64(op%7), int64((op>>3)%7)
			switch op % 4 {
			case 0, 1:
				l.Add(left, right)
			case 2:
				l.Remove(left, right)
			case 3:
				l.RemoveLeft(left)
			}
			if bad := l.CheckSymmetry(); len(bad) != 0 {
				return false
			}
			if l.Len() != len(l.Pairs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSnapshotRoundTrip builds random stores and checks that
// Snapshot -> Restore -> Snapshot is the identity on the wire format.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := NewStore()
		tbl, err := s.CreateTable(Schema{Name: "m", Columns: []Column{
			{Name: "title", Type: String, Indexed: true},
			{Name: "year", Type: Int},
			{Name: "score", Type: Float},
			{Name: "flag", Type: Bool},
			{Name: "list", Type: StringList},
		}})
		if err != nil {
			t.Fatal(err)
		}
		var ids []int64
		for i, n := 0, r.Intn(30); i < n; i++ {
			id, err := tbl.Insert(Row{
				"title": string(rune('a' + r.Intn(26))),
				"year":  int64(r.Intn(30)),
				"score": float64(r.Intn(100)) / 10,
				"flag":  r.Intn(2) == 0,
				"list":  []string{string(rune('a' + r.Intn(4)))},
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < len(ids)/4; i++ {
			_ = tbl.Delete(ids[r.Intn(len(ids))])
		}
		l, _ := s.CreateLink("ln", "m", "m")
		for i := 0; i < r.Intn(20); i++ {
			l.Add(int64(r.Intn(10)), int64(r.Intn(10)))
		}
		var b1 bytes.Buffer
		if err := s.Snapshot(&b1); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var b2 bytes.Buffer
		if err := restored.Snapshot(&b2); err != nil {
			t.Fatal(err)
		}
		if b1.String() != b2.String() {
			t.Fatalf("trial %d: snapshot round trip differs", trial)
		}
	}
}
