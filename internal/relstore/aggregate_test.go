package relstore

import (
	"reflect"
	"testing"
)

func aggTable(t *testing.T) *Table {
	t.Helper()
	s := NewStore()
	tbl, err := s.CreateTable(Schema{Name: "m", Columns: []Column{
		{Name: "kind", Type: String},
		{Name: "year", Type: Int},
		{Name: "score", Type: Float},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"kind": "assignment", "year": int64(2010), "score": 1.5},
		{"kind": "assignment", "year": int64(2012), "score": 2.5},
		{"kind": "slides", "year": int64(2018), "score": 3.0},
		{"kind": "slides", "year": int64(2011)},
		{"year": int64(2013)}, // no kind
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCountBy(t *testing.T) {
	tbl := aggTable(t)
	got := tbl.CountBy("kind", nil)
	if len(got) != 3 {
		t.Fatalf("groups = %v", got)
	}
	if got[0].Count != 2 || got[1].Count != 2 || got[2].Count != 1 || got[2].Key != nil {
		t.Errorf("CountBy = %v", got)
	}
	filtered := tbl.CountBy("kind", Eq("year", int64(2018)))
	if len(filtered) != 1 || filtered[0].Key != "slides" {
		t.Errorf("filtered CountBy = %v", filtered)
	}
}

func TestMinMaxInt(t *testing.T) {
	tbl := aggTable(t)
	min, max, ok := tbl.MinMaxInt("year", nil)
	if !ok || min != 2010 || max != 2018 {
		t.Errorf("MinMax = %d..%d ok=%v", min, max, ok)
	}
	if _, _, ok := tbl.MinMaxInt("absent", nil); ok {
		t.Error("absent column reported ok")
	}
	min, max, ok = tbl.MinMaxInt("year", Eq("kind", "slides"))
	if !ok || min != 2011 || max != 2018 {
		t.Errorf("filtered MinMax = %d..%d", min, max)
	}
}

func TestSumFloatAndDistinct(t *testing.T) {
	tbl := aggTable(t)
	if got := tbl.SumFloat("score", nil); got != 7.0 {
		t.Errorf("Sum = %v", got)
	}
	if got := tbl.SumFloat("score", Eq("kind", "assignment")); got != 4.0 {
		t.Errorf("filtered Sum = %v", got)
	}
	if got := tbl.DistinctStrings("kind", nil); !reflect.DeepEqual(got, []string{"assignment", "slides"}) {
		t.Errorf("Distinct = %v", got)
	}
}
