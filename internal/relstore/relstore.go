// Package relstore is a small in-memory relational store: typed tables with
// auto-incrementing integer primary keys, unique and secondary hash indexes,
// predicate scans, many-to-many link tables, and JSON snapshot/restore.
//
// It stands in for the PostgreSQL database of the original CAR-CS prototype
// (see DESIGN.md). The CAR-CS schema is small — assignments, tags,
// classification entries, datasets, authors, and many-to-many associations
// between them — and this store implements exactly those relational
// semantics with stdlib-only code. All operations are safe for concurrent
// use.
package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// Type enumerates the column types the store supports.
type Type int

const (
	// String columns hold Go strings.
	String Type = iota
	// Int columns hold int64 values.
	Int
	// Float columns hold float64 values.
	Float
	// Bool columns hold booleans.
	Bool
	// StringList columns hold []string values (used for denormalized
	// small lists such as author name arrays).
	StringList
)

func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case StringList:
		return "stringlist"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
	// Unique enforces a unique index over non-zero values.
	Unique bool
	// Indexed maintains a secondary hash index for equality lookups.
	Indexed bool
}

// Schema describes a table: its name and columns. Every table implicitly has
// an "id" Int primary-key column assigned by the store; schemas must not
// declare one.
type Schema struct {
	Name    string
	Columns []Column
}

// Row is one record. The "id" key holds the int64 primary key.
type Row map[string]any

// ID returns the primary key of the row (0 if unset).
func (r Row) ID() int64 {
	id, _ := r["id"].(int64)
	return id
}

// clone returns a deep-enough copy of the row: the map and any string
// slices are copied so callers can never alias stored state.
func (r Row) clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		if s, ok := v.([]string); ok {
			cp := make([]string, len(s))
			copy(cp, s)
			out[k] = cp
			continue
		}
		out[k] = v
	}
	return out
}

// Table is a collection of rows under a schema.
type Table struct {
	mu      sync.RWMutex
	schema  Schema
	byCol   map[string]Column
	rows    map[int64]Row
	nextID  int64
	uniques map[string]map[any]int64   // column -> value -> row id
	indexes map[string]map[any][]int64 // column -> value -> row ids (sorted)
}

// Store is a named collection of tables and link tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
	links  map[string]*LinkTable
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		tables: make(map[string]*Table),
		links:  make(map[string]*LinkTable),
	}
}

// CreateTable adds a table with the given schema. It fails on duplicate
// table names, duplicate column names, or a column named "id".
func (s *Store) CreateTable(schema Schema) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if schema.Name == "" {
		return nil, fmt.Errorf("relstore: empty table name")
	}
	if _, dup := s.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relstore: table %q exists", schema.Name)
	}
	t := &Table{
		schema:  schema,
		byCol:   make(map[string]Column, len(schema.Columns)),
		rows:    make(map[int64]Row),
		uniques: make(map[string]map[any]int64),
		indexes: make(map[string]map[any][]int64),
	}
	for _, c := range schema.Columns {
		if c.Name == "id" {
			return nil, fmt.Errorf("relstore: table %q declares reserved column id", schema.Name)
		}
		if _, dup := t.byCol[c.Name]; dup {
			return nil, fmt.Errorf("relstore: table %q duplicate column %q", schema.Name, c.Name)
		}
		t.byCol[c.Name] = c
		if c.Unique {
			t.uniques[c.Name] = make(map[any]int64)
		}
		if c.Indexed {
			t.indexes[c.Name] = make(map[any][]int64)
		}
	}
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or nil if absent.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// TableNames lists the store's tables, sorted.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema {
	cols := make([]Column, len(t.schema.Columns))
	copy(cols, t.schema.Columns)
	return Schema{Name: t.schema.Name, Columns: cols}
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// checkTypes validates that every key in r names a schema column and every
// value matches the column's type. The id key is ignored.
func (t *Table) checkTypes(r Row) error {
	for k, v := range r {
		if k == "id" {
			continue
		}
		col, ok := t.byCol[k]
		if !ok {
			return fmt.Errorf("relstore: %s: unknown column %q", t.schema.Name, k)
		}
		if v == nil {
			continue
		}
		var good bool
		switch col.Type {
		case String:
			_, good = v.(string)
		case Int:
			_, good = v.(int64)
		case Float:
			_, good = v.(float64)
		case Bool:
			_, good = v.(bool)
		case StringList:
			_, good = v.([]string)
		}
		if !good {
			return fmt.Errorf("relstore: %s.%s: value %T does not match %v", t.schema.Name, k, v, col.Type)
		}
	}
	return nil
}

// indexKey converts a value into a hashable index key ([]string values are
// not indexable and are rejected at schema time by convention).
func indexKey(v any) any { return v }

// Insert adds a row and returns its assigned id. Unique constraints are
// enforced over non-nil values.
func (t *Table) Insert(r Row) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkTypes(r); err != nil {
		return 0, err
	}
	for col, idx := range t.uniques {
		v, ok := r[col]
		if !ok || v == nil {
			continue
		}
		if owner, taken := idx[indexKey(v)]; taken {
			return 0, fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.schema.Name, col, v, owner)
		}
	}
	t.nextID++
	id := t.nextID
	row := r.clone()
	row["id"] = id
	t.rows[id] = row
	t.indexRowLocked(id, row)
	return id, nil
}

// Get returns a copy of the row with the given id, or nil if absent.
func (t *Table) Get(id int64) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil
	}
	return r.clone()
}

// Update merges the given column values into the row with the given id.
// Setting a column to nil clears it. Unique constraints are re-checked.
func (t *Table) Update(id int64, changes Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: %s: no row %d", t.schema.Name, id)
	}
	if err := t.checkTypes(changes); err != nil {
		return err
	}
	next := old.clone()
	for k, v := range changes {
		if k == "id" {
			continue
		}
		if v == nil {
			delete(next, k)
			continue
		}
		next[k] = v
	}
	for col, idx := range t.uniques {
		v, ok := next[col]
		if !ok || v == nil {
			continue
		}
		if owner, taken := idx[indexKey(v)]; taken && owner != id {
			return fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.schema.Name, col, v, owner)
		}
	}
	t.unindexRowLocked(id, old)
	next["id"] = id
	t.rows[id] = next
	t.indexRowLocked(id, next)
	return nil
}

// Delete removes the row with the given id; deleting a missing row is an
// error so callers surface dangling references.
func (t *Table) Delete(id int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: %s: no row %d", t.schema.Name, id)
	}
	t.unindexRowLocked(id, old)
	delete(t.rows, id)
	return nil
}

func (t *Table) indexRowLocked(id int64, r Row) {
	for col, idx := range t.uniques {
		if v, ok := r[col]; ok && v != nil {
			idx[indexKey(v)] = id
		}
	}
	for col, idx := range t.indexes {
		if v, ok := r[col]; ok && v != nil {
			k := indexKey(v)
			ids := idx[k]
			pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
			ids = append(ids, 0)
			copy(ids[pos+1:], ids[pos:])
			ids[pos] = id
			idx[k] = ids
		}
	}
}

func (t *Table) unindexRowLocked(id int64, r Row) {
	for col, idx := range t.uniques {
		if v, ok := r[col]; ok && v != nil {
			if idx[indexKey(v)] == id {
				delete(idx, indexKey(v))
			}
		}
	}
	for col, idx := range t.indexes {
		if v, ok := r[col]; ok && v != nil {
			k := indexKey(v)
			ids := idx[k]
			pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
			if pos < len(ids) && ids[pos] == id {
				ids = append(ids[:pos], ids[pos+1:]...)
			}
			if len(ids) == 0 {
				delete(idx, k)
			} else {
				idx[k] = ids
			}
		}
	}
}

// LookupUnique returns a copy of the row whose unique column holds value, or
// nil if absent or the column is not unique.
func (t *Table) LookupUnique(col string, value any) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.uniques[col]
	if !ok {
		return nil
	}
	id, ok := idx[indexKey(value)]
	if !ok {
		return nil
	}
	return t.rows[id].clone()
}

// LookupIndexed returns copies of the rows whose indexed column equals
// value, in id order. A non-indexed column falls back to a scan.
func (t *Table) LookupIndexed(col string, value any) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[col]; ok {
		ids := idx[indexKey(value)]
		out := make([]Row, 0, len(ids))
		for _, id := range ids {
			out = append(out, t.rows[id].clone())
		}
		return out
	}
	var out []Row
	for _, id := range t.sortedIDsLocked() {
		if t.rows[id][col] == value {
			out = append(out, t.rows[id].clone())
		}
	}
	return out
}

func (t *Table) sortedIDsLocked() []int64 {
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
