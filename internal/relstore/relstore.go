// Package relstore is a small in-memory relational store: typed tables with
// auto-incrementing integer primary keys, unique and secondary hash indexes,
// predicate scans, many-to-many link tables, and JSON snapshot/restore.
//
// It stands in for the PostgreSQL database of the original CAR-CS prototype
// (see DESIGN.md). The CAR-CS schema is small — assignments, tags,
// classification entries, datasets, authors, and many-to-many associations
// between them — and this store implements exactly those relational
// semantics with stdlib-only code. All operations are safe for concurrent
// use.
//
// Each table's contents live in an immutable state value published through
// an atomic pointer: readers never block, writers serialize on a mutex and
// path-copy only the rows and index branches they touch (persistent maps
// from internal/pmap). Snap captures a whole table or store in O(tables),
// which is what makes the core package's read views cheap to publish.
package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"carcs/internal/pmap"
)

// Type enumerates the column types the store supports.
type Type int

const (
	// String columns hold Go strings.
	String Type = iota
	// Int columns hold int64 values.
	Int
	// Float columns hold float64 values.
	Float
	// Bool columns hold booleans.
	Bool
	// StringList columns hold []string values (used for denormalized
	// small lists such as author name arrays).
	StringList
)

func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case StringList:
		return "stringlist"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
	// Unique enforces a unique index over non-zero values.
	Unique bool
	// Indexed maintains a secondary hash index for equality lookups.
	Indexed bool
}

// Schema describes a table: its name and columns. Every table implicitly has
// an "id" Int primary-key column assigned by the store; schemas must not
// declare one.
type Schema struct {
	Name    string
	Columns []Column
}

// Row is one record. The "id" key holds the int64 primary key.
type Row map[string]any

// ID returns the primary key of the row (0 if unset).
func (r Row) ID() int64 {
	id, _ := r["id"].(int64)
	return id
}

// clone returns a deep-enough copy of the row: the map and any string
// slices are copied so callers can never alias stored state.
func (r Row) clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		if s, ok := v.([]string); ok {
			cp := make([]string, len(s))
			copy(cp, s)
			out[k] = cp
			continue
		}
		out[k] = v
	}
	return out
}

// tableState is one immutable version of a table's contents. Rows stored in
// it are never mutated in place; every update stores a fresh clone.
type tableState struct {
	rows   *pmap.Map[int64, Row]
	nextID int64
	// uniques and indexes map column name -> encoded value -> owner. The
	// outer maps are schema-sized and copied wholesale per mutation; the
	// inner persistent maps share structure across versions.
	uniques map[string]*pmap.Map[string, int64]
	indexes map[string]*pmap.Map[string, *pmap.Map[int64, struct{}]]
}

// clone returns a shallow copy whose outer index maps are fresh, so the
// writer can re-point inner persistent maps without disturbing readers of
// the previous state.
func (st *tableState) clone() *tableState {
	ns := &tableState{
		rows:    st.rows,
		nextID:  st.nextID,
		uniques: make(map[string]*pmap.Map[string, int64], len(st.uniques)),
		indexes: make(map[string]*pmap.Map[string, *pmap.Map[int64, struct{}]], len(st.indexes)),
	}
	for c, m := range st.uniques {
		ns.uniques[c] = m
	}
	for c, m := range st.indexes {
		ns.indexes[c] = m
	}
	return ns
}

// Table is a collection of rows under a schema. Reads load the current
// state without locking; writes serialize on mu and publish a new state.
type Table struct {
	mu     sync.Mutex
	schema Schema
	byCol  map[string]Column
	state  atomic.Pointer[tableState]
}

// Store is a named collection of tables and link tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
	links  map[string]*LinkTable
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		tables: make(map[string]*Table),
		links:  make(map[string]*LinkTable),
	}
}

// Snap returns an immutable snapshot of the store: every table and link
// table captured at its current version, sharing all row storage with the
// live store. Snapshots serve reads (and Snapshot serialization) but must
// not be mutated; mutations on the live store never affect them.
func (s *Store) Snap() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns := &Store{
		tables: make(map[string]*Table, len(s.tables)),
		links:  make(map[string]*LinkTable, len(s.links)),
	}
	for n, t := range s.tables {
		ns.tables[n] = t.Snap()
	}
	for n, l := range s.links {
		ns.links[n] = l.Snap()
	}
	return ns
}

// CreateTable adds a table with the given schema. It fails on duplicate
// table names, duplicate column names, or a column named "id".
func (s *Store) CreateTable(schema Schema) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if schema.Name == "" {
		return nil, fmt.Errorf("relstore: empty table name")
	}
	if _, dup := s.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relstore: table %q exists", schema.Name)
	}
	t := &Table{
		schema: schema,
		byCol:  make(map[string]Column, len(schema.Columns)),
	}
	st := &tableState{
		rows:    pmap.NewInts[Row](),
		uniques: make(map[string]*pmap.Map[string, int64]),
		indexes: make(map[string]*pmap.Map[string, *pmap.Map[int64, struct{}]]),
	}
	for _, c := range schema.Columns {
		if c.Name == "id" {
			return nil, fmt.Errorf("relstore: table %q declares reserved column id", schema.Name)
		}
		if _, dup := t.byCol[c.Name]; dup {
			return nil, fmt.Errorf("relstore: table %q duplicate column %q", schema.Name, c.Name)
		}
		t.byCol[c.Name] = c
		if c.Unique {
			st.uniques[c.Name] = pmap.NewStrings[int64]()
		}
		if c.Indexed {
			st.indexes[c.Name] = pmap.NewStrings[*pmap.Map[int64, struct{}]]()
		}
	}
	t.state.Store(st)
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or nil if absent.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// TableNames lists the store's tables, sorted.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snap returns an immutable snapshot of the table at its current version;
// see Store.Snap.
func (t *Table) Snap() *Table {
	nt := &Table{schema: t.schema, byCol: t.byCol}
	nt.state.Store(t.state.Load())
	return nt
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema {
	cols := make([]Column, len(t.schema.Columns))
	copy(cols, t.schema.Columns)
	return Schema{Name: t.schema.Name, Columns: cols}
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.state.Load().rows.Len() }

// checkTypes validates that every key in r names a schema column and every
// value matches the column's type. The id key is ignored.
func (t *Table) checkTypes(r Row) error {
	for k, v := range r {
		if k == "id" {
			continue
		}
		col, ok := t.byCol[k]
		if !ok {
			return fmt.Errorf("relstore: %s: unknown column %q", t.schema.Name, k)
		}
		if v == nil {
			continue
		}
		var good bool
		switch col.Type {
		case String:
			_, good = v.(string)
		case Int:
			_, good = v.(int64)
		case Float:
			_, good = v.(float64)
		case Bool:
			_, good = v.(bool)
		case StringList:
			_, good = v.([]string)
		}
		if !good {
			return fmt.Errorf("relstore: %s.%s: value %T does not match %v", t.schema.Name, k, v, col.Type)
		}
	}
	return nil
}

// encodeKey renders an indexable value as a string key for the persistent
// index maps, prefixed by type so values of different types never collide
// ([]string values are not indexable and are rejected at schema time by
// convention).
func encodeKey(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return "s" + x, true
	case int64:
		return "i" + strconv.FormatInt(x, 10), true
	case float64:
		return "f" + strconv.FormatFloat(x, 'b', -1, 64), true
	case bool:
		if x {
			return "bt", true
		}
		return "bf", true
	}
	return "", false
}

// Insert adds a row and returns its assigned id. Unique constraints are
// enforced over non-nil values.
func (t *Table) Insert(r Row) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkTypes(r); err != nil {
		return 0, err
	}
	st := t.state.Load()
	for col, idx := range st.uniques {
		v, ok := r[col]
		if !ok || v == nil {
			continue
		}
		if k, ok := encodeKey(v); ok {
			if owner, taken := idx.Get(k); taken {
				return 0, fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.schema.Name, col, v, owner)
			}
		}
	}
	ns := st.clone()
	ns.nextID++
	id := ns.nextID
	row := r.clone()
	row["id"] = id
	ns.rows = ns.rows.Set(id, row)
	ns.indexRow(id, row)
	t.state.Store(ns)
	return id, nil
}

// InsertBatch adds every row in one edit session and returns their assigned
// ids in order. All type and unique-constraint checks — against the current
// state and within the batch — run before any mutation, so the batch is
// all-or-nothing. The rows land in a single pmap.Builder pass per container,
// copying each trie node at most once for the whole batch instead of once
// per row, and one state publish covers all of them.
func (t *Table) InsertBatch(rows []Row) ([]int64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	var inBatch map[string]map[string]int
	for i, r := range rows {
		if err := t.checkTypes(r); err != nil {
			return nil, err
		}
		for col, idx := range st.uniques {
			v, ok := r[col]
			if !ok || v == nil {
				continue
			}
			k, ok := encodeKey(v)
			if !ok {
				continue
			}
			if owner, taken := idx.Get(k); taken {
				return nil, fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.schema.Name, col, v, owner)
			}
			if inBatch == nil {
				inBatch = make(map[string]map[string]int)
			}
			seen := inBatch[col]
			if seen == nil {
				seen = make(map[string]int)
				inBatch[col] = seen
			}
			if prev, dup := seen[k]; dup {
				return nil, fmt.Errorf("relstore: %s.%s: duplicate value %v within batch (items %d and %d)", t.schema.Name, col, v, prev, i)
			}
			seen[k] = i
		}
	}
	ns := st.clone()
	rowsB := ns.rows.Builder()
	uniqueBs := make(map[string]*pmap.Builder[string, int64], len(ns.uniques))
	for col, idx := range ns.uniques {
		uniqueBs[col] = idx.Builder()
	}
	indexBs := make(map[string]*pmap.Builder[string, *pmap.Map[int64, struct{}]], len(ns.indexes))
	for col, idx := range ns.indexes {
		indexBs[col] = idx.Builder()
	}
	ids := make([]int64, len(rows))
	for i, r := range rows {
		ns.nextID++
		id := ns.nextID
		ids[i] = id
		row := r.clone()
		row["id"] = id
		rowsB.Set(id, row)
		for col, ub := range uniqueBs {
			if v, ok := row[col]; ok && v != nil {
				if k, ok := encodeKey(v); ok {
					ub.Set(k, id)
				}
			}
		}
		for col, ib := range indexBs {
			if v, ok := row[col]; ok && v != nil {
				if k, ok := encodeKey(v); ok {
					set := ib.GetOr(k, nil)
					if set == nil {
						set = pmap.NewInts[struct{}]()
					}
					ib.Set(k, set.Set(id, struct{}{}))
				}
			}
		}
	}
	ns.rows = rowsB.Map()
	for col, ub := range uniqueBs {
		ns.uniques[col] = ub.Map()
	}
	for col, ib := range indexBs {
		ns.indexes[col] = ib.Map()
	}
	t.state.Store(ns)
	return ids, nil
}

// Get returns a copy of the row with the given id, or nil if absent.
func (t *Table) Get(id int64) Row {
	r, ok := t.state.Load().rows.Get(id)
	if !ok {
		return nil
	}
	return r.clone()
}

// Update merges the given column values into the row with the given id.
// Setting a column to nil clears it. Unique constraints are re-checked.
func (t *Table) Update(id int64, changes Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	old, ok := st.rows.Get(id)
	if !ok {
		return fmt.Errorf("relstore: %s: no row %d", t.schema.Name, id)
	}
	if err := t.checkTypes(changes); err != nil {
		return err
	}
	next := old.clone()
	for k, v := range changes {
		if k == "id" {
			continue
		}
		if v == nil {
			delete(next, k)
			continue
		}
		next[k] = v
	}
	for col, idx := range st.uniques {
		v, ok := next[col]
		if !ok || v == nil {
			continue
		}
		if k, ok := encodeKey(v); ok {
			if owner, taken := idx.Get(k); taken && owner != id {
				return fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.schema.Name, col, v, owner)
			}
		}
	}
	ns := st.clone()
	ns.unindexRow(id, old)
	next["id"] = id
	ns.rows = ns.rows.Set(id, next)
	ns.indexRow(id, next)
	t.state.Store(ns)
	return nil
}

// Delete removes the row with the given id; deleting a missing row is an
// error so callers surface dangling references.
func (t *Table) Delete(id int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	old, ok := st.rows.Get(id)
	if !ok {
		return fmt.Errorf("relstore: %s: no row %d", t.schema.Name, id)
	}
	ns := st.clone()
	ns.unindexRow(id, old)
	ns.rows = ns.rows.Delete(id)
	t.state.Store(ns)
	return nil
}

// indexRow records the row in the state's unique and secondary indexes.
// The receiver must be a freshly cloned, not-yet-published state.
func (st *tableState) indexRow(id int64, r Row) {
	for col, idx := range st.uniques {
		if v, ok := r[col]; ok && v != nil {
			if k, ok := encodeKey(v); ok {
				st.uniques[col] = idx.Set(k, id)
			}
		}
	}
	for col, idx := range st.indexes {
		if v, ok := r[col]; ok && v != nil {
			if k, ok := encodeKey(v); ok {
				set := idx.GetOr(k, nil)
				if set == nil {
					set = pmap.NewInts[struct{}]()
				}
				st.indexes[col] = idx.Set(k, set.Set(id, struct{}{}))
			}
		}
	}
}

// unindexRow removes the row from the state's indexes; same contract as
// indexRow.
func (st *tableState) unindexRow(id int64, r Row) {
	for col, idx := range st.uniques {
		if v, ok := r[col]; ok && v != nil {
			if k, ok := encodeKey(v); ok {
				if owner, has := idx.Get(k); has && owner == id {
					st.uniques[col] = idx.Delete(k)
				}
			}
		}
	}
	for col, idx := range st.indexes {
		if v, ok := r[col]; ok && v != nil {
			if k, ok := encodeKey(v); ok {
				if set := idx.GetOr(k, nil); set != nil {
					if next := set.Delete(id); next.Len() == 0 {
						st.indexes[col] = idx.Delete(k)
					} else {
						st.indexes[col] = idx.Set(k, next)
					}
				}
			}
		}
	}
}

// LookupUnique returns a copy of the row whose unique column holds value, or
// nil if absent or the column is not unique.
func (t *Table) LookupUnique(col string, value any) Row {
	st := t.state.Load()
	idx, ok := st.uniques[col]
	if !ok {
		return nil
	}
	k, ok := encodeKey(value)
	if !ok {
		return nil
	}
	id, ok := idx.Get(k)
	if !ok {
		return nil
	}
	r, _ := st.rows.Get(id)
	return r.clone()
}

// UniqueID returns the row id holding value in the unique column, without
// materializing the row. Existence checks and foreign-key resolution on hot
// write paths use it to skip LookupUnique's defensive row copy.
func (t *Table) UniqueID(col string, value any) (int64, bool) {
	st := t.state.Load()
	idx, ok := st.uniques[col]
	if !ok {
		return 0, false
	}
	k, ok := encodeKey(value)
	if !ok {
		return 0, false
	}
	return idx.Get(k)
}

// LookupIndexed returns copies of the rows whose indexed column equals
// value, in id order. A non-indexed column falls back to a scan.
func (t *Table) LookupIndexed(col string, value any) []Row {
	st := t.state.Load()
	if idx, ok := st.indexes[col]; ok {
		k, ok := encodeKey(value)
		if !ok {
			return []Row{}
		}
		set := idx.GetOr(k, nil)
		ids := make([]int64, 0, set.Len())
		set.Range(func(id int64, _ struct{}) bool {
			ids = append(ids, id)
			return true
		})
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := make([]Row, 0, len(ids))
		for _, id := range ids {
			r, _ := st.rows.Get(id)
			out = append(out, r.clone())
		}
		return out
	}
	var out []Row
	for _, id := range st.sortedIDs() {
		r, _ := st.rows.Get(id)
		if r[col] == value {
			out = append(out, r.clone())
		}
	}
	return out
}

func (st *tableState) sortedIDs() []int64 {
	ids := make([]int64, 0, st.rows.Len())
	st.rows.Range(func(id int64, _ Row) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
