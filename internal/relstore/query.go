package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Pred is a row predicate used by Select.
type Pred func(Row) bool

// All matches every row.
func All() Pred { return func(Row) bool { return true } }

// Eq matches rows whose column equals value (missing columns never match).
func Eq(col string, value any) Pred {
	return func(r Row) bool {
		v, ok := r[col]
		return ok && v == value
	}
}

// ContainsFold matches rows whose string column contains the substring,
// case-insensitively.
func ContainsFold(col, sub string) Pred {
	needle := strings.ToLower(sub)
	return func(r Row) bool {
		s, ok := r[col].(string)
		return ok && strings.Contains(strings.ToLower(s), needle)
	}
}

// HasElement matches rows whose StringList column contains elem.
func HasElement(col, elem string) Pred {
	return func(r Row) bool {
		list, ok := r[col].([]string)
		if !ok {
			return false
		}
		for _, e := range list {
			if e == elem {
				return true
			}
		}
		return false
	}
}

// And combines predicates conjunctively.
func And(ps ...Pred) Pred {
	return func(r Row) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively; with no operands it matches nothing.
func Or(ps ...Pred) Pred {
	return func(r Row) bool {
		for _, p := range ps {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Pred) Pred { return func(r Row) bool { return !p(r) } }

// Query describes a Select: predicate, optional ordering, and paging.
type Query struct {
	Where Pred
	// OrderBy names the column to sort by; empty sorts by id. Sorting is
	// defined for String, Int, Float, and Bool columns; rows missing the
	// column sort first.
	OrderBy string
	// Desc reverses the sort order.
	Desc bool
	// Offset skips the first rows of the result.
	Offset int
	// Limit caps the result size; zero means unlimited.
	Limit int
}

// Select returns copies of the rows matching the query.
func (t *Table) Select(q Query) []Row {
	st := t.state.Load()
	matched := make([]Row, 0, 16)
	for _, id := range st.sortedIDs() {
		r, _ := st.rows.Get(id)
		if q.Where == nil || q.Where(r) {
			matched = append(matched, r.clone())
		}
	}

	if q.OrderBy != "" {
		col := q.OrderBy
		sort.SliceStable(matched, func(i, j int) bool {
			return lessValue(matched[i][col], matched[j][col])
		})
	}
	if q.Desc {
		for i, j := 0, len(matched)-1; i < j; i, j = i+1, j-1 {
			matched[i], matched[j] = matched[j], matched[i]
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			return nil
		}
		matched = matched[q.Offset:]
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	if len(matched) == 0 {
		return nil
	}
	return matched
}

// Count returns the number of rows matching the predicate.
func (t *Table) Count(p Pred) int {
	st := t.state.Load()
	if p == nil {
		return st.rows.Len()
	}
	n := 0
	st.rows.Range(func(_ int64, r Row) bool {
		if p(r) {
			n++
		}
		return true
	})
	return n
}

// lessValue orders two column values of the same supported type; nil sorts
// first, mixed types order by type name for determinism.
func lessValue(a, b any) bool {
	if a == nil {
		return b != nil
	}
	if b == nil {
		return false
	}
	switch av := a.(type) {
	case string:
		if bv, ok := b.(string); ok {
			return av < bv
		}
	case int64:
		if bv, ok := b.(int64); ok {
			return av < bv
		}
	case float64:
		if bv, ok := b.(float64); ok {
			return av < bv
		}
	case bool:
		if bv, ok := b.(bool); ok {
			return !av && bv
		}
	}
	return fmt.Sprintf("%T", a) < fmt.Sprintf("%T", b)
}
