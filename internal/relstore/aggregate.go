package relstore

import "sort"

// GroupCount tallies rows by the value of a column, the aggregation behind
// per-collection and per-kind statistics. Rows missing the column are
// grouped under the nil key, reported with Key == nil.
type GroupCount struct {
	Key   any
	Count int
}

// CountBy groups rows matching the predicate (nil for all) by the column
// and returns counts sorted by descending count, then by key formatting.
func (t *Table) CountBy(col string, p Pred) []GroupCount {
	t.mu.RLock()
	counts := make(map[any]int)
	for _, r := range t.rows {
		if p != nil && !p(r) {
			continue
		}
		counts[r[col]]++
	}
	t.mu.RUnlock()
	out := make([]GroupCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, GroupCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessValue(out[i].Key, out[j].Key)
	})
	return out
}

// MinMaxInt returns the minimum and maximum of an Int column over rows
// matching the predicate; ok is false when no row has the column.
func (t *Table) MinMaxInt(col string, p Pred) (min, max int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if p != nil && !p(r) {
			continue
		}
		v, has := r[col].(int64)
		if !has {
			continue
		}
		if !ok || v < min {
			min = v
		}
		if !ok || v > max {
			max = v
		}
		ok = true
	}
	return min, max, ok
}

// SumFloat totals a Float column over rows matching the predicate.
func (t *Table) SumFloat(col string, p Pred) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s float64
	for _, r := range t.rows {
		if p != nil && !p(r) {
			continue
		}
		if v, has := r[col].(float64); has {
			s += v
		}
	}
	return s
}

// DistinctStrings returns the sorted distinct non-empty values of a String
// column over rows matching the predicate.
func (t *Table) DistinctStrings(col string, p Pred) []string {
	t.mu.RLock()
	seen := make(map[string]bool)
	for _, r := range t.rows {
		if p != nil && !p(r) {
			continue
		}
		if v, has := r[col].(string); has && v != "" {
			seen[v] = true
		}
	}
	t.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
