package relstore

import "sort"

// GroupCount tallies rows by the value of a column, the aggregation behind
// per-collection and per-kind statistics. Rows missing the column are
// grouped under the nil key, reported with Key == nil.
type GroupCount struct {
	Key   any
	Count int
}

// CountBy groups rows matching the predicate (nil for all) by the column
// and returns counts sorted by descending count, then by key formatting.
func (t *Table) CountBy(col string, p Pred) []GroupCount {
	st := t.state.Load()
	counts := make(map[any]int)
	st.rows.Range(func(_ int64, r Row) bool {
		if p == nil || p(r) {
			counts[r[col]]++
		}
		return true
	})
	out := make([]GroupCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, GroupCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessValue(out[i].Key, out[j].Key)
	})
	return out
}

// MinMaxInt returns the minimum and maximum of an Int column over rows
// matching the predicate; ok is false when no row has the column.
func (t *Table) MinMaxInt(col string, p Pred) (min, max int64, ok bool) {
	st := t.state.Load()
	st.rows.Range(func(_ int64, r Row) bool {
		if p != nil && !p(r) {
			return true
		}
		v, has := r[col].(int64)
		if !has {
			return true
		}
		if !ok || v < min {
			min = v
		}
		if !ok || v > max {
			max = v
		}
		ok = true
		return true
	})
	return min, max, ok
}

// SumFloat totals a Float column over rows matching the predicate.
func (t *Table) SumFloat(col string, p Pred) float64 {
	st := t.state.Load()
	var s float64
	st.rows.Range(func(_ int64, r Row) bool {
		if p == nil || p(r) {
			if v, has := r[col].(float64); has {
				s += v
			}
		}
		return true
	})
	return s
}

// DistinctStrings returns the sorted distinct non-empty values of a String
// column over rows matching the predicate.
func (t *Table) DistinctStrings(col string, p Pred) []string {
	st := t.state.Load()
	seen := make(map[string]bool)
	st.rows.Range(func(_ int64, r Row) bool {
		if p == nil || p(r) {
			if v, has := r[col].(string); has && v != "" {
				seen[v] = true
			}
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
