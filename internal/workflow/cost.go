package workflow

import (
	"fmt"
	"math"
)

// CostModel estimates curation effort (experiment E8). The paper reports the
// calibration point: entering and classifying the initial 98 materials took
// the instructor "about a day of work, with each item taking between 15-25
// minutes to input and classify", that "keying the meta data is
// straightforward and fast, but classification is more involved", and that
// "the time required to classify materials decreases once the classifier
// understands the ontologies".
type CostModel struct {
	// MetadataMinutes is the fixed per-item cost of keying title,
	// authors, URL, and description.
	MetadataMinutes float64
	// PerEntryMinutes is the cost of locating one classification entry in
	// the ontology tree by hand.
	PerEntryMinutes float64
	// LearningFloor is the fraction of the per-entry cost that remains
	// once the classifier knows the ontologies (learning curve asymptote).
	LearningFloor float64
	// LearningHalfLife is the number of items after which half the
	// learnable savings are realized.
	LearningHalfLife float64
	// SuggestionHitRate is the fraction of entries found via an accepted
	// suggestion instead of a manual tree search, when assistance is on.
	SuggestionHitRate float64
	// SuggestionMinutes is the cost of reviewing one suggestion.
	SuggestionMinutes float64
}

// DefaultCostModel is calibrated so that 98 items × ~6 entries lands inside
// the paper's 15–25 minutes-per-item band and sums to about one working day.
func DefaultCostModel() CostModel {
	return CostModel{
		MetadataMinutes:   5,
		PerEntryMinutes:   2.5,
		LearningFloor:     0.7,
		LearningHalfLife:  20,
		SuggestionHitRate: 0.6,
		SuggestionMinutes: 0.5,
	}
}

// ItemMinutes estimates the cost of the i-th item (0-based) with the given
// number of classification entries, with or without suggestion assistance.
func (c CostModel) ItemMinutes(i int, entries int, assisted bool) float64 {
	// Exponential learning curve from 1.0 down to LearningFloor.
	decay := c.LearningFloor + (1-c.LearningFloor)*halfLifeDecay(float64(i), c.LearningHalfLife)
	perEntry := c.PerEntryMinutes * decay
	cost := c.MetadataMinutes
	if assisted {
		hit := c.SuggestionHitRate
		cost += float64(entries) * (hit*c.SuggestionMinutes + (1-hit)*perEntry)
		cost += c.SuggestionMinutes // skim the suggestion list once
	} else {
		cost += float64(entries) * perEntry
	}
	return cost
}

// TotalMinutes estimates the cost of a batch of items with a fixed number of
// entries each.
func (c CostModel) TotalMinutes(items, entriesPer int, assisted bool) float64 {
	var sum float64
	for i := 0; i < items; i++ {
		sum += c.ItemMinutes(i, entriesPer, assisted)
	}
	return sum
}

// Speedup returns manual/assisted total time for a batch.
func (c CostModel) Speedup(items, entriesPer int) float64 {
	manual := c.TotalMinutes(items, entriesPer, false)
	assisted := c.TotalMinutes(items, entriesPer, true)
	if assisted == 0 {
		return 0
	}
	return manual / assisted
}

// String summarizes the calibration for reports.
func (c CostModel) String() string {
	return fmt.Sprintf("metadata=%.1fmin entry=%.1fmin floor=%.2f halflife=%.0f hit=%.2f",
		c.MetadataMinutes, c.PerEntryMinutes, c.LearningFloor, c.LearningHalfLife, c.SuggestionHitRate)
}

// halfLifeDecay returns 2^(-x/half), the remaining learnable fraction.
func halfLifeDecay(x, half float64) float64 {
	if half <= 0 {
		return 0
	}
	return math.Exp2(-x / half)
}
