// Package workflow implements the crowdsourced curation model of Sec. III-A
// and the account/role system the paper lists as required future work:
// "a proper user account system, and roles (editor, submitter, user) need to
// be integrated to enable a larger scale curation of the material."
//
// Instructors upload materials (submissions); editors — users with
// credentials demonstrating knowledge of the standards — approve, fix, or
// reject them; less knowledgeable users may only suggest metadata changes,
// which an editor must verify. Every state change lands in an audit log.
package workflow

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"carcs/internal/material"
)

// Role is an account's capability level.
type Role int

const (
	// RoleUser may browse and suggest metadata changes.
	RoleUser Role = iota
	// RoleSubmitter may additionally upload materials.
	RoleSubmitter
	// RoleEditor may additionally review submissions and verify
	// suggested edits ("an editor has experience or credentials
	// demonstrating knowledge of the standards used by the system").
	RoleEditor
)

var roleNames = [...]string{"user", "submitter", "editor"}

// String returns the role's lower-case name.
func (r Role) String() string {
	if r < 0 || int(r) >= len(roleNames) {
		return fmt.Sprintf("Role(%d)", int(r))
	}
	return roleNames[r]
}

// Account is a named account with a role.
type Account struct {
	Name string
	Role Role
}

// Status is a submission's review state.
type Status string

// Submission statuses.
const (
	StatusPending  Status = "pending"
	StatusApproved Status = "approved"
	StatusRejected Status = "rejected"
	StatusChanges  Status = "changes-requested"
)

// Submission is a material upload awaiting editorial review.
type Submission struct {
	ID        int64
	Material  *material.Material
	Submitter string
	Status    Status
	// ReviewedBy is the editor who decided, empty while pending.
	ReviewedBy string
	// Note carries the editor's feedback.
	Note string
}

// SuggestedEdit is a metadata change proposed by a non-editor: "less
// knowledgeable users can suggest changes to the metadata which must be
// verified by an editor."
type SuggestedEdit struct {
	ID         int64
	MaterialID string
	Field      string
	OldValue   string
	NewValue   string
	Suggester  string
	Verified   bool
	VerifiedBy string
	Rejected   bool
}

// AuditEntry records one workflow action.
type AuditEntry struct {
	Seq    int64
	At     time.Time
	Actor  string
	Action string
	Detail string
}

// Hook observes a workflow mutation before it commits. A durability layer
// installs one to journal the operation; a hook error aborts the mutation,
// so a change is never visible unless it was logged first.
type Hook func(op string, payload any) error

// Queue is the curation workflow state. Safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	accounts map[string]Account
	subs     map[int64]*Submission
	edits    map[int64]*SuggestedEdit
	audit    []AuditEntry
	nextSub  int64
	nextEdit int64
	nextSeq  int64
	now      func() time.Time
	hook     Hook
	observer func()
}

// NewQueue returns an empty workflow queue.
func NewQueue() *Queue {
	return &Queue{
		accounts: make(map[string]Account),
		subs:     make(map[int64]*Submission),
		edits:    make(map[int64]*SuggestedEdit),
		now:      time.Now,
	}
}

// SetClock overrides the queue's clock, for tests.
func (q *Queue) SetClock(now func() time.Time) { q.now = now }

// SetHook installs the mutation hook. Pass nil to detach (e.g. during
// journal replay, so replayed operations are not re-logged).
func (q *Queue) SetHook(h Hook) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.hook = h
}

// SetObserver installs a callback fired after every committed mutation,
// while the queue lock is still held. The core system uses it to advance
// its generation counter, invalidating cached read results; the callback
// must be cheap and must not call back into the queue.
func (q *Queue) SetObserver(fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.observer = fn
}

func (q *Queue) hookLocked(op string, payload any) error {
	if q.hook == nil {
		return nil
	}
	return q.hook(op, payload)
}

// RegisterPayload is the journaled form of Register.
type RegisterPayload struct {
	Name string `json:"name"`
	Role Role   `json:"role"`
}

// Register creates an account; re-registering a name changes its role. It
// returns an error only when the installed mutation hook refuses the write.
func (q *Queue) Register(name string, role Role) (Account, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	a := Account{Name: name, Role: role}
	if prev, ok := q.accounts[name]; ok && prev == a {
		return a, nil // no-op; keep the journal quiet on re-registration
	}
	if err := q.hookLocked(OpRegister, RegisterPayload{Name: name, Role: role}); err != nil {
		return Account{}, err
	}
	q.accounts[name] = a
	q.logLocked(name, "register", role.String())
	return a, nil
}

// Account returns the named account and whether it exists.
func (q *Queue) Account(name string) (Account, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	a, ok := q.accounts[name]
	return a, ok
}

func (q *Queue) requireLocked(name string, min Role) error {
	a, ok := q.accounts[name]
	if !ok {
		return fmt.Errorf("workflow: unknown account %q", name)
	}
	if a.Role < min {
		return fmt.Errorf("workflow: %s is a %s; needs %s", name, a.Role, min)
	}
	return nil
}

// SubmitPayload is the journaled form of Submit.
type SubmitPayload struct {
	Submitter string             `json:"submitter"`
	Material  *material.Material `json:"material"`
}

// Submit uploads a material for review.
func (q *Queue) Submit(submitter string, m *material.Material) (*Submission, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.requireLocked(submitter, RoleSubmitter); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("workflow: nil material")
	}
	if err := q.hookLocked(OpSubmit, SubmitPayload{Submitter: submitter, Material: m}); err != nil {
		return nil, err
	}
	q.nextSub++
	s := &Submission{ID: q.nextSub, Material: m, Submitter: submitter, Status: StatusPending}
	q.subs[s.ID] = s
	q.logLocked(submitter, "submit", m.ID)
	return s, nil
}

// Pending returns pending submissions ordered by ID — the editor's queue.
func (q *Queue) Pending() []*Submission {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Submission
	for _, s := range q.subs {
		if s.Status == StatusPending {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Review decides a pending submission. Only editors may review; a submitter
// may not review their own upload even if they are an editor.
func (q *Queue) Review(editor string, subID int64, decision Status, note string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.requireLocked(editor, RoleEditor); err != nil {
		return err
	}
	s, ok := q.subs[subID]
	if !ok {
		return fmt.Errorf("workflow: no submission %d", subID)
	}
	if s.Status != StatusPending {
		return fmt.Errorf("workflow: submission %d already %s", subID, s.Status)
	}
	if s.Submitter == editor {
		return fmt.Errorf("workflow: %s cannot review own submission", editor)
	}
	switch decision {
	case StatusApproved, StatusRejected, StatusChanges:
	default:
		return fmt.Errorf("workflow: invalid decision %q", decision)
	}
	if err := q.hookLocked(OpReview, ReviewPayload{Editor: editor, Submission: subID, Decision: decision, Note: note}); err != nil {
		return err
	}
	s.Status = decision
	s.ReviewedBy = editor
	s.Note = note
	q.logLocked(editor, "review", fmt.Sprintf("submission %d -> %s", subID, decision))
	return nil
}

// Resubmit returns a changes-requested submission to the pending queue with
// an updated material.
func (q *Queue) Resubmit(submitter string, subID int64, m *material.Material) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	s, ok := q.subs[subID]
	if !ok {
		return fmt.Errorf("workflow: no submission %d", subID)
	}
	if s.Submitter != submitter {
		return fmt.Errorf("workflow: %s does not own submission %d", submitter, subID)
	}
	if s.Status != StatusChanges {
		return fmt.Errorf("workflow: submission %d is %s, not %s", subID, s.Status, StatusChanges)
	}
	if err := q.hookLocked(OpResubmit, ResubmitPayload{Submitter: submitter, Submission: subID, Material: m}); err != nil {
		return err
	}
	s.Material = m
	s.Status = StatusPending
	s.ReviewedBy = ""
	s.Note = ""
	q.logLocked(submitter, "resubmit", m.ID)
	return nil
}

// Approved returns the approved materials in submission order — what the
// public repository serves.
func (q *Queue) Approved() []*material.Material {
	q.mu.Lock()
	defer q.mu.Unlock()
	var ids []int64
	for id, s := range q.subs {
		if s.Status == StatusApproved {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*material.Material, 0, len(ids))
	for _, id := range ids {
		out = append(out, q.subs[id].Material)
	}
	return out
}

// SuggestEdit records a metadata change proposal from any account.
func (q *Queue) SuggestEdit(suggester, materialID, field, oldValue, newValue string) (*SuggestedEdit, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.requireLocked(suggester, RoleUser); err != nil {
		return nil, err
	}
	if err := q.hookLocked(OpSuggestEdit, SuggestEditPayload{
		Suggester: suggester, MaterialID: materialID,
		Field: field, OldValue: oldValue, NewValue: newValue,
	}); err != nil {
		return nil, err
	}
	q.nextEdit++
	e := &SuggestedEdit{
		ID: q.nextEdit, MaterialID: materialID,
		Field: field, OldValue: oldValue, NewValue: newValue,
		Suggester: suggester,
	}
	q.edits[e.ID] = e
	q.logLocked(suggester, "suggest-edit", fmt.Sprintf("%s.%s", materialID, field))
	return e, nil
}

// VerifyEdit lets an editor accept or reject a suggested edit.
func (q *Queue) VerifyEdit(editor string, editID int64, accept bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.requireLocked(editor, RoleEditor); err != nil {
		return err
	}
	e, ok := q.edits[editID]
	if !ok {
		return fmt.Errorf("workflow: no edit %d", editID)
	}
	if e.Verified || e.Rejected {
		return fmt.Errorf("workflow: edit %d already decided", editID)
	}
	if err := q.hookLocked(OpVerifyEdit, VerifyEditPayload{Editor: editor, Edit: editID, Accept: accept}); err != nil {
		return err
	}
	if accept {
		e.Verified = true
	} else {
		e.Rejected = true
	}
	e.VerifiedBy = editor
	q.logLocked(editor, "verify-edit", fmt.Sprintf("edit %d accept=%v", editID, accept))
	return nil
}

// UnverifiedEdits returns suggested edits awaiting an editor, by ID.
func (q *Queue) UnverifiedEdits() []*SuggestedEdit {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*SuggestedEdit
	for _, e := range q.edits {
		if !e.Verified && !e.Rejected {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Audit returns a copy of the audit log in order.
func (q *Queue) Audit() []AuditEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]AuditEntry, len(q.audit))
	copy(out, q.audit)
	return out
}

func (q *Queue) logLocked(actor, action, detail string) {
	q.nextSeq++
	q.audit = append(q.audit, AuditEntry{
		Seq: q.nextSeq, At: q.now(), Actor: actor, Action: action, Detail: detail,
	})
	if q.observer != nil {
		q.observer()
	}
}
