package workflow

import (
	"sort"

	"carcs/internal/material"
)

// Journal op names for workflow mutations. The durability layer writes them
// to the write-ahead log and replays them through Replay.
const (
	OpRegister    = "workflow.register"
	OpSubmit      = "workflow.submit"
	OpReview      = "workflow.review"
	OpResubmit    = "workflow.resubmit"
	OpSuggestEdit = "workflow.suggest-edit"
	OpVerifyEdit  = "workflow.verify-edit"
)

// ReviewPayload is the journaled form of Review.
type ReviewPayload struct {
	Editor     string `json:"editor"`
	Submission int64  `json:"submission"`
	Decision   Status `json:"decision"`
	Note       string `json:"note,omitempty"`
}

// ResubmitPayload is the journaled form of Resubmit.
type ResubmitPayload struct {
	Submitter  string             `json:"submitter"`
	Submission int64              `json:"submission"`
	Material   *material.Material `json:"material"`
}

// SuggestEditPayload is the journaled form of SuggestEdit.
type SuggestEditPayload struct {
	Suggester  string `json:"suggester"`
	MaterialID string `json:"material_id"`
	Field      string `json:"field"`
	OldValue   string `json:"old_value"`
	NewValue   string `json:"new_value"`
}

// VerifyEditPayload is the journaled form of VerifyEdit.
type VerifyEditPayload struct {
	Editor string `json:"editor"`
	Edit   int64  `json:"edit"`
	Accept bool   `json:"accept"`
}

// QueueState is the serializable whole of a workflow queue, the part of a
// durability checkpoint that the relational snapshot does not cover.
type QueueState struct {
	Accounts    []Account       `json:"accounts"`
	Submissions []Submission    `json:"submissions"`
	Edits       []SuggestedEdit `json:"edits"`
	Audit       []AuditEntry    `json:"audit"`
	NextSub     int64           `json:"next_sub"`
	NextEdit    int64           `json:"next_edit"`
	NextSeq     int64           `json:"next_seq"`
}

func (q *Queue) stateLocked() QueueState {
	st := QueueState{
		NextSub:  q.nextSub,
		NextEdit: q.nextEdit,
		NextSeq:  q.nextSeq,
		Audit:    append([]AuditEntry(nil), q.audit...),
	}
	for _, a := range q.accounts {
		st.Accounts = append(st.Accounts, a)
	}
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].Name < st.Accounts[j].Name })
	for _, s := range q.subs {
		cp := *s
		if s.Material != nil {
			cp.Material = s.Material.Clone()
		}
		st.Submissions = append(st.Submissions, cp)
	}
	sort.Slice(st.Submissions, func(i, j int) bool { return st.Submissions[i].ID < st.Submissions[j].ID })
	for _, e := range q.edits {
		st.Edits = append(st.Edits, *e)
	}
	sort.Slice(st.Edits, func(i, j int) bool { return st.Edits[i].ID < st.Edits[j].ID })
	return st
}

// State returns a deep, deterministic copy of the queue's state.
func (q *Queue) State() QueueState {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stateLocked()
}

// SetState replaces the queue's contents with a previously captured state.
// The installed hook is not invoked: restoring is not a new mutation.
func (q *Queue) SetState(st QueueState) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.accounts = make(map[string]Account, len(st.Accounts))
	for _, a := range st.Accounts {
		q.accounts[a.Name] = a
	}
	q.subs = make(map[int64]*Submission, len(st.Submissions))
	for _, s := range st.Submissions {
		cp := s
		if s.Material != nil {
			cp.Material = s.Material.Clone()
		}
		q.subs[cp.ID] = &cp
	}
	q.edits = make(map[int64]*SuggestedEdit, len(st.Edits))
	for _, e := range st.Edits {
		cp := e
		q.edits[cp.ID] = &cp
	}
	q.audit = append([]AuditEntry(nil), st.Audit...)
	q.nextSub = st.NextSub
	q.nextEdit = st.NextEdit
	q.nextSeq = st.NextSeq
}

// Freeze runs fn with the queue's mutation lock held, passing the current
// state. The durability layer uses it to checkpoint atomically: no workflow
// mutation can commit (or journal itself) while fn runs.
func (q *Queue) Freeze(fn func(QueueState) error) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return fn(q.stateLocked())
}
