package workflow

import (
	"testing"
	"time"

	"carcs/internal/material"
)

func newMat(id string) *material.Material {
	return &material.Material{ID: id, Title: id, Kind: material.Assignment, Level: material.CS1}
}

func TestRolesAndSubmission(t *testing.T) {
	q := NewQueue()
	q.SetClock(func() time.Time { return time.Unix(0, 0) })
	q.Register("alice", RoleSubmitter)
	q.Register("ed", RoleEditor)
	q.Register("bob", RoleUser)

	if _, err := q.Submit("bob", newMat("m1")); err == nil {
		t.Error("plain user could submit")
	}
	if _, err := q.Submit("ghost", newMat("m1")); err == nil {
		t.Error("unknown account could submit")
	}
	s, err := q.Submit("alice", newMat("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusPending || len(q.Pending()) != 1 {
		t.Fatal("submission not pending")
	}
	if _, err := q.Submit("alice", nil); err == nil {
		t.Error("nil material accepted")
	}

	if err := q.Review("alice", s.ID, StatusApproved, ""); err == nil {
		t.Error("submitter (non-editor) could review")
	}
	if err := q.Review("ed", 999, StatusApproved, ""); err == nil {
		t.Error("review of unknown submission accepted")
	}
	if err := q.Review("ed", s.ID, "maybe", ""); err == nil {
		t.Error("invalid decision accepted")
	}
	if err := q.Review("ed", s.ID, StatusApproved, "looks good"); err != nil {
		t.Fatal(err)
	}
	if err := q.Review("ed", s.ID, StatusRejected, ""); err == nil {
		t.Error("double review accepted")
	}
	approved := q.Approved()
	if len(approved) != 1 || approved[0].ID != "m1" {
		t.Errorf("Approved = %v", approved)
	}
	if len(q.Pending()) != 0 {
		t.Error("still pending after review")
	}
}

func TestEditorCannotSelfReview(t *testing.T) {
	q := NewQueue()
	q.Register("ed", RoleEditor)
	q.Register("other", RoleEditor)
	s, err := q.Submit("ed", newMat("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Review("ed", s.ID, StatusApproved, ""); err == nil {
		t.Error("self-review accepted")
	}
	if err := q.Review("other", s.ID, StatusApproved, ""); err != nil {
		t.Errorf("peer review rejected: %v", err)
	}
}

func TestChangesRequestedAndResubmit(t *testing.T) {
	q := NewQueue()
	q.Register("alice", RoleSubmitter)
	q.Register("ed", RoleEditor)
	s, _ := q.Submit("alice", newMat("m1"))
	if err := q.Review("ed", s.ID, StatusChanges, "classify deeper"); err != nil {
		t.Fatal(err)
	}
	if err := q.Resubmit("ed", s.ID, newMat("m1-v2")); err == nil {
		t.Error("non-owner resubmit accepted")
	}
	if err := q.Resubmit("alice", 999, newMat("x")); err == nil {
		t.Error("resubmit of unknown accepted")
	}
	if err := q.Resubmit("alice", s.ID, newMat("m1-v2")); err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusPending || s.ReviewedBy != "" {
		t.Errorf("resubmit state: %+v", s)
	}
	if err := q.Resubmit("alice", s.ID, newMat("m1-v3")); err == nil {
		t.Error("resubmit of pending accepted")
	}
}

func TestSuggestedEdits(t *testing.T) {
	q := NewQueue()
	q.Register("bob", RoleUser)
	q.Register("ed", RoleEditor)
	e, err := q.SuggestEdit("bob", "m1", "language", "Java", "Python")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SuggestEdit("ghost", "m1", "x", "", ""); err == nil {
		t.Error("unknown suggester accepted")
	}
	if got := q.UnverifiedEdits(); len(got) != 1 || got[0].ID != e.ID {
		t.Fatalf("UnverifiedEdits = %v", got)
	}
	if err := q.VerifyEdit("bob", e.ID, true); err == nil {
		t.Error("non-editor verified an edit")
	}
	if err := q.VerifyEdit("ed", 999, true); err == nil {
		t.Error("verify of unknown edit accepted")
	}
	if err := q.VerifyEdit("ed", e.ID, true); err != nil {
		t.Fatal(err)
	}
	if err := q.VerifyEdit("ed", e.ID, false); err == nil {
		t.Error("double verify accepted")
	}
	if !e.Verified || e.VerifiedBy != "ed" {
		t.Errorf("edit state: %+v", e)
	}
	// Rejection path.
	e2, _ := q.SuggestEdit("bob", "m1", "year", "2010", "2011")
	if err := q.VerifyEdit("ed", e2.ID, false); err != nil {
		t.Fatal(err)
	}
	if !e2.Rejected || e2.Verified {
		t.Errorf("rejected edit state: %+v", e2)
	}
	if len(q.UnverifiedEdits()) != 0 {
		t.Error("edits still unverified")
	}
}

func TestAuditLog(t *testing.T) {
	q := NewQueue()
	fixed := time.Date(2019, 5, 20, 9, 0, 0, 0, time.UTC)
	q.SetClock(func() time.Time { return fixed })
	q.Register("alice", RoleSubmitter)
	q.Register("ed", RoleEditor)
	s, _ := q.Submit("alice", newMat("m1"))
	_ = q.Review("ed", s.ID, StatusApproved, "")
	log := q.Audit()
	if len(log) != 4 {
		t.Fatalf("audit entries = %d, want 4", len(log))
	}
	for i, e := range log {
		if e.Seq != int64(i+1) || !e.At.Equal(fixed) {
			t.Errorf("entry %d: %+v", i, e)
		}
	}
	if log[2].Action != "submit" || log[3].Action != "review" {
		t.Errorf("actions = %v %v", log[2].Action, log[3].Action)
	}
}

func TestRoleString(t *testing.T) {
	if RoleUser.String() != "user" || RoleEditor.String() != "editor" || Role(9).String() != "Role(9)" {
		t.Error("role names")
	}
	if _, ok := NewQueue().Account("nobody"); ok {
		t.Error("phantom account")
	}
}

// TestCurationCostModel reproduces E8: the default calibration puts each
// item in the paper's 15–25 minute band and the 98-item seeding effort at
// about one working day; suggestion assistance yields a clear speedup.
func TestCurationCostModel(t *testing.T) {
	c := DefaultCostModel()
	const entries = 6
	for i := 0; i < 98; i++ {
		min := c.ItemMinutes(i, entries, false)
		if min < 15 || min > 25 {
			t.Fatalf("item %d = %.1f min, outside the paper's 15-25 band", i, min)
		}
	}
	total := c.TotalMinutes(98, entries, false)
	hours := total / 60
	if hours < 20 || hours > 36 {
		t.Errorf("98 items = %.1f hours, want about a day of work (20-36h across sessions)", hours)
	}
	// Learning curve: later items are cheaper.
	if c.ItemMinutes(97, entries, false) >= c.ItemMinutes(0, entries, false) {
		t.Error("no learning-curve decrease")
	}
	// Assistance helps.
	sp := c.Speedup(98, entries)
	if sp <= 1.1 {
		t.Errorf("assisted speedup = %.2f, want > 1.1", sp)
	}
	t.Logf("E8: 98 items manual %.1fh, assisted %.1fh, speedup %.2fx (%s)",
		hours, c.TotalMinutes(98, entries, true)/60, sp, c)
	if c.Speedup(0, entries) != 0 && c.TotalMinutes(0, entries, true) != 0 {
		t.Error("empty batch should cost nothing")
	}
	zero := CostModel{}
	if zero.ItemMinutes(5, 3, false) != 0 {
		t.Error("zero model should cost nothing")
	}
}
