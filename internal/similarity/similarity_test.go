package similarity

import (
	"context"
	"math"
	"reflect"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
)

func m(id string, cls ...string) *material.Material {
	mm := &material.Material{ID: id, Title: id, Kind: material.Assignment, Level: material.CS1}
	for _, c := range cls {
		mm.Classifications = append(mm.Classifications, material.Classification{NodeID: c})
	}
	return mm
}

func TestMetrics(t *testing.T) {
	a := m("a", "x", "y", "z")
	b := m("b", "y", "z", "w")
	if got := SharedCount(a, b); got != 2 {
		t.Errorf("SharedCount = %v", got)
	}
	if got := Jaccard(a, b); got != 0.5 {
		t.Errorf("Jaccard = %v", got)
	}
	if got := Cosine(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Cosine = %v", got)
	}
	empty := m("e")
	if Cosine(a, empty) != 0 || Jaccard(empty, empty) != 0 {
		t.Error("empty metrics should be 0")
	}
	for _, f := range []Metric{SharedCount, Jaccard, Cosine} {
		if f(a, b) != f(b, a) {
			t.Error("metric not symmetric")
		}
	}
}

func TestRarityWeighted(t *testing.T) {
	ref := []*material.Material{
		m("r1", "common", "rare1"),
		m("r2", "common"),
		m("r3", "common"),
		m("r4", "common"),
	}
	metric := RarityWeighted(ref)
	viaCommon := metric(m("a", "common"), m("b", "common"))
	viaRare := metric(m("a", "rare1"), m("b", "rare1"))
	if viaRare <= viaCommon {
		t.Errorf("rare share (%v) should outweigh common share (%v)", viaRare, viaCommon)
	}
	if metric(m("a", "q"), m("b", "z")) != 0 {
		t.Error("no shared items should score 0")
	}
}

func TestBuildBipartite(t *testing.T) {
	left := []*material.Material{m("l1", "x", "y"), m("l2", "x"), m("l3", "q")}
	right := []*material.Material{m("r1", "x", "y", "z"), m("r2", "z")}
	g := BuildBipartite(left, right, SharedCount, 2)
	if len(g.Edges) != 1 || g.Edges[0].A != "l1" || g.Edges[0].B != "r1" {
		t.Fatalf("edges = %+v", g.Edges)
	}
	if !reflect.DeepEqual(g.Edges[0].Shared, []string{"x", "y"}) {
		t.Errorf("shared = %v", g.Edges[0].Shared)
	}
	if g.Side["l1"] != "left" || g.Side["r2"] != "right" {
		t.Error("sides wrong")
	}
	if got := g.Isolated(); !reflect.DeepEqual(got, []string{"l2", "l3", "r2"}) {
		t.Errorf("Isolated = %v", got)
	}
	if got := g.IsolationRatio(); got != 3.0/5 {
		t.Errorf("IsolationRatio = %v", got)
	}
	if got := g.Neighbors("l1"); !reflect.DeepEqual(got, []string{"r1"}) {
		t.Errorf("Neighbors = %v", got)
	}
	if g.Degree("l2") != 0 || g.Degree("r1") != 1 {
		t.Error("Degree wrong")
	}
	comps := g.Components(2)
	if len(comps) != 1 || !reflect.DeepEqual(comps[0], []string{"l1", "r1"}) {
		t.Errorf("Components = %v", comps)
	}
}

func TestBuildUnipartite(t *testing.T) {
	mats := []*material.Material{
		m("a", "x", "y"),
		m("b", "x", "y", "z"),
		m("c", "z", "w"),
		m("d", "unrelated"),
	}
	g := Build(mats, SharedCount, 1)
	// a-b share 2 >= 1; b-c share 1 >= 1; others below threshold.
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %+v", g.Edges)
	}
	comps := g.Components(1)
	if len(comps) != 2 || len(comps[0]) != 3 {
		t.Errorf("components = %v", comps)
	}
	if got := g.IsolationRatio(); got != 0.25 {
		t.Errorf("IsolationRatio = %v", got)
	}
}

func TestMostSimilar(t *testing.T) {
	target := m("t", "x", "y", "z")
	cands := []*material.Material{
		m("one", "x"),
		m("two", "x", "y"),
		m("three", "x", "y", "z"),
		m("none", "q"),
		target, // self must be excluded
	}
	got := MostSimilar(target, cands, SharedCount, 2)
	if len(got) != 2 || got[0].B != "three" || got[1].B != "two" {
		t.Fatalf("MostSimilar = %+v", got)
	}
	if got := MostSimilar(target, cands, SharedCount, 0); len(got) != 3 {
		t.Errorf("unlimited MostSimilar = %+v", got)
	}
}

// ---------------------------------------------------------------------------
// Figure 3 (experiment E5).
// ---------------------------------------------------------------------------

// TestFigure3Clusters reproduces Figure 3: build the bipartite Nifty–Peachy
// graph with the paper's rule (edge ⇔ at least two shared classification
// items) and check (1) most assignments are isolated, (2) one cluster forms
// around Arrays + Conditional-and-iterative-control-structures containing
// exactly the named assignments, and (3) the systems-oriented Peachy
// assignments (middleware, data races) match nothing.
func TestFigure3Clusters(t *testing.T) {
	nifty, peachy := corpus.Nifty().All(), corpus.Peachy().All()
	g := BuildBipartite(nifty, peachy, SharedCount, 2)

	if r := g.IsolationRatio(); r < 0.7 {
		t.Errorf("isolation ratio = %v, want most assignments isolated", r)
	}

	comps := g.Components(2)
	if len(comps) != 1 {
		t.Fatalf("connected components (>=2 nodes) = %d, want exactly 1 cluster: %v", len(comps), comps)
	}
	want := []string{
		"2048-in-python", "campus-shuttle",
		"computing-a-movie-of-zooming-into-a-fractal",
		"fire-simulator-and-fractal-growth",
		"hurricane-tracker", "image-editor", "nbody-simulation",
		"storm-of-high-energy-particles", "uno",
		"using-a-monte-carlo-pattern-to-simulate-a-forest-fire",
	}
	if !reflect.DeepEqual(comps[0], want) {
		t.Errorf("cluster = %v\nwant %v", comps[0], want)
	}

	// Every edge in the cluster is backed by the two classifications the
	// paper names.
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	loops := "acm-ieee-cs-curricula-2013/sdf/fundamental-programming-concepts/conditional-and-iterative-control-structures"
	for _, e := range g.Edges {
		has := map[string]bool{}
		for _, s := range e.Shared {
			has[s] = true
		}
		if !has[arrays] || !has[loops] {
			t.Errorf("edge %s–%s lacks the Arrays+loops basis: %v", e.A, e.B, e.Shared)
		}
	}

	// Systems-oriented Peachy assignments are isolated.
	for _, id := range []string{"finding-the-data-race", "publish-subscribe-middleware-chat", "mpi-ring-around-the-world", "gpu-image-filters"} {
		if g.Degree(id) != 0 {
			t.Errorf("systems-oriented %s has %d matches, want 0", id, g.Degree(id))
		}
	}
	// Each named Peachy cluster member matches all six named Nifty ones.
	for _, pid := range []string{
		"computing-a-movie-of-zooming-into-a-fractal",
		"fire-simulator-and-fractal-growth",
		"using-a-monte-carlo-pattern-to-simulate-a-forest-fire",
		"storm-of-high-energy-particles",
	} {
		if g.Degree(pid) != 6 {
			t.Errorf("%s degree = %d, want 6", pid, g.Degree(pid))
		}
	}
}

// TestFigure3AblationMetrics checks that the ablation metrics agree with the
// shared-count construction on who the cluster members are, while producing
// different scores (DESIGN.md Sec. 5).
func TestFigure3AblationMetrics(t *testing.T) {
	nifty, peachy := corpus.Nifty().All(), corpus.Peachy().All()
	all := append(append([]*material.Material{}, nifty...), peachy...)
	shared := BuildBipartite(nifty, peachy, SharedCount, 2)
	jac := BuildBipartite(nifty, peachy, Jaccard, 0.2)
	rare := BuildBipartite(nifty, peachy, RarityWeighted(all), 2.5)
	if len(jac.Edges) == 0 || len(rare.Edges) == 0 {
		t.Fatal("ablation graphs empty")
	}
	sharedPairs := map[[2]string]bool{}
	for _, e := range shared.Edges {
		sharedPairs[[2]string{e.A, e.B}] = true
	}
	for _, e := range jac.Edges {
		if !sharedPairs[[2]string{e.A, e.B}] {
			t.Errorf("jaccard found pair outside shared-count graph: %s-%s", e.A, e.B)
		}
	}
}

func TestScorePairsParallelDeterminism(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 400, Seed: 7}).All()
	left, right := mats[:200], mats[200:]
	seq, err := scorePairs(context.Background(), left, right, SharedCount, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("no edges in synthetic corpus; test is vacuous")
	}
	for _, workers := range []int{2, 3, 5, 16} {
		par, err := scorePairs(context.Background(), left, right, SharedCount, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: edge stream differs from sequential (%d vs %d edges)",
				workers, len(par), len(seq))
		}
	}
}

func TestBuildBipartiteParallelMatchesSequential(t *testing.T) {
	// Large enough to cross parallelPairThreshold, so BuildBipartite takes
	// the worker path; the graph must be indistinguishable from one
	// assembled from the sequential edge stream.
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 400, Seed: 11}).All()
	left, right := mats[:200], mats[200:]
	g := BuildBipartite(left, right, SharedCount, 2)

	want := &Graph{
		Nodes: make(map[string]*material.Material),
		Side:  make(map[string]string),
		adj:   make(map[string][]string),
	}
	for _, m := range left {
		want.Nodes[m.ID] = m
		want.Side[m.ID] = "left"
	}
	for _, m := range right {
		want.Nodes[m.ID] = m
		want.Side[m.ID] = "right"
	}
	for _, a := range left {
		for _, b := range right {
			if s := SharedCount(a, b); s >= 2 {
				want.addEdge(a, b, s)
			}
		}
	}
	want.sortEdges()
	if !reflect.DeepEqual(g.Edges, want.Edges) {
		t.Fatalf("parallel edges differ: %d vs %d", len(g.Edges), len(want.Edges))
	}
	if !reflect.DeepEqual(g.adj, want.adj) {
		t.Fatal("parallel adjacency differs from sequential")
	}
}
