// Package similarity computes similarity between classified materials and
// builds the similarity graphs of Figure 3: Nifty assignments on one side,
// Peachy Parallel assignments on the other, with an edge whenever two
// materials "share two classification items".
//
// Besides the paper's shared-count metric, the package implements Jaccard,
// cosine, and rarity-weighted overlap metrics so the design choice can be
// ablated (DESIGN.md Sec. 5).
package similarity

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"carcs/internal/material"
)

// Metric scores the similarity of two materials from their classification
// sets; higher is more similar.
type Metric func(a, b *material.Material) float64

// SharedCount is the paper's metric: the number of classification items
// present in both materials.
func SharedCount(a, b *material.Material) float64 {
	return float64(len(a.SharedClassifications(b)))
}

// Jaccard is |A ∩ B| / |A ∪ B| over classification sets.
func Jaccard(a, b *material.Material) float64 {
	inter := len(a.SharedClassifications(b))
	union := len(a.ClassificationIDs()) + len(b.ClassificationIDs()) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine treats classification sets as binary vectors.
func Cosine(a, b *material.Material) float64 {
	na, nb := len(a.ClassificationIDs()), len(b.ClassificationIDs())
	if na == 0 || nb == 0 {
		return 0
	}
	inter := len(a.SharedClassifications(b))
	return float64(inter) / math.Sqrt(float64(na)*float64(nb))
}

// RarityWeighted builds a metric that weights each shared entry by how rare
// it is across the reference materials (IDF-style): sharing "Arrays" with
// half the corpus says less than sharing "Parallel scan". The weight of an
// entry appearing in df materials out of n is log((n+1)/(df+1)) + 1.
func RarityWeighted(reference []*material.Material) Metric {
	df := make(map[string]int)
	for _, m := range reference {
		for _, id := range m.ClassificationIDs() {
			df[id]++
		}
	}
	n := float64(len(reference))
	return func(a, b *material.Material) float64 {
		var s float64
		for _, id := range a.SharedClassifications(b) {
			s += math.Log((n+1)/float64(df[id]+1)) + 1
		}
		return s
	}
}

// Edge is one similarity-graph edge.
type Edge struct {
	// A and B are material IDs; for bipartite graphs A is from the left
	// set and B from the right set.
	A, B string
	// Score is the metric value.
	Score float64
	// Shared lists the classification items behind the edge.
	Shared []string
}

// Graph is a similarity graph over materials.
type Graph struct {
	// Nodes maps material ID to the material; Side maps it to "left" or
	// "right" for bipartite graphs ("" for unipartite).
	Nodes map[string]*material.Material
	Side  map[string]string
	// Edges is sorted by (A, B).
	Edges []Edge
	adj   map[string][]string
}

// parallelPairThreshold is the pair count below which BuildBipartite stays
// sequential: fanning out goroutines for a Figure 3-sized graph (~500
// pairs) costs more than the scoring it distributes.
const parallelPairThreshold = 1 << 13

// BuildBipartite builds the Figure 3 graph: nodes from both sets, an edge
// between a left and a right material whenever metric(a, b) >= threshold.
// With SharedCount and threshold 2 this is exactly the paper's construction.
//
// Large inputs fan the n×m pair scoring across GOMAXPROCS workers, each
// owning a contiguous block of left rows; concatenating the per-block edge
// lists in block order reproduces the sequential visit order, so the
// resulting graph is identical to the sequential construction regardless of
// worker count.
func BuildBipartite(left, right []*material.Material, metric Metric, threshold float64) *Graph {
	g, _ := BuildBipartiteCtx(context.Background(), left, right, metric, threshold)
	return g
}

// BuildBipartiteCtx is BuildBipartite with cooperative cancellation: every
// scoring worker checks the context at row boundaries, so a shed or
// timed-out request stops burning CPU after at most one row of pairs
// instead of finishing the full n×m scan.
func BuildBipartiteCtx(ctx context.Context, left, right []*material.Material, metric Metric, threshold float64) (*Graph, error) {
	g := &Graph{
		Nodes: make(map[string]*material.Material),
		Side:  make(map[string]string),
		adj:   make(map[string][]string),
	}
	for _, m := range left {
		g.Nodes[m.ID] = m
		g.Side[m.ID] = "left"
	}
	for _, m := range right {
		g.Nodes[m.ID] = m
		g.Side[m.ID] = "right"
	}
	workers := runtime.GOMAXPROCS(0)
	if len(left)*len(right) < parallelPairThreshold {
		workers = 1
	}
	edges, err := scorePairs(ctx, left, right, metric, threshold, workers)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		g.insertEdge(e)
	}
	g.sortEdges()
	return g, nil
}

// scorePairs scores every (left, right) pair against the threshold across
// the given number of workers and returns the qualifying edges in row-major
// (left index, right index) order — the exact order a sequential double
// loop would produce them in, for any worker count.
func scorePairs(ctx context.Context, left, right []*material.Material, metric Metric, threshold float64, workers int) ([]Edge, error) {
	if workers <= 1 || len(left) == 0 {
		return scoreRows(ctx, left, right, metric, threshold)
	}
	if workers > len(left) {
		workers = len(left)
	}
	// Over-split into more blocks than workers so an unlucky block of
	// high-degree rows does not serialize the tail.
	blocks := workers * 4
	if blocks > len(left) {
		blocks = len(left)
	}
	parts := make([][]Edge, blocks)
	errs := make([]error, blocks)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for bi := 0; bi < blocks; bi++ {
		lo := bi * len(left) / blocks
		hi := (bi + 1) * len(left) / blocks
		wg.Add(1)
		go func(bi, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts[bi], errs[bi] = scoreRows(ctx, left[lo:hi], right, metric, threshold)
		}(bi, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Edge, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

func scoreRows(ctx context.Context, left, right []*material.Material, metric Metric, threshold float64) ([]Edge, error) {
	var out []Edge
	for _, a := range left {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, b := range right {
			if s := metric(a, b); s >= threshold {
				out = append(out, Edge{
					A: a.ID, B: b.ID, Score: s,
					Shared: a.SharedClassifications(b),
				})
			}
		}
	}
	return out, nil
}

// Build builds a unipartite similarity graph over one material set,
// comparing every unordered pair once.
func Build(mats []*material.Material, metric Metric, threshold float64) *Graph {
	g := &Graph{
		Nodes: make(map[string]*material.Material),
		Side:  make(map[string]string),
		adj:   make(map[string][]string),
	}
	for _, m := range mats {
		g.Nodes[m.ID] = m
	}
	for i, a := range mats {
		for _, b := range mats[i+1:] {
			if s := metric(a, b); s >= threshold {
				g.addEdge(a, b, s)
			}
		}
	}
	g.sortEdges()
	return g
}

func (g *Graph) addEdge(a, b *material.Material, score float64) {
	g.insertEdge(Edge{
		A: a.ID, B: b.ID, Score: score,
		Shared: a.SharedClassifications(b),
	})
}

func (g *Graph) insertEdge(e Edge) {
	g.Edges = append(g.Edges, e)
	g.adj[e.A] = append(g.adj[e.A], e.B)
	g.adj[e.B] = append(g.adj[e.B], e.A)
}

func (g *Graph) sortEdges() {
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].A != g.Edges[j].A {
			return g.Edges[i].A < g.Edges[j].A
		}
		return g.Edges[i].B < g.Edges[j].B
	})
	for _, ns := range g.adj {
		sort.Strings(ns)
	}
}

// Neighbors returns the sorted IDs adjacent to the material.
func (g *Graph) Neighbors(id string) []string {
	out := make([]string, len(g.adj[id]))
	copy(out, g.adj[id])
	return out
}

// Degree returns the number of edges at the material.
func (g *Graph) Degree(id string) int { return len(g.adj[id]) }

// Isolated returns the sorted IDs of nodes without any edge — in Figure 3,
// "most assignments have no similar assignment in the other set".
func (g *Graph) Isolated() []string {
	var out []string
	for id := range g.Nodes {
		if len(g.adj[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// IsolationRatio is the fraction of nodes without edges.
func (g *Graph) IsolationRatio() float64 {
	if len(g.Nodes) == 0 {
		return 0
	}
	return float64(len(g.Isolated())) / float64(len(g.Nodes))
}

// Components returns the connected components with at least minSize nodes,
// each sorted internally, ordered by decreasing size then lexicographically.
func (g *Graph) Components(minSize int) [][]string {
	seen := make(map[string]bool)
	var comps [][]string
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, start := range ids {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for _, nb := range g.adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if len(comp) >= minSize {
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// MostSimilar returns, for the given material, the k most similar materials
// from candidates under the metric, best first, excluding zero scores.
func MostSimilar(m *material.Material, candidates []*material.Material, metric Metric, k int) []Edge {
	var out []Edge
	for _, c := range candidates {
		if c.ID == m.ID {
			continue
		}
		if s := metric(m, c); s > 0 {
			out = append(out, Edge{A: m.ID, B: c.ID, Score: s, Shared: m.SharedClassifications(c)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].B < out[j].B
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
