package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"carcs/internal/material"
)

func randomSet(r *rand.Rand, id string) *material.Material {
	m := &material.Material{ID: id, Title: id, Kind: material.Assignment, Level: material.CS1}
	for j, k := 0, r.Intn(8); j < k; j++ {
		m.Classifications = append(m.Classifications,
			material.Classification{NodeID: fmt.Sprintf("e%d", r.Intn(12))})
	}
	return m
}

// TestQuickMetricProperties: all metrics are symmetric and bounded, and
// SharedCount equals the length of SharedClassifications.
func TestQuickMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := randomSet(r, "a")
		b := randomSet(r, "b")
		for name, m := range map[string]Metric{"shared": SharedCount, "jaccard": Jaccard, "cosine": Cosine} {
			x, y := m(a, b), m(b, a)
			if math.Abs(x-y) > 1e-12 {
				t.Fatalf("%s asymmetric: %v vs %v", name, x, y)
			}
			if x < 0 {
				t.Fatalf("%s negative: %v", name, x)
			}
		}
		if got := SharedCount(a, b); got != float64(len(a.SharedClassifications(b))) {
			t.Fatalf("shared count mismatch")
		}
		if j := Jaccard(a, b); j > 1 {
			t.Fatalf("jaccard > 1: %v", j)
		}
		if c := Cosine(a, b); c > 1+1e-12 {
			t.Fatalf("cosine > 1: %v", c)
		}
	}
}

// TestQuickGraphEdgesMatchThreshold: for random corpora, the bipartite graph
// contains an edge exactly when the metric clears the threshold, and the
// isolation bookkeeping is consistent.
func TestQuickGraphEdgesMatchThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		var left, right []*material.Material
		for i := 0; i < 2+r.Intn(10); i++ {
			left = append(left, randomSet(r, fmt.Sprintf("l%d", i)))
		}
		for i := 0; i < 2+r.Intn(10); i++ {
			right = append(right, randomSet(r, fmt.Sprintf("r%d", i)))
		}
		threshold := float64(1 + r.Intn(3))
		g := BuildBipartite(left, right, SharedCount, threshold)

		want := map[[2]string]bool{}
		for _, a := range left {
			for _, b := range right {
				if SharedCount(a, b) >= threshold {
					want[[2]string{a.ID, b.ID}] = true
				}
			}
		}
		if len(g.Edges) != len(want) {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(g.Edges), len(want))
		}
		for _, e := range g.Edges {
			if !want[[2]string{e.A, e.B}] {
				t.Fatalf("trial %d: spurious edge %v", trial, e)
			}
			if e.Score < threshold {
				t.Fatalf("trial %d: edge below threshold", trial)
			}
		}
		// Isolation consistency.
		iso := g.Isolated()
		if len(iso)+countConnected(g) != len(g.Nodes) {
			t.Fatalf("trial %d: isolation bookkeeping off", trial)
		}
		// Components partition the connected nodes.
		seen := map[string]bool{}
		for _, comp := range g.Components(2) {
			for _, id := range comp {
				if seen[id] {
					t.Fatalf("trial %d: node %q in two components", trial, id)
				}
				seen[id] = true
			}
		}
	}
}

func countConnected(g *Graph) int {
	n := 0
	for id := range g.Nodes {
		if g.Degree(id) > 0 {
			n++
		}
	}
	return n
}

// TestQuickMostSimilarOrdering: results are sorted, self-free, and capped.
func TestQuickMostSimilarOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		target := randomSet(r, "target")
		var cands []*material.Material
		for i := 0; i < 1+r.Intn(20); i++ {
			cands = append(cands, randomSet(r, fmt.Sprintf("c%d", i)))
		}
		cands = append(cands, target)
		k := 1 + r.Intn(5)
		out := MostSimilar(target, cands, SharedCount, k)
		if len(out) > k {
			t.Fatalf("trial %d: %d > k=%d", trial, len(out), k)
		}
		for i, e := range out {
			if e.B == "target" {
				t.Fatalf("trial %d: self in results", trial)
			}
			if e.Score <= 0 {
				t.Fatalf("trial %d: zero score kept", trial)
			}
			if i > 0 && out[i-1].Score < e.Score {
				t.Fatalf("trial %d: not sorted", trial)
			}
		}
	}
}
