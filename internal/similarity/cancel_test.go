package similarity

import (
	"context"
	"errors"
	"testing"
	"time"

	"carcs/internal/corpus"
)

func TestBuildBipartiteCtxCancelledReturnsPromptly(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 3000, Seed: 5}).All()
	left, right := mats[:1500], mats[1500:]

	if _, err := BuildBipartiteCtx(context.Background(), left, right, SharedCount, 2); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	g, err := BuildBipartiteCtx(ctx, left, right, SharedCount, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g != nil {
		t.Fatal("cancelled build returned a graph")
	}
	// Scoring 1500x1500 pairs dwarfs the bail-out path; workers check the
	// context at every row boundary.
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancelled build took %v, want prompt return", d)
	}
}
