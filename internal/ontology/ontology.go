// Package ontology implements hierarchical curriculum ontologies such as the
// ACM/IEEE CS2013 curriculum guidelines (CS13) and the NSF/IEEE-TCPP 2012
// Parallel and Distributed Computing curriculum (PDC12).
//
// An ontology is a rooted tree of entries. Following the CAR-CS data model,
// every entry carries a key, the key of its parent, a human-readable label,
// and a kind separating structural nodes (areas, units) from classifiable
// content (topics and learning outcomes). Entries additionally carry the
// coverage tier (core-tier-1, core-tier-2, elective) and a Bloom level
// (Know/Comprehend/Apply, or the CS13 outcome levels mapped onto the same
// scale), because both source curricula publish them.
//
// The package provides construction, validation, traversal, search with
// match highlighting, subtree extraction, diffing and JSON serialization.
// The tree model can host DAG-like cross references through Node.SeeAlso,
// which mirrors the paper's remark that cross-cutting PDC12 topics are
// "actually listed as a separate category and organized hierarchically".
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the structural role of a node in the ontology tree.
type Kind int

const (
	// KindRoot is the single root of an ontology.
	KindRoot Kind = iota
	// KindArea is a top-level knowledge area (e.g. "Parallel and
	// Distributed Computing" in CS13, "Programming" in PDC12).
	KindArea
	// KindUnit is a knowledge unit or intermediate grouping.
	KindUnit
	// KindTopic is a classifiable topic entry.
	KindTopic
	// KindOutcome is a classifiable learning-outcome entry.
	KindOutcome
)

var kindNames = [...]string{"root", "area", "unit", "topic", "outcome"}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Classifiable reports whether materials may be tagged with nodes of this
// kind. Structural nodes (root, areas, units) exist to organize the tree and
// aggregate coverage; only topics and outcomes are attached to materials.
func (k Kind) Classifiable() bool { return k == KindTopic || k == KindOutcome }

// Tier is the coverage expectation a curriculum assigns to an entry.
type Tier int

const (
	// TierUnspecified marks entries whose source does not assign a tier
	// (structural nodes inherit their children's tiers for reporting).
	TierUnspecified Tier = iota
	// TierCore1 is CS13 core-tier-1 (must cover 100%). PDC12 "core"
	// entries are also mapped to TierCore1.
	TierCore1
	// TierCore2 is CS13 core-tier-2 (should cover at least 80%).
	TierCore2
	// TierElective marks elective entries in both curricula.
	TierElective
)

var tierNames = [...]string{"unspecified", "core-tier-1", "core-tier-2", "elective"}

// String returns the published name of the tier.
func (t Tier) String() string {
	if t < 0 || int(t) >= len(tierNames) {
		return fmt.Sprintf("Tier(%d)", int(t))
	}
	return tierNames[t]
}

// Bloom is the minimum mastery level associated with an entry.
//
// PDC12 uses Know/Comprehend/Apply; CS13 classifies learning outcomes as
// familiarity/usage/assessment. The two scales are aligned level-by-level,
// which is how the paper proposes materials should eventually be classified
// ("it would make sense to classify materials with Bloom levels as well").
type Bloom int

const (
	// BloomUnspecified marks entries without a published level.
	BloomUnspecified Bloom = iota
	// BloomKnow is PDC12 "Know" / CS13 "familiarity".
	BloomKnow
	// BloomComprehend is PDC12 "Comprehend" / CS13 "usage".
	BloomComprehend
	// BloomApply is PDC12 "Apply" / CS13 "assessment".
	BloomApply
)

var bloomNames = [...]string{"unspecified", "know", "comprehend", "apply"}

// String returns the lower-case PDC12 name of the level.
func (b Bloom) String() string {
	if b < 0 || int(b) >= len(bloomNames) {
		return fmt.Sprintf("Bloom(%d)", int(b))
	}
	return bloomNames[b]
}

// Node is a single ontology entry. Nodes are identified by slash-separated
// path keys derived from their labels (e.g.
// "cs13/sdf/fundamental-programming-concepts/arrays"); the key of the parent
// is always the key of the node minus its last segment, mirroring the
// relational (key, parent-key) representation used by CAR-CS.
type Node struct {
	// ID is the unique, stable, path-shaped key of the node.
	ID string
	// Parent is the ID of the parent node; empty for the root.
	Parent string
	// Label is the human-readable name from the source curriculum.
	Label string
	// Kind is the structural role of the node.
	Kind Kind
	// Tier is the coverage tier the curriculum assigns, if any.
	Tier Tier
	// Bloom is the mastery level the curriculum assigns, if any.
	Bloom Bloom
	// Hours is the number of lecture hours the curriculum suggests for
	// the enclosing unit; zero when unpublished. Only meaningful on
	// KindUnit nodes.
	Hours float64
	// SeeAlso lists IDs of related nodes elsewhere in the tree. It is the
	// DAG extension point: cross-cutting entries reference their
	// counterparts without breaking the tree invariant.
	SeeAlso []string
}

// Ontology is an immutable-after-Freeze rooted tree of nodes.
//
// The zero value is not usable; construct with New or a Builder.
type Ontology struct {
	name     string
	root     string
	nodes    map[string]*Node
	children map[string][]string // parent ID -> child IDs in insertion order
	order    []string            // all IDs in insertion (document) order
	frozen   bool

	// areaCodes maps area node IDs to their short published codes
	// ("SDF", "PD", ...); such nodes are keyed by slug(code) rather than
	// slug(label).
	areaCodes map[string]string
}

// New creates an empty ontology whose root node carries the given name as
// both ID and label.
func New(name string) *Ontology {
	o := &Ontology{
		name:     name,
		root:     Slug(name),
		nodes:    make(map[string]*Node),
		children: make(map[string][]string),
	}
	root := &Node{ID: o.root, Label: name, Kind: KindRoot}
	o.nodes[o.root] = root
	o.order = append(o.order, o.root)
	return o
}

// Name returns the display name of the ontology.
func (o *Ontology) Name() string { return o.name }

// RootID returns the ID of the root node.
func (o *Ontology) RootID() string { return o.root }

// Len returns the number of nodes including the root.
func (o *Ontology) Len() int { return len(o.nodes) }

// Add inserts a node under the given parent and returns its assigned ID.
// The ID is parentID + "/" + Slug(label). Add returns an error if the parent
// does not exist, the derived ID already exists, the ontology is frozen, or
// the label is empty.
func (o *Ontology) Add(parentID, label string, kind Kind) (string, error) {
	return o.AddNode(parentID, Node{Label: label, Kind: kind})
}

// AddNode inserts the given node under parentID, deriving the node ID from
// the parent ID and the node label. All other fields of n are preserved.
func (o *Ontology) AddNode(parentID string, n Node) (string, error) {
	if o.frozen {
		return "", fmt.Errorf("ontology %q: frozen", o.name)
	}
	if strings.TrimSpace(n.Label) == "" {
		return "", fmt.Errorf("ontology %q: empty label under %q", o.name, parentID)
	}
	parent, ok := o.nodes[parentID]
	if !ok {
		return "", fmt.Errorf("ontology %q: unknown parent %q for %q", o.name, parentID, n.Label)
	}
	if parent.Kind.Classifiable() && !n.Kind.Classifiable() {
		return "", fmt.Errorf("ontology %q: structural node %q under classifiable %q", o.name, n.Label, parentID)
	}
	id := parentID + "/" + Slug(n.Label)
	if _, dup := o.nodes[id]; dup {
		return "", fmt.Errorf("ontology %q: duplicate key %q", o.name, id)
	}
	nn := n
	nn.ID = id
	nn.Parent = parentID
	o.nodes[id] = &nn
	o.children[parentID] = append(o.children[parentID], id)
	o.order = append(o.order, id)
	return id, nil
}

// Freeze marks the ontology immutable. Subsequent Add calls fail. Freeze is
// idempotent.
func (o *Ontology) Freeze() { o.frozen = true }

// Frozen reports whether the ontology has been frozen. Derived structures
// (e.g. the coverage package's per-ontology index) may be cached safely
// only for frozen ontologies.
func (o *Ontology) Frozen() bool { return o.frozen }

// Node returns the node with the given ID, or nil if absent. The returned
// pointer aliases internal state; callers must not mutate it.
func (o *Ontology) Node(id string) *Node {
	return o.nodes[id]
}

// Has reports whether the ID names a node in the ontology.
func (o *Ontology) Has(id string) bool {
	_, ok := o.nodes[id]
	return ok
}

// Children returns the IDs of the direct children of id in insertion order.
// The returned slice is a copy.
func (o *Ontology) Children(id string) []string {
	kids := o.children[id]
	out := make([]string, len(kids))
	copy(out, kids)
	return out
}

// Parent returns the ID of the parent of id, or "" for the root or an
// unknown ID.
func (o *Ontology) Parent(id string) string {
	n := o.nodes[id]
	if n == nil {
		return ""
	}
	return n.Parent
}

// Ancestors returns the chain of ancestor IDs of id from its parent up to
// and including the root. An unknown ID yields nil.
func (o *Ontology) Ancestors(id string) []string {
	n := o.nodes[id]
	if n == nil {
		return nil
	}
	var out []string
	for cur := n.Parent; cur != ""; {
		out = append(out, cur)
		p, ok := o.nodes[cur]
		if !ok {
			break
		}
		cur = p.Parent
	}
	return out
}

// Area returns the ID of the knowledge area (KindArea ancestor) that
// contains id. If id itself is an area it is returned. The root and unknown
// IDs yield "".
func (o *Ontology) Area(id string) string {
	for cur := id; cur != ""; {
		n := o.nodes[cur]
		if n == nil {
			return ""
		}
		if n.Kind == KindArea {
			return cur
		}
		cur = n.Parent
	}
	return ""
}

// Depth returns the number of edges from the root to id; the root has depth
// zero. Unknown IDs yield -1.
func (o *Ontology) Depth(id string) int {
	if !o.Has(id) {
		return -1
	}
	return len(o.Ancestors(id))
}

// Path returns the labels from the root to id joined by " :: ", the display
// convention used throughout the paper (e.g. "Programming :: Performance
// Issues :: Data"). Unknown IDs yield "".
func (o *Ontology) Path(id string) string {
	n := o.nodes[id]
	if n == nil {
		return ""
	}
	anc := o.Ancestors(id)
	parts := make([]string, 0, len(anc)+1)
	for i := len(anc) - 1; i >= 0; i-- {
		parts = append(parts, o.nodes[anc[i]].Label)
	}
	parts = append(parts, n.Label)
	return strings.Join(parts, " :: ")
}

// Walk visits every node reachable from startID in depth-first preorder,
// children in insertion order. The visitor receives the node and its depth
// relative to startID. Returning false from the visitor prunes the subtree
// below that node (the node itself has already been visited). Walk does
// nothing for unknown IDs.
func (o *Ontology) Walk(startID string, visit func(n *Node, depth int) bool) {
	var rec func(id string, depth int)
	rec = func(id string, depth int) {
		n := o.nodes[id]
		if n == nil {
			return
		}
		if !visit(n, depth) {
			return
		}
		for _, kid := range o.children[id] {
			rec(kid, depth+1)
		}
	}
	rec(startID, 0)
}

// Descendants returns the IDs of every node strictly below id in preorder.
func (o *Ontology) Descendants(id string) []string {
	var out []string
	first := true
	o.Walk(id, func(n *Node, _ int) bool {
		if first {
			first = false
			return true
		}
		out = append(out, n.ID)
		return true
	})
	return out
}

// Within reports whether id lies inside the subtree rooted at rootID
// (inclusive).
func (o *Ontology) Within(id, rootID string) bool {
	if id == rootID {
		return o.Has(id)
	}
	for _, a := range o.Ancestors(id) {
		if a == rootID {
			return true
		}
	}
	return false
}

// IDs returns every node ID in document order. The slice is a copy.
func (o *Ontology) IDs() []string {
	out := make([]string, len(o.order))
	copy(out, o.order)
	return out
}

// Areas returns the IDs of the top-level knowledge areas in document order.
func (o *Ontology) Areas() []string {
	var out []string
	for _, id := range o.children[o.root] {
		if o.nodes[id].Kind == KindArea {
			out = append(out, id)
		}
	}
	return out
}

// Classifiable returns the IDs of every topic and outcome node, the set of
// entries materials may legally be tagged with.
func (o *Ontology) Classifiable() []string {
	var out []string
	for _, id := range o.order {
		if o.nodes[id].Kind.Classifiable() {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns the IDs of all nodes without children.
func (o *Ontology) Leaves() []string {
	var out []string
	for _, id := range o.order {
		if len(o.children[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// CountByKind tallies nodes per kind.
func (o *Ontology) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, n := range o.nodes {
		out[n.Kind]++
	}
	return out
}

// Validate checks the structural invariants of the ontology: the root
// exists, every non-root node has a parent that exists, every ID equals
// parent + "/" + slug(label), the children adjacency is consistent, there
// are no cycles, and every SeeAlso reference resolves. It returns all
// violations found.
func (o *Ontology) Validate() []error {
	var errs []error
	if _, ok := o.nodes[o.root]; !ok {
		errs = append(errs, fmt.Errorf("root %q missing", o.root))
	}
	seen := make(map[string]bool, len(o.nodes))
	o.Walk(o.root, func(n *Node, _ int) bool {
		seen[n.ID] = true
		return true
	})
	for id, n := range o.nodes {
		if id != n.ID {
			errs = append(errs, fmt.Errorf("node indexed as %q has ID %q", id, n.ID))
		}
		if id == o.root {
			continue
		}
		p, ok := o.nodes[n.Parent]
		if !ok {
			errs = append(errs, fmt.Errorf("node %q: unknown parent %q", id, n.Parent))
			continue
		}
		seg := Slug(n.Label)
		if code, ok := o.areaCodes[id]; ok {
			seg = Slug(code)
		}
		if want := n.Parent + "/" + seg; want != id {
			errs = append(errs, fmt.Errorf("node %q: key does not match parent %q + label %q", id, p.ID, n.Label))
		}
		if !seen[id] {
			errs = append(errs, fmt.Errorf("node %q unreachable from root", id))
		}
		for _, ref := range n.SeeAlso {
			if _, ok := o.nodes[ref]; !ok {
				errs = append(errs, fmt.Errorf("node %q: dangling see-also %q", id, ref))
			}
		}
	}
	for parent, kids := range o.children {
		if _, ok := o.nodes[parent]; !ok {
			errs = append(errs, fmt.Errorf("children recorded for unknown node %q", parent))
		}
		for _, kid := range kids {
			n, ok := o.nodes[kid]
			if !ok {
				errs = append(errs, fmt.Errorf("unknown child %q under %q", kid, parent))
				continue
			}
			if n.Parent != parent {
				errs = append(errs, fmt.Errorf("child %q under %q claims parent %q", kid, parent, n.Parent))
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// Slug converts a label to the lower-case, hyphen-separated form used in
// node keys. Characters outside [a-z0-9] become hyphens; runs of hyphens
// collapse; leading and trailing hyphens are trimmed.
func Slug(label string) string {
	var b strings.Builder
	b.Grow(len(label))
	lastHyphen := true // suppress leading hyphen
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastHyphen = false
		default:
			if !lastHyphen {
				b.WriteByte('-')
				lastHyphen = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}
