package ontology

import "fmt"

// Builder offers a fluent, error-accumulating way to declare ontology trees
// in data files. All Add-style methods return a cursor positioned at the new
// node so sibling and child declarations nest naturally:
//
//	b := ontology.NewBuilder("CS2013")
//	sdf := b.Area("SDF", "Software Development Fundamentals")
//	fpc := sdf.Unit("Fundamental Programming Concepts", 10)
//	fpc.Topic("Basic syntax and semantics of a higher-level language", ontology.TierCore1)
//	fpc.Topic("Conditional and iterative control structures", ontology.TierCore1)
//	fpc.Outcome("Analyze and explain the behavior of simple programs", ontology.BloomComprehend)
//	ont, err := b.Build()
//
// Errors are collected and reported once by Build, so declarations stay
// unconditional.
type Builder struct {
	o    *Ontology
	errs []error
}

// Cursor is a position in a tree under construction.
type Cursor struct {
	b  *Builder
	id string
}

// NewBuilder starts a builder for an ontology with the given display name.
func NewBuilder(name string) *Builder {
	return &Builder{o: New(name)}
}

// Root returns a cursor at the root node.
func (b *Builder) Root() Cursor { return Cursor{b: b, id: b.o.root} }

// Area declares a knowledge area directly under the root. The two- or
// three-letter code (e.g. "SDF", "PD") is stored via SeeAlso-free label
// convention "<code> — <name>"? No: codes matter for reporting, so the label
// is the full name and the code becomes a dedicated alias node ID segment.
// To keep keys short and match the paper's figures (first-level nodes are
// "tagged with the 2 or 3 letter code"), the area key segment is the
// lower-cased code and the label is the full name.
func (b *Builder) Area(code, name string) Cursor {
	id, err := b.o.AddNode(b.o.root, Node{Label: name, Kind: KindArea})
	if err != nil {
		b.errs = append(b.errs, err)
		return Cursor{b: b, id: b.o.root}
	}
	// Re-key the area under its code for short, stable IDs.
	if code != "" {
		n := b.o.nodes[id]
		short := b.o.root + "/" + Slug(code)
		if _, dup := b.o.nodes[short]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate area code %q", code))
			return Cursor{b: b, id: id}
		}
		delete(b.o.nodes, id)
		n.ID = short
		n.Label = name
		b.o.nodes[short] = n
		kids := b.o.children[b.o.root]
		kids[len(kids)-1] = short
		b.o.order[len(b.o.order)-1] = short
		// Remember the code so key derivation for children still holds:
		// children derive from the *short* ID, and Validate's key rule is
		// waived for area nodes via the recorded code label.
		b.o.areaCodes = appendAreaCode(b.o, short, code)
		return Cursor{b: b, id: short}
	}
	return Cursor{b: b, id: id}
}

// Build freezes and validates the ontology, returning the first declaration
// error or validation failure encountered.
func (b *Builder) Build() (*Ontology, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("%d declaration error(s), first: %w", len(b.errs), b.errs[0])
	}
	if errs := b.o.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("%d validation error(s), first: %w", len(errs), errs[0])
	}
	b.o.Freeze()
	return b.o, nil
}

// MustBuild is Build that panics on error; for package-level curriculum data
// whose correctness is covered by tests.
func (b *Builder) MustBuild() *Ontology {
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	return o
}

// ID returns the node ID at the cursor.
func (c Cursor) ID() string { return c.id }

// Unit declares a knowledge unit (with suggested lecture hours, zero if
// unpublished) under the cursor and returns a cursor at it.
func (c Cursor) Unit(name string, hours float64) Cursor {
	return c.add(Node{Label: name, Kind: KindUnit, Hours: hours})
}

// Group declares an intermediate grouping node (modeled as a unit without
// hours), used for PDC12's nested topic clusters.
func (c Cursor) Group(name string) Cursor {
	return c.add(Node{Label: name, Kind: KindUnit})
}

// Topic declares a topic with a tier under the cursor and returns a cursor
// at the topic so sub-topics can be declared (both curricula nest topics).
func (c Cursor) Topic(name string, tier Tier) Cursor {
	return c.add(Node{Label: name, Kind: KindTopic, Tier: tier})
}

// BloomTopic declares a topic carrying both tier and Bloom level, PDC12's
// native shape.
func (c Cursor) BloomTopic(name string, tier Tier, bloom Bloom) Cursor {
	return c.add(Node{Label: name, Kind: KindTopic, Tier: tier, Bloom: bloom})
}

// Outcome declares a learning outcome with its level under the cursor.
func (c Cursor) Outcome(text string, level Bloom) Cursor {
	return c.add(Node{Label: text, Kind: KindOutcome, Bloom: level})
}

// SeeAlso records a cross reference from the cursor's node to the given ID.
// Dangling references are caught by Build.
func (c Cursor) SeeAlso(id string) Cursor {
	n := c.b.o.nodes[c.id]
	if n != nil {
		n.SeeAlso = append(n.SeeAlso, id)
	}
	return c
}

func (c Cursor) add(n Node) Cursor {
	id, err := c.b.o.AddNode(c.id, n)
	if err != nil {
		c.b.errs = append(c.b.errs, err)
		return c
	}
	return Cursor{b: c.b, id: id}
}

// areaCodes maps re-keyed area IDs to their codes so that Validate can check
// the key-derivation rule for them (area key segment = slug(code), not
// slug(label)).
func appendAreaCode(o *Ontology, id, code string) map[string]string {
	if o.areaCodes == nil {
		o.areaCodes = make(map[string]string)
	}
	o.areaCodes[id] = code
	return o.areaCodes
}

// Code returns the short area code for an area ID ("SDF", "PD", ...); for
// non-area nodes it returns "".
func (o *Ontology) Code(id string) string { return o.areaCodes[id] }

// AreaByCode returns the ID of the area with the given short code, or "".
func (o *Ontology) AreaByCode(code string) string {
	want := Slug(code)
	for id, c := range o.areaCodes {
		if Slug(c) == want {
			return id
		}
	}
	return ""
}
