package ontology

import (
	"strings"
	"testing"
)

func TestBuildMigrationPDC12To19(t *testing.T) {
	old, next := PDC12(), PDC19Draft()
	m := BuildMigration(old, next, 0.25)

	// Most entries survive the revision.
	if cov := m.Coverage(old); cov < 0.9 {
		t.Errorf("migration coverage = %.2f, want >= 0.9 (dropped: %v, ambiguous: %d)",
			cov, m.Dropped, len(m.Ambiguous))
	}

	// Amdahl's law moved but maps to its new home.
	oldAmdahl := old.FindAll("amdahl")[0]
	to, ok := m.Mapping[oldAmdahl]
	if !ok {
		t.Fatalf("Amdahl unmapped (ambiguous=%v)", m.Ambiguous[oldAmdahl])
	}
	if !strings.Contains(next.Path(to), "Performance Metrics for Parallel Programs") {
		t.Errorf("Amdahl migrated to %q", next.Path(to))
	}

	// Unmoved entries map via the identity stage.
	oldRaces := old.RootID() + "/pr/semantics-and-correctness-issues/concurrency-defects-data-races"
	if to := m.Mapping[oldRaces]; to != next.RootID()+"/pr/semantics-and-correctness-issues/concurrency-defects-data-races" {
		t.Errorf("data races migrated to %q", to)
	}

	// The bundled BSP/CILK entry resolves to one of the unbundled
	// successors (or is flagged) — never silently dropped.
	oldBSP := old.FindAll("bsp")[0]
	if to, ok := m.Mapping[oldBSP]; ok {
		lbl := strings.ToLower(next.Node(to).Label)
		if !strings.Contains(lbl, "bsp") && !strings.Contains(lbl, "cilk") {
			t.Errorf("BSP migrated to unrelated %q", next.Path(to))
		}
	} else if len(m.Ambiguous[oldBSP]) == 0 {
		t.Error("BSP neither mapped nor flagged ambiguous")
	}

	// Every mapping target exists and is classifiable.
	for from, to := range m.Mapping {
		n := next.Node(to)
		if n == nil || !n.Kind.Classifiable() {
			t.Errorf("%q -> invalid target %q", from, to)
		}
	}
}

func TestMigrationApply(t *testing.T) {
	old, next := PDC12(), PDC19Draft()
	m := BuildMigration(old, next, 0.25)
	amdahl := old.FindAll("amdahl")[0]
	speedup := old.RootID() + "/pr/performance-issues/data/speedup-and-efficiency"
	migrated, review := m.Apply([]string{amdahl, speedup, "unknown-entry"})
	if len(migrated) < 1 {
		t.Fatalf("nothing migrated")
	}
	for _, id := range migrated {
		if !next.Has(id) {
			t.Errorf("migrated to unknown %q", id)
		}
	}
	found := false
	for _, id := range review {
		if id == "unknown-entry" {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown entry not sent to review: %v", review)
	}
	// Duplicate targets collapse.
	m2, _ := m.Apply([]string{amdahl, amdahl})
	if len(m2) != 1 {
		t.Errorf("duplicate targets kept: %v", m2)
	}
}

func TestMigrationSelfIsIdentity(t *testing.T) {
	p := PDC12()
	m := BuildMigration(p, p, 0.25)
	if len(m.Dropped) != 0 || len(m.Ambiguous) != 0 {
		t.Fatalf("self migration dropped=%v ambiguous=%v", m.Dropped, m.Ambiguous)
	}
	for from, to := range m.Mapping {
		if from != to {
			t.Errorf("self migration moved %q -> %q", from, to)
		}
	}
	if m.Coverage(p) != 1 {
		t.Errorf("self coverage = %v", m.Coverage(p))
	}
}
