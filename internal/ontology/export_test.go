package ontology

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestExportCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := PDC12().ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(buf.String()))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != PDC12().Len()+1 {
		t.Fatalf("rows = %d, want %d", len(rows), PDC12().Len()+1)
	}
	if rows[0][0] != "id" || rows[0][8] != "path" {
		t.Errorf("header = %v", rows[0])
	}
	// Find Amdahl's law and check its columns.
	found := false
	for _, row := range rows[1:] {
		if strings.HasSuffix(row[0], "amdahl-s-law") {
			found = true
			if row[3] != "topic" || row[4] != "core-tier-1" || row[5] != "comprehend" {
				t.Errorf("amdahl row = %v", row)
			}
			if !strings.Contains(row[8], "Performance Issues :: Data") {
				t.Errorf("amdahl path = %s", row[8])
			}
		}
	}
	if !found {
		t.Error("amdahl row missing")
	}
	// CS13 export includes hour budgets on units.
	buf.Reset()
	if err := CS13().ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",unit,,,10,") {
		t.Error("no unit hour budgets in CS13 export")
	}
}
