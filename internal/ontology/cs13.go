package ontology

import (
	"strings"
	"sync"
	"unicode"
)

// CS13 returns the ACM/IEEE Computer Science Curricula 2013 guidelines as an
// ontology: 18 knowledge areas, their knowledge units (with suggested core
// hours), topics, and learning outcomes classified at the three CS13 levels
// (familiarity, usage, assessment — mapped onto the shared Bloom scale).
//
// The area/unit skeleton and all labels the reproduction depends on are
// transcribed from the published guidelines; learning outcomes are
// synthesized deterministically from the topics so that the ontology reaches
// the published scale ("the CS13 classification contains about 3000
// entries", Sec. III-B). See DESIGN.md for the substitution note.
//
// The returned ontology is shared and frozen; callers must not mutate it.
func CS13() *Ontology {
	cs13Once.Do(func() { cs13Shared = buildCS13() })
	return cs13Shared
}

var (
	cs13Once   sync.Once
	cs13Shared *Ontology
)

// outcomeVerbs pairs CS13-style outcome verbs with the mastery level they
// connote. The cycle is deterministic so that the generated ontology is
// byte-for-byte reproducible across runs.
var outcomeVerbs = []struct {
	verb  string
	bloom Bloom
}{
	{"Describe", BloomKnow},
	{"Explain", BloomComprehend},
	{"Apply", BloomApply},
	{"Identify", BloomKnow},
	{"Discuss the importance of", BloomComprehend},
	{"Implement a program that uses", BloomApply},
	{"Contrast approaches to", BloomComprehend},
	{"Evaluate the use of", BloomApply},
}

// outcomeOffsets selects which verbs (relative to the topic's index) label
// the generated outcomes for a topic; all offsets are distinct modulo
// len(outcomeVerbs) so a topic never receives the same verb twice.
var outcomeOffsets = []int{0, 3, 5}

func buildCS13() *Ontology {
	b := NewBuilder("ACM/IEEE CS Curricula 2013")
	for _, ka := range cs13Areas {
		area := b.Area(ka.code, ka.name)
		for _, ku := range ka.units {
			unit := area.Unit(ku.name, ku.hours)
			for i, topic := range ku.topics {
				unit.Topic(topic, ku.tier)
				offsets := outcomeOffsets
				if ku.tier == TierCore1 {
					offsets = append(offsets, 6) // distinct from 0,3,5 mod 8
				}
				for _, off := range offsets {
					v := outcomeVerbs[(i+off)%len(outcomeVerbs)]
					unit.Outcome(v.verb+" "+decapitalize(topic), v.bloom)
				}
			}
		}
	}
	return b.MustBuild()
}

// decapitalize lowers the first rune of a label unless the label starts with
// an acronym (two leading upper-case runes), so "Arrays" becomes "arrays"
// but "NP-completeness and the Cook-Levin theorem" keeps its form.
func decapitalize(s string) string {
	runes := []rune(s)
	if len(runes) == 0 {
		return s
	}
	if len(runes) >= 2 && unicode.IsUpper(runes[0]) && unicode.IsUpper(runes[1]) {
		return s
	}
	if !unicode.IsUpper(runes[0]) {
		return s
	}
	// Keep proper nouns commonly present in the guidelines intact.
	first, _, _ := strings.Cut(s, " ")
	switch first {
	case "Internet", "Ethernet", "Amdahl's", "Gustafson's", "Flynn's",
		"Bayes'", "Newton's", "Simpson's", "Cook-Levin", "Knuth-Morris-Pratt",
		"Boyer-Moore", "Fibonacci", "Turing", "Moore's", "Dennard":
		return s
	}
	runes[0] = unicode.ToLower(runes[0])
	return string(runes)
}
