package ontology

import "sort"

// DiffEntry describes one difference between two ontologies sharing key
// conventions (e.g. PDC12 versus a hypothetical PDC19 revision — the paper
// notes "the 2019 edition of PDC is expected to correct these oddities").
type DiffEntry struct {
	ID string
	// Change is one of "added", "removed", "relabeled", "retiered",
	// "rebloomed", "moved".
	Change string
	// Before and After carry the differing values (labels, tiers, parent
	// paths) as display strings; empty when not applicable.
	Before, After string
}

// Diff compares the receiver (old) with next (new) and lists every node
// added, removed, or changed, ordered by node ID.
func (o *Ontology) Diff(next *Ontology) []DiffEntry {
	var out []DiffEntry
	for _, id := range o.order {
		a := o.nodes[id]
		b := next.nodes[id]
		if b == nil {
			out = append(out, DiffEntry{ID: id, Change: "removed", Before: a.Label})
			continue
		}
		if a.Label != b.Label {
			out = append(out, DiffEntry{ID: id, Change: "relabeled", Before: a.Label, After: b.Label})
		}
		if a.Tier != b.Tier {
			out = append(out, DiffEntry{ID: id, Change: "retiered", Before: a.Tier.String(), After: b.Tier.String()})
		}
		if a.Bloom != b.Bloom {
			out = append(out, DiffEntry{ID: id, Change: "rebloomed", Before: a.Bloom.String(), After: b.Bloom.String()})
		}
		if a.Parent != b.Parent {
			out = append(out, DiffEntry{ID: id, Change: "moved", Before: o.Path(a.Parent), After: next.Path(b.Parent)})
		}
	}
	for _, id := range next.order {
		if o.nodes[id] == nil {
			out = append(out, DiffEntry{ID: id, Change: "added", After: next.nodes[id].Label})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Change < out[j].Change
	})
	return out
}

// Stats summarizes an ontology for reporting: total entries, per-kind and
// per-tier counts, maximum depth, and number of classifiable entries. The
// paper's Sec. III-B reports "the CS13 classification contains about 3000
// entries"; Stats is what the reproduction checks that claim with.
type Stats struct {
	Total        int
	ByKind       map[Kind]int
	ByTier       map[Tier]int
	ByBloom      map[Bloom]int
	MaxDepth     int
	Classifiable int
	Areas        int
	Units        int
}

// ComputeStats walks the whole tree once and tallies the summary.
func (o *Ontology) ComputeStats() Stats {
	s := Stats{
		ByKind:  make(map[Kind]int),
		ByTier:  make(map[Tier]int),
		ByBloom: make(map[Bloom]int),
	}
	o.Walk(o.root, func(n *Node, depth int) bool {
		s.Total++
		s.ByKind[n.Kind]++
		s.ByTier[n.Tier]++
		s.ByBloom[n.Bloom]++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if n.Kind.Classifiable() {
			s.Classifiable++
		}
		switch n.Kind {
		case KindArea:
			s.Areas++
		case KindUnit:
			s.Units++
		}
		return true
	})
	return s
}

// FindAll returns the IDs of every node, anywhere in the tree, whose label
// contains the query terms (see Search). It is the cross-placement probe the
// paper uses: "in CS13, parallelism related topics appear in three different
// places".
func (o *Ontology) FindAll(query string) []string {
	var out []string
	for _, m := range o.Search(o.root, query) {
		out = append(out, m.Node.ID)
	}
	return out
}

// AreasMatching returns the distinct knowledge-area IDs containing at least
// one node matching the query, in document order.
func (o *Ontology) AreasMatching(query string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range o.FindAll(query) {
		a := o.Area(id)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	pos := make(map[string]int)
	for i, id := range o.order {
		pos[id] = i
	}
	sort.Slice(out, func(i, j int) bool { return pos[out[i]] < pos[out[j]] })
	return out
}
