package ontology

import (
	"strings"
	"testing"
)

func small(t *testing.T) *Ontology {
	t.Helper()
	b := NewBuilder("Mini Curriculum")
	a := b.Area("AA", "Alpha Area")
	u := a.Unit("Unit One", 3)
	u.Topic("Arrays", TierCore1)
	u.Topic("Linked lists", TierCore2)
	u.Outcome("Explain arrays", BloomComprehend)
	g := a.Unit("Unit Two", 0)
	sub := g.Group("Grouping")
	sub.BloomTopic("Parallel loops", TierElective, BloomApply)
	bArea := b.Area("BB", "Beta Area")
	bu := bArea.Unit("Unit Three", 1)
	bu.Topic("Message passing", TierCore1)
	o, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func TestSlug(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Arrays", "arrays"},
		{"Conditional and iterative control structures", "conditional-and-iterative-control-structures"},
		{"SIMD/Vector (e.g., SSE, Cray)", "simd-vector-e-g-sse-cray"},
		{"  spaced  out  ", "spaced-out"},
		{"Amdahl's law", "amdahl-s-law"},
		{"", ""},
		{"---", ""},
		{"C++", "c"},
	}
	for _, c := range cases {
		if got := Slug(c.in); got != c.want {
			t.Errorf("Slug(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBuildAndLookup(t *testing.T) {
	o := small(t)
	if o.Len() != 12 {
		t.Fatalf("Len = %d, want 12", o.Len())
	}
	id := "mini-curriculum/aa/unit-one/arrays"
	n := o.Node(id)
	if n == nil {
		t.Fatalf("node %q missing; have %v", id, o.IDs())
	}
	if n.Label != "Arrays" || n.Kind != KindTopic || n.Tier != TierCore1 {
		t.Errorf("unexpected node %+v", n)
	}
	if got := o.Parent(id); got != "mini-curriculum/aa/unit-one" {
		t.Errorf("Parent = %q", got)
	}
	if !o.Has(id) || o.Has("nope") {
		t.Error("Has misbehaves")
	}
}

func TestPathAndAncestors(t *testing.T) {
	o := small(t)
	id := "mini-curriculum/aa/unit-two/grouping/parallel-loops"
	want := "Mini Curriculum :: Alpha Area :: Unit Two :: Grouping :: Parallel loops"
	if got := o.Path(id); got != want {
		t.Errorf("Path = %q, want %q", got, want)
	}
	anc := o.Ancestors(id)
	if len(anc) != 4 || anc[0] != "mini-curriculum/aa/unit-two/grouping" || anc[3] != "mini-curriculum" {
		t.Errorf("Ancestors = %v", anc)
	}
	if got := o.Depth(id); got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	if got := o.Depth("absent"); got != -1 {
		t.Errorf("Depth(absent) = %d, want -1", got)
	}
	if got := o.Path("absent"); got != "" {
		t.Errorf("Path(absent) = %q", got)
	}
}

func TestAreaResolution(t *testing.T) {
	o := small(t)
	id := "mini-curriculum/aa/unit-one/arrays"
	if got := o.Area(id); got != "mini-curriculum/aa" {
		t.Errorf("Area = %q", got)
	}
	if got := o.Area("mini-curriculum/bb"); got != "mini-curriculum/bb" {
		t.Errorf("Area(area) = %q", got)
	}
	if got := o.Area("mini-curriculum"); got != "" {
		t.Errorf("Area(root) = %q", got)
	}
	if got := o.Code("mini-curriculum/aa"); got != "AA" {
		t.Errorf("Code = %q", got)
	}
	if got := o.AreaByCode("bb"); got != "mini-curriculum/bb" {
		t.Errorf("AreaByCode = %q", got)
	}
	if got := o.AreaByCode("zz"); got != "" {
		t.Errorf("AreaByCode(zz) = %q", got)
	}
}

func TestWalkOrderAndPrune(t *testing.T) {
	o := small(t)
	var order []string
	o.Walk(o.RootID(), func(n *Node, depth int) bool {
		order = append(order, n.Label)
		return n.Label != "Unit Two" // prune the grouping subtree
	})
	joined := strings.Join(order, "|")
	if strings.Contains(joined, "Parallel loops") {
		t.Errorf("prune failed: %v", order)
	}
	if order[0] != "Mini Curriculum" || order[1] != "Alpha Area" {
		t.Errorf("preorder violated: %v", order)
	}
}

func TestDescendantsWithin(t *testing.T) {
	o := small(t)
	desc := o.Descendants("mini-curriculum/aa")
	if len(desc) != 7 {
		t.Errorf("Descendants = %v", desc)
	}
	if !o.Within("mini-curriculum/aa/unit-one/arrays", "mini-curriculum/aa") {
		t.Error("Within false negative")
	}
	if o.Within("mini-curriculum/bb/unit-three/message-passing", "mini-curriculum/aa") {
		t.Error("Within false positive")
	}
	if !o.Within("mini-curriculum/aa", "mini-curriculum/aa") {
		t.Error("Within not inclusive")
	}
}

func TestClassifiableAndLeaves(t *testing.T) {
	o := small(t)
	cls := o.Classifiable()
	if len(cls) != 5 { // 4 topics + 1 outcome
		t.Errorf("Classifiable = %v", cls)
	}
	for _, id := range cls {
		if k := o.Node(id).Kind; !k.Classifiable() {
			t.Errorf("non-classifiable %q (%v) returned", id, k)
		}
	}
	leaves := o.Leaves()
	for _, id := range leaves {
		if len(o.Children(id)) != 0 {
			t.Errorf("leaf %q has children", id)
		}
	}
}

func TestAddErrors(t *testing.T) {
	o := New("X")
	if _, err := o.Add("missing", "Y", KindUnit); err == nil {
		t.Error("want error for unknown parent")
	}
	if _, err := o.Add(o.RootID(), "  ", KindUnit); err == nil {
		t.Error("want error for empty label")
	}
	id, err := o.Add(o.RootID(), "Topic A", KindTopic)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Add(o.RootID(), "Topic A", KindTopic); err == nil {
		t.Error("want duplicate-key error")
	}
	if _, err := o.Add(id, "Unit under topic", KindUnit); err == nil {
		t.Error("want structural-under-classifiable error")
	}
	o.Freeze()
	if _, err := o.Add(o.RootID(), "Post-freeze", KindTopic); err == nil {
		t.Error("want frozen error")
	}
}

func TestValidateCleanOnBuilt(t *testing.T) {
	for _, o := range []*Ontology{small(t), CS13(), PDC12()} {
		if errs := o.Validate(); len(errs) != 0 {
			t.Errorf("%s: %d validation errors, first %v", o.Name(), len(errs), errs[0])
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	o := small(t)
	// Corrupt a parent pointer directly.
	n := o.Node("mini-curriculum/aa/unit-one/arrays")
	saved := n.Parent
	n.Parent = "mini-curriculum/bb"
	if errs := o.Validate(); len(errs) == 0 {
		t.Error("corrupted parent not detected")
	}
	n.Parent = saved
	n.SeeAlso = []string{"dangling"}
	if errs := o.Validate(); len(errs) == 0 {
		t.Error("dangling see-also not detected")
	}
	n.SeeAlso = nil
}

func TestKindTierBloomStrings(t *testing.T) {
	if KindTopic.String() != "topic" || KindOutcome.String() != "outcome" {
		t.Error("kind names")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("out-of-range kind")
	}
	if TierCore1.String() != "core-tier-1" || Tier(-1).String() != "Tier(-1)" {
		t.Error("tier names")
	}
	if BloomApply.String() != "apply" || Bloom(9).String() != "Bloom(9)" {
		t.Error("bloom names")
	}
	if KindUnit.Classifiable() || !KindOutcome.Classifiable() {
		t.Error("classifiable kinds")
	}
}

func TestCountByKind(t *testing.T) {
	o := small(t)
	c := o.CountByKind()
	if c[KindArea] != 2 || c[KindTopic] != 4 || c[KindOutcome] != 1 || c[KindRoot] != 1 {
		t.Errorf("CountByKind = %v", c)
	}
}
