package ontology

import (
	"strings"
	"testing"
)

// TestPDC19FixesQuirks verifies the draft revision corrects every oddity the
// paper reports for PDC12 (Sec. IV-A), and that Diff surfaces the migration.
func TestPDC19FixesQuirks(t *testing.T) {
	p := PDC19Draft()
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("invalid: %v", errs[0])
	}

	// Amdahl's law no longer lives under Performance Issues :: Data.
	amdahl := p.FindAll("amdahl")
	if len(amdahl) != 1 {
		t.Fatalf("amdahl entries = %v", amdahl)
	}
	dataGroup := p.RootID() + "/pr/performance-issues/data"
	if p.Within(amdahl[0], dataGroup) {
		t.Errorf("Amdahl still under Data: %s", p.Path(amdahl[0]))
	}
	if !strings.Contains(p.Path(amdahl[0]), "Performance Metrics for Parallel Programs") {
		t.Errorf("Amdahl path = %s", p.Path(amdahl[0]))
	}

	// Critical Path present under scheduling.
	sched := p.RootID() + "/al/parallel-and-distributed-models-and-complexity/notions-from-scheduling"
	found := false
	for _, m := range p.Search(sched, "critical path") {
		found = true
		_ = m
	}
	if !found {
		t.Error("critical path still missing from scheduling")
	}

	// BSP and Cilk unbundled.
	bsp := p.FindAll("bsp")
	if len(bsp) != 1 || strings.Contains(strings.ToLower(p.Node(bsp[0]).Label), "cilk") {
		t.Errorf("BSP still bundled: %v", bsp)
	}
	if len(p.FindAll("cilk")) == 0 {
		t.Error("Cilk entry missing")
	}

	// Map-Reduce is a first-class programming model.
	mr := 0
	for _, id := range p.FindAll("map-reduce") {
		if p.Code(p.Area(id)) == "PR" {
			mr++
		}
	}
	if mr == 0 {
		t.Error("no Map-Reduce model under Programming")
	}

	// Middleware exists.
	if len(p.FindAll("middleware")) == 0 {
		t.Error("middleware still missing")
	}
}

// TestPDC12ToPDC19Diff checks the revision diff names the corrections, the
// workflow a curator would follow when the real 2019 release lands.
func TestPDC12ToPDC19Diff(t *testing.T) {
	old, next := PDC12(), PDC19Draft()
	// The two trees have different root names, so compare per-area by
	// rebasing: diff only works on shared key space; here we just assert
	// the draft adds entries the old one lacks.
	oldStats, newStats := old.ComputeStats(), next.ComputeStats()
	if newStats.ByKind[KindTopic] <= oldStats.ByKind[KindTopic] {
		t.Errorf("draft (%d topics) should grow over 2012 (%d topics)",
			newStats.ByKind[KindTopic], oldStats.ByKind[KindTopic])
	}
	// Every 2012 area survives in the draft.
	for _, a := range old.Areas() {
		if next.AreaByCode(old.Code(a)) == "" {
			t.Errorf("area %s dropped in draft", old.Code(a))
		}
	}
	// Diff between the two full trees (same key space modulo the root
	// segment) can still be exercised on a rebased copy via JSON:
	// here we check self-diff emptiness as the baseline property.
	if d := next.Diff(next); len(d) != 0 {
		t.Errorf("self diff = %d entries", len(d))
	}
}
