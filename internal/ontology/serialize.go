package ontology

import (
	"encoding/json"
	"fmt"
)

// document is the JSON wire form of an ontology: the relational list-of-rows
// shape CAR-CS stores in its database (key, parent key, description, type).
type document struct {
	Name  string     `json:"name"`
	Root  string     `json:"root"`
	Nodes []nodeJSON `json:"nodes"`
	Codes []areaCode `json:"area_codes,omitempty"`
}

type nodeJSON struct {
	ID      string   `json:"id"`
	Parent  string   `json:"parent,omitempty"`
	Label   string   `json:"label"`
	Kind    string   `json:"kind"`
	Tier    string   `json:"tier,omitempty"`
	Bloom   string   `json:"bloom,omitempty"`
	Hours   float64  `json:"hours,omitempty"`
	SeeAlso []string `json:"see_also,omitempty"`
}

type areaCode struct {
	ID   string `json:"id"`
	Code string `json:"code"`
}

// MarshalJSON encodes the ontology as a flat node table in document order.
func (o *Ontology) MarshalJSON() ([]byte, error) {
	doc := document{Name: o.name, Root: o.root}
	for _, id := range o.order {
		n := o.nodes[id]
		doc.Nodes = append(doc.Nodes, nodeJSON{
			ID:      n.ID,
			Parent:  n.Parent,
			Label:   n.Label,
			Kind:    n.Kind.String(),
			Tier:    zeroEmpty(n.Tier.String(), TierUnspecified.String()),
			Bloom:   zeroEmpty(n.Bloom.String(), BloomUnspecified.String()),
			Hours:   n.Hours,
			SeeAlso: n.SeeAlso,
		})
	}
	for _, id := range o.order {
		if c, ok := o.areaCodes[id]; ok {
			doc.Codes = append(doc.Codes, areaCode{ID: id, Code: c})
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes an ontology from its flat node table, rebuilding the
// adjacency and re-validating every structural invariant.
func (o *Ontology) UnmarshalJSON(data []byte) error {
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if len(doc.Nodes) == 0 || doc.Nodes[0].ID != doc.Root {
		return fmt.Errorf("ontology json: first node must be the root %q", doc.Root)
	}
	rebuilt := &Ontology{
		name:     doc.Name,
		root:     doc.Root,
		nodes:    make(map[string]*Node, len(doc.Nodes)),
		children: make(map[string][]string),
	}
	for i, nj := range doc.Nodes {
		kind, err := parseKind(nj.Kind)
		if err != nil {
			return fmt.Errorf("node %q: %w", nj.ID, err)
		}
		tier, err := parseTier(nj.Tier)
		if err != nil {
			return fmt.Errorf("node %q: %w", nj.ID, err)
		}
		bloom, err := parseBloom(nj.Bloom)
		if err != nil {
			return fmt.Errorf("node %q: %w", nj.ID, err)
		}
		n := &Node{
			ID: nj.ID, Parent: nj.Parent, Label: nj.Label,
			Kind: kind, Tier: tier, Bloom: bloom, Hours: nj.Hours,
			SeeAlso: nj.SeeAlso,
		}
		if _, dup := rebuilt.nodes[n.ID]; dup {
			return fmt.Errorf("ontology json: duplicate node %q", n.ID)
		}
		rebuilt.nodes[n.ID] = n
		rebuilt.order = append(rebuilt.order, n.ID)
		if i > 0 {
			rebuilt.children[n.Parent] = append(rebuilt.children[n.Parent], n.ID)
		}
	}
	for _, ac := range doc.Codes {
		if rebuilt.areaCodes == nil {
			rebuilt.areaCodes = make(map[string]string)
		}
		rebuilt.areaCodes[ac.ID] = ac.Code
	}
	if errs := rebuilt.Validate(); len(errs) > 0 {
		return fmt.Errorf("ontology json: %d invalid node(s), first: %w", len(errs), errs[0])
	}
	rebuilt.frozen = true
	*o = *rebuilt
	return nil
}

func zeroEmpty(s, zero string) string {
	if s == zero {
		return ""
	}
	return s
}

func parseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func parseTier(s string) (Tier, error) {
	if s == "" {
		return TierUnspecified, nil
	}
	for i, n := range tierNames {
		if s == n {
			return Tier(i), nil
		}
	}
	return 0, fmt.Errorf("unknown tier %q", s)
}

func parseBloom(s string) (Bloom, error) {
	if s == "" {
		return BloomUnspecified, nil
	}
	for i, n := range bloomNames {
		if s == n {
			return Bloom(i), nil
		}
	}
	return 0, fmt.Errorf("unknown bloom level %q", s)
}
