package ontology

import (
	"sort"

	"carcs/internal/textproc"
)

// Migration maps classification entries of one ontology revision onto
// another — the tooling a curator needs "with a new version coming in 2019":
// every material classified against PDC12 must be re-pointed at the
// corresponding PDC19 entry, or flagged for manual review when the revision
// moved, split, or reworded the entry.
type Migration struct {
	// Mapping maps old entry IDs to new entry IDs.
	Mapping map[string]string
	// Ambiguous lists old entries that matched several new entries
	// equally well; curators must decide these by hand.
	Ambiguous map[string][]string
	// Dropped lists old entries with no acceptable match in the new
	// revision.
	Dropped []string
}

// BuildMigration computes an entry mapping from old to new. Matching is
// staged:
//
//  1. Exact same ID (the entry did not move): mapped directly.
//  2. Exact label match anywhere in the new tree: mapped (moves like
//     Amdahl's law relocating out of Performance Issues :: Data).
//  3. Highest stemmed-token overlap between old and new labels, with the
//     path as tiebreak; below minScore the entry is dropped, and ties are
//     reported as ambiguous.
func BuildMigration(old, next *Ontology, minScore float64) *Migration {
	m := &Migration{
		Mapping:   make(map[string]string),
		Ambiguous: make(map[string][]string),
	}
	// Index new entries by exact label and by analyzed terms.
	newByLabel := make(map[string][]string)
	newTerms := make(map[string][]string)
	newIDs := next.Classifiable()
	for _, id := range newIDs {
		n := next.Node(id)
		newByLabel[n.Label] = append(newByLabel[n.Label], id)
		newTerms[id] = textproc.Terms(n.Label + " " + pathSansRoot(next, id))
	}
	for _, oldID := range old.Classifiable() {
		on := old.Node(oldID)
		// Stage 1: identical relative ID (strip the root segment).
		rel := relativeID(old, oldID)
		if cand := next.RootID() + rel; next.Has(cand) && next.Node(cand).Kind.Classifiable() {
			m.Mapping[oldID] = cand
			continue
		}
		// Stage 2: unique exact label elsewhere.
		if ids := newByLabel[on.Label]; len(ids) == 1 {
			m.Mapping[oldID] = ids[0]
			continue
		} else if len(ids) > 1 {
			m.Ambiguous[oldID] = append([]string(nil), ids...)
			continue
		}
		// Stage 3: best stemmed overlap. The root label is excluded on
		// both sides: two revisions of the same curriculum share their
		// name's tokens, which would inflate every pairing.
		oldTerms := termSet(textproc.Terms(on.Label + " " + pathSansRoot(old, oldID)))
		var best []string
		bestScore := 0.0
		for _, id := range newIDs {
			score := overlap(oldTerms, newTerms[id])
			switch {
			case score > bestScore:
				bestScore = score
				best = []string{id}
			case score == bestScore && score > 0:
				best = append(best, id)
			}
		}
		switch {
		case bestScore < minScore || len(best) == 0:
			m.Dropped = append(m.Dropped, oldID)
		case len(best) == 1:
			m.Mapping[oldID] = best[0]
		default:
			sort.Strings(best)
			m.Ambiguous[oldID] = best
		}
	}
	sort.Strings(m.Dropped)
	return m
}

// pathSansRoot is the display path without the leading root label.
func pathSansRoot(o *Ontology, id string) string {
	p := o.Path(id)
	if i := indexAfterSep(p); i >= 0 {
		return p[i:]
	}
	return p
}

func indexAfterSep(p string) int {
	const sep = " :: "
	for i := 0; i+len(sep) <= len(p); i++ {
		if p[i:i+len(sep)] == sep {
			return i + len(sep)
		}
	}
	return -1
}

// relativeID strips the ontology's root segment from an entry ID.
func relativeID(o *Ontology, id string) string {
	if len(id) <= len(o.root) {
		return ""
	}
	return id[len(o.root):]
}

func termSet(terms []string) map[string]bool {
	s := make(map[string]bool, len(terms))
	for _, t := range terms {
		s[t] = true
	}
	return s
}

// overlap is |A ∩ B| / |A ∪ B| between a term set and a term list.
func overlap(a map[string]bool, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	bset := termSet(b)
	inter := 0
	for t := range a {
		if bset[t] {
			inter++
		}
	}
	union := len(a) + len(bset) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Apply rewrites a classification entry list under the migration: mapped
// entries are replaced, ambiguous and dropped ones are returned for manual
// review. Duplicate targets collapse.
func (m *Migration) Apply(entryIDs []string) (migrated []string, review []string) {
	seen := make(map[string]bool)
	for _, id := range entryIDs {
		if to, ok := m.Mapping[id]; ok {
			if !seen[to] {
				seen[to] = true
				migrated = append(migrated, to)
			}
			continue
		}
		review = append(review, id)
	}
	sort.Strings(migrated)
	sort.Strings(review)
	return migrated, review
}

// Coverage summarizes the migration: fraction of old entries mapped.
func (m *Migration) Coverage(old *Ontology) float64 {
	total := len(old.Classifiable())
	if total == 0 {
		return 0
	}
	return float64(len(m.Mapping)) / float64(total)
}
