package ontology

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// randomOntology builds a random but valid ontology from a seed: a few
// areas, nested units/groups to random depth, topics and outcomes with
// random tiers and Bloom levels.
func randomOntology(seed int64) *Ontology {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("Rand %d", seed))
	nAreas := 1 + r.Intn(4)
	for a := 0; a < nAreas; a++ {
		area := b.Area(fmt.Sprintf("A%d", a), fmt.Sprintf("Area %d", a))
		nUnits := 1 + r.Intn(4)
		for u := 0; u < nUnits; u++ {
			cur := area.Unit(fmt.Sprintf("Unit %d %d", a, u), float64(r.Intn(10)))
			depth := r.Intn(3)
			for d := 0; d < depth; d++ {
				cur = cur.Group(fmt.Sprintf("Group %d", d))
			}
			nTopics := 1 + r.Intn(6)
			for t := 0; t < nTopics; t++ {
				cur.BloomTopic(fmt.Sprintf("Topic %d %d %d", a, u, t),
					Tier(r.Intn(4)), Bloom(r.Intn(4)))
			}
			if r.Intn(2) == 0 {
				cur.Outcome(fmt.Sprintf("Outcome %d %d", a, u), Bloom(1+r.Intn(3)))
			}
		}
	}
	return b.MustBuild()
}

// TestQuickRandomOntologiesValidate: every randomly built ontology passes
// Validate and all navigation invariants hold for every node.
func TestQuickRandomOntologiesValidate(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		o := randomOntology(seed)
		if errs := o.Validate(); len(errs) != 0 {
			t.Fatalf("seed %d: %v", seed, errs[0])
		}
		for _, id := range o.IDs() {
			n := o.Node(id)
			if n == nil {
				t.Fatalf("seed %d: IDs returned unknown %q", seed, id)
			}
			// Depth equals ancestor count.
			if got, want := o.Depth(id), len(o.Ancestors(id)); got != want {
				t.Fatalf("seed %d: depth(%q) = %d, ancestors = %d", seed, id, got, want)
			}
			// Every child's parent is this node.
			for _, kid := range o.Children(id) {
				if o.Parent(kid) != id {
					t.Fatalf("seed %d: child %q of %q has parent %q", seed, kid, id, o.Parent(kid))
				}
				if !o.Within(kid, id) {
					t.Fatalf("seed %d: child not within parent", seed)
				}
			}
			// Non-root nodes resolve to exactly one area.
			if id != o.RootID() && o.Area(id) == "" {
				t.Fatalf("seed %d: %q has no area", seed, id)
			}
		}
		// Descendant counts are consistent: total = 1 + sum of subtree
		// sizes of the root's children.
		total := 1
		for _, kid := range o.Children(o.RootID()) {
			total += 1 + len(o.Descendants(kid))
		}
		if total != o.Len() {
			t.Fatalf("seed %d: descendant partition %d != len %d", seed, total, o.Len())
		}
	}
}

// TestQuickRandomJSONRoundTrip: serialization is the identity on random
// ontologies.
func TestQuickRandomJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		o := randomOntology(seed)
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var back Ontology
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.Len() != o.Len() {
			t.Fatalf("seed %d: %d -> %d nodes", seed, o.Len(), back.Len())
		}
		data2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(data) != string(data2) {
			t.Fatalf("seed %d: marshal not idempotent", seed)
		}
	}
}

// TestQuickSearchFindsEveryLabel: every node can be found by searching for
// its own label, and highlighting covers the matched terms.
func TestQuickSearchFindsEveryLabel(t *testing.T) {
	o := randomOntology(7)
	for _, id := range o.IDs() {
		if id == o.RootID() {
			continue
		}
		n := o.Node(id)
		ms := o.Search(o.RootID(), n.Label)
		found := false
		for _, m := range ms {
			if m.Node.ID == id {
				found = true
				if len(m.Spans) == 0 {
					t.Fatalf("no spans for exact match on %q", n.Label)
				}
			}
		}
		if !found {
			t.Fatalf("label %q not found by its own search", n.Label)
		}
	}
}
