package ontology

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ExportCSV writes the ontology as a flat CSV table (one row per node):
// id, parent, kind, tier, bloom, hours, depth, path. This is the interchange
// format curriculum committees actually work in — a spreadsheet — and the
// complement of the JSON wire form used for machine round-trips.
func (o *Ontology) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "parent", "label", "kind", "tier", "bloom", "hours", "depth", "path"}); err != nil {
		return err
	}
	var failed error
	o.Walk(o.RootID(), func(n *Node, depth int) bool {
		if failed != nil {
			return false
		}
		hours := ""
		if n.Hours > 0 {
			hours = fmt.Sprintf("%g", n.Hours)
		}
		rec := []string{
			n.ID, n.Parent, n.Label, n.Kind.String(),
			zeroEmpty(n.Tier.String(), TierUnspecified.String()),
			zeroEmpty(n.Bloom.String(), BloomUnspecified.String()),
			hours, fmt.Sprintf("%d", depth), o.Path(n.ID),
		}
		failed = cw.Write(rec)
		return true
	})
	if failed != nil {
		return failed
	}
	cw.Flush()
	return cw.Error()
}
