package ontology

import "sync"

// PDC19Draft returns a hypothetical 2019 revision of the PDC curriculum.
// The paper notes the curriculum "is currently under revision with a new
// version coming in 2019" and that "certainly the 2019 edition of PDC is
// expected to correct these oddities". This draft applies exactly the
// corrections Sec. IV-A calls for, so the ontology Diff machinery can show
// what a revision migration looks like:
//
//   - Amdahl's law (with Gustafson's law and speedup/efficiency) moves out
//     of Programming :: Performance Issues :: Data into a dedicated
//     Performance Metrics group.
//   - Critical Path is added under Notions from scheduling.
//   - BSP and Cilk are unbundled into separate entries.
//   - The Map-Reduce programming model gets a first-class entry under
//     Programming paradigms.
//   - A Middleware group appears under Cross-Cutting topics.
//
// The returned ontology is shared and frozen; callers must not mutate it.
func PDC19Draft() *Ontology {
	pdc19Once.Do(func() { pdc19Shared = buildPDC19() })
	return pdc19Shared
}

var (
	pdc19Once   sync.Once
	pdc19Shared *Ontology
)

func buildPDC19() *Ontology {
	b := NewBuilder("NSF/IEEE-TCPP PDC 2019 (draft)")

	// ---------------------------------------------------------------- AR
	ar := b.Area("AR", "Architecture")
	classes := ar.Unit("Classes", 0)
	tax := classes.Group("Taxonomy")
	tax.BloomTopic("Flynn's taxonomy", TierCore1, BloomKnow)
	tax.BloomTopic("Data versus control parallelism", TierCore1, BloomKnow)
	tax.BloomTopic("Shared versus distributed memory", TierCore1, BloomComprehend)
	ctl := classes.Group("Data versus control parallelism")
	ctl.BloomTopic("Superscalar (ILP)", TierCore1, BloomKnow)
	ctl.BloomTopic("SIMD/Vector (e.g., SSE, Cray)", TierCore1, BloomKnow)
	ctl.BloomTopic("Pipelines", TierCore1, BloomComprehend)
	ctl.BloomTopic("Streams (e.g., GPU)", TierCore1, BloomKnow)
	ctl.BloomTopic("MIMD", TierCore1, BloomKnow)
	ctl.BloomTopic("Simultaneous multithreading", TierCore1, BloomKnow)
	ctl.BloomTopic("Multicore", TierCore1, BloomComprehend)
	ctl.BloomTopic("Heterogeneous (e.g., Cell, on-chip GPU)", TierElective, BloomKnow)
	sysc := classes.Group("Shared versus distributed memory systems")
	sysc.BloomTopic("Symmetric multiprocessors (SMP)", TierCore1, BloomKnow)
	sysc.BloomTopic("Buses and the memory bottleneck", TierCore1, BloomComprehend)
	sysc.BloomTopic("Message passing latency and bandwidth", TierCore1, BloomComprehend)
	sysc.BloomTopic("Interconnection network topologies", TierElective, BloomKnow)
	memhier := ar.Unit("Memory Hierarchy", 0)
	memhier.BloomTopic("Cache organization", TierCore1, BloomComprehend)
	memhier.BloomTopic("Cache coherence in multicore systems", TierElective, BloomKnow)
	memhier.BloomTopic("Atomicity and memory operations", TierElective, BloomKnow)
	memhier.BloomTopic("Consistency in shared-memory models", TierElective, BloomKnow)
	perfm := ar.Unit("Performance Metrics", 0)
	perfm.BloomTopic("Cycles per instruction (CPI)", TierCore1, BloomKnow)
	perfm.BloomTopic("Benchmarks (e.g., SPEC, LINPACK)", TierCore1, BloomKnow)
	perfm.BloomTopic("Peak performance and sustained performance", TierCore1, BloomKnow)

	// ---------------------------------------------------------------- PR
	pr := b.Area("PR", "Programming")
	par := pr.Unit("Parallel Programming Paradigms and Notations", 0)
	target := par.Group("By the target machine model")
	target.BloomTopic("SIMD programming", TierCore1, BloomKnow)
	target.BloomTopic("Shared memory programming", TierCore1, BloomApply)
	target.BloomTopic("Distributed memory programming", TierCore1, BloomComprehend)
	target.BloomTopic("Hybrid shared/distributed programming", TierElective, BloomKnow)
	target.BloomTopic("Client-server programming", TierCore1, BloomComprehend)
	target.BloomTopic("Data parallel programming", TierCore1, BloomComprehend)
	// Correction: Map-Reduce becomes a first-class programming model.
	target.BloomTopic("Map-Reduce programming model", TierCore1, BloomComprehend)
	frameworks := par.Group("Parallel programming frameworks and libraries")
	frameworks.BloomTopic("Threads and thread libraries (e.g., pthreads)", TierCore1, BloomApply)
	frameworks.BloomTopic("Compiler directives and pragmas (e.g., OpenMP)", TierCore1, BloomApply)
	frameworks.BloomTopic("Message passing libraries (e.g., MPI)", TierCore1, BloomComprehend)
	frameworks.BloomTopic("GPU programming (e.g., CUDA, OpenCL)", TierElective, BloomKnow)
	frameworks.BloomTopic("Map-Reduce frameworks (e.g., Hadoop, MapReduce-MPI)", TierElective, BloomKnow)
	sem := pr.Unit("Semantics and Correctness Issues", 0)
	sem.BloomTopic("Tasks and threads", TierCore1, BloomApply)
	sem.BloomTopic("Synchronization: critical regions", TierCore1, BloomApply)
	sem.BloomTopic("Synchronization: producer-consumer", TierCore1, BloomApply)
	sem.BloomTopic("Synchronization: monitors", TierElective, BloomComprehend)
	sem.BloomTopic("Concurrency defects: deadlocks", TierCore1, BloomComprehend)
	sem.BloomTopic("Concurrency defects: data races", TierCore1, BloomApply)
	sem.BloomTopic("Memory models: sequential consistency", TierElective, BloomKnow)
	sem.BloomTopic("Tools to detect concurrency defects", TierElective, BloomKnow)
	perfi := pr.Unit("Performance Issues", 0)
	comp := perfi.Group("Computation")
	comp.BloomTopic("Computation decomposition strategies", TierCore1, BloomComprehend)
	comp.BloomTopic("Owner-computes rule", TierElective, BloomKnow)
	comp.BloomTopic("Program transformations (e.g., loop fusion, fission, skewing)", TierElective, BloomKnow)
	comp.BloomTopic("Load balancing", TierCore1, BloomComprehend)
	comp.BloomTopic("Static and dynamic scheduling and mapping", TierCore1, BloomComprehend)
	// Correction: Data keeps only data topics; the laws move out.
	data := perfi.Group("Data")
	data.BloomTopic("Data distribution", TierCore1, BloomComprehend)
	data.BloomTopic("Data layout and memory allocation", TierElective, BloomKnow)
	data.BloomTopic("Data locality and its impact on performance", TierCore1, BloomComprehend)
	data.BloomTopic("False sharing", TierElective, BloomKnow)
	data.BloomTopic("Performance impact of data movement", TierCore1, BloomComprehend)
	// Correction: a dedicated metrics group hosts the speedup laws.
	metrics := perfi.Group("Performance Metrics for Parallel Programs")
	metrics.BloomTopic("Speedup and efficiency", TierCore1, BloomApply)
	metrics.BloomTopic("Amdahl's law", TierCore1, BloomComprehend)
	metrics.BloomTopic("Gustafson's law", TierElective, BloomKnow)
	metrics.BloomTopic("Weak versus strong scaling", TierCore1, BloomComprehend)
	perft := pr.Unit("Performance Tools", 0)
	perft.BloomTopic("Performance monitoring tools (e.g., gprof, perf)", TierElective, BloomKnow)
	perft.BloomTopic("Profiling and performance visualization", TierElective, BloomKnow)

	// ---------------------------------------------------------------- AL
	al := b.Area("AL", "Algorithms")
	models := al.Unit("Parallel and Distributed Models and Complexity", 0)
	costs := models.Group("Costs of computation")
	costs.BloomTopic("Asymptotic analysis of parallel time and work", TierCore1, BloomApply)
	costs.BloomTopic("Time, space and power tradeoffs", TierCore1, BloomKnow)
	costs.BloomTopic("Cost reduction: speedup as a goal", TierCore1, BloomComprehend)
	costs.BloomTopic("Scalability in algorithms and architectures", TierCore1, BloomComprehend)
	mbn := models.Group("Model-based notions")
	mbn.BloomTopic("Notions from complexity theory: P, NP and parallel NC", TierElective, BloomKnow)
	// Correction: BSP and Cilk unbundled.
	mbn.BloomTopic("Bulk synchronous parallel (BSP) model", TierElective, BloomKnow)
	mbn.BloomTopic("Cilk-style work stealing model", TierElective, BloomKnow)
	mbn.BloomTopic("PRAM model", TierElective, BloomKnow)
	mbn.BloomTopic("Simulation and emulation between models", TierElective, BloomKnow)
	sched := models.Group("Notions from scheduling")
	sched.BloomTopic("Dependencies and task graphs", TierCore1, BloomComprehend)
	// Correction: Critical Path added.
	sched.BloomTopic("Critical path, work and span", TierCore1, BloomComprehend)
	sched.BloomTopic("Makespan as an optimization objective", TierElective, BloomKnow)
	sched.BloomTopic("Greedy list scheduling", TierElective, BloomKnow)
	paradigms := al.Unit("Algorithmic Paradigms", 0)
	paradigms.BloomTopic("Divide and conquer (parallel aspects)", TierCore1, BloomApply)
	paradigms.BloomTopic("Recursion (parallel aspects)", TierCore1, BloomApply)
	paradigms.BloomTopic("Reduction (map-reduce as a pattern, not the system)", TierCore1, BloomComprehend)
	paradigms.BloomTopic("Scan (parallel-prefix)", TierElective, BloomComprehend)
	paradigms.BloomTopic("Series-parallel composition", TierCore1, BloomComprehend)
	paradigms.BloomTopic("Blocking and striping", TierElective, BloomKnow)
	problems := al.Unit("Algorithmic Problems", 0)
	comm := problems.Group("Communication")
	comm.BloomTopic("Broadcast", TierCore1, BloomComprehend)
	comm.BloomTopic("Multicast", TierElective, BloomKnow)
	comm.BloomTopic("Scatter and gather", TierCore1, BloomComprehend)
	comm.BloomTopic("Gossip", TierElective, BloomKnow)
	syncp := problems.Group("Synchronization")
	syncp.BloomTopic("Atomic operations and mutual exclusion", TierCore1, BloomApply)
	syncp.BloomTopic("Barriers", TierCore1, BloomComprehend)
	sorting := problems.Group("Sorting and selection")
	sorting.BloomTopic("Parallel merge sort", TierCore1, BloomApply)
	sorting.BloomTopic("Sorting networks", TierElective, BloomKnow)
	sorting.BloomTopic("Parallel selection", TierElective, BloomKnow)
	graph := problems.Group("Graph algorithms")
	graph.BloomTopic("Parallel graph traversal (BFS/DFS)", TierElective, BloomKnow)
	graph.BloomTopic("Minimum spanning tree in parallel", TierElective, BloomKnow)
	spec := problems.Group("Specialized computations")
	spec.BloomTopic("Matrix product", TierCore1, BloomApply)
	spec.BloomTopic("Linear system solving", TierElective, BloomKnow)
	spec.BloomTopic("Stencil computations", TierElective, BloomComprehend)
	spec.BloomTopic("Fast Fourier transform", TierElective, BloomKnow)
	spec.BloomTopic("Monte Carlo methods", TierElective, BloomComprehend)

	// ---------------------------------------------------------------- CC
	cc := b.Area("CC", "Cross-Cutting and Advanced Topics")
	themes := cc.Unit("High-Level Themes", 0)
	themes.BloomTopic("Why and what is parallel and distributed computing", TierCore1, BloomKnow)
	themes.BloomTopic("History of parallel and distributed computing", TierElective, BloomKnow)
	cross := cc.Unit("Cross-Cutting Topics", 0)
	cross.BloomTopic("Concurrency as a cross-cutting concern", TierCore1, BloomKnow)
	cross.BloomTopic("Non-determinism in parallel computation", TierCore1, BloomKnow)
	cross.BloomTopic("Power consumption as a design constraint", TierCore1, BloomKnow)
	cross.BloomTopic("Locality as a cross-cutting concern", TierCore1, BloomKnow)
	// Correction: middleware appears.
	mid := cc.Unit("Middleware", 0)
	mid.BloomTopic("Middleware design: publish-subscribe and message queues", TierElective, BloomKnow)
	mid.BloomTopic("Middleware implementation: serialization and addressing", TierElective, BloomKnow)
	mid.BloomTopic("Remote procedure calls", TierElective, BloomComprehend)
	adv := cc.Unit("Current and Advanced Topics", 0)
	adv.BloomTopic("Cluster computing", TierCore1, BloomKnow)
	adv.BloomTopic("Cloud and grid computing", TierCore1, BloomKnow)
	adv.BloomTopic("Peer-to-peer computing", TierElective, BloomKnow)
	adv.BloomTopic("Fault tolerance", TierCore1, BloomKnow)
	adv.BloomTopic("Distributed transactions", TierElective, BloomKnow)
	adv.BloomTopic("Security and privacy in distributed systems", TierCore1, BloomKnow)
	adv.BloomTopic("Web search as a distributed computation", TierElective, BloomKnow)
	adv.BloomTopic("Social networking analytics at scale", TierElective, BloomKnow)

	return b.MustBuild()
}
