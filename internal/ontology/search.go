package ontology

import (
	"sort"
	"strings"
)

// Span marks a half-open byte range [Start, End) inside a node label that
// matched a search query. The CAR-CS entry form highlights these ranges so a
// classifier can locate entries inside the ~3000-node CS13 tree.
type Span struct {
	Start, End int
}

// Match is one search hit: the node, the matched byte ranges in its label,
// and a relevance score (higher is better).
type Match struct {
	Node  *Node
	Spans []Span
	Score float64
}

// Search finds nodes whose label contains every whitespace-separated term of
// the query, case-insensitively, anywhere in the subtree rooted at rootID.
// Matches are scored by (fraction of label covered by matches, shallower
// first, document order as tiebreak) and returned best-first. An empty query
// returns nil.
func (o *Ontology) Search(rootID, query string) []Match {
	terms := splitTerms(query)
	if len(terms) == 0 {
		return nil
	}
	var out []Match
	pos := make(map[string]int, len(o.order))
	for i, id := range o.order {
		pos[id] = i
	}
	o.Walk(rootID, func(n *Node, depth int) bool {
		spans, ok := matchAll(n.Label, terms)
		if ok && n.ID != rootID {
			covered := 0
			for _, s := range spans {
				covered += s.End - s.Start
			}
			score := float64(covered) / float64(len(n.Label)+1)
			score -= 0.01 * float64(depth)
			out = append(out, Match{Node: n, Spans: spans, Score: score})
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return pos[out[i].Node.ID] < pos[out[j].Node.ID]
	})
	return out
}

// SearchPaths is Search restricted to classifiable nodes, returning display
// paths; it backs the CLI and the web form's suggestion dropdown.
func (o *Ontology) SearchPaths(query string, limit int) []string {
	ms := o.Search(o.root, query)
	var out []string
	for _, m := range ms {
		if !m.Node.Kind.Classifiable() {
			continue
		}
		out = append(out, o.Path(m.Node.ID))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Highlight renders a label with matched spans wrapped in the given open and
// close markers (e.g. "[" and "]" for terminals, "<mark>"/"</mark>" for
// HTML). Spans must be sorted and non-overlapping, as produced by Search.
func Highlight(label string, spans []Span, open, close string) string {
	if len(spans) == 0 {
		return label
	}
	var b strings.Builder
	prev := 0
	for _, s := range spans {
		if s.Start < prev || s.End > len(label) || s.End < s.Start {
			continue
		}
		b.WriteString(label[prev:s.Start])
		b.WriteString(open)
		b.WriteString(label[s.Start:s.End])
		b.WriteString(close)
		prev = s.End
	}
	b.WriteString(label[prev:])
	return b.String()
}

func splitTerms(q string) []string {
	fields := strings.Fields(strings.ToLower(q))
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// matchAll returns the merged spans of every term inside label, or ok=false
// if any term is absent. Matching is case-insensitive on the raw bytes
// (labels in both curricula are ASCII).
func matchAll(label string, terms []string) ([]Span, bool) {
	lower := strings.ToLower(label)
	var spans []Span
	for _, t := range terms {
		found := false
		for from := 0; ; {
			i := strings.Index(lower[from:], t)
			if i < 0 {
				break
			}
			start := from + i
			spans = append(spans, Span{Start: start, End: start + len(t)})
			from = start + len(t)
			found = true
		}
		if !found {
			return nil, false
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	// Merge overlaps so Highlight can render left to right.
	merged := spans[:0]
	for _, s := range spans {
		if n := len(merged); n > 0 && s.Start <= merged[n-1].End {
			if s.End > merged[n-1].End {
				merged[n-1].End = s.End
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged, true
}
