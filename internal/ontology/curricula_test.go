package ontology

import (
	"encoding/json"
	"testing"
)

// TestCS13Scale reproduces E6 (Sec. III-B): "the CS13 classification
// contains about 3000 entries". We accept 2500–3500.
func TestCS13Scale(t *testing.T) {
	s := CS13().ComputeStats()
	if s.Total < 2500 || s.Total > 3500 {
		t.Errorf("CS13 total entries = %d, want about 3000", s.Total)
	}
	if s.Areas != 18 {
		t.Errorf("CS13 areas = %d, want 18", s.Areas)
	}
	if s.ByKind[KindTopic] < 500 {
		t.Errorf("CS13 topics = %d, want hundreds", s.ByKind[KindTopic])
	}
	if s.ByKind[KindOutcome] <= s.ByKind[KindTopic] {
		t.Errorf("CS13 outcomes (%d) should outnumber topics (%d)",
			s.ByKind[KindOutcome], s.ByKind[KindTopic])
	}
	t.Logf("CS13: %d entries (%d topics, %d outcomes, %d units, depth %d)",
		s.Total, s.ByKind[KindTopic], s.ByKind[KindOutcome], s.Units, s.MaxDepth)
}

// TestParallelismPlacement reproduces E6: "in CS13, parallelism related
// topics appear in three different places: System Fundamentals,
// Computational Science::Processing, and in Parallel and Distributed
// Computing".
func TestParallelismPlacement(t *testing.T) {
	cs := CS13()
	areas := cs.AreasMatching("parallel")
	codes := make(map[string]bool)
	for _, a := range areas {
		codes[cs.Code(a)] = true
	}
	for _, want := range []string{"SF", "CN", "PD"} {
		if !codes[want] {
			t.Errorf("no parallelism entries found in area %s; areas with matches: %v", want, codes)
		}
	}
	if len(codes) < 3 {
		t.Errorf("parallelism appears in %d areas, want at least 3", len(codes))
	}
	// The CN hit must specifically be under Processing.
	found := false
	for _, id := range cs.FindAll("parallel") {
		if cs.Within(id, "acm-ieee-cs-curricula-2013/cn/processing") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no parallelism entry under Computational Science :: Processing")
	}
}

// TestPDC12Quirks reproduces E7 (Sec. IV-A): the acknowledged placement
// oddities of the 2012 PDC curriculum.
func TestPDC12Quirks(t *testing.T) {
	p := PDC12()

	// Amdahl's law falls under Programming :: Performance Issues :: Data.
	amdahl := p.FindAll("amdahl")
	if len(amdahl) == 0 {
		t.Fatal("Amdahl's law missing from PDC12")
	}
	for _, id := range amdahl {
		want := "nsf-ieee-tcpp-pdc-2012/pr/performance-issues/data"
		if !p.Within(id, want) {
			t.Errorf("Amdahl entry %q not under %q (path %q)", id, want, p.Path(id))
		}
	}

	// Notions from scheduling misses Critical Path.
	schedRoot := "nsf-ieee-tcpp-pdc-2012/al/parallel-and-distributed-models-and-complexity/notions-from-scheduling"
	if !p.Has(schedRoot) {
		t.Fatalf("scheduling group missing")
	}
	for _, m := range p.Search(schedRoot, "critical path") {
		t.Errorf("PDC12 should not contain critical path under scheduling, found %q", m.Node.ID)
	}

	// BSP is bundled with Cilk in one entry.
	bsp := p.FindAll("bsp")
	if len(bsp) != 1 {
		t.Fatalf("BSP entries = %v, want exactly 1", bsp)
	}
	if label := p.Node(bsp[0]).Label; !containsFold(label, "cilk") {
		t.Errorf("BSP entry %q not bundled with Cilk", label)
	}

	// The Map-Reduce programming model is mostly missing: no entry should
	// mention MapReduce except the reduction *pattern* note in Algorithms.
	for _, id := range p.FindAll("map-reduce") {
		if a := p.Code(p.Area(id)); a == "PR" {
			t.Errorf("PDC12 Programming should not have a MapReduce model entry, found %q", id)
		}
	}

	// Middleware is absent from both classifications.
	if hits := p.FindAll("middleware"); len(hits) != 0 {
		t.Errorf("PDC12 middleware entries = %v, want none", hits)
	}
	if hits := CS13().Search(CS13().RootID(), "middleware design"); len(hits) != 0 {
		t.Errorf("CS13 middleware-design entries = %d, want none", len(hits))
	}
}

func TestPDC12Structure(t *testing.T) {
	p := PDC12()
	areas := p.Areas()
	if len(areas) != 4 {
		t.Fatalf("PDC12 areas = %d, want 4", len(areas))
	}
	wantCodes := []string{"AR", "PR", "AL", "CC"}
	for i, id := range areas {
		if p.Code(id) != wantCodes[i] {
			t.Errorf("area %d code = %q, want %q", i, p.Code(id), wantCodes[i])
		}
	}
	s := p.ComputeStats()
	if s.ByKind[KindTopic] < 80 {
		t.Errorf("PDC12 topics = %d, want a realistic curriculum size", s.ByKind[KindTopic])
	}
	// Every PDC12 topic carries a Bloom level, as published.
	p.Walk(p.RootID(), func(n *Node, _ int) bool {
		if n.Kind == KindTopic && n.Bloom == BloomUnspecified {
			t.Errorf("PDC12 topic %q lacks a Bloom level", n.ID)
		}
		return true
	})
}

func TestSearchHighlight(t *testing.T) {
	o := CS13()
	ms := o.Search(o.RootID(), "iterative control")
	if len(ms) == 0 {
		t.Fatal("no matches for 'iterative control'")
	}
	top := ms[0]
	if top.Node.Label != "Conditional and iterative control structures" {
		t.Errorf("top match = %q", top.Node.Label)
	}
	h := Highlight(top.Node.Label, top.Spans, "[", "]")
	if h != "Conditional and [iterative] [control] structures" {
		t.Errorf("Highlight = %q", h)
	}
}

func TestSearchMultiTermAndMiss(t *testing.T) {
	o := PDC12()
	if ms := o.Search(o.RootID(), "zebra unicorn"); len(ms) != 0 {
		t.Errorf("nonsense query matched %d entries", len(ms))
	}
	if ms := o.Search(o.RootID(), ""); ms != nil {
		t.Errorf("empty query should return nil")
	}
	ms := o.Search(o.RootID(), "memory")
	if len(ms) < 3 {
		t.Errorf("'memory' matches = %d, want several", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Score < ms[i].Score {
			t.Errorf("matches not sorted by score at %d", i)
		}
	}
}

func TestSearchPathsLimit(t *testing.T) {
	o := CS13()
	got := o.SearchPaths("parallel", 5)
	if len(got) != 5 {
		t.Errorf("SearchPaths limit: got %d", len(got))
	}
	all := o.SearchPaths("parallel", 0)
	if len(all) <= 5 {
		t.Errorf("unlimited SearchPaths = %d", len(all))
	}
}

func TestHighlightEdgeCases(t *testing.T) {
	if got := Highlight("abc", nil, "[", "]"); got != "abc" {
		t.Errorf("no spans: %q", got)
	}
	// Out-of-range spans are skipped rather than panicking.
	got := Highlight("abc", []Span{{Start: 1, End: 9}}, "[", "]")
	if got != "abc" {
		t.Errorf("bad span: %q", got)
	}
	got = Highlight("hello world", []Span{{0, 5}, {6, 11}}, "<", ">")
	if got != "<hello> <world>" {
		t.Errorf("two spans: %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, o := range []*Ontology{PDC12(), CS13()} {
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("%s marshal: %v", o.Name(), err)
		}
		var back Ontology
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s unmarshal: %v", o.Name(), err)
		}
		if back.Len() != o.Len() || back.Name() != o.Name() {
			t.Fatalf("%s round trip size %d->%d", o.Name(), o.Len(), back.Len())
		}
		for _, id := range o.IDs() {
			a, b := o.Node(id), back.Node(id)
			if b == nil {
				t.Fatalf("%s lost node %q", o.Name(), id)
			}
			if a.Label != b.Label || a.Kind != b.Kind || a.Tier != b.Tier || a.Bloom != b.Bloom || a.Parent != b.Parent {
				t.Fatalf("%s node %q changed: %+v vs %+v", o.Name(), id, a, b)
			}
		}
		if back.Code(back.AreaByCode("PD")) == "" && o.AreaByCode("PD") != "" {
			t.Errorf("%s lost area codes", o.Name())
		}
	}
}

func TestJSONRejectsCorruptDocuments(t *testing.T) {
	var o Ontology
	if err := json.Unmarshal([]byte(`{"name":"x","root":"x","nodes":[]}`), &o); err == nil {
		t.Error("empty node table accepted")
	}
	bad := `{"name":"x","root":"x","nodes":[
	  {"id":"x","label":"x","kind":"root"},
	  {"id":"x/a","parent":"x","label":"A","kind":"mystery"}]}`
	if err := json.Unmarshal([]byte(bad), &o); err == nil {
		t.Error("unknown kind accepted")
	}
	dup := `{"name":"x","root":"x","nodes":[
	  {"id":"x","label":"x","kind":"root"},
	  {"id":"x/a","parent":"x","label":"A","kind":"topic"},
	  {"id":"x/a","parent":"x","label":"A","kind":"topic"}]}`
	if err := json.Unmarshal([]byte(dup), &o); err == nil {
		t.Error("duplicate node accepted")
	}
	orphan := `{"name":"x","root":"x","nodes":[
	  {"id":"x","label":"x","kind":"root"},
	  {"id":"x/a","parent":"ghost","label":"A","kind":"topic"}]}`
	if err := json.Unmarshal([]byte(orphan), &o); err == nil {
		t.Error("orphan node accepted")
	}
}

func TestDiff(t *testing.T) {
	build := func(extra bool) *Ontology {
		b := NewBuilder("PDC")
		a := b.Area("AL", "Algorithms")
		u := a.Unit("Scheduling", 0)
		u.BloomTopic("Dependencies", TierCore1, BloomComprehend)
		if extra {
			u.BloomTopic("Critical path", TierCore1, BloomComprehend)
		} else {
			u.BloomTopic("Makespan", TierElective, BloomKnow)
		}
		return b.MustBuild()
	}
	old, next := build(false), build(true)
	diff := old.Diff(next)
	var added, removed int
	for _, d := range diff {
		switch d.Change {
		case "added":
			added++
			if d.After != "Critical path" {
				t.Errorf("unexpected addition %+v", d)
			}
		case "removed":
			removed++
		}
	}
	if added != 1 || removed != 1 {
		t.Errorf("diff added=%d removed=%d: %v", added, removed, diff)
	}
	if d := old.Diff(old); len(d) != 0 {
		t.Errorf("self diff = %v", d)
	}
}

func TestSharedInstancesAreSame(t *testing.T) {
	if CS13() != CS13() || PDC12() != PDC12() {
		t.Error("shared curriculum instances should be cached")
	}
}

func containsFold(s, sub string) bool {
	return len(s) >= len(sub) && (stringContainsFold(s, sub))
}

func stringContainsFold(s, sub string) bool {
	S, T := []rune(s), []rune(sub)
	lower := func(r rune) rune {
		if r >= 'A' && r <= 'Z' {
			return r + 32
		}
		return r
	}
outer:
	for i := 0; i+len(T) <= len(S); i++ {
		for j := range T {
			if lower(S[i+j]) != lower(T[j]) {
				continue outer
			}
		}
		return true
	}
	return false
}
