// Package cache implements the generation-keyed result cache behind the
// CAR-CS read path. Every analysis the service exposes (coverage reports,
// gap analyses, similarity graphs, suggestion lists, rendered SVGs) is a
// pure function of the material corpus plus its request parameters, and the
// corpus changes rarely compared to how often it is read. The cache
// exploits that: results are memoized under (request key, generation),
// where the generation is a monotonic counter the owning system bumps on
// every mutation. A reader pinned at generation g only ever gets a result
// computed at exactly g — never older (stale) and never newer (the read
// path pins immutable views, and a view at generation g must not observe
// analysis of a later commit). Entries from older generations are evicted
// on first post-mutation access.
//
// Concurrent readers asking for the same (key, generation) are collapsed
// into a single computation (singleflight), so a thundering herd on a cold
// entry costs one recompute, not N.
package cache

import (
	"strings"
	"sync"
)

// DefaultMaxEntries bounds the cache when no explicit capacity is given.
// Suggestion queries carry free text, so the key space is unbounded; the
// cap keeps a hostile or merely diverse query stream from growing memory
// without limit.
const DefaultMaxEntries = 4096

// Cache is a generation-keyed memoization table. The zero value is not
// usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]entry
	inflight map[flightKey]*call

	hits      uint64
	misses    uint64
	staleHits uint64
	evictions uint64
	lastInval uint64 // generation that most recently evicted a stale entry
}

type entry struct {
	gen uint64
	val any
}

type flightKey struct {
	key string
	gen uint64
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns an empty cache holding at most maxEntries results
// (DefaultMaxEntries when maxEntries <= 0).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:      maxEntries,
		entries:  make(map[string]entry),
		inflight: make(map[flightKey]*call),
	}
}

// Key joins request parameters into a cache key. The unit separator keeps
// adjacent fields from aliasing ("a","bc" vs "ab","c").
func Key(parts ...string) string {
	return strings.Join(parts, "\x1f")
}

// Do returns the cached value for key at generation gen, computing it with
// compute on a miss. Only a cached value computed at exactly gen is a hit:
// callers pin immutable views, so a request at generation g must not be
// served analysis of an earlier or later corpus. A cached value from an
// older generation is evicted and recomputed; one from a newer generation
// is kept (current readers still need it) and the older request recomputes
// without storing over it. Errors are not cached.
//
// compute runs without the cache lock held, so it may take its own locks.
// Concurrent Do calls with the same key and generation share one compute
// invocation.
func (c *Cache) Do(key string, gen uint64, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.gen == gen {
			c.hits++
			c.mu.Unlock()
			return e.val, nil
		}
		if e.gen < gen {
			delete(c.entries, key)
			c.evictions++
			if gen > c.lastInval {
				c.lastInval = gen
			}
		}
	}
	c.misses++
	fk := flightKey{key: key, gen: gen}
	if cl, ok := c.inflight[fk]; ok {
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[fk] = cl
	c.mu.Unlock()

	cl.val, cl.err = compute()
	close(cl.done)

	c.mu.Lock()
	delete(c.inflight, fk)
	if cl.err == nil {
		c.storeLocked(key, gen, cl.val)
	}
	c.mu.Unlock()
	return cl.val, cl.err
}

// Put stores a value computed outside the cache's own compute path — the
// HTTP layer uses it to memoize whole rendered responses for stale serving.
// The usual generation rules apply: an existing entry under a newer
// generation is kept, and capacity eviction may drop other entries.
func (c *Cache) Put(key string, gen uint64, val any) {
	c.mu.Lock()
	c.storeLocked(key, gen, val)
	c.mu.Unlock()
}

// Stale returns the cached value for key if its generation is no more than
// maxBehind generations older than gen (an exact-generation entry also
// qualifies — "at most this stale" includes fresh). This is the degraded
// read path: when the service is shedding load, a slightly-stale answer
// beats a 503 for the browse/compare queries the paper's use cases are
// built on. The entry's generation is returned so the caller can label the
// response (ETag, staleness header).
func (c *Cache) Stale(key string, gen uint64, maxBehind uint64) (val any, entryGen uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[key]
	if !found || e.gen > gen || gen-e.gen > maxBehind {
		return nil, 0, false
	}
	c.staleHits++
	return e.val, e.gen, true
}

// storeLocked inserts a value, evicting to stay under capacity: entries
// from older generations go first (they can never be served again), then
// arbitrary ones. An existing entry under a newer generation is kept.
func (c *Cache) storeLocked(key string, gen uint64, val any) {
	if e, ok := c.entries[key]; ok && e.gen > gen {
		return
	}
	if _, ok := c.entries[key]; !ok && len(c.entries) >= c.max {
		for k, e := range c.entries {
			if e.gen < gen {
				delete(c.entries, k)
				c.evictions++
				if len(c.entries) < c.max {
					break
				}
			}
		}
		for k := range c.entries {
			if len(c.entries) < c.max {
				break
			}
			delete(c.entries, k)
			c.evictions++
		}
	}
	c.entries[key] = entry{gen: gen, val: val}
}

// Invalidate drops every entry older than gen. Lookups already evict
// lazily; Invalidate exists for callers that want memory back eagerly
// (e.g. after a bulk import).
func (c *Cache) Invalidate(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.gen < gen {
			delete(c.entries, k)
			c.evictions++
		}
	}
	if gen > c.lastInval {
		c.lastInval = gen
	}
}

// Stats is a point-in-time snapshot of cache effectiveness, surfaced by
// GET /api/health.
type Stats struct {
	// Entries is the number of cached results currently held.
	Entries int `json:"entries"`
	// Hits and Misses count Do calls served from / past the cache.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// StaleHits counts Stale lookups that served an older-generation
	// entry while the service degraded under load.
	StaleHits uint64 `json:"stale_hits"`
	// Evictions counts entries dropped, whether by generation change or
	// capacity pressure.
	Evictions uint64 `json:"evictions"`
	// HitRatio is Hits / (Hits + Misses), 0 before any lookup.
	HitRatio float64 `json:"hit_ratio"`
	// LastInvalidationGen is the newest generation that evicted a stale
	// entry; 0 if no generation change has been observed yet.
	LastInvalidationGen uint64 `json:"last_invalidation_generation"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Entries:             len(c.entries),
		Hits:                c.hits,
		Misses:              c.misses,
		StaleHits:           c.staleHits,
		Evictions:           c.evictions,
		LastInvalidationGen: c.lastInval,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
