package cache

import "testing"

func TestPutAndStale(t *testing.T) {
	c := New(0)
	c.Put("k", 5, "v5")

	// Fresh lookups count as (maximally un-)stale hits too.
	if v, g, ok := c.Stale("k", 5, 0); !ok || v != "v5" || g != 5 {
		t.Fatalf("Stale exact = (%v, %d, %v)", v, g, ok)
	}
	// One generation behind, allowed.
	if v, g, ok := c.Stale("k", 6, 1); !ok || v != "v5" || g != 5 {
		t.Fatalf("Stale one-behind = (%v, %d, %v)", v, g, ok)
	}
	// Too far behind.
	if _, _, ok := c.Stale("k", 7, 1); ok {
		t.Fatal("Stale served an entry 2 generations behind maxBehind 1")
	}
	// An entry from the FUTURE of the requested generation must never
	// serve: the reader's pinned view predates it.
	if _, _, ok := c.Stale("k", 4, 10); ok {
		t.Fatal("Stale served a newer-generation entry")
	}
	// Unknown key.
	if _, _, ok := c.Stale("missing", 5, 10); ok {
		t.Fatal("Stale served a missing key")
	}

	st := c.Stats()
	if st.StaleHits != 2 {
		t.Fatalf("StaleHits = %d, want 2", st.StaleHits)
	}
}

func TestPutRespectsNewerGeneration(t *testing.T) {
	c := New(0)
	c.Put("k", 10, "new")
	c.Put("k", 9, "old") // must not clobber the newer entry
	if v, g, ok := c.Stale("k", 10, 0); !ok || v != "new" || g != 10 {
		t.Fatalf("entry = (%v, %d, %v), want new@10", v, g, ok)
	}
}
