package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMissEvict(t *testing.T) {
	c := New(0)
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }

	v, err := c.Do("k", 1, compute)
	if err != nil || v.(int) != 1 {
		t.Fatalf("first Do = %v, %v", v, err)
	}
	v, _ = c.Do("k", 1, compute)
	if v.(int) != 1 {
		t.Fatalf("same-generation Do recomputed: %v", v)
	}
	// Generation moved: the stale entry must be evicted and recomputed.
	v, _ = c.Do("k", 2, compute)
	if v.(int) != 2 {
		t.Fatalf("post-mutation Do served stale value %v", v)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastInvalidationGen != 2 {
		t.Fatalf("last invalidation generation = %d", st.LastInvalidationGen)
	}
	if st.HitRatio <= 0.33 || st.HitRatio >= 0.34 {
		t.Fatalf("hit ratio = %v", st.HitRatio)
	}
}

func TestPinnedGenerationIsExact(t *testing.T) {
	c := New(0)
	if _, err := c.Do("k", 5, func() (any, error) { return "new", nil }); err != nil {
		t.Fatal(err)
	}
	// A reader pinned at an older view must get a result for its own
	// generation, never the newer entry (its view predates that commit)...
	v, _ := c.Do("k", 3, func() (any, error) { return "old", nil })
	if v != "old" {
		t.Fatalf("generation-3 reader got %v", v)
	}
	// ...and the recompute must not displace the newer entry current
	// readers still need.
	v, _ = c.Do("k", 5, func() (any, error) { return "recomputed", nil })
	if v != "new" {
		t.Fatalf("generation-5 reader got %v", v)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.Do("k", 1, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.Do("k", 1, func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("after error Do = %v, %v", v, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(4)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := c.Do(k, 1, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries > 4 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(0)
	c.Do("a", 1, func() (any, error) { return 1, nil })
	c.Do("b", 2, func() (any, error) { return 2, nil })
	c.Invalidate(2)
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 1 || st.LastInvalidationGen != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightCollapses(t *testing.T) {
	c := New(0)
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", 7, func() (any, error) {
				computes.Add(1)
				<-release
				return "v", nil
			})
			if err != nil || v != "v" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	// Let the goroutines pile up on the in-flight call, then release.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times", n)
	}
}

func TestConcurrentGenerations(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	for g := uint64(1); g <= 8; g++ {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(g uint64) {
				defer wg.Done()
				v, err := c.Do("k", g, func() (any, error) { return g, nil })
				if err != nil {
					t.Error(err)
					return
				}
				// The served value must come from exactly generation g:
				// each generation is a distinct pinned view.
				if got := v.(uint64); got != g {
					t.Errorf("generation %d served value from %d", g, got)
				}
			}(g)
		}
	}
	wg.Wait()
}
