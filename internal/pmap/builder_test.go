package pmap

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestBuilderModel drives a Builder and a builtin map through the same
// random operation sequence, sealing into an immutable Map at random points
// and checking the seals stay frozen while editing continues.
func TestBuilderModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewStrings[int]().Builder()
	model := map[string]int{}
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	type seal struct {
		m    *Map[string, int]
		want map[string]int
	}
	var seals []seal
	for step := 0; step < 8000; step++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(3) == 0 {
			b.Delete(k)
			delete(model, k)
		} else {
			v := rng.Intn(1000)
			b.Set(k, v)
			model[k] = v
		}
		if b.Len() != len(model) {
			t.Fatalf("step %d: len = %d, model = %d", step, b.Len(), len(model))
		}
		if rng.Intn(500) == 0 {
			frozen := map[string]int{}
			for k, v := range model {
				frozen[k] = v
			}
			seals = append(seals, seal{m: b.Map(), want: frozen})
		}
	}
	for k, want := range model {
		if got, ok := b.Get(k); !ok || got != want {
			t.Fatalf("%s = %d,%v want %d", k, got, ok, want)
		}
	}
	// Every seal must still hold exactly what the model held at seal time.
	for i, s := range seals {
		if s.m.Len() != len(s.want) {
			t.Fatalf("seal %d: len = %d, want %d", i, s.m.Len(), len(s.want))
		}
		got := map[string]int{}
		s.m.Range(func(k string, v int) bool {
			got[k] = v
			return true
		})
		for k, v := range s.want {
			if got[k] != v {
				t.Fatalf("seal %d drifted: %s = %d, want %d", i, k, got[k], v)
			}
		}
	}
}

// TestBuilderDoesNotMutateSource pins the transient contract: the Map a
// Builder was created from never changes, no matter what the builder does.
func TestBuilderDoesNotMutateSource(t *testing.T) {
	m := NewStrings[int]()
	for i := 0; i < 500; i++ {
		m = m.Set(fmt.Sprintf("k%d", i), i)
	}
	b := m.Builder()
	for i := 0; i < 500; i++ {
		b.Set(fmt.Sprintf("k%d", i), -1)
		b.Delete(fmt.Sprintf("k%d", i+250))
		b.Set(fmt.Sprintf("new%d", i), i)
	}
	if m.Len() != 500 {
		t.Fatalf("source len = %d", m.Len())
	}
	for i := 0; i < 500; i++ {
		if v, ok := m.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("source k%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := m.Get("new0"); ok {
		t.Fatal("builder insert leaked into source")
	}
}

// TestBuilderSealRearms checks that edits after Map() cannot disturb the
// sealed result.
func TestBuilderSealRearms(t *testing.T) {
	b := NewStrings[int]().Builder()
	for i := 0; i < 200; i++ {
		b.Set(fmt.Sprintf("k%d", i), i)
	}
	sealed := b.Map()
	for i := 0; i < 200; i++ {
		b.Set(fmt.Sprintf("k%d", i), -1)
	}
	b.Delete("k0")
	for i := 0; i < 200; i++ {
		if v, ok := sealed.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("sealed k%d = %d,%v", i, v, ok)
		}
	}
}

// TestBuilderCollisions exercises the bucket paths under a degenerate hash.
func TestBuilderCollisions(t *testing.T) {
	b := New[string, int](func(string) uint64 { return 0x42 }).Builder()
	model := map[string]int{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("c%d", i)
		b.Set(k, i)
		model[k] = i
	}
	b.Set("c7", 700)
	model["c7"] = 700
	for i := 0; i < 40; i += 2 {
		k := fmt.Sprintf("c%d", i)
		b.Delete(k)
		delete(model, k)
	}
	m := b.Map()
	if m.Len() != len(model) {
		t.Fatalf("len = %d, want %d", m.Len(), len(model))
	}
	for k, want := range model {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("%s = %d,%v want %d", k, got, ok, want)
		}
	}
	for k := range model {
		b.Delete(k)
	}
	if b.Len() != 0 {
		t.Fatalf("drained len = %d", b.Len())
	}
}

// BenchmarkBulkSet compares per-Set path copying against a transient
// builder for a bulk insert, the shape of one commit's index update.
func BenchmarkBulkSetImmutable(b *testing.B) {
	base := NewStrings[int]()
	for i := 0; i < 50_000; i++ {
		base = base.Set(fmt.Sprintf("base-%d", i), i)
	}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("bulk-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := base
		for j, k := range keys {
			m = m.Set(k, j)
		}
	}
}

func BenchmarkBulkSetBuilder(b *testing.B) {
	base := NewStrings[int]()
	for i := 0; i < 50_000; i++ {
		base = base.Set(fmt.Sprintf("base-%d", i), i)
	}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("bulk-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := base.Builder()
		for j, k := range keys {
			bu.Set(k, j)
		}
		_ = bu.Map()
	}
}
