package pmap

import "math/bits"

// Builder is a transient, single-owner editor over a Map. It exists because
// path-copying is priced per Set: one Set on a large map copies every node
// on the branch it touches (a few KB near the root), so a bulk operation
// doing hundreds of Sets — indexing one document's terms, training a
// classifier on a description — re-copies the same near-root nodes over and
// over. A Builder copies each node at most once: the first edit under this
// builder copies the node and tags it as owned, and every later edit through
// the same builder mutates that copy in place. Map() seals the result back
// into an immutable Map.
//
// The contract mirrors Clojure's transients:
//
//   - A Builder is not safe for concurrent use; it belongs to one goroutine
//     (in CAR-CS, the single writer holding the container's mutex).
//   - The source Map is never modified; other readers may keep using it.
//   - After Map() is called the builder re-arms with a fresh ownership tag,
//     so continuing to edit it is safe (the sealed map is not disturbed) —
//     but the idiomatic use is build, seal, discard.
type Builder[K comparable, V any] struct {
	hash func(K) uint64
	root *node[K, V]
	size int
	// edit is this builder's ownership tag. Nodes whose edit field points
	// here were allocated by this builder since the last seal and may be
	// mutated in place; all other nodes are shared and must be copied first.
	// The tag must be a pointer to a non-zero-size type: all allocations of
	// an empty struct share one address, which would alias every builder.
	edit *byte
}

// Builder returns a transient editor seeded with the receiver's contents.
func (m *Map[K, V]) Builder() *Builder[K, V] {
	return &Builder[K, V]{hash: m.hash, root: m.root, size: m.size, edit: new(byte)}
}

// Len returns the number of entries currently in the builder.
func (b *Builder[K, V]) Len() int { return b.size }

// Get returns the value stored under k, observing pending edits.
func (b *Builder[K, V]) Get(k K) (V, bool) {
	m := Map[K, V]{hash: b.hash, root: b.root, size: b.size}
	return m.Get(k)
}

// GetOr returns the value stored under k, or def if absent.
func (b *Builder[K, V]) GetOr(k K, def V) V {
	if v, ok := b.Get(k); ok {
		return v
	}
	return def
}

// Map seals the builder into an immutable Map. The builder re-arms with a
// fresh ownership tag, so later edits copy again and cannot disturb the
// returned map.
func (b *Builder[K, V]) Map() *Map[K, V] {
	b.edit = new(byte)
	return &Map[K, V]{hash: b.hash, root: b.root, size: b.size}
}

// Set binds k to v.
func (b *Builder[K, V]) Set(k K, v V) {
	h := b.hash(k)
	if b.root == nil {
		b.root = &node[K, V]{
			bitmap: uint64(1) << (h & branchMask),
			items:  []item[K, V]{{leaf: entry[K, V]{k, v}}},
			edit:   b.edit,
		}
		b.size = 1
		return
	}
	root, added := b.set(b.root, h, 0, k, v)
	b.root = root
	if added {
		b.size++
	}
}

// editable returns n if this builder already owns it, otherwise an owned
// copy. The copy reserves one slot of growth so a following insert can
// append without reallocating.
func (b *Builder[K, V]) editable(n *node[K, V]) *node[K, V] {
	if n.edit == b.edit {
		return n
	}
	items := make([]item[K, V], len(n.items), len(n.items)+1)
	copy(items, n.items)
	return &node[K, V]{bitmap: n.bitmap, items: items, edit: b.edit}
}

func (b *Builder[K, V]) set(n *node[K, V], h uint64, shift uint, k K, v V) (*node[K, V], bool) {
	n = b.editable(n)
	bit := uint64(1) << ((h >> shift) & branchMask)
	pos := bits.OnesCount64(n.bitmap & (bit - 1))
	if n.bitmap&bit == 0 {
		n.items = append(n.items, item[K, V]{})
		copy(n.items[pos+1:], n.items[pos:])
		n.items[pos] = item[K, V]{leaf: entry[K, V]{k, v}}
		n.bitmap |= bit
		return n, true
	}
	it := &n.items[pos]
	switch {
	case it.child != nil:
		child, added := b.set(it.child, h, shift+branchBits, k, v)
		it.child = child
		return n, added
	case it.bucket != nil:
		// Collision buckets are rare and small; share the immutable
		// copy-on-write path rather than tracking their ownership.
		bucket := make([]entry[K, V], len(it.bucket), len(it.bucket)+1)
		copy(bucket, it.bucket)
		added := true
		for i := range bucket {
			if bucket[i].key == k {
				bucket[i].val, added = v, false
				break
			}
		}
		if added {
			bucket = append(bucket, entry[K, V]{k, v})
		}
		*it = item[K, V]{bucket: bucket}
		return n, added
	case it.leaf.key == k:
		it.leaf.val = v
		return n, false
	default:
		*it = split(b.hash, it.leaf, entry[K, V]{k, v}, h, shift+branchBits)
		return n, true
	}
}

// Delete removes k if present.
func (b *Builder[K, V]) Delete(k K) {
	if b.root == nil {
		return
	}
	root, removed := b.delete(b.root, b.hash(k), 0, k)
	if removed {
		b.root = root
		b.size--
	}
}

func (b *Builder[K, V]) delete(n *node[K, V], h uint64, shift uint, k K) (*node[K, V], bool) {
	bit := uint64(1) << ((h >> shift) & branchMask)
	if n.bitmap&bit == 0 {
		return n, false
	}
	pos := bits.OnesCount64(n.bitmap & (bit - 1))
	it := n.items[pos]
	switch {
	case it.child != nil:
		child, removed := b.delete(it.child, h, shift+branchBits, k)
		if !removed {
			return n, false
		}
		n = b.editable(n)
		if child == nil {
			return b.without(n, bit, pos), true
		}
		n.items[pos] = item[K, V]{child: child}
		return n, true
	case it.bucket != nil:
		for i := range it.bucket {
			if it.bucket[i].key != k {
				continue
			}
			n = b.editable(n)
			if len(it.bucket) == 2 {
				n.items[pos] = item[K, V]{leaf: it.bucket[1-i]}
			} else {
				bucket := make([]entry[K, V], 0, len(it.bucket)-1)
				bucket = append(bucket, it.bucket[:i]...)
				bucket = append(bucket, it.bucket[i+1:]...)
				n.items[pos] = item[K, V]{bucket: bucket}
			}
			return n, true
		}
		return n, false
	case it.leaf.key == k:
		return b.without(b.editable(n), bit, pos), true
	default:
		return n, false
	}
}

// without removes the slot at pos from an owned node, or returns nil if it
// was the last slot.
func (b *Builder[K, V]) without(n *node[K, V], bit uint64, pos int) *node[K, V] {
	if len(n.items) == 1 {
		return nil
	}
	copy(n.items[pos:], n.items[pos+1:])
	n.items = n.items[:len(n.items)-1]
	n.bitmap &^= bit
	return n
}
