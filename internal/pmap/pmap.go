// Package pmap implements an immutable persistent hash map (a hash
// array-mapped trie). Updates return a new map sharing all unchanged
// structure with the original, so a point update on an n-entry map copies
// O(log n) trie nodes instead of the whole table. That property is what
// makes publishing a snapshot of the CAR-CS relational store and search
// index O(changed rows): a snapshot is a pointer copy, and the writer's
// next mutation path-copies only the branch it touches.
//
// A *Map is safe for concurrent readers without synchronization precisely
// because it never changes; the single writer produces successor maps.
package pmap

import "math/bits"

const (
	branchBits = 6
	branchMask = (1 << branchBits) - 1
	// maxShift is the deepest shift at which hash bits still discriminate;
	// below it, equal-hash keys live in a collision bucket.
	maxShift = 60
)

// Map is an immutable hash map from K to V. The empty map is created by
// New (or the NewStrings / NewInts convenience constructors, which supply
// the hash function); Set and Delete return new maps and never modify the
// receiver.
type Map[K comparable, V any] struct {
	hash func(K) uint64
	root *node[K, V]
	size int
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// item is one slot of a trie node: an interior branch (child != nil), a
// collision bucket (bucket != nil, only below maxShift), or a leaf entry.
type item[K comparable, V any] struct {
	child  *node[K, V]
	bucket []entry[K, V]
	leaf   entry[K, V]
}

// node is an interior trie node: bitmap marks which of the 64 slots are
// occupied, items holds the occupied slots in slot order. edit is nil for
// nodes reachable from an immutable Map; a Builder tags nodes it allocated
// with its ownership token so it can mutate them in place (see builder.go).
type node[K comparable, V any] struct {
	bitmap uint64
	items  []item[K, V]
	edit   *byte
}

// New creates an empty map using the given hash function.
func New[K comparable, V any](hash func(K) uint64) *Map[K, V] {
	return &Map[K, V]{hash: hash}
}

// NewStrings creates an empty map with string keys.
func NewStrings[V any]() *Map[string, V] { return New[string, V](HashString) }

// NewInts creates an empty map with int64 keys.
func NewInts[V any]() *Map[int64, V] { return New[int64, V](HashInt64) }

// HashString is the default string hash: FNV-1a with a final avalanche mix
// so the low bits (consumed first by the trie) are well distributed.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashInt64 is the default int64 hash (the splitmix64 finalizer).
func HashInt64(v int64) uint64 { return mix64(uint64(v)) }

func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int {
	if m == nil {
		return 0
	}
	return m.size
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	var zero V
	if m == nil || m.root == nil {
		return zero, false
	}
	h := m.hash(k)
	n := m.root
	for shift := uint(0); ; shift += branchBits {
		bit := uint64(1) << ((h >> shift) & branchMask)
		if n.bitmap&bit == 0 {
			return zero, false
		}
		it := &n.items[bits.OnesCount64(n.bitmap&(bit-1))]
		switch {
		case it.child != nil:
			n = it.child
		case it.bucket != nil:
			for i := range it.bucket {
				if it.bucket[i].key == k {
					return it.bucket[i].val, true
				}
			}
			return zero, false
		default:
			if it.leaf.key == k {
				return it.leaf.val, true
			}
			return zero, false
		}
	}
}

// GetOr returns the value stored under k, or def if absent.
func (m *Map[K, V]) GetOr(k K, def V) V {
	if v, ok := m.Get(k); ok {
		return v
	}
	return def
}

// Set returns a map with k bound to v.
func (m *Map[K, V]) Set(k K, v V) *Map[K, V] {
	h := m.hash(k)
	if m.root == nil {
		return &Map[K, V]{hash: m.hash, root: &node[K, V]{
			bitmap: uint64(1) << (h & branchMask),
			items:  []item[K, V]{{leaf: entry[K, V]{k, v}}},
		}, size: 1}
	}
	root, added := m.root.set(m.hash, h, 0, k, v)
	size := m.size
	if added {
		size++
	}
	return &Map[K, V]{hash: m.hash, root: root, size: size}
}

func (n *node[K, V]) set(hash func(K) uint64, h uint64, shift uint, k K, v V) (*node[K, V], bool) {
	bit := uint64(1) << ((h >> shift) & branchMask)
	pos := bits.OnesCount64(n.bitmap & (bit - 1))
	if n.bitmap&bit == 0 {
		// Empty slot: insert a new leaf.
		items := make([]item[K, V], len(n.items)+1)
		copy(items, n.items[:pos])
		items[pos] = item[K, V]{leaf: entry[K, V]{k, v}}
		copy(items[pos+1:], n.items[pos:])
		return &node[K, V]{bitmap: n.bitmap | bit, items: items}, true
	}
	it := n.items[pos]
	var repl item[K, V]
	var added bool
	switch {
	case it.child != nil:
		child, a := it.child.set(hash, h, shift+branchBits, k, v)
		repl, added = item[K, V]{child: child}, a
	case it.bucket != nil:
		bucket := make([]entry[K, V], len(it.bucket), len(it.bucket)+1)
		copy(bucket, it.bucket)
		added = true
		for i := range bucket {
			if bucket[i].key == k {
				bucket[i].val, added = v, false
				break
			}
		}
		if added {
			bucket = append(bucket, entry[K, V]{k, v})
		}
		repl = item[K, V]{bucket: bucket}
	case it.leaf.key == k:
		repl = item[K, V]{leaf: entry[K, V]{k, v}}
	default:
		repl = split(hash, it.leaf, entry[K, V]{k, v}, h, shift+branchBits)
		added = true
	}
	items := make([]item[K, V], len(n.items))
	copy(items, n.items)
	items[pos] = repl
	return &node[K, V]{bitmap: n.bitmap, items: items}, added
}

// split pushes an existing leaf and a new entry one level down, branching
// where their hashes first differ (or into a collision bucket when the
// hash bits are exhausted).
func split[K comparable, V any](hash func(K) uint64, old, new entry[K, V], newHash uint64, shift uint) item[K, V] {
	if shift > maxShift {
		return item[K, V]{bucket: []entry[K, V]{old, new}}
	}
	oldHash := hash(old.key)
	oldIdx := (oldHash >> shift) & branchMask
	newIdx := (newHash >> shift) & branchMask
	if oldIdx == newIdx {
		inner := split(hash, old, new, newHash, shift+branchBits)
		return item[K, V]{child: &node[K, V]{bitmap: uint64(1) << oldIdx, items: []item[K, V]{inner}}}
	}
	n := &node[K, V]{bitmap: uint64(1)<<oldIdx | uint64(1)<<newIdx}
	if oldIdx < newIdx {
		n.items = []item[K, V]{{leaf: old}, {leaf: new}}
	} else {
		n.items = []item[K, V]{{leaf: new}, {leaf: old}}
	}
	return item[K, V]{child: n}
}

// Delete returns a map with k removed (the receiver if absent).
func (m *Map[K, V]) Delete(k K) *Map[K, V] {
	if m.root == nil {
		return m
	}
	root, removed := m.root.delete(m.hash(k), 0, k)
	if !removed {
		return m
	}
	return &Map[K, V]{hash: m.hash, root: root, size: m.size - 1}
}

func (n *node[K, V]) delete(h uint64, shift uint, k K) (*node[K, V], bool) {
	bit := uint64(1) << ((h >> shift) & branchMask)
	if n.bitmap&bit == 0 {
		return n, false
	}
	pos := bits.OnesCount64(n.bitmap & (bit - 1))
	it := n.items[pos]
	switch {
	case it.child != nil:
		child, removed := it.child.delete(h, shift+branchBits, k)
		if !removed {
			return n, false
		}
		items := make([]item[K, V], len(n.items))
		copy(items, n.items)
		if child == nil {
			return n.without(bit, pos), true
		}
		items[pos] = item[K, V]{child: child}
		return &node[K, V]{bitmap: n.bitmap, items: items}, true
	case it.bucket != nil:
		for i := range it.bucket {
			if it.bucket[i].key != k {
				continue
			}
			items := make([]item[K, V], len(n.items))
			copy(items, n.items)
			if len(it.bucket) == 2 {
				items[pos] = item[K, V]{leaf: it.bucket[1-i]}
			} else {
				bucket := make([]entry[K, V], 0, len(it.bucket)-1)
				bucket = append(bucket, it.bucket[:i]...)
				bucket = append(bucket, it.bucket[i+1:]...)
				items[pos] = item[K, V]{bucket: bucket}
			}
			return &node[K, V]{bitmap: n.bitmap, items: items}, true
		}
		return n, false
	case it.leaf.key == k:
		return n.without(bit, pos), true
	default:
		return n, false
	}
}

// without returns the node minus the slot at pos, or nil if it was the
// last slot.
func (n *node[K, V]) without(bit uint64, pos int) *node[K, V] {
	if len(n.items) == 1 {
		return nil
	}
	items := make([]item[K, V], 0, len(n.items)-1)
	items = append(items, n.items[:pos]...)
	items = append(items, n.items[pos+1:]...)
	return &node[K, V]{bitmap: n.bitmap &^ bit, items: items}
}

// Range calls f for every entry until f returns false. Iteration order is
// the trie's hash order: stable for a given map value, but arbitrary with
// respect to keys — callers needing determinism must sort.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	if m != nil && m.root != nil {
		m.root.visit(f)
	}
}

func (n *node[K, V]) visit(f func(K, V) bool) bool {
	for i := range n.items {
		it := &n.items[i]
		switch {
		case it.child != nil:
			if !it.child.visit(f) {
				return false
			}
		case it.bucket != nil:
			for j := range it.bucket {
				if !f(it.bucket[j].key, it.bucket[j].val) {
					return false
				}
			}
		default:
			if !f(it.leaf.key, it.leaf.val) {
				return false
			}
		}
	}
	return true
}
