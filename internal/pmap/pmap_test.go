package pmap

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := NewStrings[int]()
	if m.Len() != 0 {
		t.Fatalf("empty len = %d", m.Len())
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("get on empty map")
	}
	m2 := m.Set("a", 1).Set("b", 2).Set("a", 3)
	if m2.Len() != 2 {
		t.Fatalf("len = %d, want 2", m2.Len())
	}
	if v, _ := m2.Get("a"); v != 3 {
		t.Fatalf("a = %d, want 3", v)
	}
	if v := m2.GetOr("c", 42); v != 42 {
		t.Fatalf("GetOr default = %d", v)
	}
	if m.Len() != 0 {
		t.Fatal("original mutated")
	}
	m3 := m2.Delete("a")
	if _, ok := m3.Get("a"); ok || m3.Len() != 1 {
		t.Fatalf("delete failed: len=%d", m3.Len())
	}
	if v, _ := m2.Get("a"); v != 3 {
		t.Fatal("delete mutated predecessor")
	}
	if m3.Delete("zzz") != m3 {
		t.Fatal("deleting a missing key should return the receiver")
	}
}

// TestModel drives a pmap and a builtin map through the same random
// operation sequence and checks full agreement after every step batch.
func TestModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewStrings[int]()
	model := map[string]int{}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	for step := 0; step < 5000; step++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(3) == 0 {
			m = m.Delete(k)
			delete(model, k)
		} else {
			v := rng.Intn(1000)
			m = m.Set(k, v)
			model[k] = v
		}
		if m.Len() != len(model) {
			t.Fatalf("step %d: len = %d, model = %d", step, m.Len(), len(model))
		}
	}
	for k, want := range model {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("%s = %d,%v want %d", k, got, ok, want)
		}
	}
	got := map[string]int{}
	m.Range(func(k string, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("range visited %d, want %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("range %s = %d, want %d", k, got[k], v)
		}
	}
}

// TestCollisions forces every key onto the same 64-bit hash so the trie
// degenerates into a collision bucket, and checks the model still holds.
func TestCollisions(t *testing.T) {
	m := New[string, int](func(string) uint64 { return 0x1234 })
	model := map[string]int{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("c%d", i)
		m = m.Set(k, i)
		model[k] = i
	}
	m = m.Set("c7", 700)
	model["c7"] = 700
	for i := 0; i < 40; i += 2 {
		k := fmt.Sprintf("c%d", i)
		m = m.Delete(k)
		delete(model, k)
	}
	if m.Len() != len(model) {
		t.Fatalf("len = %d, want %d", m.Len(), len(model))
	}
	for k, want := range model {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("%s = %d,%v want %d", k, got, ok, want)
		}
	}
	if _, ok := m.Get("c0"); ok {
		t.Fatal("deleted collision key still present")
	}
	// Drain to empty through the bucket-collapse path.
	for k := range model {
		m = m.Delete(k)
	}
	if m.Len() != 0 {
		t.Fatalf("drained len = %d", m.Len())
	}
}

// TestSnapshotsShareStructure pins the persistence property the read views
// rely on: an old map value is bit-for-bit stable across any number of
// later updates.
func TestSnapshotsShareStructure(t *testing.T) {
	m := NewInts[string]()
	for i := int64(0); i < 1000; i++ {
		m = m.Set(i, fmt.Sprintf("v%d", i))
	}
	snap := m
	for i := int64(0); i < 1000; i++ {
		m = m.Set(i, "overwritten").Delete(i + 1000)
	}
	for i := int64(0); i < 1000; i++ {
		if v, ok := snap.Get(i); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("snapshot drifted at %d: %q %v", i, v, ok)
		}
	}
	var keys []int64
	snap.Range(func(k int64, _ string) bool {
		keys = append(keys, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) != 1000 || keys[0] != 0 || keys[999] != 999 {
		t.Fatalf("snapshot keys corrupted: n=%d", len(keys))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := NewStrings[int]()
	for i := 0; i < 100; i++ {
		m = m.Set(fmt.Sprintf("k%d", i), i)
	}
	seen := 0
	m.Range(func(string, int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early stop visited %d", seen)
	}
}
