package viz

import (
	"math"
	"strings"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/ontology"
	"carcs/internal/similarity"
)

func niftyReport() *coverage.Report {
	return coverage.Compute(ontology.CS13(), "Nifty", corpus.Nifty().All())
}

func fig3() *similarity.Graph {
	return similarity.BuildBipartite(corpus.Nifty().All(), corpus.Peachy().All(), similarity.SharedCount, 2)
}

func TestCoverageTreeASCII(t *testing.T) {
	out := CoverageTreeASCII(niftyReport(), 2)
	if !strings.Contains(out, "SDF — Software Development Fundamentals") {
		t.Errorf("missing area code line:\n%s", out)
	}
	// Uncovered areas are pruned (transparent in the figure).
	if strings.Contains(out, "Parallel and Distributed Computing") {
		t.Error("uncovered PD area rendered for Nifty")
	}
	if !strings.Contains(out, "[##########]") {
		t.Error("no full-intensity bar present")
	}
	// Depth cap respected: no unit-level node deeper than 2 means no
	// topic labels such as "Arrays" at depth 3.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, strings.Repeat("  ", 3)) && strings.TrimSpace(line) != "" {
			t.Errorf("line deeper than maxDepth: %q", line)
		}
	}
}

func TestIntensityBar(t *testing.T) {
	if got := intensityBar(0, 4); got != "[....]" {
		t.Errorf("zero bar = %q", got)
	}
	if got := intensityBar(1, 4); got != "[####]" {
		t.Errorf("full bar = %q", got)
	}
	if got := intensityBar(2.5, 4); got != "[####]" {
		t.Errorf("clamped bar = %q", got)
	}
	if got := intensityBar(-1, 4); got != "[....]" {
		t.Errorf("negative bar = %q", got)
	}
	if got := trim("abcdefgh", 6); got != "abc..." {
		t.Errorf("trim = %q", got)
	}
	if got := trim("ab", 6); got != "ab" {
		t.Errorf("trim short = %q", got)
	}
}

func TestCoverageTreeSVG(t *testing.T) {
	svg := CoverageTreeSVG(niftyReport(), 2)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an svg document")
	}
	for _, want := range []string{"<rect", "<text", "SDF", "fill-opacity"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Contains(svg, ">PD<") {
		t.Error("uncovered PD area rendered for Nifty")
	}
	// Palette differs by depth class.
	if !strings.Contains(svg, paletteColor(0)) || !strings.Contains(svg, paletteColor(1)) || !strings.Contains(svg, paletteColor(2)) {
		t.Error("depth palettes missing")
	}
	// Escaping of labels with special characters.
	if strings.Contains(svg, "R&D") && !strings.Contains(svg, "&amp;") {
		t.Error("unescaped ampersand")
	}
}

func TestSimilarityDOT(t *testing.T) {
	dot := SimilarityDOT(fig3(), "fig3")
	if !strings.HasPrefix(dot, `graph "fig3"`) {
		t.Fatalf("dot header: %q", dot[:30])
	}
	if !strings.Contains(dot, `"uno" [fillcolor="#9999ff"]`) {
		t.Error("nifty node not blue")
	}
	if !strings.Contains(dot, `"storm-of-high-energy-particles" [fillcolor="#ff6666"]`) {
		t.Error("peachy node not red")
	}
	if c := strings.Count(dot, " -- "); c != 24 {
		t.Errorf("dot edges = %d, want 24", c)
	}
	// Deterministic output.
	if dot != SimilarityDOT(fig3(), "fig3") {
		t.Error("dot not deterministic")
	}
}

func TestForceLayout(t *testing.T) {
	g := fig3()
	pos := ForceLayout(g, 800, 600, 100)
	if len(pos) != len(g.Nodes) {
		t.Fatalf("positions = %d, nodes = %d", len(pos), len(g.Nodes))
	}
	for id, p := range pos {
		if p.X < 0 || p.X > 800 || p.Y < 0 || p.Y > 600 || math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("node %s out of frame: %+v", id, p)
		}
	}
	// Deterministic.
	pos2 := ForceLayout(g, 800, 600, 100)
	for id := range pos {
		if pos[id] != pos2[id] {
			t.Fatal("layout not deterministic")
		}
	}
	// Connected nodes end closer together than the average unconnected
	// left-right pair.
	var edgeSum float64
	for _, e := range g.Edges {
		edgeSum += math.Hypot(pos[e.A].X-pos[e.B].X, pos[e.A].Y-pos[e.B].Y)
	}
	edgeAvg := edgeSum / float64(len(g.Edges))
	var otherSum float64
	var otherN int
	for a, sa := range g.Side {
		if sa != "left" {
			continue
		}
		for bID, sb := range g.Side {
			if sb != "right" || g.Degree(a) > 0 || g.Degree(bID) > 0 {
				continue
			}
			otherSum += math.Hypot(pos[a].X-pos[bID].X, pos[a].Y-pos[bID].Y)
			otherN++
		}
	}
	if otherN > 0 && edgeAvg >= otherSum/float64(otherN) {
		t.Errorf("edges (%.1f) not shorter than unconnected pairs (%.1f)", edgeAvg, otherSum/float64(otherN))
	}
	// Degenerate cases.
	empty := similarity.Build(nil, similarity.SharedCount, 1)
	if got := ForceLayout(empty, 100, 100, 10); len(got) != 0 {
		t.Error("empty layout should be empty")
	}
}

func TestSimilaritySVG(t *testing.T) {
	svg := SimilaritySVG(fig3(), 800, 600)
	if !strings.Contains(svg, "<circle") || !strings.Contains(svg, "<line") {
		t.Fatal("svg missing shapes")
	}
	if strings.Count(svg, "#dd4444") != 11 {
		t.Errorf("peachy circles = %d, want 11", strings.Count(svg, "#dd4444"))
	}
	if strings.Count(svg, "<line") != 24 {
		t.Errorf("svg edges = %d, want 24", strings.Count(svg, "<line"))
	}
}

func TestCoverageSunburstSVG(t *testing.T) {
	svg := CoverageSunburstSVG(niftyReport(), 3, 640)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "<path") {
		t.Fatal("sunburst missing arcs")
	}
	// Area codes label the wide first-ring arcs; SDF dominates Nifty.
	if !strings.Contains(svg, ">SDF<") {
		t.Error("SDF arc label missing")
	}
	// Uncovered PD never appears.
	if strings.Contains(svg, ">PD<") {
		t.Error("uncovered PD arc rendered")
	}
	// Deterministic.
	if svg != CoverageSunburstSVG(niftyReport(), 3, 640) {
		t.Error("sunburst not deterministic")
	}
	// Default size fallback.
	if got := CoverageSunburstSVG(niftyReport(), 2, 0); !strings.Contains(got, `width="640"`) {
		t.Error("default size not applied")
	}
	// A PDC12 report with zero coverage renders just the center.
	empty := coverage.Compute(ontology.PDC12(), "nifty", corpus.Nifty().All())
	svg = CoverageSunburstSVG(empty, 2, 300)
	if strings.Contains(svg, "<path") {
		t.Error("arcs rendered for empty coverage")
	}
}

func TestArcPathGeometry(t *testing.T) {
	p := arcPath(100, 100, 20, 40, 0, 1)
	if !strings.HasPrefix(p, "M ") || !strings.Contains(p, " Z") {
		t.Errorf("arc path = %q", p)
	}
	// Large-arc flag flips past pi.
	small := arcPath(0, 0, 1, 2, 0, 1)
	large := arcPath(0, 0, 1, 2, 0, 4)
	if strings.Contains(small, " 1 1 ") == strings.Contains(large, " 1 1 ") {
		t.Error("large-arc flag not set for wide sector")
	}
}
