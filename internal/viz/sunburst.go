package viz

import (
	"fmt"
	"math"
	"strings"

	"carcs/internal/coverage"
	"carcs/internal/ontology"
)

// CoverageSunburstSVG renders a coverage report as a radial (sunburst)
// tree, the layout closest to the D3 figures in the paper: the root at the
// center, one ring per depth, angular span proportional to the number of
// classifiable entries in each covered subtree, fill opacity proportional
// to intensity, and uncovered subtrees pruned. maxDepth limits the rings
// (0 for unlimited).
func CoverageSunburstSVG(r *coverage.Report, maxDepth int, size int) string {
	if size <= 0 {
		size = 640
	}
	o := r.Ontology
	cx, cy := float64(size)/2, float64(size)/2
	ringW := float64(size) / 2 / float64(sunburstDepth(r, maxDepth)+1)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`+"\n", size, size)
	fmt.Fprintf(&b, `<title>%s</title>`+"\n", escape(r.String()))
	// Center disc for the root.
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#555"><title>%s</title></circle>`+"\n",
		cx, cy, ringW*0.9, paletteColor(0), escape(o.Node(o.RootID()).Label))

	var emit func(id string, depth int, a0, a1 float64)
	emit = func(id string, depth int, a0, a1 float64) {
		kids := coveredChildren(r, id)
		if len(kids) == 0 || (maxDepth > 0 && depth >= maxDepth) {
			return
		}
		total := 0
		for _, kid := range kids {
			total += subtreeWeight(o, kid)
		}
		if total == 0 {
			return
		}
		cur := a0
		for _, kid := range kids {
			span := (a1 - a0) * float64(subtreeWeight(o, kid)) / float64(total)
			inner := ringW * float64(depth+1) * 0.9
			outer := inner + ringW*0.85
			op := 0.15 + 0.85*r.Intensity(kid)
			label := o.Node(kid).Label
			if code := o.Code(kid); code != "" {
				label = code
			}
			fmt.Fprintf(&b, `<path d="%s" fill="%s" fill-opacity="%.3f" stroke="#555" stroke-width="0.5"><title>%s (%d)</title></path>`+"\n",
				arcPath(cx, cy, inner, outer, cur, cur+span), paletteColor(depth+1), op,
				escape(label), r.Subtree[kid])
			// Label the wide first-ring arcs with their area codes.
			if depth == 0 && span > 0.15 {
				mid := cur + span/2
				lr := (inner + outer) / 2
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
					cx+lr*math.Cos(mid), cy+lr*math.Sin(mid)+3, escape(label))
			}
			emit(kid, depth+1, cur, cur+span)
			cur += span
		}
	}
	emit(o.RootID(), 0, -math.Pi/2, 3*math.Pi/2)
	b.WriteString("</svg>\n")
	return b.String()
}

func coveredChildren(r *coverage.Report, id string) []string {
	var out []string
	for _, kid := range r.Ontology.Children(id) {
		if r.Covered(kid) {
			out = append(out, kid)
		}
	}
	return out
}

// subtreeWeight sizes an arc by the classifiable entries below it (plus one
// so empty-but-covered groups stay visible).
func subtreeWeight(o *ontology.Ontology, id string) int {
	n := 1
	o.Walk(id, func(node *ontology.Node, _ int) bool {
		if node.Kind.Classifiable() {
			n++
		}
		return true
	})
	return n
}

func sunburstDepth(r *coverage.Report, maxDepth int) int {
	deepest := 0
	r.Ontology.Walk(r.Ontology.RootID(), func(n *ontology.Node, d int) bool {
		if !r.Covered(n.ID) {
			return false
		}
		if maxDepth > 0 && d > maxDepth {
			return false
		}
		if d > deepest {
			deepest = d
		}
		return true
	})
	return deepest
}

// arcPath builds an SVG path for an annular sector between angles a0 and a1
// (radians) with the given inner and outer radii.
func arcPath(cx, cy, inner, outer, a0, a1 float64) string {
	large := 0
	if a1-a0 > math.Pi {
		large = 1
	}
	x0o, y0o := cx+outer*math.Cos(a0), cy+outer*math.Sin(a0)
	x1o, y1o := cx+outer*math.Cos(a1), cy+outer*math.Sin(a1)
	x1i, y1i := cx+inner*math.Cos(a1), cy+inner*math.Sin(a1)
	x0i, y0i := cx+inner*math.Cos(a0), cy+inner*math.Sin(a0)
	return fmt.Sprintf("M %.2f %.2f A %.2f %.2f 0 %d 1 %.2f %.2f L %.2f %.2f A %.2f %.2f 0 %d 0 %.2f %.2f Z",
		x0o, y0o, outer, outer, large, x1o, y1o,
		x1i, y1i, inner, inner, large, x0i, y0i)
}
