package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"carcs/internal/similarity"
)

// Point is a 2-D layout position.
type Point struct{ X, Y float64 }

// ForceLayout computes deterministic positions for the graph's nodes with a
// Fruchterman–Reingold style force simulation: repulsion between all pairs,
// springs along edges, centering gravity, and simulated annealing of the
// step size. Determinism comes from seeding positions on a circle in sorted
// node order rather than randomly.
func ForceLayout(g *similarity.Graph, width, height float64, iterations int) map[string]Point {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	n := len(ids)
	pos := make(map[string]Point, n)
	if n == 0 {
		return pos
	}
	cx, cy := width/2, height/2
	r0 := math.Min(width, height) * 0.4
	for i, id := range ids {
		ang := 2 * math.Pi * float64(i) / float64(n)
		// Left nodes on an outer ring, right nodes inner, so bipartite
		// graphs start untangled.
		r := r0
		if g.Side[id] == "right" {
			r = r0 * 0.5
		}
		pos[id] = Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	if iterations <= 0 {
		iterations = 150
	}
	area := width * height
	k := math.Sqrt(area / float64(n)) // ideal edge length
	temp := math.Min(width, height) / 10
	cool := temp / float64(iterations+1)

	disp := make(map[string]Point, n)
	for it := 0; it < iterations; it++ {
		for _, id := range ids {
			disp[id] = Point{}
		}
		// Repulsion.
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				dx, dy := pos[a].X-pos[b].X, pos[a].Y-pos[b].Y
				d := math.Hypot(dx, dy)
				if d < 1e-6 {
					d = 1e-6
					dx = 1e-3 * float64(i+1)
				}
				f := k * k / d
				ux, uy := dx/d, dy/d
				da, db := disp[a], disp[b]
				da.X += ux * f
				da.Y += uy * f
				db.X -= ux * f
				db.Y -= uy * f
				disp[a], disp[b] = da, db
			}
		}
		// Attraction along edges.
		for _, e := range g.Edges {
			dx, dy := pos[e.A].X-pos[e.B].X, pos[e.A].Y-pos[e.B].Y
			d := math.Hypot(dx, dy)
			if d < 1e-6 {
				continue
			}
			f := d * d / k
			ux, uy := dx/d, dy/d
			da, db := disp[e.A], disp[e.B]
			da.X -= ux * f
			da.Y -= uy * f
			db.X += ux * f
			db.Y += uy * f
			disp[e.A], disp[e.B] = da, db
		}
		// Apply with temperature cap and keep inside the frame.
		for _, id := range ids {
			d := disp[id]
			l := math.Hypot(d.X, d.Y)
			if l < 1e-9 {
				continue
			}
			step := math.Min(l, temp)
			p := pos[id]
			p.X += d.X / l * step
			p.Y += d.Y / l * step
			p.X = math.Max(20, math.Min(width-20, p.X))
			p.Y = math.Max(20, math.Min(height-20, p.Y))
			pos[id] = p
		}
		temp -= cool
	}
	return pos
}

// SimilaritySVG renders the Figure 3 graph as SVG: blue circles for the left
// set, red for the right, edges labeled with the shared-item count.
func SimilaritySVG(g *similarity.Graph, width, height int) string {
	pos := ForceLayout(g, float64(width), float64(height), 200)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="8">`+"\n", width, height)
	for _, e := range g.Edges {
		pa, pb := pos[e.A], pos[e.B]
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999" stroke-width="%d"/>`+"\n",
			pa.X, pa.Y, pb.X, pb.Y, len(e.Shared))
	}
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := pos[id]
		fill := "#4477dd"
		if g.Side[id] == "right" {
			fill = "#dd4444"
		}
		radius := 5.0
		if g.Degree(id) > 0 {
			radius = 7.0
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333"><title>%s</title></circle>`+"\n",
			p.X, p.Y, radius, fill, escape(id))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
