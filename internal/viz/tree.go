// Package viz renders the paper's figures from analysis results, standing in
// for the D3 visualizations of the prototype: coverage trees (Figure 2) as
// ASCII and SVG, and similarity graphs (Figure 3) as DOT and SVG with a
// deterministic force-directed layout.
//
// Figure 2 semantics reproduced here: "the classification are shown as a
// tree where the root is the name of the ontology. First level nodes are
// tagged with the 2 or 3 letter code... The color intensity of the node is
// proportional to the number of material that matches that entry... The
// color palette is different for zeroth, first, and more-than-first level
// nodes. Ontology entry absent from the materials are transparent and their
// children are not included."
package viz

import (
	"fmt"
	"sort"
	"strings"

	"carcs/internal/coverage"
	"carcs/internal/ontology"
	"carcs/internal/similarity"
)

// CoverageTreeASCII renders a coverage report as an indented tree down to
// maxDepth (0 for unlimited), pruning uncovered subtrees like the figure
// does. Each line shows the node label, the subtree material count, and an
// intensity bar.
func CoverageTreeASCII(r *coverage.Report, maxDepth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.String())
	o := r.Ontology
	o.Walk(o.RootID(), func(n *ontology.Node, depth int) bool {
		if !r.Covered(n.ID) {
			return false // transparent: children not included
		}
		if maxDepth > 0 && depth > maxDepth {
			return false
		}
		label := n.Label
		if code := o.Code(n.ID); code != "" {
			label = code + " — " + label
		}
		bar := intensityBar(r.Intensity(n.ID), 10)
		fmt.Fprintf(&b, "%s%-*s %4d %s\n", strings.Repeat("  ", depth), 60-2*depth, trim(label, 60-2*depth), r.Subtree[n.ID], bar)
		return true
	})
	return b.String()
}

func trim(s string, n int) string {
	if n < 4 {
		n = 4
	}
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func intensityBar(x float64, width int) string {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	filled := int(x*float64(width) + 0.5)
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}

// CoverageTreeSVG renders the coverage report as a layered tree in SVG down
// to maxDepth (0 for unlimited). Node fill opacity encodes intensity; the
// palette differs for the root, first-level (area), and deeper nodes, as in
// the paper's figure.
func CoverageTreeSVG(r *coverage.Report, maxDepth int) string {
	type drawn struct {
		n     *ontology.Node
		depth int
		y     int
	}
	var nodes []drawn
	o := r.Ontology
	y := 0
	o.Walk(o.RootID(), func(n *ontology.Node, depth int) bool {
		if !r.Covered(n.ID) {
			return false
		}
		if maxDepth > 0 && depth > maxDepth {
			return false
		}
		nodes = append(nodes, drawn{n: n, depth: depth, y: y})
		y++
		return true
	})
	const rowH, colW, boxW, boxH = 22, 170, 160, 18
	width := 0
	for _, d := range nodes {
		if w := d.depth*colW + boxW + 300; w > width {
			width = w
		}
	}
	height := len(nodes)*rowH + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<title>%s</title>`+"\n", escape(r.String()))
	// Edges to parents first so boxes draw over them.
	pos := make(map[string]drawn, len(nodes))
	for _, d := range nodes {
		pos[d.n.ID] = d
	}
	for _, d := range nodes {
		if p, ok := pos[d.n.Parent]; ok {
			fmt.Fprintf(&b, `<path d="M %d %d L %d %d" stroke="#bbb" fill="none"/>`+"\n",
				p.depth*colW+boxW/2, p.y*rowH+20+boxH/2,
				d.depth*colW, d.y*rowH+20+boxH/2)
		}
	}
	for _, d := range nodes {
		fill := paletteColor(d.depth)
		op := 0.15 + 0.85*r.Intensity(d.n.ID)
		label := d.n.Label
		if code := o.Code(d.n.ID); code != "" {
			label = code
		}
		x, yy := d.depth*colW, d.y*rowH+20
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="3" fill="%s" fill-opacity="%.3f" stroke="#555"/>`+"\n",
			x, yy, boxW, boxH, fill, op)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", x+4, yy+13, escape(trim(label, 28)))
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#444">%d</text>`+"\n", x+boxW+6, yy+13, r.Subtree[d.n.ID])
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// paletteColor returns the Figure 2 depth-class palette: one color for the
// root, one for the knowledge areas, one for everything deeper.
func paletteColor(depth int) string {
	switch {
	case depth == 0:
		return "#7b3294" // root
	case depth == 1:
		return "#c2a5cf" // areas
	default:
		return "#008837" // deeper entries
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SimilarityDOT renders a similarity graph in Graphviz DOT: blue circles for
// the left set (Nifty in the paper) and red circles for the right set
// (Peachy), matching Figure 3's encoding. Output is deterministic.
func SimilarityDOT(g *similarity.Graph, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  layout=neato;\n  node [shape=circle, style=filled, fontsize=8];\n", name)
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		color := "#9999ff" // left / unipartite
		if g.Side[id] == "right" {
			color = "#ff6666"
		}
		fmt.Fprintf(&b, "  %q [fillcolor=%q];\n", id, color)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", e.A, e.B, fmt.Sprintf("%d", len(e.Shared)))
	}
	b.WriteString("}\n")
	return b.String()
}
