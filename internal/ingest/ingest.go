// Package ingest is the streaming bulk-import pipeline: it reads a JSONL
// corpus, validates and deduplicates each record, auto-classifies records
// that arrive without classifications, and commits them through
// core.System.AddMaterial — so the write-ahead journal, checkpointing, and
// generation-keyed cache invalidation apply to bulk writes exactly as they
// do to single API calls.
//
// The paper's prototype was seeded by hand with ~85 materials; its
// companion work on automatic classification argues the system becomes
// useful only once large corpora can be classified at scale. This package
// is that path: machine suggestions above a confidence threshold are
// applied directly (tagged machine-classified), while low-confidence
// records are routed into the curation workflow for human review,
// mirroring the paper's registration/verification loop.
//
// Concurrency model: parsing, validation, and auto-classification — the
// expensive, corpus-independent work — fan out across a worker pool, while
// commits are applied strictly in input order by a single committer. The
// final system state is therefore byte-identical for any worker count:
// parallelism changes throughput, never the result.
package ingest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"carcs/internal/core"
	"carcs/internal/jobs"
	"carcs/internal/material"
	"carcs/internal/textproc"
	"carcs/internal/workflow"
)

// MachineClassifiedTag marks a material whose classifications were applied
// automatically at import because they cleared the confidence threshold.
const MachineClassifiedTag = "machine-classified"

// MachineSuggestedTag marks a submission routed to human review whose
// attached classifications are low-confidence machine proposals.
const MachineSuggestedTag = "machine-suggested"

// DefaultThreshold is the minimum suggestion score auto-applied without
// review when the method is TF-IDF (the default). TF-IDF scores are
// cosine-like; 0.30 keeps precision high enough that editors only see the
// genuinely ambiguous records.
const DefaultThreshold = 0.30

// DefaultThresholds maps each suggestion method to its default auto-apply
// threshold. The engines score on incomparable scales, so one number
// cannot serve them all:
//
//	keyword  — fraction of the entry's terms matched, damped by entry
//	           length (hits / (terms+3)); rarely exceeds ~0.5.
//	tfidf    — cosine similarity against the entry-path vector, in [0, 1].
//	bayes    — posterior relative to the best-scoring class (best = 1);
//	           0.60 admits only classes competitive with the winner.
//	learned  — Platt-calibrated probability of the class being correct;
//	           0.50 is literally "more likely right than wrong".
//	ensemble — reciprocal-rank fusion mass; ~0.016 per member ranking the
//	           entry first, so 0.04 needs broad committee agreement.
var DefaultThresholds = map[string]float64{
	"keyword":  0.20,
	"tfidf":    DefaultThreshold,
	"bayes":    0.60,
	"learned":  0.50,
	"ensemble": 0.04,
}

// DefaultThresholdFor returns the method's default auto-apply threshold,
// falling back to DefaultThreshold for methods it has no entry for.
func DefaultThresholdFor(method string) float64 {
	if t, ok := DefaultThresholds[method]; ok {
		return t
	}
	return DefaultThreshold
}

// DefaultReviewer is the account low-confidence submissions are filed
// under when Options.Reviewer is empty.
const DefaultReviewer = "auto-import"

// maxLineBytes bounds a single JSONL record (1 MiB, matching the API's
// per-request body cap for single materials).
const maxLineBytes = 1 << 20

// DefaultCommitChunk is how many consecutive additions the committer groups
// into one batched commit when Options.CommitChunk is zero. It matches the
// journal's default group-commit window so one chunk is one fsync.
const DefaultCommitChunk = 64

// Options configure an Importer. The zero value is usable: GOMAXPROCS
// workers, TF-IDF suggestions at DefaultThreshold, no per-item retries.
type Options struct {
	// Workers sizes the parallel prepare stage (parse + validate +
	// auto-classify). Zero or negative means GOMAXPROCS. Worker count
	// affects throughput only — never the final state.
	Workers int
	// Method is the suggester used for auto-classification: "tfidf"
	// (default), "keyword", "bayes", "learned", "ensemble", or "none" to
	// disable auto-classification entirely. The default is training-free
	// and corpus-independent, keeping imports deterministic; "bayes",
	// "learned", and "ensemble" depend on what has already been ingested
	// and trained, so their suggestions can vary with commit interleaving.
	Method string
	// Threshold is the minimum score a suggestion must reach to be
	// auto-applied; below it the record is routed to human review. Zero
	// means the method's entry in DefaultThresholds — the engines score on
	// different scales (see that table), so override it only with a value
	// chosen for the configured Method.
	Threshold float64
	// MaxAuto caps auto-applied suggestions per ontology (default 3).
	MaxAuto int
	// Reviewer is the workflow account low-confidence records are
	// submitted under (registered on first use; default DefaultReviewer).
	Reviewer string
	// Retry governs per-item commit retries. Its Transient predicate
	// decides what is worth retrying; nil retries nothing, so
	// deterministic failures (validation, duplicates) fail immediately.
	Retry jobs.RetryPolicy
	// Commit overrides the commit step (default sys.AddMaterial); tests
	// inject failures through it. Setting it forces record-at-a-time
	// commits, bypassing chunked batching.
	Commit func(*material.Material) error
	// CommitChunk is how many consecutive additions the in-order committer
	// groups into one batched commit (core.System.AddMaterials): one
	// journal fsync window and one view publish per chunk instead of per
	// record. Zero means DefaultCommitChunk; 1 commits record-at-a-time.
	// Chunk size affects throughput only, never the final state.
	CommitChunk int
}

// Summary is the outcome of one import run.
type Summary struct {
	// Total records seen (non-blank lines).
	Total int `json:"total"`
	// Added materials committed to the corpus.
	Added int `json:"added"`
	// AutoClassified is how many of Added had machine-applied
	// classifications.
	AutoClassified int `json:"auto_classified"`
	// Review records routed to the curation queue for human review.
	Review int `json:"review"`
	// Skipped duplicates (already in the corpus or earlier in the file).
	Skipped int `json:"skipped"`
	// Failed records (parse errors, validation errors, commit errors).
	Failed int `json:"failed"`
}

// Tracker observes per-item progress while an import runs. *jobs.Job
// implements it; NopTracker satisfies it for synchronous callers.
type Tracker interface {
	AddTotal(n int64)
	AddOK()
	AddFailed()
	AddSkipped()
	ReportItemError(e jobs.ItemError)
}

// NopTracker is a Tracker that records nothing.
type NopTracker struct{}

func (NopTracker) AddTotal(int64)                 {}
func (NopTracker) AddOK()                         {}
func (NopTracker) AddFailed()                     {}
func (NopTracker) AddSkipped()                    {}
func (NopTracker) ReportItemError(jobs.ItemError) {}

// Importer runs JSONL imports against one system.
type Importer struct {
	sys *core.System
	opt Options
}

// New creates an importer; see Options for defaults.
func New(sys *core.System, opt Options) *Importer {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Method == "" {
		opt.Method = "tfidf"
	}
	if opt.Threshold == 0 {
		opt.Threshold = DefaultThresholdFor(opt.Method)
	}
	if opt.MaxAuto <= 0 {
		opt.MaxAuto = 3
	}
	if opt.Reviewer == "" {
		opt.Reviewer = DefaultReviewer
	}
	if opt.CommitChunk <= 0 {
		opt.CommitChunk = DefaultCommitChunk
	}
	return &Importer{sys: sys, opt: opt}
}

// routing decides what the committer does with a prepared record.
type routing int

const (
	routeAdd    routing = iota // commit to the corpus
	routeReview                // submit to the curation queue
	routeError                 // failed preparation; report only
)

// item is one line handed to the prepare workers.
type item struct {
	idx  int
	line string
}

// prepared is a worker's output: the parsed material plus its route.
type prepared struct {
	idx   int
	id    string // best-effort identifier for error reports
	m     *material.Material
	route routing
	auto  bool // classifications were machine-applied
	err   error
}

// Run streams JSONL records from r into the system. It returns the
// summary of what happened and a terminal error: nil when the input was
// fully processed (even if some records failed), ctx.Err() when cancelled
// mid-stream, or a read error. Partial progress is never rolled back —
// each committed item went through the durability hooks individually, so
// cancellation leaves exactly the reported-ok items applied.
func (imp *Importer) Run(ctx context.Context, r io.Reader, tr Tracker) (Summary, error) {
	if tr == nil {
		tr = NopTracker{}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Preparation (parsing, validation, auto-classification) runs against
	// one view pinned here: every worker sees the same suggestion models
	// regardless of commits landing mid-import (including this import's
	// own), so a record's classification depends only on the input and the
	// state at import start, not on scheduling. Commits still go through
	// the live system and its duplicate checks.
	v := imp.sys.View()

	in := make(chan item, 2*imp.opt.Workers)
	out := make(chan prepared, 2*imp.opt.Workers)

	// Producer: scan lines, assign indices, feed the workers.
	scanErr := make(chan error, 1)
	go func() {
		defer close(in)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), maxLineBytes)
		idx := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			tr.AddTotal(1)
			select {
			case in <- item{idx: idx, line: line}:
			case <-ctx.Done():
				scanErr <- nil
				return
			}
			idx++
		}
		scanErr <- sc.Err()
	}()

	// Prepare workers: parse, validate, auto-classify.
	var wg sync.WaitGroup
	wg.Add(imp.opt.Workers)
	for i := 0; i < imp.opt.Workers; i++ {
		go func() {
			defer wg.Done()
			for it := range in {
				p := imp.prepare(v, it)
				select {
				case out <- p:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Committer: apply strictly in input order so the resulting state is
	// independent of worker count and scheduling. Consecutive additions
	// accumulate into a chunk committed through the batched pipeline; the
	// chunk flushes when full and at end of stream. Chunking preserves
	// input order (additions apply in slice order within the batch), so
	// the final state is byte-identical for any chunk size.
	var sum Summary
	var batch []prepared
	pending := make(map[int]prepared)
	next := 0
	seen := make(map[string]bool)
	for p := range out {
		pending[p.idx] = p
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := ctx.Err(); err != nil {
				// Cancelled: the unflushed chunk is abandoned unapplied —
				// exactly the reported-ok items are in the corpus.
				return sum, err
			}
			batch = imp.commit(ctx, q, &sum, seen, tr, batch)
			if len(batch) >= imp.opt.CommitChunk {
				batch = imp.flush(ctx, &sum, tr, batch)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	imp.flush(ctx, &sum, tr, batch)
	if err := <-scanErr; err != nil {
		return sum, fmt.Errorf("ingest: read input: %w", err)
	}
	return sum, nil
}

// prepare parses and validates one record against the pinned view and,
// when it has no classifications, runs the suggestion engines to
// auto-classify it.
func (imp *Importer) prepare(v *core.View, it item) prepared {
	var rec Record
	dec := json.NewDecoder(strings.NewReader(it.line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return prepared{idx: it.idx, route: routeError, err: fmt.Errorf("bad record: %w", err)}
	}
	m := rec.Material()
	p := prepared{idx: it.idx, id: m.ID, m: m, route: routeAdd}
	if len(m.Classifications) == 0 && imp.opt.Method != "none" {
		if imp.autoClassify(v, m) {
			p.auto = true
		} else {
			// Low confidence: autoClassify attached the best guesses
			// (below threshold) so the reviewer starts from a proposal;
			// route to the curation queue.
			m.Tags = append(m.Tags, MachineSuggestedTag)
			p.route = routeReview
		}
	}
	if errs := m.Validate(v.CS13(), v.PDC12()); len(errs) > 0 {
		return prepared{idx: it.idx, id: m.ID, route: routeError, err: errs[0]}
	}
	return p
}

// autoClassify applies suggestions scoring at or above the threshold,
// tagging the material machine-classified, and reports whether anything
// cleared the bar. When nothing did, it instead attaches the single best
// sub-threshold suggestion per ontology so the reviewer starts from a
// proposal.
//
// The record's search text is analyzed exactly once, before anything is
// appended to it, and the term list is shared across both ontologies —
// one tokenizer pass and one suggestion query per ontology, where the old
// two-phase path (classify, then re-query for proposals) paid the
// analyzer up to four times per record.
func (imp *Importer) autoClassify(v *core.View, m *material.Material) bool {
	terms := textproc.Terms(m.SearchText())
	var proposals []material.Classification
	applied := false
	for _, ont := range []string{"cs13", "pdc12"} {
		sugg, err := v.SuggestTermsDirect(imp.opt.Method, ont, terms, imp.opt.MaxAuto)
		if err != nil || len(sugg) == 0 {
			continue
		}
		cleared := false
		for _, sg := range sugg {
			if sg.Score < imp.opt.Threshold {
				break // suggestions arrive best-first
			}
			m.Classifications = append(m.Classifications, material.Classification{NodeID: sg.NodeID})
			applied, cleared = true, true
		}
		if !cleared && sugg[0].Score > 0 {
			proposals = append(proposals, material.Classification{NodeID: sugg[0].NodeID})
		}
	}
	if applied {
		m.Tags = append(m.Tags, MachineClassifiedTag)
		return true
	}
	m.Classifications = append(m.Classifications, proposals...)
	return false
}

// commit routes one prepared record in order: report failures, skip
// duplicates, buffer additions into the current chunk, or submit to review.
// It returns the (possibly grown) chunk.
func (imp *Importer) commit(ctx context.Context, p prepared, sum *Summary, seen map[string]bool, tr Tracker, batch []prepared) []prepared {
	sum.Total++
	switch p.route {
	case routeError:
		sum.Failed++
		tr.AddFailed()
		tr.ReportItemError(jobs.ItemError{Index: p.idx, Item: p.id, Err: p.err.Error()})
		return batch
	default:
	}
	// In-file duplicates are caught by seen — which includes buffered, not
	// yet flushed additions — and pre-existing ones by the live corpus.
	if seen[p.m.ID] || imp.sys.Material(p.m.ID) != nil {
		sum.Skipped++
		tr.AddSkipped()
		return batch
	}
	seen[p.m.ID] = true
	switch p.route {
	case routeAdd:
		return append(batch, p)
	case routeReview:
		if err := imp.submitForReview(p.m); err != nil {
			sum.Failed++
			tr.AddFailed()
			tr.ReportItemError(jobs.ItemError{Index: p.idx, Item: p.m.ID, Err: err.Error()})
			return batch
		}
		sum.Review++
		tr.AddOK()
	}
	return batch
}

// flush commits the buffered chunk of additions: through the batched
// pipeline (one journaled fsync window, one view publish) when possible,
// falling back to record-at-a-time commits — which report per-item errors
// and keep the good records — when a batch is refused or a commit override
// is installed. It returns the emptied chunk buffer for reuse.
func (imp *Importer) flush(ctx context.Context, sum *Summary, tr Tracker, batch []prepared) []prepared {
	if len(batch) == 0 {
		return batch
	}
	if imp.opt.Commit == nil && len(batch) > 1 {
		ms := make([]*material.Material, len(batch))
		for i, p := range batch {
			ms[i] = p.m
		}
		if err := imp.sys.AddMaterials(ms); err == nil {
			for _, p := range batch {
				sum.Added++
				if p.auto {
					sum.AutoClassified++
				}
				tr.AddOK()
			}
			return batch[:0]
		}
		// AddMaterials is all-or-nothing, so nothing applied; fall through
		// to the per-record path for per-item reporting and partial success.
	}
	for _, p := range batch {
		imp.commitOne(ctx, p, sum, tr)
	}
	return batch[:0]
}

// commitOne applies one addition with the retry policy.
func (imp *Importer) commitOne(ctx context.Context, p prepared, sum *Summary, tr Tracker) {
	commit := imp.opt.Commit
	if commit == nil {
		commit = imp.sys.AddMaterial
	}
	attempts, err := imp.opt.Retry.Do(ctx, func() error { return commit(p.m) })
	if err != nil {
		if ctx.Err() != nil {
			return // cancelled mid-item; nothing was applied
		}
		sum.Failed++
		tr.AddFailed()
		tr.ReportItemError(jobs.ItemError{Index: p.idx, Item: p.m.ID, Err: err.Error(), Attempts: attempts})
		return
	}
	sum.Added++
	if p.auto {
		sum.AutoClassified++
	}
	tr.AddOK()
}

// submitForReview files the material into the curation queue under the
// importer's reviewer account, registering it on first use.
func (imp *Importer) submitForReview(m *material.Material) error {
	q := imp.sys.Workflow()
	if _, ok := q.Account(imp.opt.Reviewer); !ok {
		if _, err := q.Register(imp.opt.Reviewer, workflow.RoleSubmitter); err != nil {
			return fmt.Errorf("ingest: register reviewer: %w", err)
		}
	}
	if _, err := q.Submit(imp.opt.Reviewer, m); err != nil {
		return fmt.Errorf("ingest: submit for review: %w", err)
	}
	return nil
}
