package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"carcs/internal/core"
	"carcs/internal/corpus"
	"carcs/internal/jobs"
	"carcs/internal/material"
)

// testTracker records progress counters and item errors for assertions.
type testTracker struct {
	jobs.Progress
	mu   sync.Mutex
	errs []jobs.ItemError
}

func (t *testTracker) ReportItemError(e jobs.ItemError) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, e)
}

func newEmpty(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// jsonl renders materials as the importer's input.
func jsonl(t *testing.T, mats []*material.Material) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, mats); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestImportPreClassified(t *testing.T) {
	sys := newEmpty(t)
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 20, Seed: 1}).All()
	imp := New(sys, Options{Workers: 4})
	sum, err := imp.Run(context.Background(), strings.NewReader(jsonl(t, mats)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 20 || sum.Failed != 0 || sum.Review != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sys.Len() != 20 {
		t.Errorf("corpus = %d", sys.Len())
	}
	if m := sys.Material(mats[7].ID); m == nil {
		t.Errorf("material %s missing", mats[7].ID)
	}
}

func TestImportAutoClassifiesUnclassified(t *testing.T) {
	sys := newEmpty(t)
	rec := Record{
		ID: "auto-1", Title: "Parallel matrix multiplication with shared memory threads",
		Description: "Students parallelize dense matrix multiplication using threads, locks, and shared memory, then measure speedup and efficiency.",
		Kind:        "assignment", Level: "intermediate",
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*material.Material{rec.Material()}); err != nil {
		t.Fatal(err)
	}
	// A permissive threshold guarantees the suggester clears the bar.
	imp := New(sys, Options{Threshold: 0.01})
	tr := &testTracker{}
	sum, err := imp.Run(context.Background(), &buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 1 || sum.AutoClassified != 1 {
		t.Fatalf("summary = %+v (errs %v)", sum, tr.errs)
	}
	m := sys.Material("auto-1")
	if m == nil {
		t.Fatal("material not added")
	}
	if len(m.Classifications) == 0 {
		t.Error("no classifications applied")
	}
	found := false
	for _, tag := range m.Tags {
		if tag == MachineClassifiedTag {
			found = true
		}
	}
	if !found {
		t.Errorf("tags = %v, want %q", m.Tags, MachineClassifiedTag)
	}
}

func TestImportRoutesLowConfidenceToReview(t *testing.T) {
	sys := newEmpty(t)
	rec := Record{
		ID: "vague-1", Title: "Untitled exercise",
		Description: "zzzqx qqquux", // matches nothing
		Kind:        "assignment", Level: "CS1",
	}
	line, _ := recordLine(rec)
	imp := New(sys, Options{Threshold: 0.99}) // nothing clears this bar
	sum, err := imp.Run(context.Background(), strings.NewReader(line), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Review != 1 || sum.Added != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sys.Material("vague-1") != nil {
		t.Error("low-confidence record must not enter the corpus directly")
	}
	pend := sys.Workflow().Pending()
	if len(pend) != 1 || pend[0].Material.ID != "vague-1" {
		t.Fatalf("pending = %v", pend)
	}
	if pend[0].Submitter != DefaultReviewer {
		t.Errorf("submitter = %s", pend[0].Submitter)
	}
	tagged := false
	for _, tag := range pend[0].Material.Tags {
		if tag == MachineSuggestedTag {
			tagged = true
		}
	}
	if !tagged {
		t.Errorf("tags = %v, want %q", pend[0].Material.Tags, MachineSuggestedTag)
	}
}

func recordLine(rec Record) (string, error) {
	var buf bytes.Buffer
	err := WriteJSONL(&buf, []*material.Material{rec.Material()})
	return buf.String(), err
}

func TestImportDeduplicates(t *testing.T) {
	sys := newEmpty(t)
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 5, Seed: 2}).All()
	if err := sys.AddMaterial(mats[0]); err != nil { // pre-existing
		t.Fatal(err)
	}
	input := jsonl(t, mats) + jsonl(t, mats[1:3]) // in-file dups too
	imp := New(sys, Options{Workers: 3})
	tr := &testTracker{}
	sum, err := imp.Run(context.Background(), strings.NewReader(input), tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 4 || sum.Skipped != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if _, _, _, skipped := tr.Counts(); skipped != 3 {
		t.Errorf("tracker skipped = %d", skipped)
	}
	if sys.Len() != 5 {
		t.Errorf("corpus = %d", sys.Len())
	}
}

func TestImportReportsBadRecords(t *testing.T) {
	sys := newEmpty(t)
	good, _ := recordLine(Record{
		ID: "ok-1", Title: "Fine", Kind: "assignment", Level: "CS1",
		Classifications: []string{sys.CS13().Classifiable()[0]},
	})
	input := "{not json}\n" +
		good +
		`{"id":"bad-kind","title":"X","kind":"sculpture","level":"CS1"}` + "\n" +
		`{"id":"bad-node","title":"X","kind":"exam","level":"CS1","classifications":["no/such/node"]}` + "\n"
	imp := New(sys, Options{Workers: 2, Method: "none"})
	tr := &testTracker{}
	sum, err := imp.Run(context.Background(), strings.NewReader(input), tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 1 || sum.Failed != 3 {
		t.Fatalf("summary = %+v, errs %v", sum, tr.errs)
	}
	if len(tr.errs) != 3 {
		t.Fatalf("item errors = %v", tr.errs)
	}
	// Indices identify the failing lines in the original input.
	idx := map[int]bool{}
	for _, e := range tr.errs {
		idx[e.Index] = true
	}
	if !idx[0] || !idx[2] || !idx[3] {
		t.Errorf("error indices = %v", tr.errs)
	}
}

// TestImportDeterministicAcrossWorkerCounts is the core ordering invariant:
// the committed state must be byte-identical no matter how wide the prepare
// stage fans out.
func TestImportDeterministicAcrossWorkerCounts(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 300, Seed: 3}).All()
	input := jsonl(t, mats)
	snapshot := func(workers int) string {
		sys := newEmpty(t)
		imp := New(sys, Options{Workers: workers})
		sum, err := imp.Run(context.Background(), strings.NewReader(input), nil)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Added != 300 {
			t.Fatalf("workers=%d summary = %+v", workers, sum)
		}
		var buf bytes.Buffer
		if err := sys.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := snapshot(1)
	for _, workers := range []int{2, 4, 8} {
		if got := snapshot(workers); got != want {
			t.Fatalf("workers=%d produced different final state", workers)
		}
	}
}

func TestImportRetriesTransientCommitFailures(t *testing.T) {
	sys := newEmpty(t)
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 3, Seed: 4}).All()
	transient := errors.New("transient blip")
	var mu sync.Mutex
	failures := map[string]int{mats[1].ID: 2} // second record fails twice
	commit := func(m *material.Material) error {
		mu.Lock()
		if failures[m.ID] > 0 {
			failures[m.ID]--
			mu.Unlock()
			return transient
		}
		mu.Unlock()
		return sys.AddMaterial(m)
	}
	imp := New(sys, Options{
		Commit: commit,
		Retry: jobs.RetryPolicy{
			Attempts: 3, Base: 1, // effectively immediate retries
			Transient: func(err error) bool { return errors.Is(err, transient) },
		},
	})
	sum, err := imp.Run(context.Background(), strings.NewReader(jsonl(t, mats)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 3 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestImportRetryBudgetExhausted(t *testing.T) {
	sys := newEmpty(t)
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 2, Seed: 5}).All()
	transient := errors.New("still down")
	commit := func(m *material.Material) error {
		if m.ID == mats[0].ID {
			return transient
		}
		return sys.AddMaterial(m)
	}
	imp := New(sys, Options{
		Commit: commit,
		Retry: jobs.RetryPolicy{
			Attempts: 2, Base: 1,
			Transient: func(err error) bool { return errors.Is(err, transient) },
		},
	})
	tr := &testTracker{}
	sum, err := imp.Run(context.Background(), strings.NewReader(jsonl(t, mats)), tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Added != 1 || sum.Failed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(tr.errs) != 1 || tr.errs[0].Attempts != 2 {
		t.Fatalf("item errors = %+v", tr.errs)
	}
}

// TestImportCancellationIsConsistent cancels mid-import and verifies the
// system holds exactly the items reported ok — no partial applications.
func TestImportCancellationIsConsistent(t *testing.T) {
	sys := newEmpty(t)
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 200, Seed: 6}).All()
	ctx, cancel := context.WithCancel(context.Background())
	committed := 0
	commit := func(m *material.Material) error {
		if err := sys.AddMaterial(m); err != nil {
			return err
		}
		committed++
		if committed == 50 {
			cancel()
		}
		return nil
	}
	imp := New(sys, Options{Workers: 4, Commit: commit})
	tr := &testTracker{}
	sum, err := imp.Run(ctx, strings.NewReader(jsonl(t, mats)), tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	_, ok, _, _ := tr.Counts()
	if int(ok) != sum.Added {
		t.Errorf("tracker ok = %d, summary added = %d", ok, sum.Added)
	}
	if sys.Len() != sum.Added {
		t.Errorf("corpus = %d, reported ok = %d", sys.Len(), sum.Added)
	}
	if sum.Added < 50 || sum.Added >= 200 {
		t.Errorf("added = %d, want partial progress around 50", sum.Added)
	}
}

// TestImportDurableCancelThenRecover ties the importer to the durability
// layer: a cancelled import must leave a journal that replays to exactly
// the reported-ok items after a restart.
func TestImportDurableCancelThenRecover(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 120, Seed: 7}).All()
	ctx, cancel := context.WithCancel(context.Background())
	committed := 0
	commit := func(m *material.Material) error {
		if err := sys.AddMaterial(m); err != nil {
			return err
		}
		committed++
		if committed == 40 {
			cancel()
		}
		return nil
	}
	imp := New(sys, Options{Workers: 3, Commit: commit})
	sum, err := imp.Run(ctx, strings.NewReader(jsonl(t, mats)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Crash-style stop: no final checkpoint, recovery comes from the WAL.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, p2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if sys2.Len() != sum.Added {
		t.Errorf("recovered corpus = %d, reported ok = %d", sys2.Len(), sum.Added)
	}
	for i := 0; i < sum.Added; i++ {
		if sys2.Material(mats[i].ID) == nil {
			t.Fatalf("recovered corpus missing %s (in-order item %d)", mats[i].ID, i)
		}
	}
}

func TestImportScannerErrorOnGiantLine(t *testing.T) {
	sys := newEmpty(t)
	imp := New(sys, Options{})
	huge := `{"id":"big","title":"` + strings.Repeat("x", maxLineBytes+10) + `"}`
	_, err := imp.Run(context.Background(), strings.NewReader(huge), nil)
	if err == nil {
		t.Fatal("want scanner error for oversized line")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	m := corpus.Synthetic(corpus.SyntheticOptions{N: 1, Seed: 8}).All()[0]
	rec := FromMaterial(m)
	back := rec.Material()
	if back.ID != m.ID || back.Title != m.Title || len(back.Classifications) != len(m.ClassificationIDs()) {
		t.Errorf("round trip mismatch: %+v vs %+v", back, m)
	}
	if fmt.Sprint(back.Tags) != fmt.Sprint(m.Tags) {
		t.Errorf("tags: %v vs %v", back.Tags, m.Tags)
	}
}
