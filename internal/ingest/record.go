package ingest

import (
	"encoding/json"
	"fmt"
	"io"

	"carcs/internal/material"
)

// Record is the wire form of one JSONL import line: the same shape the
// material API serves, one JSON object per line. Classifications are node
// IDs; a record with none is eligible for auto-classification.
type Record struct {
	ID              string   `json:"id"`
	Title           string   `json:"title"`
	Authors         []string `json:"authors,omitempty"`
	URL             string   `json:"url,omitempty"`
	Description     string   `json:"description,omitempty"`
	Kind            string   `json:"kind"`
	Level           string   `json:"level"`
	Language        string   `json:"language,omitempty"`
	Datasets        []string `json:"datasets,omitempty"`
	Year            int      `json:"year,omitempty"`
	Collection      string   `json:"collection,omitempty"`
	Tags            []string `json:"tags,omitempty"`
	Classifications []string `json:"classifications,omitempty"`
}

// Material converts the record to the domain model.
func (r Record) Material() *material.Material {
	m := &material.Material{
		ID: r.ID, Title: r.Title, Authors: r.Authors, URL: r.URL,
		Description: r.Description, Kind: material.Kind(r.Kind),
		Level: material.Level(r.Level), Language: r.Language,
		Datasets: r.Datasets, Year: r.Year, Collection: r.Collection,
		Tags: r.Tags,
	}
	for _, c := range r.Classifications {
		m.Classifications = append(m.Classifications, material.Classification{NodeID: c})
	}
	return m
}

// FromMaterial converts a domain material to its wire record, the inverse
// of Record.Material; the CLI and benchmarks use it to generate corpora.
func FromMaterial(m *material.Material) Record {
	return Record{
		ID: m.ID, Title: m.Title, Authors: m.Authors, URL: m.URL,
		Description: m.Description, Kind: string(m.Kind), Level: string(m.Level),
		Language: m.Language, Datasets: m.Datasets, Year: m.Year,
		Collection: m.Collection, Tags: m.Tags,
		Classifications: m.ClassificationIDs(),
	}
}

// WriteJSONL writes materials as one JSON record per line — the importer's
// input format.
func WriteJSONL(w io.Writer, mats []*material.Material) error {
	enc := json.NewEncoder(w)
	for _, m := range mats {
		if err := enc.Encode(FromMaterial(m)); err != nil {
			return fmt.Errorf("ingest: encode %s: %w", m.ID, err)
		}
	}
	return nil
}
