package ingest

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"carcs/internal/corpus"
)

// TestImportDeterministicAcrossChunkSizes is the committer's invariant for
// the batched pipeline: worker count and commit-chunk size change throughput
// only — the final relational state is byte-identical and the summary equal
// for every combination, including chunk size 1 (record-at-a-time).
func TestImportDeterministicAcrossChunkSizes(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 120, Seed: 5}).All()
	input := jsonl(t, mats)
	run := func(workers, chunk int) (string, Summary) {
		sys := newEmpty(t)
		imp := New(sys, Options{Workers: workers, CommitChunk: chunk})
		sum, err := imp.Run(context.Background(), strings.NewReader(input), nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sys.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), sum
	}
	wantSnap, wantSum := run(1, 1)
	if wantSum.Added != 120 || wantSum.Failed != 0 {
		t.Fatalf("baseline summary = %+v", wantSum)
	}
	for _, workers := range []int{1, 4} {
		for _, chunk := range []int{1, 3, 64} {
			gotSnap, gotSum := run(workers, chunk)
			if gotSum != wantSum {
				t.Errorf("workers=%d chunk=%d summary = %+v, want %+v", workers, chunk, gotSum, wantSum)
			}
			if gotSnap != wantSnap {
				t.Errorf("workers=%d chunk=%d produced different final state", workers, chunk)
			}
		}
	}
}

// TestImportChunkFallbackKeepsGoodRecords: when a whole chunk is refused
// (here: an in-chunk duplicate against the live corpus caught only at
// commit), the committer falls back to record-at-a-time commits so the good
// records still land and only the offender is reported.
func TestImportChunkFallbackKeepsGoodRecords(t *testing.T) {
	sys := newEmpty(t)
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 6, Seed: 8}).All()
	// Pre-commit one mid-chunk record through a changed id so the importer's
	// own dedup (by id) cannot see it but the corpus-level duplicate check
	// can: same id, added between scan and flush is impossible here, so
	// instead seed the corpus directly with one of the batch's materials.
	if err := sys.AddMaterial(mats[3].Clone()); err != nil {
		t.Fatal(err)
	}
	imp := New(sys, Options{Workers: 2, CommitChunk: 64})
	tr := &testTracker{}
	sum, err := imp.Run(context.Background(), strings.NewReader(jsonl(t, mats)), tr)
	if err != nil {
		t.Fatal(err)
	}
	// The seeded record is skipped by the corpus-level dedup before the
	// chunk forms; everything else lands through one batch.
	if sum.Added != 5 || sum.Skipped != 1 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sys.Len() != 6 {
		t.Errorf("corpus = %d, want 6", sys.Len())
	}
}
