package learn

import (
	"sort"

	"carcs/internal/classify"
	"carcs/internal/ontology"
)

// CrossValidate scores the learned model honestly: the examples are dealt
// into p.Folds deterministic folds, a model is trained on each complement,
// and every example is scored by the one model that never saw it. The
// result is a classify.Quality directly comparable to the heuristic
// suggesters' Evaluate numbers (which are training-free, so in-sample and
// held-out are the same thing for them).
func CrossValidate(o *ontology.Ontology, exs []Example, p Params, k int) classify.Quality {
	p = p.withDefaults()
	q := classify.Quality{Suggester: "learned (cv)", K: k}
	folds := p.Folds
	if folds > len(exs) {
		folds = len(exs)
	}
	if folds < 2 {
		return q
	}
	exs = append([]Example(nil), exs...)
	sort.Slice(exs, func(i, j int) bool { return exs[i].ID < exs[j].ID })
	perm := shuffle(len(exs), p.Seed*2654435761+17)

	var sumP, sumR float64
	for f := 0; f < folds; f++ {
		var train, held []Example
		for i, pi := range perm {
			if i%folds == f {
				held = append(held, exs[pi])
			} else {
				train = append(train, exs[pi])
			}
		}
		m := Train(o, train, p)
		sort.Slice(held, func(i, j int) bool { return held[i].ID < held[j].ID })
		for _, ex := range held {
			if len(ex.Pos) == 0 {
				continue
			}
			truth := make(map[string]bool, len(ex.Pos))
			for _, c := range ex.Pos {
				truth[c] = true
			}
			sugg := m.SuggestTerms(ex.Terms, k)
			q.N++
			if len(sugg) == 0 {
				continue
			}
			hits := 0
			for _, sg := range sugg {
				if truth[sg.NodeID] {
					hits++
				}
			}
			sumP += float64(hits) / float64(len(sugg))
			sumR += float64(hits) / float64(len(truth))
			if hits > 0 {
				q.HitRate++
			}
		}
	}
	if q.N > 0 {
		q.PrecisionAtK = sumP / float64(q.N)
		q.RecallAtK = sumR / float64(q.N)
		q.HitRate /= float64(q.N)
	}
	return q
}
