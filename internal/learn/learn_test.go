package learn

import (
	"bytes"
	"encoding/json"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/ontology"
	"carcs/internal/textproc"
)

func pdcExamples(t *testing.T) []Example {
	t.Helper()
	exs := ExamplesFromMaterials(ontology.PDC12(), corpus.AllMaterials())
	if len(exs) < 20 {
		t.Fatalf("expected a usable PDC training set, got %d examples", len(exs))
	}
	return exs
}

func marshalState(t *testing.T, m *Model) []byte {
	t.Helper()
	b, err := json.Marshal(m.State())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTrainDeterministic(t *testing.T) {
	o := ontology.PDC12()
	exs := pdcExamples(t)
	p := DefaultParams()
	a := Train(o, exs, p)
	// Reversed input order must not matter: Train sorts by ID.
	rev := make([]Example, len(exs))
	for i, ex := range exs {
		rev[len(exs)-1-i] = ex
	}
	b := Train(o, rev, p)
	ba, bb := marshalState(t, a), marshalState(t, b)
	if !bytes.Equal(ba, bb) {
		t.Fatal("two trainings on the same examples produced different state bytes")
	}
	if !a.Trained() || a.Classes() == 0 {
		t.Fatal("model should be trained")
	}
	if a.Version() != 1 || a.Examples() != len(exs) {
		t.Fatalf("version=%d examples=%d", a.Version(), a.Examples())
	}
}

func TestSuggestQuality(t *testing.T) {
	o := ontology.PDC12()
	exs := pdcExamples(t)
	m := Train(o, exs, DefaultParams())

	// In-sample sanity: most training documents should get one of their
	// own labels into the top 3.
	hits := 0
	for _, ex := range exs {
		truth := make(map[string]bool)
		for _, c := range ex.Pos {
			truth[c] = true
		}
		for _, sg := range m.SuggestTerms(ex.Terms, 3) {
			if truth[sg.NodeID] {
				hits++
				break
			}
		}
	}
	if frac := float64(hits) / float64(len(exs)); frac < 0.7 {
		t.Fatalf("in-sample hit@3 = %.2f, want >= 0.7", frac)
	}

	sugg := m.Suggest("students parallelize a loop with OpenMP pragmas and measure speedup", 5)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	for i, sg := range sugg {
		if sg.Score <= 0 || sg.Score >= 1 {
			t.Errorf("score %v not a calibrated probability in (0,1)", sg.Score)
		}
		if sg.Path == "" {
			t.Errorf("missing path for %s", sg.NodeID)
		}
		if i > 0 && sugg[i-1].Score < sg.Score {
			t.Error("suggestions not sorted by score")
		}
	}
	if m.Suggest("", 5) != nil {
		t.Error("empty text should yield nil")
	}
}

func TestCalibrationMonotonic(t *testing.T) {
	m := Train(ontology.PDC12(), pdcExamples(t), DefaultParams())
	// Higher margin must map to higher calibrated probability, or the
	// suggestion ranking would disagree with the raw scores.
	if m.Calibrated(2) <= m.Calibrated(0) || m.Calibrated(0) <= m.Calibrated(-2) {
		t.Fatalf("calibration not increasing in margin: %v %v %v",
			m.Calibrated(-2), m.Calibrated(0), m.Calibrated(2))
	}
}

func TestUpdateCopyOnWrite(t *testing.T) {
	o := ontology.PDC12()
	m := Train(o, pdcExamples(t), DefaultParams())
	before := marshalState(t, m)

	terms := textproc.Terms("map reduce over a distributed key value store")
	classes := o.Classifiable()
	nm := m.Update(terms, []string{classes[0]}, []string{classes[1]})
	if nm == m {
		t.Fatal("Update must return a new model")
	}
	if nm.Version() != m.Version()+1 || nm.Examples() != m.Examples()+1 {
		t.Fatalf("version/examples not bumped: %d/%d vs %d/%d",
			nm.Version(), nm.Examples(), m.Version(), m.Examples())
	}
	if after := marshalState(t, m); !bytes.Equal(before, after) {
		t.Fatal("Update mutated the receiver")
	}

	// Determinism of the online path too.
	nm2 := m.Update(terms, []string{classes[0]}, []string{classes[1]})
	if !bytes.Equal(marshalState(t, nm), marshalState(t, nm2)) {
		t.Fatal("same Update produced different state bytes")
	}

	// A confirmed label the model had never seen becomes a class.
	novel := ""
	for _, c := range classes {
		if !hasClass(m.classes, c) {
			novel = c
			break
		}
	}
	if novel != "" {
		grown := m.Update(terms, []string{novel}, nil)
		if !hasClass(grown.classes, novel) {
			t.Fatal("Update did not absorb a novel confirmed class")
		}
	}
}

func TestUncertainty(t *testing.T) {
	o := ontology.PDC12()
	var untrained *Model
	if untrained.Uncertainty([]string{"x"}) != 1 {
		t.Error("nil model uncertainty should be 1")
	}
	m := Train(o, pdcExamples(t), DefaultParams())
	if m.Uncertainty(nil) != 1 {
		t.Error("empty terms should be maximally uncertain")
	}
	clear := textproc.Terms("parallelize a loop with OpenMP pragmas measure speedup and efficiency of static and dynamic scheduling")
	vague := textproc.Terms("course homework assignment week two")
	uc, uv := m.Uncertainty(clear), m.Uncertainty(vague)
	if uc < 0 || uc > 1 || uv < 0 || uv > 1 {
		t.Fatalf("uncertainty out of range: %v %v", uc, uv)
	}
	if uc >= uv {
		t.Fatalf("clear doc (%v) should be less uncertain than vague doc (%v)", uc, uv)
	}
}

func TestStateRoundTrip(t *testing.T) {
	o := ontology.PDC12()
	m := Train(o, pdcExamples(t), DefaultParams())
	b1 := marshalState(t, m)

	var st ModelState
	if err := json.Unmarshal(b1, &st); err != nil {
		t.Fatal(err)
	}
	m2, err := FromState(o, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, marshalState(t, m2)) {
		t.Fatal("state round trip changed bytes")
	}
	// The restored model must behave identically, not just serialize alike.
	terms := textproc.Terms("message passing with MPI send and receive")
	s1, s2 := m.SuggestTerms(terms, 5), m2.SuggestTerms(terms, 5)
	if len(s1) != len(s2) {
		t.Fatalf("restored model suggests differently: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("suggestion %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}

	if _, err := FromState(o, &ModelState{Classes: []string{"not-an-entry"}}); err == nil {
		t.Fatal("FromState should reject classes outside the ontology")
	}
	if _, err := FromState(o, nil); err == nil {
		t.Fatal("FromState should reject nil state")
	}
}

func TestCrossValidate(t *testing.T) {
	o := ontology.PDC12()
	exs := pdcExamples(t)
	q := CrossValidate(o, exs, DefaultParams(), 3)
	if q.N == 0 {
		t.Fatal("cross-validation scored nothing")
	}
	if q.PrecisionAtK < 0 || q.PrecisionAtK > 1 || q.RecallAtK < 0 || q.RecallAtK > 1 {
		t.Fatalf("metrics out of range: %+v", q)
	}
	// Held-out quality should clear a modest floor on the curated corpus —
	// the heuristics manage ~0.3 hit rate, a trained model must not be junk.
	if q.HitRate == 0 {
		t.Fatalf("zero held-out hit rate: %+v", q)
	}
	q2 := CrossValidate(o, exs, DefaultParams(), 3)
	if q != q2 {
		t.Fatalf("cross-validation not deterministic: %+v vs %+v", q, q2)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a, b := shuffle(100, 7), shuffle(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	seen := make([]bool, 100)
	for _, v := range a {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d missing from permutation", i)
		}
	}
	if c := shuffle(100, 8); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical permutations")
	}
}
