// Package learn is the trained classifier behind the "learned" suggestion
// method: a one-vs-rest logistic regression over the text pipeline's
// features, trained from the hand-curated corpora plus every accepted or
// rejected workflow review, with Platt-calibrated per-entry confidence and
// uncertainty scores for active-learning review ordering.
//
// The paper's stated bottleneck is expert curation time (~1 day to
// hand-classify the corpora); its follow-up (Saule/Subramanian/Bunescu,
// "Automatic Classification of Pedagogical Materials against CS Curriculum
// Guidelines") replaces the keyword/TF-IDF/Bayes heuristics with a trained
// model and spends human review only where the model is uncertain. This
// package is that loop's model half; the review-queue ordering and the
// journaled train/update operations live in core and server.
//
// Everything here is bit-deterministic: examples are processed in sorted
// order, shuffles use a seeded LCG, feature vectors iterate in sorted term
// order, and serialized state marshals through JSON's sorted map keys — so
// retraining from the same corpus on a crash-recovered node or a
// replication follower reproduces the leader's model byte for byte.
package learn

import (
	"sort"

	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/textproc"
)

// Params are the training hyperparameters. They are journaled with the
// train operation, so replay retrains with exactly the recorded settings.
type Params struct {
	// Epochs is how many SGD passes training makes over the examples.
	Epochs int `json:"epochs"`
	// LearnRate is the initial SGD step size, decayed per epoch.
	LearnRate float64 `json:"learn_rate"`
	// L2 is the ridge penalty applied to every touched weight.
	L2 float64 `json:"l2"`
	// Folds is the cross-validation fold count used to fit the Platt
	// calibration sigmoid and to report held-out quality.
	Folds int `json:"folds"`
	// Seed drives the deterministic example shuffle.
	Seed uint64 `json:"seed"`
	// HardNegatives is how many top-scoring wrong classes each positive
	// example pushes down per step. Hard-negative mining keeps the weight
	// matrix sparse (each class only accumulates terms it actually
	// confuses) and optimizes the ranking margin directly.
	HardNegatives int `json:"hard_negatives"`
}

// DefaultParams are the settings used by `carcs train` and the server when
// none are given.
func DefaultParams() Params {
	return Params{
		Epochs:        12,
		LearnRate:     0.5,
		L2:            1e-4,
		Folds:         5,
		Seed:          1,
		HardNegatives: 5,
	}
}

// withDefaults fills zero fields so journaled params from older versions
// stay replayable.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Epochs <= 0 {
		p.Epochs = d.Epochs
	}
	if p.LearnRate <= 0 {
		p.LearnRate = d.LearnRate
	}
	if p.L2 <= 0 {
		p.L2 = d.L2
	}
	if p.Folds <= 0 {
		p.Folds = d.Folds
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.HardNegatives <= 0 {
		p.HardNegatives = d.HardNegatives
	}
	return p
}

// Example is one training observation: the analyzed terms of a material's
// search text plus its labels within one ontology.
type Example struct {
	// ID is a stable identifier used only for deterministic ordering.
	ID string
	// Terms is the material's analyzed (tokenized, stopped, stemmed)
	// search text.
	Terms []string
	// Pos are the in-ontology entries the material is classified under.
	Pos []string
	// Neg are entries the material is known NOT to belong to — a rejected
	// machine suggestion. An example with Neg and no Pos contributes only
	// negative gradient to those classes.
	Neg []string
}

// ExamplesFromMaterials builds the training set for one ontology from
// classified materials: one example per material with at least one label
// inside the ontology, sorted by material ID so training order — and
// therefore the trained model — is independent of input order.
func ExamplesFromMaterials(o *ontology.Ontology, mats []*material.Material) []Example {
	out := make([]Example, 0, len(mats))
	for _, m := range mats {
		var pos []string
		for _, id := range m.ClassificationIDs() {
			if o.Has(id) {
				pos = append(pos, id)
			}
		}
		if len(pos) == 0 {
			continue
		}
		sort.Strings(pos)
		out = append(out, Example{ID: m.ID, Terms: textproc.Terms(m.SearchText()), Pos: pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// lcg is a deterministic linear congruential generator (Numerical Recipes
// constants) used for the example shuffle; math/rand is avoided so the
// shuffle sequence is pinned forever, not to one Go release.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// intn returns a value in [0, n) without modulo bias mattering here: the
// state space is 2^64 and n is tiny, so the bias is far below anything a
// shuffle can observe; determinism is what matters.
func (r *lcg) intn(n int) int {
	return int(r.next() % uint64(n))
}

// shuffle returns a deterministic permutation of [0, n).
func shuffle(n int, seed uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := &lcg{s: seed}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
