package learn

import (
	"encoding/json"
	"fmt"
	"sort"

	"carcs/internal/ontology"
)

// ModelState is the serializable whole of one trained model. It marshals
// deterministically — encoding/json writes map keys sorted — so equal
// models produce byte-identical JSON, the invariant the replication and
// crash-recovery tests pin.
type ModelState struct {
	Version  int                           `json:"version"`
	Examples int                           `json:"examples"`
	Params   Params                        `json:"params"`
	Classes  []string                      `json:"classes"`
	Bias     map[string]float64            `json:"bias"`
	Weights  map[string]map[string]float64 `json:"weights"`
	PlattA   float64                       `json:"platt_a"`
	PlattB   float64                       `json:"platt_b"`
}

// State is the serializable learned-classification state of a whole
// system: one model per ontology, keyed by the canonical ontology name
// ("cs13", "pdc12"). It rides inside durability checkpoints next to the
// relational snapshot and the workflow queue.
type State struct {
	Models map[string]*ModelState `json:"models"`
}

// State captures the model for serialization. The maps are deep-copied so
// later Updates never mutate a captured checkpoint.
func (m *Model) State() *ModelState {
	if m == nil {
		return nil
	}
	st := &ModelState{
		Version:  m.version,
		Examples: m.examples,
		Params:   m.params,
		Classes:  append([]string(nil), m.classes...),
		Bias:     make(map[string]float64, len(m.b)),
		Weights:  make(map[string]map[string]float64, len(m.w)),
		PlattA:   m.plattA,
		PlattB:   m.plattB,
	}
	for c, v := range m.b {
		st.Bias[c] = v
	}
	for c, w := range m.w {
		cw := make(map[string]float64, len(w))
		for t, v := range w {
			cw[t] = v
		}
		st.Weights[c] = cw
	}
	return st
}

// FromState rebuilds a model from its serialized form.
func FromState(o *ontology.Ontology, st *ModelState) (*Model, error) {
	if st == nil {
		return nil, fmt.Errorf("learn: nil model state")
	}
	m := &Model{
		o:        o,
		ftz:      SharedFeaturizer(o),
		version:  st.Version,
		examples: st.Examples,
		params:   st.Params,
		classes:  append([]string(nil), st.Classes...),
		b:        make(map[string]float64, len(st.Bias)),
		w:        make(map[string]map[string]float64, len(st.Weights)),
		plattA:   st.PlattA,
		plattB:   st.PlattB,
	}
	sort.Strings(m.classes)
	for _, c := range m.classes {
		if !o.Has(c) {
			return nil, fmt.Errorf("learn: state class %q not in ontology %s", c, o.Name())
		}
	}
	for c, v := range st.Bias {
		m.b[c] = v
	}
	for c, w := range st.Weights {
		cw := make(map[string]float64, len(w))
		for t, v := range w {
			cw[t] = v
		}
		m.w[c] = cw
	}
	return m, nil
}

// Marshal renders the state as canonical JSON — the byte-identity witness
// used by the replication and recovery tests and the /api/health digest.
func (s *State) Marshal() ([]byte, error) {
	return json.Marshal(s)
}
