package learn

import (
	"math"
	"sort"

	"carcs/internal/ontology"
)

// calibrate fits the Platt sigmoid P(y=1|margin) = 1/(1+exp(A*margin+B))
// on held-out folds: the examples are split into p.Folds deterministic
// folds, a model is trained on each complement, and every (margin, label)
// pair the held-out fold produces — one per class per example — feeds the
// sigmoid fit. Fitting on held-out margins matters: the final model's own
// training margins are optimistically separated, and a sigmoid fitted to
// them would report near-certainty everywhere, flattening the uncertainty
// ordering the review queue depends on.
func calibrate(o *ontology.Ontology, exs []Example, p Params) (a, b float64) {
	folds := p.Folds
	if folds > len(exs) {
		folds = len(exs)
	}
	if folds < 2 {
		// Too little data to hold anything out: identity-ish calibration.
		return -1, 0
	}
	// Deterministic fold assignment: shuffle once by seed, deal round-robin.
	perm := shuffle(len(exs), p.Seed*2654435761+17)
	var margins []float64
	var labels []bool
	for f := 0; f < folds; f++ {
		var train, held []Example
		for i, pi := range perm {
			if i%folds == f {
				held = append(held, exs[pi])
			} else {
				train = append(train, exs[pi])
			}
		}
		fm := &Model{o: o, ftz: SharedFeaturizer(o), params: p}
		sort.Slice(train, func(i, j int) bool { return train[i].ID < train[j].ID })
		fm.classes = classUnion(train)
		fm.w = make(map[string]map[string]float64, len(fm.classes))
		fm.b = make(map[string]float64, len(fm.classes))
		if len(fm.classes) == 0 {
			continue
		}
		feats := make([][]Feature, len(train))
		for i, ex := range train {
			feats[i] = fm.ftz.Features(ex.Terms)
		}
		fm.fit(train, feats, p)
		sort.Slice(held, func(i, j int) bool { return held[i].ID < held[j].ID })
		for _, ex := range held {
			if len(ex.Pos) == 0 {
				continue
			}
			hf := fm.ftz.Features(ex.Terms)
			if len(hf) == 0 {
				continue
			}
			pos := make(map[string]bool, len(ex.Pos))
			for _, c := range ex.Pos {
				pos[c] = true
			}
			for _, c := range fm.classes {
				margins = append(margins, fm.margin(c, hf))
				labels = append(labels, pos[c])
			}
		}
	}
	if len(margins) == 0 {
		return -1, 0
	}
	return plattFit(margins, labels)
}

// plattFit solves for the sigmoid parameters by Newton's method with
// backtracking, following Lin/Weng/Keerthi's numerically stable recipe.
// Inputs are processed in slice order, so the fit is deterministic.
func plattFit(margins []float64, labels []bool) (a, b float64) {
	var np, nn float64
	for _, l := range labels {
		if l {
			np++
		} else {
			nn++
		}
	}
	// Platt's target smoothing: positives aim at (N+ + 1)/(N+ + 2), not
	// 1.0, so the fit is not forced to saturate.
	hiTarget := (np + 1) / (np + 2)
	loTarget := 1 / (nn + 2)
	t := make([]float64, len(labels))
	for i, l := range labels {
		if l {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}
	a, b = 0, math.Log((nn+1)/(np+1))
	fval := plattLoss(margins, t, a, b)
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)
	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian of the cross-entropy in (a, b).
		h11, h22, h21 := sigma, sigma, 0.0
		g1, g2 := 0.0, 0.0
		for i, f := range margins {
			fApB := a*f + b
			var p, q float64
			if fApB >= 0 {
				p = math.Exp(-fApB) / (1 + math.Exp(-fApB))
				q = 1 / (1 + math.Exp(-fApB))
			} else {
				p = 1 / (1 + math.Exp(fApB))
				q = math.Exp(fApB) / (1 + math.Exp(fApB))
			}
			d2 := p * q
			h11 += f * f * d2
			h22 += d2
			h21 += f * d2
			d1 := t[i] - p
			g1 += f * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		step := 1.0
		for step >= minStep {
			na, nb := a+step*dA, b+step*dB
			nf := plattLoss(margins, t, na, nb)
			if nf < fval+1e-4*step*gd {
				a, b, fval = na, nb, nf
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return a, b
}

// plattLoss is the smoothed cross-entropy the Newton iteration minimizes.
func plattLoss(margins, t []float64, a, b float64) float64 {
	var f float64
	for i, m := range margins {
		fApB := a*m + b
		if fApB >= 0 {
			f += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			f += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}
	return f
}
