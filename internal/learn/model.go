package learn

import (
	"math"
	"sort"

	"carcs/internal/classify"
	"carcs/internal/ontology"
	"carcs/internal/textproc"
)

// Model is a trained one-vs-rest logistic regression classifier over one
// ontology's entries. A Model is immutable after construction: Train
// builds one, Update clones into a new one, and views snapshot it by
// pointer — exactly the copy-on-write discipline of the other snapped
// containers.
type Model struct {
	o   *ontology.Ontology
	ftz *Featurizer

	version  int
	examples int
	params   Params

	// classes is the sorted list of entries with at least one positive
	// training example; w and b hold each class's sparse weights and bias.
	classes []string
	w       map[string]map[string]float64
	b       map[string]float64

	// plattA/plattB map a raw margin onto a calibrated probability
	// 1/(1+exp(A*margin+B)), fitted on held-out folds at train time.
	plattA, plattB float64
}

// Name implements classify.Suggester.
func (m *Model) Name() string { return "learned" }

// Version is the model's training generation: bumped by every Train and
// every online Update, and exposed on /api/health.
func (m *Model) Version() int { return m.version }

// Examples is how many training observations the model has absorbed.
func (m *Model) Examples() int { return m.examples }

// Classes is how many ontology entries the model can propose.
func (m *Model) Classes() int { return len(m.classes) }

// Params returns the hyperparameters the model was trained with.
func (m *Model) Params() Params { return m.params }

// Trained reports whether the model has any usable classes.
func (m *Model) Trained() bool { return m != nil && len(m.classes) > 0 }

func sigmoid(x float64) float64 {
	// Split on sign so the exp argument is always non-positive: no
	// overflow, and bit-identical results for the replay path.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// margin computes b + w·x for one class, iterating the (sorted) feature
// slice so the accumulation order is deterministic.
func (m *Model) margin(class string, feats []Feature) float64 {
	s := m.b[class]
	w := m.w[class]
	if w == nil {
		return s
	}
	for _, f := range feats {
		if wt, ok := w[f.Term]; ok {
			s += wt * f.W
		}
	}
	return s
}

// Calibrated maps a raw margin onto the Platt-calibrated probability.
func (m *Model) Calibrated(margin float64) float64 {
	return sigmoid(-(m.plattA*margin + m.plattB))
}

// scoreAll returns every class's raw margin, in class order.
func (m *Model) scoreAll(feats []Feature) []float64 {
	out := make([]float64, len(m.classes))
	for i, c := range m.classes {
		out[i] = m.margin(c, feats)
	}
	return out
}

// Suggest implements classify.Suggester: the top-k entries by calibrated
// probability. Scores are calibrated posteriors in (0, 1), comparable
// across queries and against the ingest auto-apply threshold.
func (m *Model) Suggest(text string, k int) []classify.Suggestion {
	return m.SuggestTerms(textproc.Terms(text), k)
}

// SuggestTerms is Suggest for already-analyzed terms, so bulk pipelines
// tokenize once and share the list across engines.
func (m *Model) SuggestTerms(terms []string, k int) []classify.Suggestion {
	if !m.Trained() || len(terms) == 0 {
		return nil
	}
	feats := m.ftz.Features(terms)
	if len(feats) == 0 {
		return nil
	}
	margins := m.scoreAll(feats)
	out := make([]classify.Suggestion, len(m.classes))
	for i, c := range m.classes {
		out[i] = classify.Suggestion{NodeID: c, Path: m.o.Path(c), Score: m.Calibrated(margins[i])}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].NodeID < out[j].NodeID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Uncertainty scores a document for active-learning review ordering:
// 1 - (p1 - p2), the margin-sampling criterion over the two best
// calibrated posteriors, in [0, 1]. A document the model is sure about
// (one class far ahead) scores near 0; a toss-up scores near 1, and an
// untrained or empty-feature case scores exactly 1 — maximum expected
// gain from a human look.
func (m *Model) Uncertainty(terms []string) float64 {
	if !m.Trained() {
		return 1
	}
	feats := m.ftz.Features(terms)
	if len(feats) == 0 {
		return 1
	}
	var p1, p2 float64
	for i := range m.classes {
		p := m.Calibrated(m.margin(m.classes[i], feats))
		if p > p1 {
			p1, p2 = p, p1
		} else if p > p2 {
			p2 = p
		}
	}
	return 1 - (p1 - p2)
}

// Entropy is the binary entropy of the top calibrated posterior, an
// alternative uncertainty reading exposed for diagnostics.
func (m *Model) Entropy(terms []string) float64 {
	if !m.Trained() {
		return 1
	}
	feats := m.ftz.Features(terms)
	if len(feats) == 0 {
		return 1
	}
	var p1 float64
	for i := range m.classes {
		if p := m.Calibrated(m.margin(m.classes[i], feats)); p > p1 {
			p1 = p
		}
	}
	if p1 <= 0 || p1 >= 1 {
		return 0
	}
	return -(p1*math.Log2(p1) + (1-p1)*math.Log2(1-p1))
}

// ---------------------------------------------------------------------------
// training
// ---------------------------------------------------------------------------

// Train fits a model on the examples with the given params. Training is
// bit-deterministic: the same examples (in any order — they are sorted by
// ID first) and params produce an identical model everywhere.
func Train(o *ontology.Ontology, exs []Example, p Params) *Model {
	p = p.withDefaults()
	exs = append([]Example(nil), exs...)
	sort.Slice(exs, func(i, j int) bool { return exs[i].ID < exs[j].ID })

	m := &Model{o: o, ftz: SharedFeaturizer(o), version: 1, params: p, examples: len(exs)}
	m.classes = classUnion(exs)
	m.w = make(map[string]map[string]float64, len(m.classes))
	m.b = make(map[string]float64, len(m.classes))
	if len(m.classes) == 0 {
		return m
	}

	feats := make([][]Feature, len(exs))
	for i, ex := range exs {
		feats[i] = m.ftz.Features(ex.Terms)
	}

	// Calibration first, on held-out folds, so the sigmoid is fitted to
	// margins the final model has not memorized; then the final fit on
	// everything.
	m.plattA, m.plattB = calibrate(o, exs, p)
	m.fit(exs, feats, p)
	return m
}

// classUnion returns the sorted distinct positive labels.
func classUnion(exs []Example) []string {
	seen := make(map[string]bool)
	for _, ex := range exs {
		for _, c := range ex.Pos {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// fit runs the SGD epochs over the examples, mutating m's weights. Only
// Train and Update (on a fresh clone) call it.
func (m *Model) fit(exs []Example, feats [][]Feature, p Params) {
	for epoch := 0; epoch < p.Epochs; epoch++ {
		lr := p.LearnRate / (1 + 0.5*float64(epoch))
		for _, i := range shuffle(len(exs), p.Seed+uint64(epoch)*1000003) {
			m.step(exs[i], feats[i], lr, p)
		}
	}
}

// step applies one SGD update for one example: gradient descent on the
// logistic loss for every positive class, and for the HardNegatives
// top-scoring wrong classes — the ones currently outranking the truth.
func (m *Model) step(ex Example, feats []Feature, lr float64, p Params) {
	if len(feats) == 0 {
		return
	}
	if len(ex.Pos) == 0 {
		// Rejection example: push down only the explicitly refused classes.
		for _, c := range ex.Neg {
			if hasClass(m.classes, c) {
				m.gradStep(c, feats, 0, lr, p.L2)
			}
		}
		return
	}
	pos := make(map[string]bool, len(ex.Pos))
	for _, c := range ex.Pos {
		pos[c] = true
		m.gradStep(c, feats, 1, lr, p.L2)
	}
	// Hard negatives: the top-scoring classes not in the label set, by
	// margin then class id so selection is deterministic.
	type scored struct {
		c string
		s float64
	}
	var negs []scored
	for _, c := range m.classes {
		if pos[c] {
			continue
		}
		negs = append(negs, scored{c, m.margin(c, feats)})
	}
	sort.Slice(negs, func(i, j int) bool {
		if negs[i].s != negs[j].s {
			return negs[i].s > negs[j].s
		}
		return negs[i].c < negs[j].c
	})
	n := p.HardNegatives
	if n > len(negs) {
		n = len(negs)
	}
	for _, ng := range negs[:n] {
		m.gradStep(ng.c, feats, 0, lr, p.L2)
	}
}

// gradStep is one logistic-loss gradient step for one class.
func (m *Model) gradStep(class string, feats []Feature, y float64, lr, l2 float64) {
	g := sigmoid(m.margin(class, feats)) - y
	m.b[class] -= lr * g
	w := m.w[class]
	if w == nil {
		w = make(map[string]float64)
		m.w[class] = w
	}
	for _, f := range feats {
		w[f.Term] -= lr * (g*f.W + l2*w[f.Term])
	}
}

func hasClass(classes []string, c string) bool {
	i := sort.SearchStrings(classes, c)
	return i < len(classes) && classes[i] == c
}

// ---------------------------------------------------------------------------
// online updates
// ---------------------------------------------------------------------------

// Update returns a new model that has absorbed one review outcome: pos are
// entries a human confirmed for the document, neg are machine proposals a
// human rejected. The receiver is untouched (views pinned on it stay
// consistent); the clone gets one decayed SGD pass and a bumped version.
func (m *Model) Update(terms []string, pos, neg []string) *Model {
	if m == nil {
		return nil
	}
	nm := m.clone()
	nm.version++
	nm.examples++
	pos = append([]string(nil), pos...)
	sort.Strings(pos)
	neg = append([]string(nil), neg...)
	sort.Strings(neg)
	// Confirmed labels the model has never seen become new classes.
	for _, c := range pos {
		if !hasClass(nm.classes, c) {
			nm.classes = append(nm.classes, c)
		}
	}
	sort.Strings(nm.classes)
	p := nm.params.withDefaults()
	feats := nm.ftz.Features(terms)
	ex := Example{Terms: terms, Pos: pos, Neg: neg}
	// A few small steps rather than one big one: the online path mirrors
	// the tail of the decayed epoch schedule, so a single review nudges
	// the model without erasing the batch fit.
	for i := 0; i < 3; i++ {
		lr := p.LearnRate / (1 + 0.5*float64(p.Epochs+i))
		nm.step(ex, feats, lr, p)
	}
	return nm
}

// clone deep-copies the mutable containers; the featurizer and ontology
// are shared immutable singletons.
func (m *Model) clone() *Model {
	nm := *m
	nm.classes = append([]string(nil), m.classes...)
	nm.b = make(map[string]float64, len(m.b))
	for c, v := range m.b {
		nm.b[c] = v
	}
	nm.w = make(map[string]map[string]float64, len(m.w))
	for c, w := range m.w {
		cw := make(map[string]float64, len(w))
		for t, v := range w {
			cw[t] = v
		}
		nm.w[c] = cw
	}
	return &nm
}

// SetVersion stamps the model's version before it is installed; the core
// system uses it to keep the version monotonic across retrains.
func (m *Model) SetVersion(v int) { m.version = v }
