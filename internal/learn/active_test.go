package learn

import (
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/ontology"
)

// hitAt3 is the fraction of examples whose top-3 suggestions contain at
// least one true label — the metric the review queue exists to improve.
func hitAt3(m *Model, exs []Example) float64 {
	if len(exs) == 0 {
		return 0
	}
	hits := 0
	for _, ex := range exs {
		truth := make(map[string]bool, len(ex.Pos))
		for _, c := range ex.Pos {
			truth[c] = true
		}
		for _, sg := range m.SuggestTerms(ex.Terms, 3) {
			if truth[sg.NodeID] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(exs))
}

// TestUncertaintySelectionBeatsFIFO is the justification for ordering the
// review queue by uncertainty instead of arrival: with a fixed labeling
// budget, spending reviews on the documents the model is least sure about
// must teach it more than reviewing in submission order. The simulation
// deals the corpus into a small initial training set, a review pool, and a
// held-out eval set, then spends the same budget two ways — FIFO versus
// always-most-uncertain — and compares held-out hit@3 averaged over several
// deterministic splits (single splits are too noisy to gate on).
func TestUncertaintySelectionBeatsFIFO(t *testing.T) {
	o := ontology.CS13()
	all := ExamplesFromMaterials(o, corpus.AllMaterials())
	if len(all) < 60 {
		t.Fatalf("corpus too small for the simulation: %d examples", len(all))
	}
	const (
		initial = 15 // examples the model starts trained on
		pool    = 40 // submissions awaiting review
		budget  = 12 // reviews the simulated editors have time for
	)
	var sumActive, sumFIFO float64
	seeds := []uint64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		perm := shuffle(len(all), seed*6364136223846793005+1442695040888963407)
		deal := make([]Example, len(all))
		for i, pi := range perm {
			deal[i] = all[pi]
		}
		train, rest := deal[:initial], deal[initial:]
		reviewPool := append([]Example(nil), rest[:pool]...)
		eval := rest[pool:]

		p := DefaultParams()
		p.Seed = seed
		base := Train(o, train, p)

		// FIFO: review the pool in arrival order.
		fifo := base
		for i := 0; i < budget; i++ {
			fifo = fifo.Update(reviewPool[i].Terms, reviewPool[i].Pos, nil)
		}

		// Active: always review the currently most-uncertain submission,
		// re-ranking after every update exactly as the live queue does.
		// Ties break toward arrival order, matching ReviewQueue.
		active := base
		remaining := append([]Example(nil), reviewPool...)
		for i := 0; i < budget; i++ {
			best, bestU := 0, -1.0
			for j, ex := range remaining {
				if u := active.Uncertainty(ex.Terms); u > bestU {
					best, bestU = j, u
				}
			}
			active = active.Update(remaining[best].Terms, remaining[best].Pos, nil)
			remaining = append(remaining[:best], remaining[best+1:]...)
		}

		sumActive += hitAt3(active, eval)
		sumFIFO += hitAt3(fifo, eval)
	}
	avgActive := sumActive / float64(len(seeds))
	avgFIFO := sumFIFO / float64(len(seeds))
	t.Logf("held-out hit@3 over %d seeds: active=%.3f fifo=%.3f", len(seeds), avgActive, avgFIFO)
	if avgActive <= avgFIFO {
		t.Errorf("uncertainty-ordered review (%.3f) did not beat FIFO (%.3f)", avgActive, avgFIFO)
	}
}
