package learn

import (
	"math"
	"sort"
	"sync"

	"carcs/internal/ontology"
	"carcs/internal/textproc"
)

// Feature is one component of a sparse feature vector, kept in a slice
// sorted by term so every dot product and norm accumulates in the same
// order on every node — a map would make float rounding depend on
// iteration order and break byte-identical replication.
type Feature struct {
	Term string
	W    float64
}

// Featurizer maps analyzed terms onto L2-normalized TF-IDF features. The
// IDF table comes from the ontology's own entry paths — the same
// training-free corpus the TF-IDF suggester scores against — so the
// feature space is fixed at process start, identical on every node, and
// independent of what has been ingested or trained.
type Featurizer struct {
	corpus *textproc.Corpus
	// maxIDF is the weight of a term absent from every entry path.
	maxIDF float64
}

// NewFeaturizer builds the featurizer for one ontology.
func NewFeaturizer(o *ontology.Ontology) *Featurizer {
	c := textproc.NewCorpus()
	for _, id := range o.Classifiable() {
		c.Add(id, o.Path(id))
	}
	c.Finalize()
	return &Featurizer{
		corpus: c,
		maxIDF: math.Log(float64(c.Len())+1) + 1,
	}
}

// Features converts analyzed terms into a sorted, L2-normalized sparse
// vector: weight = (1 + log tf) * idf, then the whole vector scaled to
// unit norm so documents of different lengths train comparably.
func (f *Featurizer) Features(terms []string) []Feature {
	if len(terms) == 0 {
		return nil
	}
	tf := textproc.CountTerms(terms)
	out := make([]Feature, 0, len(tf))
	for t, n := range tf {
		idf := f.corpus.IDF(t)
		if idf == 0 {
			idf = f.maxIDF
		}
		out = append(out, Feature{Term: t, W: (1 + math.Log(float64(n))) * idf})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	var norm float64
	for _, ft := range out {
		norm += ft.W * ft.W
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return nil
	}
	for i := range out {
		out[i].W /= norm
	}
	return out
}

// The featurizer is derived entirely from the (immutable, process-wide
// singleton) ontology, so one instance per ontology serves every model,
// mirroring classify.SharedKeyword/SharedTFIDF.
var (
	sharedMu  sync.Mutex
	sharedFtz = map[*ontology.Ontology]*Featurizer{}
)

// SharedFeaturizer returns the process-wide featurizer for the ontology.
// The result is safe for concurrent use; callers must not mutate it.
func SharedFeaturizer(o *ontology.Ontology) *Featurizer {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	f, ok := sharedFtz[o]
	if !ok {
		f = NewFeaturizer(o)
		sharedFtz[o] = f
	}
	return f
}
