package server

import (
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"

	"carcs/internal/core"
)

// The system publishes an immutable View per committed mutation, and read
// results are memoized per generation, so the view's generation doubles as
// a perfect validator: a response computed from the view pinned at
// generation g stays byte-valid until the next mutation. Read endpoints
// publish it as a strong ETag and honor If-None-Match, letting clients (and
// the CLI polling coverage dashboards) skip both the transfer and the
// server-side recompute.

// viewCtxKey carries the request's pinned *core.View in its context.
type viewCtxKey struct{}

// view returns the View pinned for this request by withETag, or resolves
// the current one for handlers outside the ETag middleware. Handlers must
// call it once and reuse the result, so every read in a request observes
// the same generation.
func (s *Server) view(r *http.Request) *core.View {
	if v, ok := r.Context().Value(viewCtxKey{}).(*core.View); ok {
		return v
	}
	return s.tenantSys(r).View()
}

// viewTag renders a view's generation as a quoted strong validator.
func viewTag(v *core.View) string {
	return `"` + strconv.FormatUint(v.Gen(), 10) + `"`
}

// etagMatch reports whether an If-None-Match header value matches the tag,
// handling the wildcard, comma-separated lists, and weak prefixes.
func etagMatch(header, tag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c), "W/"))
		if c == tag || c == "*" {
			return true
		}
	}
	return false
}

// withETag wraps a read handler with conditional-request support. It
// resolves the current view once, pins it in the request context, and
// serves the view's generation as the ETag — so the validator, the 304
// decision, and every read the handler performs all agree on one snapshot.
// A commit racing the request only affects later requests: this one keeps
// its pinned view, and the tag it published is exactly the generation its
// body was computed from, so a 304 is never served for data older than the
// client's validator.
func (s *Server) withETag(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v := s.tenantSys(r).View()
		tag := viewTag(v)
		w.Header().Set("ETag", tag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, tag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		br := &bodyRecorder{ResponseWriter: w}
		h(br, r.WithContext(context.WithValue(r.Context(), viewCtxKey{}, v)))
		if br.cacheable() {
			// Memoize the rendered response under its generation so a
			// future shed of the same URI can serve it (possibly marked
			// CARCS-Stale) instead of a bare 503. See serveStale.
			body := make([]byte, br.buf.Len())
			copy(body, br.buf.Bytes())
			s.tenantSys(r).ResultCache().Put(s.staleKey(r), v.Gen(), &cachedResponse{
				body:        body,
				contentType: br.Header().Get("Content-Type"),
			})
		}
	}
}

// maxMemoBody caps how large a rendered response the server will memoize
// for degraded-mode serving; bigger bodies are simply not cached.
const maxMemoBody = 1 << 20

// cachedResponse is a memoized rendered read response, stored in the
// generation-keyed result cache under the request URI.
type cachedResponse struct {
	body        []byte
	contentType string
}

// bodyRecorder tees a handler's output into memory so a successful read
// can be memoized. Buffering aborts permanently on a non-200 status, a
// failed underlying write (e.g. the timeout handler cut the request off),
// or a body beyond maxMemoBody.
type bodyRecorder struct {
	http.ResponseWriter
	buf      bytes.Buffer
	status   int
	wrote    bool
	overflow bool
	failed   bool
}

func (br *bodyRecorder) WriteHeader(code int) {
	if !br.wrote {
		br.status = code
		br.wrote = true
	}
	br.ResponseWriter.WriteHeader(code)
}

func (br *bodyRecorder) Write(p []byte) (int, error) {
	if !br.wrote {
		br.status = http.StatusOK
		br.wrote = true
	}
	n, err := br.ResponseWriter.Write(p)
	if err != nil {
		br.failed = true
	}
	if !br.overflow && br.status == http.StatusOK {
		if br.buf.Len()+n > maxMemoBody {
			br.overflow = true
			br.buf.Reset()
		} else {
			br.buf.Write(p[:n])
		}
	}
	return n, err
}

// Flush passes through so streaming handlers keep working.
func (br *bodyRecorder) Flush() {
	if f, ok := br.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (br *bodyRecorder) cacheable() bool {
	return br.wrote && br.status == http.StatusOK && !br.overflow && !br.failed && br.buf.Len() > 0
}
