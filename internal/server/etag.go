package server

import (
	"context"
	"net/http"
	"strconv"
	"strings"

	"carcs/internal/core"
)

// The system publishes an immutable View per committed mutation, and read
// results are memoized per generation, so the view's generation doubles as
// a perfect validator: a response computed from the view pinned at
// generation g stays byte-valid until the next mutation. Read endpoints
// publish it as a strong ETag and honor If-None-Match, letting clients (and
// the CLI polling coverage dashboards) skip both the transfer and the
// server-side recompute.

// viewCtxKey carries the request's pinned *core.View in its context.
type viewCtxKey struct{}

// view returns the View pinned for this request by withETag, or resolves
// the current one for handlers outside the ETag middleware. Handlers must
// call it once and reuse the result, so every read in a request observes
// the same generation.
func (s *Server) view(r *http.Request) *core.View {
	if v, ok := r.Context().Value(viewCtxKey{}).(*core.View); ok {
		return v
	}
	return s.sys.View()
}

// viewTag renders a view's generation as a quoted strong validator.
func viewTag(v *core.View) string {
	return `"` + strconv.FormatUint(v.Gen(), 10) + `"`
}

// etagMatch reports whether an If-None-Match header value matches the tag,
// handling the wildcard, comma-separated lists, and weak prefixes.
func etagMatch(header, tag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c), "W/"))
		if c == tag || c == "*" {
			return true
		}
	}
	return false
}

// withETag wraps a read handler with conditional-request support. It
// resolves the current view once, pins it in the request context, and
// serves the view's generation as the ETag — so the validator, the 304
// decision, and every read the handler performs all agree on one snapshot.
// A commit racing the request only affects later requests: this one keeps
// its pinned view, and the tag it published is exactly the generation its
// body was computed from, so a 304 is never served for data older than the
// client's validator.
func (s *Server) withETag(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v := s.sys.View()
		tag := viewTag(v)
		w.Header().Set("ETag", tag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, tag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), viewCtxKey{}, v)))
	}
}
