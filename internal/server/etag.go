package server

import (
	"net/http"
	"strconv"
	"strings"
)

// The system's generation counter advances on every mutation and read
// results are memoized per generation, so the generation doubles as a
// perfect validator: a response computed at generation g stays byte-valid
// until the next mutation. Read endpoints publish it as a strong ETag and
// honor If-None-Match, letting clients (and the CLI polling coverage
// dashboards) skip both the transfer and the server-side recompute.

// etag returns the current generation as a quoted strong validator.
func (s *Server) etag() string {
	return `"` + strconv.FormatUint(s.sys.Generation(), 10) + `"`
}

// etagMatch reports whether an If-None-Match header value matches the tag,
// handling the wildcard, comma-separated lists, and weak prefixes.
func etagMatch(header, tag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c), "W/"))
		if c == tag || c == "*" {
			return true
		}
	}
	return false
}

// withETag wraps a read handler with conditional-request support. The
// generation is captured before the handler runs, so a mutation racing the
// response can only make the published tag conservatively stale (the next
// revalidation recomputes); it can never label old data with a new tag.
func (s *Server) withETag(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tag := s.etag()
		w.Header().Set("ETag", tag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, tag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h(w, r)
	}
}
