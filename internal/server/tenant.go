package server

import (
	"context"
	"net/http"
	"strings"

	"carcs/internal/core"
)

// tenantCtxKey carries the resolved workspace through the request context.
type tenantCtxKey struct{}

type tenantInfo struct {
	name string
	sys  *core.System
}

// SetWorkspaces attaches the durable workspace set (from
// core.Persister.Workspaces) so tenant routes resolve against it; without
// it the server wraps its System as a default-only set. Call before Serve.
func (s *Server) SetWorkspaces(ws *core.Workspaces) {
	s.ws = ws
}

// Workspaces returns the workspace set requests resolve against.
func (s *Server) Workspaces() *core.Workspaces { return s.ws }

// tenant returns the request's resolved workspace name and System. Requests
// that never passed withTenant (direct handler tests) fall back to the
// default workspace.
func (s *Server) tenant(r *http.Request) (string, *core.System) {
	if ti, ok := r.Context().Value(tenantCtxKey{}).(*tenantInfo); ok {
		return ti.name, ti.sys
	}
	return core.DefaultTenant, s.ws.Default()
}

// tenantSys returns the System the request's workspace scope resolves to.
func (s *Server) tenantSys(r *http.Request) *core.System {
	_, sys := s.tenant(r)
	return sys
}

// withTenant resolves the workspace dimension of every request.
// /api/t/{name}/rest rewrites to /api/rest with the named workspace pinned
// in the context; bare /api/t/{name} is the workspace management resource
// (PUT creates, GET inspects); every other path is the legacy surface and
// aliases the default workspace. Rewriting (rather than doubling every mux
// route) keeps one route table, and means everything downstream — ETag
// keys, the serve-stale cache, rate-limit buckets — sees the tenant
// explicitly via the context, never implicitly via the path.
func (s *Server) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rest, ok := strings.CutPrefix(r.URL.Path, "/api/t/"); ok {
			name, sub, slash := strings.Cut(rest, "/")
			if !slash || sub == "" {
				s.handleTenantResource(w, r, strings.TrimSuffix(name, "/"))
				return
			}
			sys, found := s.ws.Get(name)
			if !found {
				writeError(w, http.StatusNotFound, "no such workspace")
				return
			}
			r2 := r.Clone(context.WithValue(r.Context(), tenantCtxKey{}, &tenantInfo{name: name, sys: sys}))
			r2.URL.Path = "/api/" + sub
			r2.URL.RawPath = ""
			next.ServeHTTP(w, r2)
			return
		}
		ctx := context.WithValue(r.Context(), tenantCtxKey{}, &tenantInfo{name: core.DefaultTenant, sys: s.ws.Default()})
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// tenantJSON is the workspace management/inspection shape.
type tenantJSON struct {
	Name       string `json:"name"`
	Materials  int    `json:"materials"`
	Generation uint64 `json:"generation"`
	QueueDepth int    `json:"queue_depth"`
	Quota      int    `json:"quota,omitempty"`
}

func tenantStatus(name string, sys *core.System) tenantJSON {
	return tenantJSON{
		Name:       name,
		Materials:  sys.Len(),
		Generation: sys.Generation(),
		QueueDepth: len(sys.Workflow().Pending()),
		Quota:      sys.MaterialLimit(),
	}
}

// handleTenantResource serves PUT/GET /api/t/{name}: explicit workspace
// creation (idempotent, like the route it mirrors in checkpoints) and
// inspection. Runs outside the mux, from withTenant.
func (s *Server) handleTenantResource(w http.ResponseWriter, r *http.Request, name string) {
	switch r.Method {
	case http.MethodPut:
		if f := s.repl.Load().follower; f != nil {
			// A follower's tenant set, like the rest of its state, is
			// whatever the leader's WAL says it is.
			w.Header().Set("Leader", f.LeaderURL())
			writeError(w, http.StatusServiceUnavailable,
				"read-only follower: create workspaces on the leader at "+f.LeaderURL())
			return
		}
		if fence := s.repl.Load().fence; fence != nil && fence.Fenced() {
			// Workspace creation is a write; a deposed leader refuses it
			// like any other mutation (this path sits outside the
			// resilience middleware, so the fence is checked here too).
			if lead := fence.Leader(); lead != "" {
				w.Header().Set("Leader", lead)
			}
			writeError(w, http.StatusServiceUnavailable,
				"leader fenced: create workspaces on the current leader")
			return
		}
		if name != core.DefaultTenant {
			if err := core.ValidateTenantName(name); err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		sys, created, err := s.ws.Create(name)
		if err != nil {
			s.writeMutationError(w, http.StatusInternalServerError, err)
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, tenantStatus(name, sys))
	case http.MethodGet, http.MethodHead:
		sys, ok := s.ws.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "no such workspace")
			return
		}
		writeJSON(w, http.StatusOK, tenantStatus(name, sys))
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// handleListTenants serves GET /api/tenants: every workspace with its
// per-tenant counters, the default workspace first.
func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	var out []tenantJSON
	s.ws.Each(func(name string, sys *core.System) {
		out = append(out, tenantStatus(name, sys))
	})
	writeJSON(w, http.StatusOK, map[string]any{"total": len(out), "tenants": out})
}
