// Package server exposes the CAR-CS system as a RESTful JSON web service,
// standing in for the Django prototype hosted on Heroku (Sec. III-B): the
// same resources (materials, classifications, coverage, similarity, search)
// behind HTTP endpoints, plus the account/role layer the paper lists as
// future work.
//
// Authentication is deliberately simple — an X-User header resolved against
// the workflow accounts — because the reproduction's focus is the resource
// model and role enforcement, not credential management.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"carcs/internal/core"
	"carcs/internal/jobs"
	"carcs/internal/material"
	"carcs/internal/replica"
	"carcs/internal/resilience"
	"carcs/internal/workflow"
)

// Body caps for JSON POST endpoints. Oversized requests get 413 with the
// standard error envelope instead of an opaque decode failure.
const (
	// maxJSONBody bounds ordinary JSON bodies (one material, one review).
	maxJSONBody = 1 << 20
	// maxBatchBody caps POST /api/materials:batch — wider than a single
	// material, narrower than a whole JSONL import.
	maxBatchBody = 8 << 20
	// maxImportBody bounds the bulk JSONL import payload.
	maxImportBody = 64 << 20
)

// Server routes HTTP requests onto a core.System.
type Server struct {
	sys       *core.System
	ws        *core.Workspaces
	mux       *http.ServeMux
	log       *log.Logger
	persister *core.Persister
	runner    *jobs.Runner
	timeout   time.Duration
	handler   http.Handler

	// Overload controls (see resilience.go): adaptive admission, optional
	// per-client rate limiting, and the serve-stale generation allowance.
	limiter   *resilience.Limiter
	ratelimit *resilience.RateLimiter
	staleGens uint64

	// repl is the node's replication identity (see replication.go):
	// persister, write breaker, hub or follower, epoch fence, and the
	// replication sub-mux, swapped as one value. It is an atomic pointer
	// because promotion replaces the whole set mid-traffic — a request
	// observes either the follower identity or the leader identity, never
	// a half-updated mix.
	repl atomic.Pointer[replState]

	// Promotion target (SetPromotion): where a promoted follower opens its
	// own journal, and the commit options it adopts. promoteMu serializes
	// concurrent promote requests.
	promoteMu        sync.Mutex
	promoteDir       string
	promoteOpts      core.DurableOptions
	promoteAdvertise string
	promoteReady     bool
}

// replState is one immutable snapshot of the server's replication identity.
type replState struct {
	persister *core.Persister
	breaker   *resilience.Breaker
	hub       *replica.Hub
	follower  *replica.Follower
	fence     *replica.Fence
	replMux   *http.ServeMux
}

// New builds a server around the system, logging to w (io.Discard for
// silence). The server owns a background-job runner (worker pool sized to
// GOMAXPROCS) executing bulk imports off the request path; call DrainJobs
// during shutdown so in-flight jobs finish before exit.
func New(sys *core.System, w io.Writer) *Server {
	s := &Server{
		sys:       sys,
		ws:        core.NewWorkspaces(sys),
		mux:       http.NewServeMux(),
		log:       log.New(w, "carcs ", log.LstdFlags),
		runner:    jobs.NewRunner(0, 0),
		timeout:   DefaultRequestTimeout,
		limiter:   resilience.NewLimiter(resilience.LimiterConfig{}),
		staleGens: 1,
	}
	s.repl.Store(&replState{})
	// Background bulk jobs compete for the same capacity as requests:
	// each holds one bulk-class slot while it runs, so foreground reads
	// and writes are never starved by an import sweep.
	s.runner.SetAdmission(func(ctx context.Context) (func(), error) {
		return s.limiter.Acquire(ctx, resilience.ClassBulk)
	})
	s.routes()
	s.rebuildHandler()
	return s
}

// Runner exposes the background-job runner (tests and the drain path).
func (s *Server) Runner() *jobs.Runner { return s.runner }

// DrainJobs refuses new job submissions and blocks until queued and
// running jobs finish, or until ctx expires (then jobs are cancelled —
// each stops between items, so partial progress stays consistent and
// journaled). Call after the HTTP listener stops and before the final
// checkpoint, so the checkpoint includes everything the jobs committed.
func (s *Server) DrainJobs(ctx context.Context) error {
	return s.runner.Close(ctx)
}

// SetPersister attaches the durability layer so /api/health can report
// journal and checkpoint state and the HTTP layer can fast-fail writes
// when the journal circuit is open. Call before serving.
func (s *Server) SetPersister(p *core.Persister) {
	s.updateRepl(func(st *replState) {
		st.persister = p
		st.breaker = p.Breaker()
	})
}

// Persister returns the node's durability layer, nil on an ephemeral or
// (not yet promoted) follower node. The shutdown path uses it to close the
// journal a promotion opened mid-run.
func (s *Server) Persister() *core.Persister { return s.repl.Load().persister }

// updateRepl applies f to a copy of the current replication identity and
// swaps it in atomically.
func (s *Server) updateRepl(f func(*replState)) {
	for {
		cur := s.repl.Load()
		next := *cur
		f(&next)
		if s.repl.CompareAndSwap(cur, &next) {
			return
		}
	}
}

// SetRequestTimeout changes the per-request deadline (0 disables it). Call
// before serving.
func (s *Server) SetRequestTimeout(d time.Duration) {
	s.timeout = d
	s.rebuildHandler()
}

// rebuildHandler assembles the middleware stack: request logging outermost
// (so it records the final status even of panics and timeouts), panic
// recovery next, the per-request timeout, then admission control — inside
// the timeout so the limiter's wait budget sees the request deadline.
func (s *Server) rebuildHandler() {
	h := s.withResilience(s.mux)
	if s.timeout > 0 {
		h = http.TimeoutHandler(h, s.timeout, `{"error":"request timed out"}`)
	}
	// Tenant resolution wraps the timeout+admission stack: it rewrites
	// /api/t/{name}/... to the legacy path with the workspace pinned in
	// the request context, so everything inside (rate keys, stale cache,
	// handlers) sees an explicit tenant.
	h = s.withTenant(h)
	// Replication endpoints are routed around the timeout and admission
	// stack (see replication.go). The bypass resolves the replication
	// sub-mux per request, so a promotion swapping follower routes for
	// leader routes needs no handler rebuild.
	h = s.replicationBypass(h)
	s.handler = s.withLogging(s.withRecovery(h))
}

// ServeHTTP implements http.Handler through the middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) routes() {
	// HTML pages (the prototype's webpages).
	s.mux.HandleFunc("GET /{$}", s.handleHome)
	s.mux.HandleFunc("GET /materials", s.handleMaterialsPage)
	s.mux.HandleFunc("GET /materials/{id}", s.handleMaterialPage)
	s.mux.HandleFunc("GET /coverage", s.handleCoveragePage)
	s.mux.HandleFunc("GET /similarity", s.handleSimilarityPage)

	// JSON API.
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/tenants", s.handleListTenants)
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/health/live", s.handleHealthLive)
	s.mux.HandleFunc("GET /api/health/ready", s.handleHealthReady)

	s.mux.HandleFunc("GET /api/materials", s.withETag(s.handleListMaterials))
	s.mux.HandleFunc("POST /api/materials", s.requireRole(workflow.RoleEditor, s.handleCreateMaterial))
	s.mux.HandleFunc("POST /api/materials:batch", s.requireRole(workflow.RoleEditor, s.handleCreateMaterialBatch))
	s.mux.HandleFunc("GET /api/materials/{id}", s.withETag(s.handleGetMaterial))
	s.mux.HandleFunc("DELETE /api/materials/{id}", s.requireRole(workflow.RoleEditor, s.handleDeleteMaterial))
	s.mux.HandleFunc("PUT /api/materials/{id}/classifications", s.requireRole(workflow.RoleEditor, s.handleReclassify))
	s.mux.HandleFunc("GET /api/materials/{id}/replacements", s.withETag(s.handleReplacements))

	s.mux.HandleFunc("GET /api/ontologies", s.handleOntologies)
	s.mux.HandleFunc("GET /api/ontologies/{name}/search", s.handleOntologySearch)
	s.mux.HandleFunc("GET /api/ontologies/{name}/node/{id...}", s.handleOntologyNode)

	s.mux.HandleFunc("GET /api/coverage", s.withETag(s.handleCoverage))
	s.mux.HandleFunc("GET /api/gaps", s.withETag(s.handleGaps))
	s.mux.HandleFunc("GET /api/similarity", s.withETag(s.handleSimilarity))
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/suggest", s.withETag(s.handleSuggest))
	s.mux.HandleFunc("GET /api/recommend", s.withETag(s.handleRecommend))

	s.mux.HandleFunc("GET /api/depth", s.withETag(s.handleDepth))
	s.mux.HandleFunc("GET /api/snapshot", s.handleSnapshot)

	// Async bulk ingestion: submit returns 202 + a job ID; progress and
	// per-item errors are polled from the jobs resource.
	s.mux.HandleFunc("POST /api/import", s.requireRole(workflow.RoleEditor, s.handleImport))
	s.mux.HandleFunc("GET /api/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /api/jobs/{id}", s.requireRole(workflow.RoleEditor, s.handleCancelJob))

	s.mux.HandleFunc("POST /api/accounts", s.handleRegister)
	s.mux.HandleFunc("POST /api/edits", s.requireRole(workflow.RoleUser, s.handleSuggestEdit))
	s.mux.HandleFunc("GET /api/edits", s.requireRole(workflow.RoleEditor, s.handleUnverifiedEdits))
	s.mux.HandleFunc("POST /api/edits/{id}/verify", s.requireRole(workflow.RoleEditor, s.handleVerifyEdit))
	s.mux.HandleFunc("POST /api/submissions", s.requireRole(workflow.RoleSubmitter, s.handleSubmit))
	s.mux.HandleFunc("GET /api/submissions", s.requireRole(workflow.RoleEditor, s.handlePendingSubmissions))
	s.mux.HandleFunc("POST /api/submissions/{id}/review", s.requireRole(workflow.RoleEditor, s.handleReview))

	// Active learning: the uncertainty-ordered review queue and on-demand
	// retraining of the learned classifier.
	s.mux.HandleFunc("GET /api/review/queue", s.requireRole(workflow.RoleEditor, s.handleReviewQueue))
	s.mux.HandleFunc("POST /api/learn/train", s.requireRole(workflow.RoleEditor, s.handleLearnTrain))
}

// ---------------------------------------------------------------------------
// plumbing
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503
	// responses, so clients parsing only the body still back off right.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

// requireRole resolves the X-User header against the workflow accounts and
// rejects requests below the minimum role.
func (s *Server) requireRole(min workflow.Role, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.Header.Get("X-User")
		if name == "" {
			writeError(w, http.StatusUnauthorized, "missing X-User header")
			return
		}
		acct, ok := s.tenantSys(r).Workflow().Account(name)
		if !ok {
			writeError(w, http.StatusUnauthorized, fmt.Sprintf("unknown account %q", name))
			return
		}
		if acct.Role < min {
			writeError(w, http.StatusForbidden,
				fmt.Sprintf("%s is a %s; this endpoint needs %s", name, acct.Role, min))
			return
		}
		h(w, r)
	}
}

// intParam parses an optional integer query parameter, returning def when
// the parameter is absent or empty. A malformed value ("abc", "1.5") is an
// error, which handlers surface as a 400 with the standard envelope —
// silently falling back to the default would mask client bugs (a paginator
// sending limit=abc would quietly receive the whole corpus).
func intParam(q url.Values, name string, def int) (int, error) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q must be an integer, got %q", name, raw)
	}
	return n, nil
}

// materialJSON is the wire form of a material.
type materialJSON struct {
	ID              string   `json:"id"`
	Title           string   `json:"title"`
	Authors         []string `json:"authors,omitempty"`
	URL             string   `json:"url,omitempty"`
	Description     string   `json:"description,omitempty"`
	Kind            string   `json:"kind"`
	Level           string   `json:"level"`
	Language        string   `json:"language,omitempty"`
	Datasets        []string `json:"datasets,omitempty"`
	Year            int      `json:"year,omitempty"`
	Collection      string   `json:"collection,omitempty"`
	Tags            []string `json:"tags,omitempty"`
	Classifications []string `json:"classifications"`
}

func toJSON(m *material.Material) materialJSON {
	return materialJSON{
		ID: m.ID, Title: m.Title, Authors: m.Authors, URL: m.URL,
		Description: m.Description, Kind: string(m.Kind), Level: string(m.Level),
		Language: m.Language, Datasets: m.Datasets, Year: m.Year,
		Collection: m.Collection, Tags: m.Tags,
		Classifications: m.ClassificationIDs(),
	}
}

func fromJSON(mj materialJSON) *material.Material {
	m := &material.Material{
		ID: mj.ID, Title: mj.Title, Authors: mj.Authors, URL: mj.URL,
		Description: mj.Description, Kind: material.Kind(mj.Kind),
		Level: material.Level(mj.Level), Language: mj.Language,
		Datasets: mj.Datasets, Year: mj.Year, Collection: mj.Collection,
		Tags: mj.Tags,
	}
	for _, c := range mj.Classifications {
		m.Classifications = append(m.Classifications, material.Classification{NodeID: c})
	}
	return m
}

// decodeBody parses a JSON request body into into, enforcing the standard
// body cap. On failure it writes the error response itself — 413 for an
// oversized body, 400 for malformed JSON — and returns false.
func decodeBody[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxJSONBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
