package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"carcs/internal/core"
	"carcs/internal/corpus"
	"carcs/internal/ingest"
	"carcs/internal/jobs"
	"carcs/internal/workflow"
)

// doRaw posts a raw (non-JSON-marshalled) body.
func doRaw(t *testing.T, s *Server, method, path, user, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if user != "" {
		req.Header.Set("X-User", user)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// syntheticJSONL renders n synthetic materials as import input.
func syntheticJSONL(t testing.TB, n int, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ingest.WriteJSONL(&buf, corpus.Synthetic(corpus.SyntheticOptions{N: n, Seed: seed}).All()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// waitJob polls the jobs API until the job is terminal, asserting progress
// counters never move backwards, and returns the final snapshot.
func waitJob(t *testing.T, s *Server, id int64) jobs.Snapshot {
	t.Helper()
	var last int64 = -1
	// Generous: the 10k scale test under -race on one core needs minutes.
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		rec := do(t, s, "GET", fmt.Sprintf("/api/jobs/%d", id), "", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("get job = %d %s", rec.Code, rec.Body)
		}
		snap := decode[jobs.Snapshot](t, rec)
		if done := snap.Progress.Done(); done < last {
			t.Fatalf("progress went backwards: %d -> %d", last, done)
		} else {
			last = done
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return jobs.Snapshot{}
}

func TestImportEndpointAsync(t *testing.T) {
	s, sys := newTestServer(t)
	before := sys.Len()
	rec := doRaw(t, s, "POST", "/api/import", "ed", syntheticJSONL(t, 50, 21))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("import = %d %s", rec.Code, rec.Body)
	}
	resp := decode[map[string]any](t, rec)
	id := int64(resp["job"].(float64))
	snap := waitJob(t, s, id)
	if snap.State != jobs.StateDone {
		t.Fatalf("job = %+v", snap)
	}
	if snap.Progress.OK != 50 || snap.Progress.Failed != 0 {
		t.Errorf("progress = %+v", snap.Progress)
	}
	if sys.Len() != before+50 {
		t.Errorf("corpus %d -> %d", before, sys.Len())
	}
	if snap.Result == nil {
		t.Error("job result summary missing")
	}
}

func TestImportRequiresEditor(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := doRaw(t, s, "POST", "/api/import", "", `{"id":"x"}`); rec.Code != http.StatusUnauthorized {
		t.Errorf("anonymous import = %d", rec.Code)
	}
	if rec := doRaw(t, s, "POST", "/api/import", "bob", `{"id":"x"}`); rec.Code != http.StatusForbidden {
		t.Errorf("user import = %d", rec.Code)
	}
}

func TestImportRejectsEmptyAndBadParams(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := doRaw(t, s, "POST", "/api/import", "ed", "  \n "); rec.Code != http.StatusBadRequest {
		t.Errorf("empty body = %d", rec.Code)
	}
	if rec := doRaw(t, s, "POST", "/api/import?threshold=7", "ed", `{"id":"x"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad threshold = %d", rec.Code)
	}
	if rec := doRaw(t, s, "POST", "/api/import?method=oracle", "ed", `{"id":"x"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad method = %d", rec.Code)
	}
}

func TestImportReportsPerItemErrors(t *testing.T) {
	s, sys := newTestServer(t)
	good := syntheticJSONL(t, 2, 22)
	input := "{broken\n" + good + `{"id":"bad","title":"x","kind":"widget","level":"CS1"}` + "\n"
	rec := doRaw(t, s, "POST", "/api/import?method=none", "ed", input)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("import = %d %s", rec.Code, rec.Body)
	}
	id := int64(decode[map[string]any](t, rec)["job"].(float64))
	snap := waitJob(t, s, id)
	if snap.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", snap.State, snap.Error)
	}
	if snap.Progress.OK != 2 || snap.Progress.Failed != 2 {
		t.Errorf("progress = %+v", snap.Progress)
	}
	if len(snap.ItemErrors) != 2 {
		t.Errorf("item errors = %+v", snap.ItemErrors)
	}
	_ = sys
}

func TestJobsListingAndNotFound(t *testing.T) {
	s, _ := newTestServer(t)
	rec := doRaw(t, s, "POST", "/api/import", "ed", syntheticJSONL(t, 3, 23))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("import = %d", rec.Code)
	}
	id := int64(decode[map[string]any](t, rec)["job"].(float64))
	waitJob(t, s, id)
	list := decode[[]jobs.Snapshot](t, do(t, s, "GET", "/api/jobs", "", nil))
	if len(list) != 1 || list[0].ID != id || list[0].Kind != "import" {
		t.Errorf("jobs = %+v", list)
	}
	if rec := do(t, s, "GET", "/api/jobs/999", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing job = %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/jobs/zzz", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d", rec.Code)
	}
}

func TestJobCancellationEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	// A big enough import that cancellation lands mid-flight.
	rec := doRaw(t, s, "POST", "/api/import?workers=1", "ed", syntheticJSONL(t, 5000, 24))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("import = %d", rec.Code)
	}
	id := int64(decode[map[string]any](t, rec)["job"].(float64))
	if rec := do(t, s, "DELETE", fmt.Sprintf("/api/jobs/%d", id), "ed", nil); rec.Code != http.StatusOK {
		t.Fatalf("cancel = %d %s", rec.Code, rec.Body)
	}
	snap := waitJob(t, s, id)
	if snap.State != jobs.StateCancelled && snap.State != jobs.StateDone {
		t.Fatalf("state = %s", snap.State)
	}
	// Cancelling a finished job conflicts.
	if rec := do(t, s, "DELETE", fmt.Sprintf("/api/jobs/%d", id), "ed", nil); rec.Code != http.StatusConflict {
		t.Errorf("re-cancel = %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/api/jobs/999", "ed", nil); rec.Code != http.StatusNotFound {
		t.Errorf("cancel missing = %d", rec.Code)
	}
}

func TestHealthReportsJobStats(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/health", "", nil)
	h := decode[map[string]any](t, rec)
	jb, ok := h["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("health = %v", h)
	}
	if jb["workers"].(float64) < 1 {
		t.Errorf("jobs stats = %v", jb)
	}
}

func TestRequestBodyCap413(t *testing.T) {
	s, _ := newTestServer(t)
	big := `{"id":"huge","title":"` + strings.Repeat("x", maxJSONBody+100) + `"}`
	rec := doRaw(t, s, "POST", "/api/materials", "ed", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized material = %d", rec.Code)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("not the standard envelope: %s", rec.Body)
	}
	// The import cap is higher: the same payload sails through there.
	if rec := doRaw(t, s, "POST", "/api/import?method=none", "ed", big); rec.Code != http.StatusAccepted {
		t.Errorf("import of same payload = %d", rec.Code)
	}
}

func TestMaterialsPagination(t *testing.T) {
	s, sys := newTestServer(t)
	total := sys.Len()
	// Bare call keeps the legacy array shape, now deterministically sorted.
	all := decode[[]materialJSON](t, do(t, s, "GET", "/api/materials", "", nil))
	if len(all) != total {
		t.Fatalf("all = %d, want %d", len(all), total)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("not ID-sorted at %d: %s >= %s", i, all[i-1].ID, all[i].ID)
		}
	}
	type page struct {
		Total     int            `json:"total"`
		Offset    int            `json:"offset"`
		Limit     int            `json:"limit"`
		Materials []materialJSON `json:"materials"`
	}
	var got []materialJSON
	for off := 0; ; off += 10 {
		p := decode[page](t, do(t, s, "GET", fmt.Sprintf("/api/materials?limit=10&offset=%d", off), "", nil))
		if p.Total != total {
			t.Fatalf("total = %d", p.Total)
		}
		if len(p.Materials) == 0 {
			break
		}
		got = append(got, p.Materials...)
	}
	if len(got) != total {
		t.Fatalf("paged walk = %d, want %d", len(got), total)
	}
	for i := range got {
		if got[i].ID != all[i].ID {
			t.Fatalf("paged order diverges at %d", i)
		}
	}
	// Past-the-end and negative parameters.
	p := decode[page](t, do(t, s, "GET", fmt.Sprintf("/api/materials?offset=%d", total+5), "", nil))
	if len(p.Materials) != 0 {
		t.Errorf("past-end page = %d items", len(p.Materials))
	}
	if rec := do(t, s, "GET", "/api/materials?limit=-1", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("negative limit = %d", rec.Code)
	}
}

// TestImportScale10k is the subsystem's acceptance test: a 10k-record
// import through the async API, with concurrent readers hammering the
// coverage and similarity endpoints, must (a) return 202 immediately,
// (b) report monotonically increasing progress, and (c) finish in a state
// byte-identical to a sequential import of the same records.
func TestImportScale10k(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	input := syntheticJSONL(t, n, 42)

	// Reference: sequential (1-worker) import into a fresh system.
	refSys, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest.New(refSys, ingest.Options{Workers: 1}).Run(context.Background(), strings.NewReader(input), nil); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := refSys.Snapshot(&want); err != nil {
		t.Fatal(err)
	}

	// System under test: async import through the API with parallel
	// prepare workers and concurrent readers.
	sys, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Workflow().Register("ed", workflow.RoleEditor); err != nil {
		t.Fatal(err)
	}
	s := New(sys, io.Discard)
	rec := doRaw(t, s, "POST", "/api/import?workers=4", "ed", input)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("import = %d %s", rec.Code, rec.Body)
	}
	id := int64(decode[map[string]any](t, rec)["job"].(float64))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{
		"/api/coverage?ontology=cs13",
		"/api/similarity?left=synthetic&right=synthetic",
		"/api/materials?limit=20&offset=40",
	} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
				}
				// Reads no longer serialize against the committer, so pace
				// them: an unthrottled loop recomputing coverage/similarity
				// per generation would just burn the CPU the import needs,
				// without exercising anything more.
				req := httptest.NewRequest("GET", path, nil)
				s.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(path)
	}

	snap := waitJob(t, s, id)
	close(stop)
	wg.Wait()
	if snap.State != jobs.StateDone {
		t.Fatalf("job = %s (%s)", snap.State, snap.Error)
	}
	if snap.Progress.OK != int64(n) || snap.Progress.Failed != 0 || snap.Progress.Total != int64(n) {
		t.Fatalf("progress = %+v", snap.Progress)
	}
	var got bytes.Buffer
	if err := sys.Snapshot(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("async import state differs from sequential import")
	}
}
