package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"carcs/internal/material"
)

func probeMaterial(id string) *material.Material {
	return &material.Material{
		ID: id, Title: strings.ToUpper(id), Kind: material.Assignment,
		Level: material.CS1, Collection: "probe", Year: 2020,
		Classifications: []material.Classification{
			{NodeID: "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
		},
	}
}

// Tests for the view-pinned request path: malformed pagination parameters,
// conditional requests across snapshot publishes, and the one-view-per-
// request guarantee.

func TestMalformedIntParamsReturn400(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []string{
		"/api/materials?limit=abc",
		"/api/materials?offset=abc",
		"/api/materials?limit=12.5",
		"/api/materials?year_from=twothousand",
		"/api/search?q=x&k=many",
		"/api/query?q=fire&k=1e3",
		"/api/suggest?ontology=cs13&q=x&k=zz",
		"/api/recommend?selected=x&k=nope",
		"/api/materials/uno/replacements?k=zz",
		"/api/similarity?left=nifty&right=peachy&threshold=abc",
		"/api/import?workers=lots",
		"/similarity?threshold=abc",
	}
	for _, path := range cases {
		method := "GET"
		user := ""
		if strings.HasPrefix(path, "/api/import") {
			method, user = "POST", "ed"
		}
		rec := do(t, s, method, path, user, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400: %s", path, rec.Code, rec.Body)
			continue
		}
		if strings.HasPrefix(path, "/api/") {
			body := decode[map[string]any](t, rec)
			if msg, ok := body["error"].(string); !ok || msg == "" {
				t.Errorf("%s: missing error envelope: %s", path, rec.Body)
			}
		}
	}
	// Well-formed and absent parameters still work; an empty value counts
	// as absent.
	for _, path := range []string{
		"/api/materials?limit=5&offset=2",
		"/api/materials?year_to=",
		"/api/materials",
	} {
		if rec := do(t, s, "GET", path, "", nil); rec.Code != http.StatusOK {
			t.Errorf("%s = %d, want 200: %s", path, rec.Code, rec.Body)
		}
	}
}

// TestNo304ForNewerValidator pins the conditional-request invariant across
// snapshot publishes: a 304 is only ever served when the client's validator
// matches the current view's generation exactly. A validator from a
// different (older or even newer) generation gets a full 200 with the
// current tag, so no client is left holding a body older than its validator
// claims.
func TestNo304ForNewerValidator(t *testing.T) {
	s, sys := newTestServer(t)

	rec := do(t, s, "GET", "/api/coverage?ontology=cs13", "", nil)
	oldTag := rec.Header().Get("ETag")

	mat := materialJSON{
		ID: "publish-probe", Title: "Publish Probe", Kind: "assignment", Level: "CS1",
		Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", mat); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}

	// Validator older than the current view: must recompute, not 304.
	req := httptest.NewRequest("GET", "/api/coverage?ontology=cs13", nil)
	req.Header.Set("If-None-Match", oldTag)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stale validator = %d, want 200", w.Code)
	}
	curTag := w.Header().Get("ETag")
	if curTag == oldTag {
		t.Fatalf("tag did not advance across publish: %q", curTag)
	}

	// Validator from a generation the server has not published (newer than
	// current): must not 304 against it either.
	future := `"` + strconv.FormatUint(sys.Generation()+1000, 10) + `"`
	req = httptest.NewRequest("GET", "/api/coverage?ontology=cs13", nil)
	req.Header.Set("If-None-Match", future)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("future validator = %d, want 200", w.Code)
	}
	if got := w.Header().Get("ETag"); got != curTag {
		t.Errorf("ETag %q, want current %q", got, curTag)
	}

	// Matching the current generation exactly revalidates.
	req = httptest.NewRequest("GET", "/api/coverage?ontology=cs13", nil)
	req.Header.Set("If-None-Match", curTag)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotModified {
		t.Errorf("current validator = %d, want 304", w.Code)
	}
}

// TestRequestPinsOneView drives the ETag middleware directly with a handler
// that resolves the view twice around a concurrent commit, asserting both
// resolutions return the same pinned snapshot — the property that makes a
// multi-read handler (list + count, report + rendering) internally
// consistent.
func TestRequestPinsOneView(t *testing.T) {
	s, sys := newTestServer(t)

	var gens [2]uint64
	var lens [2]int
	h := s.withETag(func(w http.ResponseWriter, r *http.Request) {
		v1 := s.view(r)
		gens[0], lens[0] = v1.Gen(), v1.Len()
		// A commit lands between the handler's two reads.
		if err := sys.AddMaterial(probeMaterial("mid-request")); err != nil {
			t.Error(err)
		}
		v2 := s.view(r)
		gens[1], lens[1] = v2.Gen(), v2.Len()
		if v1 != v2 {
			t.Error("second resolution returned a different view")
		}
		w.WriteHeader(http.StatusOK)
	})
	req := httptest.NewRequest("GET", "/probe", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if gens[0] != gens[1] || lens[0] != lens[1] {
		t.Fatalf("request observed two generations: %v lens %v", gens, lens)
	}
	if tag := rec.Header().Get("ETag"); tag != `"`+strconv.FormatUint(gens[0], 10)+`"` {
		t.Errorf("ETag %q does not match the pinned generation %d", tag, gens[0])
	}
	if cur := sys.View(); cur.Gen() <= gens[0] || cur.Len() != lens[0]+1 {
		t.Errorf("commit not visible to later requests: gen %d len %d", cur.Gen(), cur.Len())
	}
}
