package server

import (
	"fmt"
	"net/http"
	"time"

	"carcs/internal/cache"
	"carcs/internal/core"
	"carcs/internal/jobs"
	"carcs/internal/journal"
	"carcs/internal/replica"
	"carcs/internal/resilience"
)

// DefaultRequestTimeout bounds a single request's handler time so one slow
// analysis (a large similarity graph, a deep coverage walk) cannot pin a
// connection forever.
const DefaultRequestTimeout = 30 * time.Second

// statusRecorder wraps a ResponseWriter to capture the status code and body
// size for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// Flush passes through so streaming handlers keep working behind the
// recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging records status, size, duration, and remote address for every
// request — not just method and path before the handler runs.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sr, r)
		s.log.Printf("%s %s %d %dB %s %s",
			r.Method, r.URL.Path, sr.status, sr.bytes,
			time.Since(start).Round(time.Microsecond), r.RemoteAddr)
	})
}

// withRecovery converts a handler panic into a logged 500 instead of a
// dropped connection.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.log.Printf("panic: %s %s: %v", r.Method, r.URL.Path, rec)
				if sr, ok := w.(*statusRecorder); !ok || !sr.wrote {
					writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
				}
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// healthJSON is the GET /api/health response. The top-level Materials/
// Generation/Cache/Learn block is the default workspace (the pre-tenancy
// global totals dashboards already watch); Tenants breaks every workspace
// out so operators can spot a hot one, and TotalMaterials sums them.
type healthJSON struct {
	Status string `json:"status"`
	// Role, Epoch, and AppliedSeq are the node's routing identity:
	// leader/follower/fenced/standalone, the leadership term its state
	// reflects, and the journal sequence its reads are current to.
	Role           string                      `json:"role"`
	Epoch          uint64                      `json:"epoch"`
	AppliedSeq     uint64                      `json:"applied_seq"`
	Materials      int                         `json:"materials"`
	TotalMaterials int                         `json:"total_materials"`
	Generation     uint64                      `json:"generation"`
	Cache          cache.Stats                 `json:"cache"`
	Jobs           jobs.Stats                  `json:"jobs"`
	Durable        bool                        `json:"durable"`
	Journal        *journal.Stats              `json:"journal,omitempty"`
	Learn          core.LearnStats             `json:"learn"`
	Resilience     resilienceJSON              `json:"resilience"`
	Replication    *replica.Status             `json:"replication,omitempty"`
	Tenants        map[string]tenantHealthJSON `json:"tenants"`
}

// tenantHealthJSON is one workspace's slice of the health payload.
type tenantHealthJSON struct {
	Materials  int     `json:"materials"`
	Generation uint64  `json:"generation"`
	QueueDepth int     `json:"queue_depth"`
	Quota      int     `json:"quota,omitempty"`
	QuotaUsed  float64 `json:"quota_used,omitempty"`
}

// resilienceJSON is the overload-control block of the health payload.
type resilienceJSON struct {
	Limiter     resilience.LimiterStats      `json:"limiter"`
	Breaker     *resilience.BreakerStats     `json:"breaker,omitempty"`
	RateLimiter *resilience.RateLimiterStats `json:"rate_limiter,omitempty"`
}

// resilienceStats snapshots the overload controls for health reporting.
func (s *Server) resilienceStats() resilienceJSON {
	out := resilienceJSON{Limiter: s.limiter.Stats()}
	if b := s.repl.Load().breaker; b != nil {
		st := b.Stats()
		out.Breaker = &st
	}
	if s.ratelimit != nil {
		st := s.ratelimit.Stats()
		out.RateLimiter = &st
	}
	return out
}

// GET /api/health — the full diagnostic payload: durability, read-cache,
// job-runner, and overload-control state. Reports "degraded" with 503
// when the journal has a sticky write failure or the write circuit is
// open (mutations are being refused) so load balancers can rotate the
// instance out. The cache block (entry count, hit ratio, last
// invalidation generation) is what dashboards watch to confirm the read
// path is actually being served from memoized results.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	def := s.ws.Default()
	role, epoch := s.nodeRole()
	resp := healthJSON{
		Status:      "ok",
		Role:        role,
		Epoch:       epoch,
		AppliedSeq:  s.nodeSeq(),
		Materials:   def.Len(),
		Generation:  def.Generation(),
		Cache:       def.CacheStats(),
		Jobs:        s.runner.Stats(),
		Learn:       def.LearnStats(),
		Resilience:  s.resilienceStats(),
		Replication: s.replicationStatus(),
		Tenants:     map[string]tenantHealthJSON{},
	}
	s.ws.Each(func(name string, sys *core.System) {
		th := tenantHealthJSON{
			Materials:  sys.Len(),
			Generation: sys.Generation(),
			QueueDepth: len(sys.Workflow().Pending()),
			Quota:      sys.MaterialLimit(),
		}
		if th.Quota > 0 {
			th.QuotaUsed = float64(th.Materials) / float64(th.Quota)
		}
		resp.TotalMaterials += th.Materials
		resp.Tenants[name] = th
	})
	code := http.StatusOK
	rs := s.repl.Load()
	if rs.persister != nil {
		resp.Durable = true
		st := rs.persister.Stats()
		resp.Journal = &st
		if st.Err != "" {
			resp.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	if rs.breaker != nil && rs.breaker.Open() && code == http.StatusOK {
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// GET /api/health/live — pure liveness: answers 200 whenever the process
// can serve HTTP at all, regardless of journal or overload state. Restart
// probes key off this; an overloaded-but-alive instance must not be
// killed into a thundering restart.
func (s *Server) handleHealthLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "live"})
}

// GET /api/health/ready — readiness for traffic: 503 (with reasons) when
// the write circuit is open, the journal is refusing appends, or the read
// queue is saturated; 200 otherwise. Load balancers key rotation off this
// while the liveness probe stays green.
func (s *Server) handleHealthReady(w http.ResponseWriter, r *http.Request) {
	rs := s.repl.Load()
	var reasons []string
	if rs.breaker != nil && rs.breaker.Open() {
		reasons = append(reasons, "write circuit open")
	}
	if rs.persister != nil {
		if st := rs.persister.Stats(); st.Err != "" {
			reasons = append(reasons, "journal degraded: "+st.Err)
		}
	}
	if s.limiter.Saturated() {
		reasons = append(reasons, "read queue saturated")
	}
	// Role, epoch, and applied sequence ride on every readiness answer:
	// the router's leader discovery and lag accounting key off them. A
	// fenced node stays "ready" — its reads are valid, it just no longer
	// claims the write path.
	role, epoch := s.nodeRole()
	seq := s.nodeSeq()
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready", "reasons": reasons,
			"role": role, "epoch": epoch, "seq": seq, "applied_seq": seq,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "role": role, "epoch": epoch,
		"seq": seq, "applied_seq": seq,
	})
}
