package server

import "net/http/pprof"

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/. They
// are off by default — profiling endpoints expose heap contents and can be
// used to stall a public instance — and the carcs-server binary gates them
// behind its -pprof flag. Call before serving.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
