package server

import (
	"net/http"

	"carcs/internal/classify"
	"carcs/internal/learn"
)

// GET /api/review/queue — the editor's pending submissions in active-
// learning order: the learned models' most uncertain documents first, so
// review effort lands where a verdict teaches the classifier the most.
// Before any model is trained, every item scores uncertainty 1 and the
// queue degrades to plain FIFO — the same order as GET /api/submissions.
func (s *Server) handleReviewQueue(w http.ResponseWriter, r *http.Request) {
	type itemJSON struct {
		ID          int64                 `json:"id"`
		Submitter   string                `json:"submitter"`
		Uncertainty float64               `json:"uncertainty"`
		Material    materialJSON          `json:"material"`
		Suggestions []classify.Suggestion `json:"suggestions,omitempty"`
	}
	queue := s.tenantSys(r).ReviewQueue()
	out := make([]itemJSON, 0, len(queue))
	for _, it := range queue {
		out = append(out, itemJSON{
			ID:          it.Submission.ID,
			Submitter:   it.Submission.Submitter,
			Uncertainty: it.Uncertainty,
			Material:    toJSON(it.Submission.Material),
			Suggestions: it.Suggestions,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// POST /api/learn/train — retrain the learned classifier from every
// currently classified material, with default hyperparameters unless the
// body overrides them. The train is journaled, so it reaches followers and
// survives crashes like any other mutation.
func (s *Server) handleLearnTrain(w http.ResponseWriter, r *http.Request) {
	p := learn.DefaultParams()
	if r.ContentLength != 0 {
		if !decodeBody(w, r, &p) {
			return
		}
	}
	if err := s.tenantSys(r).TrainLearned(p); err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, s.tenantSys(r).LearnStats())
}
