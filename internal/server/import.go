package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"carcs/internal/ingest"
	"carcs/internal/jobs"
)

// POST /api/import?workers=&method=&threshold= — async bulk ingestion.
//
// The body is JSONL, one material record per line (see ingest.Record).
// The request buffers the payload, submits a background import job, and
// returns 202 with the job ID immediately; progress, per-item errors, and
// the final summary are polled from GET /api/jobs/{id}. A full job queue
// answers 503 with Retry-After — backpressure, not buffering.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	workers, err := intParam(q, "workers", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opt := ingest.Options{
		Workers: workers,
		Method:  q.Get("method"),
		Retry:   jobs.DefaultRetry,
	}
	if t := q.Get("threshold"); t != "" {
		f, err := strconv.ParseFloat(t, 64)
		if err != nil || f < 0 || f > 1 {
			writeError(w, http.StatusBadRequest, "threshold must be a number in [0,1]")
			return
		}
		opt.Threshold = f
	}
	if opt.Method != "" {
		switch opt.Method {
		case "tfidf", "keyword", "bayes", "ensemble", "none":
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q", opt.Method))
			return
		}
	}

	// The job outlives the request, so the streamed body must be captured
	// before returning 202. The import cap is deliberately larger than the
	// regular JSON cap; beyond it the standard 413 envelope applies.
	r.Body = http.MaxBytesReader(w, r.Body, maxImportBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(bytes.TrimSpace(body)) == 0 {
		writeError(w, http.StatusBadRequest, "empty import body")
		return
	}

	imp := ingest.New(s.tenantSys(r), opt)
	job, err := s.runner.Submit("import", fmt.Sprintf("%d bytes", len(body)),
		func(ctx context.Context, j *jobs.Job) error {
			sum, err := imp.Run(ctx, bytes.NewReader(body), j)
			j.SetResult(sum)
			return err
		})
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			// Backpressure through the standard overload envelope, with a
			// Retry-After computed from the live queue depth rather than a
			// hardcoded guess.
			writeOverload(w, http.StatusServiceUnavailable,
				"import queue full; retry later", s.importRetryAfter())
		case errors.Is(err, jobs.ErrClosed):
			writeOverload(w, http.StatusServiceUnavailable,
				"server shutting down", 30*time.Second)
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":    job.ID(),
		"state":  string(job.State()),
		"status": fmt.Sprintf("/api/jobs/%d", job.ID()),
	})
}

// GET /api/jobs — all known jobs, newest first.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Jobs())
}

// GET /api/jobs/{id} — live progress plus the per-item error report.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	job, err := s.runner.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// DELETE /api/jobs/{id} — cancel a queued or running job. Items already
// committed stay (each went through the journal individually); the job
// transitions to cancelled once its function observes the context.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	switch err := s.runner.Cancel(id); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "cancelling": true})
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
