package server

import (
	"net/http"
	"strings"
	"testing"
)

func TestHomePage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("home = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"Compelling Assignment Repository", "98", "CS13"} {
		if !strings.Contains(body, want) {
			t.Errorf("home missing %q", want)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
}

func TestMaterialsPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/materials", "", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Hurricane Tracker") {
		t.Fatalf("materials list = %d", rec.Code)
	}
	// Structured query through the form.
	rec = do(t, s, "GET", "/materials?q=collection%3Apeachy+fractal", "", nil)
	body := rec.Body.String()
	if !strings.Contains(body, "Computing a Movie of Zooming Into a Fractal") {
		t.Error("query result missing")
	}
	if strings.Contains(body, "Hurricane Tracker") {
		t.Error("filter leak in page")
	}
	// Bad query shows the error inline, not a 500.
	rec = do(t, s, "GET", "/materials?q=kind%3Apoem", "", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "unknown kind") {
		t.Errorf("bad query handling = %d", rec.Code)
	}
}

func TestMaterialDetailPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/materials/uno", "", nil)
	body := rec.Body.String()
	if rec.Code != http.StatusOK {
		t.Fatalf("detail = %d", rec.Code)
	}
	for _, want := range []string{"Uno", "Arrays", "Similar materials covering PDC"} {
		if !strings.Contains(body, want) {
			t.Errorf("detail missing %q", want)
		}
	}
	if rec := do(t, s, "GET", "/materials/ghost", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing detail = %d", rec.Code)
	}
}

func TestCoverageAndSimilarityPages(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/coverage?ontology=pdc12&collection=itcs3145", "", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "<svg") {
		t.Errorf("coverage page = %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/coverage?ontology=zzz", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ontology page = %d", rec.Code)
	}
	rec = do(t, s, "GET", "/similarity", "", nil)
	body := rec.Body.String()
	if rec.Code != http.StatusOK || !strings.Contains(body, "<circle") {
		t.Errorf("similarity page = %d", rec.Code)
	}
	if strings.Count(body, "#dd4444") != 11 {
		t.Errorf("peachy circles = %d", strings.Count(body, "#dd4444"))
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/query?q=collection%3Aitcs3145+kind%3Aassignment", "", nil)
	hits := decode[[]map[string]any](t, rec)
	if len(hits) != 9 {
		t.Errorf("itcs assignments = %d, want 9", len(hits))
	}
	if rec := do(t, s, "GET", "/api/query?q=kind%3Apoem", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad query = %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/query", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d", rec.Code)
	}
}
