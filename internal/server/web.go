package server

import (
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"carcs/internal/cache"
	"carcs/internal/search"
	"carcs/internal/viz"
)

// The HTML front end: the original prototype "serves webpages to provide
// the main interaction with the service" (Sec. III-B); these handlers are
// the server-rendered equivalent, embedding the SVG renderings where the
// prototype used D3.

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}} — CAR-CS</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
nav a { margin-right: 1em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 8px; text-align: left; }
mark { background: #ffe08a; }
.score { color: #666; }
</style></head><body>
<nav><a href="/">home</a><a href="/materials">materials</a><a href="/coverage">coverage</a><a href="/similarity">similarity</a></nav>
<h1>{{.Title}}</h1>
{{.Body}}
</body></html>
`))

type page struct {
	Title string
	Body  template.HTML
}

func (s *Server) renderPage(w http.ResponseWriter, title string, body template.HTML) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, page{Title: title, Body: body}); err != nil {
		s.log.Printf("render: %v", err)
	}
}

var homeTmpl = template.Must(template.New("home").Parse(`
<p>CAR-CS classifies pedagogical materials against the CS2013 and
NSF/IEEE-TCPP PDC 2012 curriculum guidelines.</p>
<table>
<tr><th>materials</th><td>{{.Materials}}</td></tr>
<tr><th>collections</th><td>{{range .Collections}}{{.}} {{end}}</td></tr>
<tr><th>classification entries in use</th><td>{{.Entries}}</td></tr>
<tr><th>CS13 ontology</th><td>{{.CS13Size}} entries</td></tr>
<tr><th>PDC12 ontology</th><td>{{.PDC12Size}} entries</td></tr>
</table>
<p>Try <a href="/materials?q=collection%3Apeachy">the Peachy assignments</a>,
the <a href="/coverage?ontology=pdc12&collection=itcs3145">ITCS 3145 PDC12 coverage tree</a>,
or the <a href="/similarity?left=nifty&right=peachy">Nifty–Peachy similarity graph</a>.</p>
`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	if err := homeTmpl.Execute(&b, s.view(r).Stats()); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.renderPage(w, "Compelling Assignment Repository for CS", template.HTML(b.String())) //nolint:gosec // template-produced
}

var materialsTmpl = template.Must(template.New("materials").Parse(`
<form method="get"><input name="q" size="60" value="{{.Query}}"
 placeholder='e.g. collection:nifty level:CS1 in:cs13/sdf arrays'>
<button>search</button></form>
{{if .Err}}<p style="color:#a00">{{.Err}}</p>{{end}}
<table><tr><th></th><th>title</th><th>kind</th><th>level</th><th>year</th><th>collection</th></tr>
{{range .Hits}}<tr>
<td class="score">{{printf "%.2f" .Score}}</td>
<td><a href="/materials/{{.Material.ID}}">{{.Material.Title}}</a></td>
<td>{{.Material.Kind}}</td><td>{{.Material.Level}}</td>
<td>{{.Material.Year}}</td><td>{{.Material.Collection}}</td>
</tr>{{end}}</table>
`))

func (s *Server) handleMaterialsPage(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	v := s.view(r)
	var hits []search.Hit
	var errMsg string
	if q == "" {
		for _, m := range v.Materials("") {
			hits = append(hits, search.Hit{Material: m})
		}
	} else {
		var err error
		hits, err = v.SearchQuery(q, 200)
		if err != nil {
			errMsg = err.Error()
		}
	}
	var b strings.Builder
	data := struct {
		Query string
		Err   string
		Hits  []search.Hit
	}{Query: q, Err: errMsg, Hits: hits}
	if err := materialsTmpl.Execute(&b, data); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.renderPage(w, "Materials", template.HTML(b.String())) //nolint:gosec // template-produced
}

var materialTmpl = template.Must(template.New("material").Parse(`
<p>{{.M.Description}}</p>
<table>
<tr><th>kind / level</th><td>{{.M.Kind}} / {{.M.Level}}</td></tr>
<tr><th>language</th><td>{{.M.Language}}</td></tr>
<tr><th>year</th><td>{{.M.Year}}</td></tr>
<tr><th>collection</th><td>{{.M.Collection}}</td></tr>
<tr><th>authors</th><td>{{range .M.Authors}}{{.}} {{end}}</td></tr>
<tr><th>url</th><td><a href="{{.M.URL}}">{{.M.URL}}</a></td></tr>
</table>
<h2>Classifications</h2>
<ul>{{range .Paths}}<li>{{.}}</li>{{end}}</ul>
{{if .Replacements}}<h2>Similar materials covering PDC topics</h2>
<ul>{{range .Replacements}}<li><a href="/materials/{{.B}}">{{.B}}</a> ({{.Score}} shared)</li>{{end}}</ul>{{end}}
`))

func (s *Server) handleMaterialPage(w http.ResponseWriter, r *http.Request) {
	v := s.view(r)
	m := v.Material(r.PathValue("id"))
	if m == nil {
		http.NotFound(w, r)
		return
	}
	var paths []string
	for _, id := range m.ClassificationIDs() {
		p := v.CS13().Path(id)
		if p == "" {
			p = v.PDC12().Path(id)
		}
		paths = append(paths, p)
	}
	reps, _ := v.PDCReplacements(m.ID, 5)
	var b strings.Builder
	data := map[string]any{"M": m, "Paths": paths, "Replacements": reps}
	if err := materialTmpl.Execute(&b, data); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.renderPage(w, m.Title, template.HTML(b.String())) //nolint:gosec // template-produced
}

func (s *Server) handleCoveragePage(w http.ResponseWriter, r *http.Request) {
	ont := r.URL.Query().Get("ontology")
	if ont == "" {
		ont = "cs13"
	}
	collection := r.URL.Query().Get("collection")
	style := r.URL.Query().Get("style")
	v := s.view(r)
	rep, err := v.Coverage(ont, collection)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// SVG rendering walks the whole ontology per node for intensity
	// normalization, so the rendered markup is memoized alongside the
	// report it is derived from, keyed by the view's generation.
	key := cache.Key("svg", "coverage", ont, collection, style)
	res, _ := s.tenantSys(r).ResultCache().Do(key, v.Gen(), func() (any, error) {
		svg := viz.CoverageTreeSVG(rep, 2)
		if style == "sunburst" {
			svg = viz.CoverageSunburstSVG(rep, 3, 640)
		}
		return svg, nil
	})
	body := `<p>` + template.HTMLEscapeString(rep.String()) + `</p>` + res.(string)
	s.renderPage(w, "Coverage — "+rep.Collection, template.HTML(body)) //nolint:gosec // SVG built from escaped labels
}

func (s *Server) handleSimilarityPage(w http.ResponseWriter, r *http.Request) {
	left, right := r.URL.Query().Get("left"), r.URL.Query().Get("right")
	if left == "" {
		left = "nifty"
	}
	if right == "" {
		right = "peachy"
	}
	threshold, err := intParam(r.URL.Query(), "threshold", 2)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	v := s.view(r)
	key := cache.Key("svg", "similarity", left, right, strconv.Itoa(threshold))
	res, _ := s.tenantSys(r).ResultCache().Do(key, v.Gen(), func() (any, error) {
		g := v.SimilarityGraph(left, right, threshold)
		return viz.SimilaritySVG(g, 900, 700), nil
	})
	s.renderPage(w, "Similarity — "+left+" vs "+right, template.HTML(res.(string))) //nolint:gosec // SVG built from escaped labels
}
