package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carcs/internal/core"
	"carcs/internal/workflow"
)

func newTestServer(t *testing.T) (*Server, *core.System) {
	t.Helper()
	sys, err := core.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	sys.Workflow().Register("ed", workflow.RoleEditor)
	sys.Workflow().Register("sue", workflow.RoleSubmitter)
	sys.Workflow().Register("bob", workflow.RoleUser)
	return New(sys, io.Discard), sys
}

func do(t *testing.T, s *Server, method, path, user string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	if user != "" {
		req.Header.Set("X-User", user)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestStatus(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/status", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	st := decode[map[string]any](t, rec)
	if st["Materials"].(float64) < 90 {
		t.Errorf("materials = %v", st["Materials"])
	}
}

func TestListAndFilterMaterials(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/materials?collection=peachy", "", nil)
	got := decode[[]materialJSON](t, rec)
	if len(got) != 11 {
		t.Errorf("peachy = %d", len(got))
	}
	rec = do(t, s, "GET", "/api/materials?kind=slides", "", nil)
	if got := decode[[]materialJSON](t, rec); len(got) != 12 {
		t.Errorf("slides = %d", len(got))
	}
	rec = do(t, s, "GET", "/api/materials?language=Java&collection=nifty&year_from=2010&year_to=2013", "", nil)
	for _, m := range decode[[]materialJSON](t, rec) {
		if m.Language != "Java" || m.Year < 2010 || m.Year > 2013 {
			t.Errorf("filter leak: %+v", m)
		}
	}
	rec = do(t, s, "GET", "/api/materials?subtree=nosuch", "", nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("subtree without ontology = %d", rec.Code)
	}
	pd := "acm-ieee-cs-curricula-2013/pd"
	rec = do(t, s, "GET", "/api/materials?ontology=cs13&subtree="+pd, "", nil)
	for _, m := range decode[[]materialJSON](t, rec) {
		if m.Collection == "nifty" {
			t.Errorf("nifty material in PD subtree: %s", m.ID)
		}
	}
}

func TestGetMaterial(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/materials/uno", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get = %d", rec.Code)
	}
	m := decode[materialJSON](t, rec)
	if m.Title != "Uno" || len(m.Classifications) == 0 {
		t.Errorf("material = %+v", m)
	}
	if rec := do(t, s, "GET", "/api/materials/ghost", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing = %d", rec.Code)
	}
}

func TestAuthAndRoles(t *testing.T) {
	s, _ := newTestServer(t)
	valid := materialJSON{
		ID: "new-thing", Title: "New Thing", Kind: "assignment", Level: "CS1",
		Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
	}
	if rec := do(t, s, "POST", "/api/materials", "", valid); rec.Code != http.StatusUnauthorized {
		t.Errorf("no user = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/materials", "stranger", valid); rec.Code != http.StatusUnauthorized {
		t.Errorf("unknown user = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/materials", "bob", valid); rec.Code != http.StatusForbidden {
		t.Errorf("user role = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", valid); rec.Code != http.StatusCreated {
		t.Errorf("editor create = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", valid); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("duplicate create = %d", rec.Code)
	}
	bad := valid
	bad.ID = "bad-cls"
	bad.Classifications = []string{"nope"}
	if rec := do(t, s, "POST", "/api/materials", "ed", bad); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad classification = %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/api/materials/new-thing", "ed", nil); rec.Code != http.StatusOK {
		t.Errorf("delete = %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/api/materials/new-thing", "ed", nil); rec.Code != http.StatusNotFound {
		t.Errorf("re-delete = %d", rec.Code)
	}
}

func TestReclassifyEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	body := map[string][]string{"classifications": {
		"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/stacks",
	}}
	rec := do(t, s, "PUT", "/api/materials/uno/classifications", "ed", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("reclassify = %d: %s", rec.Code, rec.Body)
	}
	m := decode[materialJSON](t, rec)
	if len(m.Classifications) != 1 || !strings.HasSuffix(m.Classifications[0], "/stacks") {
		t.Errorf("classifications = %v", m.Classifications)
	}
	if rec := do(t, s, "PUT", "/api/materials/ghost/classifications", "ed", body); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("reclassify missing = %d", rec.Code)
	}
}

func TestOntologyEndpoints(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/ontologies", "", nil)
	onts := decode[[]map[string]any](t, rec)
	if len(onts) != 2 {
		t.Fatalf("ontologies = %v", onts)
	}
	rec = do(t, s, "GET", "/api/ontologies/cs13/search?q=iterative+control", "", nil)
	hits := decode[[]map[string]any](t, rec)
	if len(hits) == 0 {
		t.Fatal("no search hits")
	}
	if h := hits[0]["highlighted"].(string); !strings.Contains(h, "<mark>") {
		t.Errorf("no highlight markers: %q", h)
	}
	if rec := do(t, s, "GET", "/api/ontologies/cs13/search", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/ontologies/nope/search?q=x", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown ontology = %d", rec.Code)
	}
	node := "acm-ieee-cs-curricula-2013/pd/parallelism-fundamentals"
	rec = do(t, s, "GET", "/api/ontologies/cs13/node/"+node, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("node = %d", rec.Code)
	}
	n := decode[map[string]any](t, rec)
	if n["label"] != "Parallelism Fundamentals" {
		t.Errorf("node = %v", n)
	}
	if rec := do(t, s, "GET", "/api/ontologies/cs13/node/ghost", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown node = %d", rec.Code)
	}
}

func TestAnalysisEndpoints(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/coverage?ontology=pdc12&collection=itcs3145", "", nil)
	cov := decode[map[string]any](t, rec)
	areas := cov["areas"].([]any)
	first := areas[0].(map[string]any)
	if first["Code"] != "PR" {
		t.Errorf("ITCS top PDC12 area = %v", first["Code"])
	}
	if rec := do(t, s, "GET", "/api/coverage?ontology=zzz", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ontology = %d", rec.Code)
	}

	rec = do(t, s, "GET", "/api/similarity?left=nifty&right=peachy&threshold=2", "", nil)
	sim := decode[map[string]any](t, rec)
	if len(sim["edges"].([]any)) != 24 {
		t.Errorf("edges = %d", len(sim["edges"].([]any)))
	}
	if rec := do(t, s, "GET", "/api/similarity?left=nifty", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing right = %d", rec.Code)
	}

	rec = do(t, s, "GET", "/api/gaps?ontology=pdc12&collection=itcs3145&core_only=true", "", nil)
	gaps := decode[[]map[string]any](t, rec)
	if len(gaps) == 0 {
		t.Error("no core gaps for ITCS against PDC12")
	}

	rec = do(t, s, "GET", "/api/search?q=fractal&collection=peachy", "", nil)
	hits := decode[[]map[string]any](t, rec)
	if len(hits) == 0 {
		t.Error("no search hits")
	}
	if rec := do(t, s, "GET", "/api/search", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d", rec.Code)
	}

	rec = do(t, s, "GET", "/api/suggest?ontology=cs13&q=loop+over+arrays&k=5", "", nil)
	if sugg := decode[[]map[string]any](t, rec); len(sugg) == 0 {
		t.Error("no suggestions")
	}
	if rec := do(t, s, "GET", "/api/suggest?ontology=cs13", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d", rec.Code)
	}

	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	rec = do(t, s, "GET", "/api/recommend?selected="+arrays, "", nil)
	if recs := decode[[]map[string]any](t, rec); len(recs) == 0 {
		t.Error("no recommendations")
	}
	if rec := do(t, s, "GET", "/api/recommend", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing selected = %d", rec.Code)
	}

	rec = do(t, s, "GET", "/api/materials/uno/replacements", "", nil)
	if reps := decode[[]map[string]any](t, rec); len(reps) < 4 {
		t.Errorf("uno replacements = %d", len(reps))
	}
	if rec := do(t, s, "GET", "/api/materials/ghost/replacements", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("replacements for missing = %d", rec.Code)
	}
}

// TestEntryClassifyFlow is the E1 end-to-end flow: register accounts, submit
// a material, find classification entries via the highlighted tree search,
// review and approve, and see the material live in the repository.
func TestEntryClassifyFlow(t *testing.T) {
	s, sys := newTestServer(t)

	// Register a new submitter through the API.
	rec := do(t, s, "POST", "/api/accounts", "", map[string]string{"name": "nia", "role": "submitter"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("register = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/accounts", "", map[string]string{"name": "x", "role": "deity"}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad role = %d", rec.Code)
	}

	// Locate entries with the Fig. 1b search.
	rec = do(t, s, "GET", "/api/ontologies/pdc12/search?q=openmp", "", nil)
	hits := decode[[]map[string]any](t, rec)
	if len(hits) == 0 {
		t.Fatal("no OpenMP entries")
	}
	entry := hits[0]["id"].(string)

	// Submit a classified material.
	m := materialJSON{
		ID: "parallel-life", Title: "Parallel Game of Life", Kind: "assignment",
		Level: "CS2", Description: "parallelize the game of life with OpenMP",
		Classifications: []string{entry},
	}
	rec = do(t, s, "POST", "/api/submissions", "nia", m)
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	subID := decode[map[string]any](t, rec)["id"].(float64)

	// Editor sees it pending and approves.
	rec = do(t, s, "GET", "/api/submissions", "ed", nil)
	if pend := decode[[]map[string]any](t, rec); len(pend) != 1 {
		t.Fatalf("pending = %v", pend)
	}
	if rec := do(t, s, "GET", "/api/submissions", "sue", nil); rec.Code != http.StatusForbidden {
		t.Errorf("submitter read queue = %d", rec.Code)
	}
	rec = do(t, s, "POST", fmt.Sprintf("/api/submissions/%d/review", int(subID)), "ed",
		map[string]string{"decision": "approved"})
	if rec.Code != http.StatusOK {
		t.Fatalf("review = %d: %s", rec.Code, rec.Body)
	}

	// The material is installed and searchable.
	if sys.Material("parallel-life") == nil {
		t.Fatal("approved material not installed")
	}
	rec = do(t, s, "GET", "/api/search?q=game+of+life+openmp", "", nil)
	found := false
	for _, h := range decode[[]map[string]any](t, rec) {
		if h["material"].(map[string]any)["id"] == "parallel-life" {
			found = true
		}
	}
	if !found {
		t.Error("approved material not searchable")
	}

	// Error paths on review.
	if rec := do(t, s, "POST", "/api/submissions/zzz/review", "ed", map[string]string{"decision": "approved"}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d", rec.Code)
	}
	if rec := do(t, s, "POST", fmt.Sprintf("/api/submissions/%d/review", int(subID)), "ed",
		map[string]string{"decision": "approved"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("double review = %d", rec.Code)
	}
}

func TestPanicRecovery(t *testing.T) {
	sys, _ := core.NewSeeded()
	s := New(sys, io.Discard)
	s.mux.HandleFunc("GET /api/boom", func(http.ResponseWriter, *http.Request) { panic("boom") })
	rec := do(t, s, "GET", "/api/boom", "", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "boom") {
		t.Errorf("body = %s", rec.Body)
	}
}

func TestBadJSONBody(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest("POST", "/api/materials", strings.NewReader("{nope"))
	req.Header.Set("X-User", "ed")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body = %d", rec.Code)
	}
}

func TestDepthEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/depth?ontology=pdc12&collection=itcs3145", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("depth = %d", rec.Code)
	}
	d := decode[map[string]any](t, rec)
	if d["shallow"].(float64) < 1 || d["met"].(float64) < 2 {
		t.Errorf("depth = %v", d)
	}
	if rec := do(t, s, "GET", "/api/depth?ontology=zzz", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ontology = %d", rec.Code)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/snapshot", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot = %d", rec.Code)
	}
	restored, err := core.Restore(rec.Body)
	if err != nil {
		t.Fatalf("restore from endpoint: %v", err)
	}
	if restored.Len() != 98 {
		t.Errorf("restored = %d materials", restored.Len())
	}
}

func TestEditEndpoints(t *testing.T) {
	s, _ := newTestServer(t)
	body := map[string]any{"material": "uno", "field": "language", "old": "Java", "new": "Kotlin"}
	if rec := do(t, s, "POST", "/api/edits", "", body); rec.Code != http.StatusUnauthorized {
		t.Errorf("anonymous edit = %d", rec.Code)
	}
	rec := do(t, s, "POST", "/api/edits", "bob", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("suggest edit = %d: %s", rec.Code, rec.Body)
	}
	id := decode[map[string]any](t, rec)["ID"].(float64)
	if rec := do(t, s, "POST", "/api/edits", "bob", map[string]any{"material": "ghost", "field": "x"}); rec.Code != http.StatusNotFound {
		t.Errorf("edit for missing material = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/edits", "bob", map[string]any{"material": "uno"}); rec.Code != http.StatusBadRequest {
		t.Errorf("edit without field = %d", rec.Code)
	}
	// Queue visible to editors only.
	if rec := do(t, s, "GET", "/api/edits", "bob", nil); rec.Code != http.StatusForbidden {
		t.Errorf("user read edits = %d", rec.Code)
	}
	rec = do(t, s, "GET", "/api/edits", "ed", nil)
	if got := decode[[]map[string]any](t, rec); len(got) != 1 {
		t.Fatalf("pending edits = %v", got)
	}
	// Verify.
	rec = do(t, s, "POST", fmt.Sprintf("/api/edits/%d/verify", int(id)), "ed", map[string]any{"accept": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("verify = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "POST", fmt.Sprintf("/api/edits/%d/verify", int(id)), "ed", map[string]any{"accept": false}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("double verify = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/edits/nope/verify", "ed", map[string]any{"accept": true}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d", rec.Code)
	}
}
