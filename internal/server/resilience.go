package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"carcs/internal/cache"
	"carcs/internal/core"
	"carcs/internal/replica"
	"carcs/internal/resilience"
)

// The resilience middleware sits between the timeout handler and the mux,
// so every admitted request carries the deadline the limiter budgeted
// against. Requests are classified (health > read > write > bulk), rate
// limited per client, checked against the write-path circuit breaker, and
// admitted through the adaptive concurrency limiter. Rejections always
// carry the standard JSON envelope plus a computed Retry-After — never a
// bare status — and shed reads fall back to the previous generation's
// memoized response when one exists, marked CARCS-Stale.

// ResilienceConfig tunes the server's overload behavior. The zero value
// keeps the limiter at its package defaults, leaves per-client rate
// limiting off, and serves stale reads at most one generation behind.
type ResilienceConfig struct {
	// Limiter configures the adaptive concurrency limiter.
	Limiter resilience.LimiterConfig
	// RateLimit, when non-nil, enables per-client token-bucket limiting.
	RateLimit *resilience.RateLimiterConfig
	// StaleGenerations is how many generations behind a memoized response
	// may be and still serve during degradation. Zero disables serve-stale.
	StaleGenerations uint64
}

// SetResilience replaces the server's overload policy. Call before serving.
func (s *Server) SetResilience(cfg ResilienceConfig) {
	s.limiter = resilience.NewLimiter(cfg.Limiter)
	s.staleGens = cfg.StaleGenerations
	s.ratelimit = nil
	if cfg.RateLimit != nil {
		s.ratelimit = resilience.NewRateLimiter(*cfg.RateLimit)
	}
}

// classifyRequest buckets a request for admission control. Health probes
// must never queue behind traffic they are meant to diagnose; bulk
// ingestion is the first load to shed.
func classifyRequest(r *http.Request) resilience.Class {
	switch {
	case strings.HasPrefix(r.URL.Path, "/api/health"):
		return resilience.ClassHealth
	case r.Method == http.MethodGet || r.Method == http.MethodHead:
		return resilience.ClassRead
	case r.URL.Path == "/api/import":
		return resilience.ClassBulk
	default:
		return resilience.ClassWrite
	}
}

// clientKey identifies a client for rate limiting: the X-API-Key header
// when present, otherwise the remote address without the ephemeral port.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeOverload answers a 429/503 with the standard envelope and a
// Retry-After computed from actual pressure (never a bare status).
func writeOverload(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, apiError{Error: msg, RetryAfterSeconds: secs})
}

// withResilience is the admission-control middleware.
func (s *Server) withResilience(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class := classifyRequest(r)
		if class == resilience.ClassHealth {
			// Liveness and readiness bypass every gate: an operator must be
			// able to see an overloaded instance's state from the outside.
			next.ServeHTTP(w, r)
			return
		}
		if s.ratelimit != nil {
			// Buckets are keyed (workspace, client): a client hammering one
			// workspace exhausts that pair's tokens without touching the
			// budget the same credentials have in another workspace.
			name, _ := s.tenant(r)
			if ok, retry := s.ratelimit.Allow(name + "|" + clientKey(r)); !ok {
				writeOverload(w, http.StatusTooManyRequests, "client rate limit exceeded", retry)
				return
			}
		}
		st := s.repl.Load()
		if st.follower != nil {
			if class != resilience.ClassRead {
				// A follower is read-only: answer with the leader's
				// location so clients (and the router) know where
				// mutations go, in the standard overload envelope.
				w.Header().Set("Leader", st.follower.LeaderURL())
				writeOverload(w, http.StatusServiceUnavailable,
					"read-only follower: send writes to the leader at "+st.follower.LeaderURL(),
					time.Second)
				return
			}
			// Stamp reads with the staleness bound: the leader sequence
			// and epoch this node's views reflect, plus an explicit marker
			// when it knows it is behind — same contract as serve-stale.
			applied := st.follower.Applied()
			w.Header().Set(replica.HeaderAppliedSeq, strconv.FormatUint(applied, 10))
			w.Header().Set(replica.HeaderEpoch, strconv.FormatUint(st.follower.Epoch(), 10))
			if st.follower.LeaderSeq() > applied {
				w.Header().Set("CARCS-Stale", "true")
			}
		}
		if st.fence != nil && st.fence.Fenced() {
			if class != resilience.ClassRead {
				// A deposed leader: a higher epoch exists, so any write
				// acked here would carry a stale term every applier
				// rejects. Refuse it and point at the new leader.
				if lead := st.fence.Leader(); lead != "" {
					w.Header().Set("Leader", lead)
				}
				writeOverload(w, http.StatusServiceUnavailable,
					fmt.Sprintf("leader fenced: epoch %d superseded by %d; writes go to the new leader",
						st.fence.Own(), st.fence.Seen()),
					time.Second)
				return
			}
			// Reads stay up — the node is a frozen replica of its own
			// final state; stamp the term that state was written at.
			w.Header().Set(replica.HeaderEpoch, strconv.FormatUint(st.fence.Own(), 10))
		}
		if class != resilience.ClassRead && st.breaker != nil && st.breaker.FastFail() {
			// The journal is refusing appends; fail the write before it
			// queues. Reads keep flowing — they serve from snapshots.
			writeOverload(w, http.StatusServiceUnavailable,
				"writes unavailable: journal circuit open", st.breaker.RetryAfter())
			return
		}
		release, err := s.limiter.Acquire(r.Context(), class)
		if err != nil {
			if class == resilience.ClassRead && s.serveStale(w, r) {
				return
			}
			writeOverload(w, http.StatusServiceUnavailable,
				"server overloaded: "+err.Error(), s.limiter.RetryAfter())
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// staleKey is the memoization key for a read endpoint's rendered response.
// The workspace name plus the full request URI key it: withTenant rewrites
// /api/t/{name}/... onto the legacy path, so without the explicit tenant
// two workspaces' same-shaped reads would alias in the serve-stale cache.
// (Entries live in each tenant's own ResultCache too — the name in the key
// is defense in depth and keeps the key meaningful in logs.)
func (s *Server) staleKey(r *http.Request) string {
	name, _ := s.tenant(r)
	return cache.Key("http", name, r.URL.RequestURI())
}

// serveStale answers a shed GET from the generation-keyed response cache,
// accepting entries up to staleGens generations behind the current one. A
// served response carries the generation it was computed at as its ETag
// and, when genuinely behind, CARCS-Stale: true — degraded but honest.
// Returns false when nothing eligible is cached (the caller sheds).
func (s *Server) serveStale(w http.ResponseWriter, r *http.Request) bool {
	if s.staleGens == 0 {
		return false
	}
	cur := s.tenantSys(r).Generation()
	val, gen, ok := s.tenantSys(r).ResultCache().Stale(s.staleKey(r), cur, s.staleGens)
	if !ok {
		return false
	}
	resp, ok := val.(*cachedResponse)
	if !ok {
		return false
	}
	tag := `"` + strconv.FormatUint(gen, 10) + `"`
	w.Header().Set("ETag", tag)
	if gen < cur {
		w.Header().Set("CARCS-Stale", "true")
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	w.Header().Set("Content-Type", resp.contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(resp.body)
	}
	return true
}

// writeMutationError maps a failed mutation onto the wire: a journal
// outage (the breaker is open or the append failed) is the server's
// problem, so it answers 503 with a Retry-After from the breaker's
// cooldown; anything else keeps the handler's fallback status.
func (s *Server) writeMutationError(w http.ResponseWriter, fallback int, err error) {
	if errors.Is(err, core.ErrWritesUnavailable) {
		retry := time.Second
		if b := s.repl.Load().breaker; b != nil {
			retry = b.RetryAfter()
		}
		writeOverload(w, http.StatusServiceUnavailable, err.Error(), retry)
		return
	}
	if errors.Is(err, core.ErrQuotaExceeded) {
		// A full workspace quota is the client's backpressure signal, not a
		// server fault: 429 without a Retry-After (room appears only when
		// the tenant deletes material or the operator raises the quota).
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	writeError(w, fallback, err.Error())
}

// writeReadError maps a failed read: a context error means the request
// was cancelled or ran out its deadline mid-computation (the kernels bail
// out cooperatively), which is overload, not a client mistake.
func writeReadError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeOverload(w, http.StatusServiceUnavailable, "request cancelled: "+err.Error(), time.Second)
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// importRetryAfter estimates when the job queue will have drained enough
// to accept another submission, from the live queue depth.
func (s *Server) importRetryAfter() time.Duration {
	st := s.runner.Stats()
	d := time.Duration(st.QueueLen+st.Running) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
