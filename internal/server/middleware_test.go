package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carcs/internal/core"
	"carcs/internal/journal"
)

func TestRequestLogRecordsStatusDurationRemote(t *testing.T) {
	sys, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	s := New(sys, &logBuf)

	req := httptest.NewRequest("GET", "/api/status", nil)
	req.RemoteAddr = "203.0.113.9:4242"
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	line := logBuf.String()
	if !strings.Contains(line, "GET /api/status 200") {
		t.Errorf("log line missing method/path/status: %q", line)
	}
	if !strings.Contains(line, "203.0.113.9:4242") {
		t.Errorf("log line missing remote addr: %q", line)
	}

	logBuf.Reset()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/materials/ghost", nil))
	if line := logBuf.String(); !strings.Contains(line, "GET /api/materials/ghost 404") {
		t.Errorf("log line missing error status: %q", line)
	}
}

func TestPanicRecoveryLogsAndReturns500(t *testing.T) {
	sys, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	s := New(sys, &logBuf)
	s.mux.HandleFunc("GET /test/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/test/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic status = %d", rec.Code)
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Errorf("panic not logged: %q", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "GET /test/boom 500") {
		t.Errorf("request log missing 500 for panic: %q", logBuf.String())
	}
}

func TestRequestTimeout(t *testing.T) {
	sys, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys, bytes.NewBuffer(nil))
	s.mux.HandleFunc("GET /test/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	})
	s.SetRequestTimeout(20 * time.Millisecond)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/test/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("timeout status = %d", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %s; handler not cut off", elapsed)
	}
}

func TestHealthEndpointInMemory(t *testing.T) {
	s, _ := newTestServer(t)
	rec := do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("health = %d", rec.Code)
	}
	var h struct {
		Status    string         `json:"status"`
		Materials int            `json:"materials"`
		Durable   bool           `json:"durable"`
		Journal   *journal.Stats `json:"journal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Durable || h.Journal != nil || h.Materials == 0 {
		t.Errorf("in-memory health = %+v", h)
	}
}

func TestHealthEndpointDurableAndDegraded(t *testing.T) {
	dir := t.TempDir()
	var fw *journal.FaultWriter
	sys, p, err := core.OpenDurable(dir, core.DurableOptions{
		WrapWAL: func(ws journal.WriteSyncer) journal.WriteSyncer {
			fw = journal.NewFaultWriter(ws, -1, false)
			return fw
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys, bytes.NewBuffer(nil))
	s.SetPersister(p)

	rec := do(t, s, "POST", "/api/accounts", "", map[string]string{"name": "ann", "role": "editor"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("register = %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("health = %d %s", rec.Code, rec.Body)
	}
	var h struct {
		Status  string         `json:"status"`
		Durable bool           `json:"durable"`
		Journal *journal.Stats `json:"journal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Durable || h.Journal == nil || h.Journal.Seq == 0 || h.Journal.Dir != dir {
		t.Errorf("durable health = %+v", h)
	}

	// Sever the journal: the next mutation fails, and health degrades.
	fw.SeverAfter(3)
	rec = do(t, s, "POST", "/api/accounts", "", map[string]string{"name": "ben", "role": "user"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("register on severed journal = %d %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("degraded health = %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("degraded health body = %+v", h)
	}
}

func TestDurableServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys, bytes.NewBuffer(nil))
	s.SetPersister(p)
	if rec := do(t, s, "POST", "/api/accounts", "", map[string]string{"name": "ed", "role": "editor"}); rec.Code != http.StatusCreated {
		t.Fatalf("register = %d", rec.Code)
	}
	body := map[string]any{
		"id": "restart-live", "title": "Restart Live", "kind": "assignment",
		"level": "CS1", "classifications": []string{},
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", body); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d %s", rec.Code, do(t, s, "POST", "/api/materials", "ed", body).Body)
	}
	if err := p.Close(); err != nil { // graceful shutdown: final checkpoint
		t.Fatal(err)
	}

	sys2, p2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	s2 := New(sys2, bytes.NewBuffer(nil))
	s2.SetPersister(p2)
	if rec := do(t, s2, "GET", "/api/materials/restart-live", "", nil); rec.Code != http.StatusOK {
		t.Errorf("material lost across restart: %d %s", rec.Code, rec.Body)
	}
	// The account survived too, so the editor can keep mutating.
	if rec := do(t, s2, "DELETE", "/api/materials/restart-live", "ed", nil); rec.Code != http.StatusOK {
		t.Errorf("editor lost across restart: %d %s", rec.Code, rec.Body)
	}
}
