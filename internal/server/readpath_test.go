package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The read-path performance layer: generation ETags, conditional requests,
// health-reported cache statistics, and — most importantly — the staleness
// invariant under concurrent mutation: once a mutation commits, no reader
// is ever served a result computed before it.

func TestETagConditionalRequests(t *testing.T) {
	s, _ := newTestServer(t)

	rec := do(t, s, "GET", "/api/coverage?ontology=cs13", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("coverage = %d: %s", rec.Code, rec.Body)
	}
	tag := rec.Header().Get("ETag")
	if tag == "" || !strings.HasPrefix(tag, `"`) {
		t.Fatalf("missing or unquoted ETag: %q", tag)
	}

	// Unchanged state: the same tag revalidates with an empty 304.
	req := httptest.NewRequest("GET", "/api/coverage?ontology=cs13", nil)
	req.Header.Set("If-None-Match", tag)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", rec2.Code)
	}
	if rec2.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", rec2.Body.String())
	}
	if got := rec2.Header().Get("ETag"); got != tag {
		t.Errorf("304 ETag = %q, want %q", got, tag)
	}

	// Weak-prefixed and wildcard forms must match too.
	for _, inm := range []string{"W/" + tag, `"nope", ` + tag, "*"} {
		req := httptest.NewRequest("GET", "/api/coverage?ontology=cs13", nil)
		req.Header.Set("If-None-Match", inm)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q = %d, want 304", inm, rec.Code)
		}
	}

	// A mutation invalidates the tag: the same conditional request now gets
	// a fresh 200 with a new ETag.
	mat := materialJSON{
		ID: "etag-probe", Title: "ETag Probe", Kind: "assignment", Level: "CS1",
		Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", mat); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	req = httptest.NewRequest("GET", "/api/coverage?ontology=cs13", nil)
	req.Header.Set("If-None-Match", tag)
	rec3 := httptest.NewRecorder()
	s.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("post-mutation revalidation = %d, want 200", rec3.Code)
	}
	newTag := rec3.Header().Get("ETag")
	if newTag == "" || newTag == tag {
		t.Errorf("post-mutation ETag = %q, want a fresh tag != %q", newTag, tag)
	}
	if rec3.Body.Len() == 0 {
		t.Error("post-mutation 200 carried no body")
	}
}

func TestHealthReportsCacheStats(t *testing.T) {
	s, _ := newTestServer(t)

	// Two identical reads: a miss then a hit.
	for i := 0; i < 2; i++ {
		if rec := do(t, s, "GET", "/api/coverage?ontology=pdc12", "", nil); rec.Code != http.StatusOK {
			t.Fatalf("coverage = %d", rec.Code)
		}
	}
	rec := do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("health = %d: %s", rec.Code, rec.Body)
	}
	h := decode[map[string]any](t, rec)
	cacheObj, ok := h["cache"].(map[string]any)
	if !ok {
		t.Fatalf("health has no cache block: %v", h)
	}
	if cacheObj["entries"].(float64) < 1 {
		t.Errorf("cache entries = %v, want >= 1", cacheObj["entries"])
	}
	if cacheObj["hits"].(float64) < 1 {
		t.Errorf("cache hits = %v, want >= 1", cacheObj["hits"])
	}
	if cacheObj["hit_ratio"].(float64) <= 0 {
		t.Errorf("hit ratio = %v, want > 0", cacheObj["hit_ratio"])
	}
	if _, ok := h["generation"]; !ok {
		t.Error("health does not report the generation")
	}

	// Mutate, re-read: the stale entry is evicted and the invalidation
	// generation recorded.
	mat := materialJSON{
		ID: "health-probe", Title: "Health Probe", Kind: "assignment", Level: "CS1",
		Classifications: []string{"nsf-ieee-tcpp-pdc-2012/pr/performance-issues/data/speedup-and-efficiency"},
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", mat); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "GET", "/api/coverage?ontology=pdc12", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("coverage after mutation = %d", rec.Code)
	}
	h = decode[map[string]any](t, rec2health(t, s))
	cacheObj = h["cache"].(map[string]any)
	if cacheObj["evictions"].(float64) < 1 {
		t.Errorf("evictions = %v, want >= 1 after invalidating mutation", cacheObj["evictions"])
	}
	if cacheObj["last_invalidation_generation"].(float64) < 1 {
		t.Errorf("last invalidation generation = %v, want >= 1", cacheObj["last_invalidation_generation"])
	}
}

func rec2health(t *testing.T, s *Server) *httptest.ResponseRecorder {
	t.Helper()
	rec := do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("health = %d", rec.Code)
	}
	return rec
}

// TestConcurrentReadsNeverGoBackward hammers the cached read endpoints from
// many goroutines while a mutator grows the corpus, and asserts the
// staleness invariant. The mutator only adds materials, so the coverage
// material count is monotone in the generation: if any reader ever observed
// the count decrease between successive reads, a post-mutation request was
// served a pre-mutation cached result. Run under -race this also exercises
// every cache/model/engine synchronization path at once.
func TestConcurrentReadsNeverGoBackward(t *testing.T) {
	s, sys := newTestServer(t)

	const (
		readers   = 6
		iters     = 50
		mutations = 30
	)
	paths := []string{
		"/api/coverage?ontology=cs13",
		"/api/similarity?left=nifty&right=peachy",
		"/api/suggest?ontology=pdc12&method=bayes&q=parallel+stencil+openmp",
		"/api/recommend?selected=acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays",
		"/api/gaps?ontology=pdc12&core_only=true",
		"/api/health",
	}

	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < mutations; i++ {
			mat := materialJSON{
				ID:    fmt.Sprintf("hammer-%d", i),
				Title: fmt.Sprintf("Hammer %d", i), Kind: "assignment", Level: "CS1",
				Description: "concurrent insertion probing the cache invalidation path",
				Classifications: []string{
					"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays",
				},
			}
			if rec := do(t, s, "POST", "/api/materials", "ed", mat); rec.Code != http.StatusCreated {
				errc <- fmt.Errorf("create %d = %d: %s", i, rec.Code, rec.Body)
				return
			}
		}
	}()

	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			lastCount := -1
			for i := 0; i < iters; i++ {
				path := paths[(ri+i)%len(paths)]
				floor := sys.Generation()
				rec := do(t, s, "GET", path, "", nil)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("reader %d: %s = %d: %s", ri, path, rec.Code, rec.Body)
					return
				}
				if tag := rec.Header().Get("ETag"); tag != "" {
					g, err := strconv.ParseUint(strings.Trim(tag, `"`), 10, 64)
					if err != nil {
						errc <- fmt.Errorf("reader %d: bad ETag %q", ri, tag)
						return
					}
					if g < floor {
						errc <- fmt.Errorf("reader %d: ETag generation %d < observed floor %d", ri, g, floor)
						return
					}
				}
				if strings.HasPrefix(path, "/api/coverage") {
					body := decode[map[string]any](t, rec)
					count := int(body["materials"].(float64))
					if count < lastCount {
						errc <- fmt.Errorf("reader %d: material count went backward: %d after %d — stale cached result served post-mutation", ri, count, lastCount)
						return
					}
					lastCount = count
				}
			}
		}(ri)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Quiesced: a final read must reflect every committed mutation.
	rec := do(t, s, "GET", "/api/coverage?ontology=cs13", "", nil)
	body := decode[map[string]any](t, rec)
	if got, want := int(body["materials"].(float64)), sys.Len(); got != want {
		t.Errorf("final coverage sees %d materials, system has %d", got, want)
	}
	if tag := rec.Header().Get("ETag"); tag != fmt.Sprintf("%q", strconv.FormatUint(sys.Generation(), 10)) {
		t.Errorf("final ETag %s != generation %d", tag, sys.Generation())
	}
}
