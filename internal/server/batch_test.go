package server

import (
	"net/http"
	"strings"
	"testing"
)

func batchBody(ids ...string) map[string]any {
	ms := make([]materialJSON, len(ids))
	for i, id := range ids {
		ms[i] = materialJSON{
			ID: id, Title: strings.ToUpper(id), Kind: "assignment", Level: "CS1",
			Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
		}
	}
	return map[string]any{"materials": ms}
}

func TestBatchCreateEndpoint(t *testing.T) {
	s, sys := newTestServer(t)
	before := sys.Len()

	rec := do(t, s, "POST", "/api/materials:batch", "ed", batchBody("b-1", "b-2", "b-3"))
	if rec.Code != http.StatusCreated {
		t.Fatalf("batch create = %d: %s", rec.Code, rec.Body)
	}
	if got := decode[map[string]any](t, rec); got["added"].(float64) != 3 {
		t.Errorf("added = %v", got["added"])
	}
	if sys.Len() != before+3 {
		t.Fatalf("corpus = %d, want %d", sys.Len(), before+3)
	}
	// The batch is immediately visible on the read path.
	if rec := do(t, s, "GET", "/api/materials/b-2", "", nil); rec.Code != http.StatusOK {
		t.Errorf("get after batch = %d", rec.Code)
	}
}

func TestBatchCreateAllOrNothing(t *testing.T) {
	s, sys := newTestServer(t)
	before := sys.Len()

	// Item 1 duplicates item 0: the whole batch must be refused with the
	// offender's index and id, and nothing added.
	rec := do(t, s, "POST", "/api/materials:batch", "ed", batchBody("b-dup", "b-dup"))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("dup batch = %d: %s", rec.Code, rec.Body)
	}
	got := decode[map[string]any](t, rec)
	if got["index"].(float64) != 1 || got["id"].(string) != "b-dup" {
		t.Errorf("offender = index %v id %v", got["index"], got["id"])
	}
	if sys.Len() != before {
		t.Errorf("refused batch added materials: %d -> %d", before, sys.Len())
	}
}

func TestBatchCreateValidation(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := do(t, s, "POST", "/api/materials:batch", "ed", map[string]any{"materials": []any{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/materials:batch", "ed", map[string]any{"nope": 1}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field = %d", rec.Code)
	}
}

func TestBatchCreateRequiresEditor(t *testing.T) {
	s, _ := newTestServer(t)
	body := batchBody("b-r-1")
	if rec := do(t, s, "POST", "/api/materials:batch", "", body); rec.Code != http.StatusUnauthorized {
		t.Errorf("no user = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/materials:batch", "bob", body); rec.Code != http.StatusForbidden {
		t.Errorf("user role = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/materials:batch", "sue", body); rec.Code != http.StatusForbidden {
		t.Errorf("submitter role = %d", rec.Code)
	}
}
