package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"carcs/internal/core"
	"carcs/internal/jobs"
	"carcs/internal/journal"
	"carcs/internal/resilience"
	"carcs/internal/workflow"
)

// faultControl wraps every (re)opened WAL sink in a FaultWriter; while
// sick, fresh writers are severed immediately so half-open probes keep
// failing until heal. Mirrors the harness in core's breaker tests.
type faultControl struct {
	mu   sync.Mutex
	cur  *journal.FaultWriter
	sick bool
}

func (fc *faultControl) wrap(ws journal.WriteSyncer) journal.WriteSyncer {
	fw := journal.NewFaultWriter(ws, -1, false)
	fc.mu.Lock()
	fc.cur = fw
	if fc.sick {
		fw.SeverAfter(0)
	}
	fc.mu.Unlock()
	return fw
}

func (fc *faultControl) sever() {
	fc.mu.Lock()
	fc.sick = true
	fc.cur.SeverAfter(0)
	fc.mu.Unlock()
}

func (fc *faultControl) heal() {
	fc.mu.Lock()
	fc.sick = false
	fc.mu.Unlock()
}

// overloadBody is the JSON envelope every 429/503 must carry.
type overloadBody struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// checkOverloadResponse asserts the rejection contract: matching status,
// a positive Retry-After header, and the mirrored envelope field.
func checkOverloadResponse(t *testing.T, rec *httptest.ResponseRecorder, status int) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d: %s", rec.Code, status, rec.Body)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d response missing Retry-After", status)
	}
	var body overloadBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%d response not the standard envelope: %q", status, rec.Body)
	}
	if body.Error == "" || body.RetryAfterSeconds < 1 {
		t.Fatalf("%d envelope = %+v", status, body)
	}
}

// TestServeStaleOnShed pins the degraded read path: a shed GET whose URI
// was memoized at most StaleGenerations behind answers 200 from cache
// with CARCS-Stale and the generation it was computed at as its ETag;
// beyond the allowance it sheds for real with the overload envelope.
func TestServeStaleOnShed(t *testing.T) {
	s, sys := newTestServer(t)
	s.SetResilience(ResilienceConfig{
		Limiter: resilience.LimiterConfig{
			Initial: 1, Min: 1, Max: 1,
			MaxWait:    5 * time.Millisecond,
			ShedMargin: time.Millisecond,
		},
		StaleGenerations: 1,
	})

	path := "/api/coverage?ontology=cs13"
	rec := do(t, s, "GET", path, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm read = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("CARCS-Stale") != "" {
		t.Fatal("fresh response marked stale")
	}
	freshTag := rec.Header().Get("ETag")
	freshBody := rec.Body.String()

	addMat := func(id string) {
		t.Helper()
		m := fromJSON(materialJSON{
			ID: id, Title: id, Kind: "assignment", Level: "CS1",
			Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
		})
		if err := sys.AddMaterial(m); err != nil {
			t.Fatal(err)
		}
	}
	addMat("stale-1") // one generation ahead of the memoized response

	// Hold the only concurrency slot so the next read is shed.
	release, err := s.limiter.Acquire(context.Background(), resilience.ClassRead)
	if err != nil {
		t.Fatal(err)
	}

	rec = do(t, s, "GET", path, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("shed read with cached previous generation = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("CARCS-Stale") != "true" {
		t.Error("stale response not marked CARCS-Stale")
	}
	if got := rec.Header().Get("ETag"); got != freshTag {
		t.Errorf("stale ETag = %s, want the cached generation %s", got, freshTag)
	}
	if rec.Body.String() != freshBody {
		t.Error("stale body differs from the memoized response")
	}

	// Conditional requests still work against the stale validator.
	req := httptest.NewRequest("GET", path, nil)
	req.Header.Set("If-None-Match", freshTag)
	cond := httptest.NewRecorder()
	s.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified {
		t.Errorf("conditional stale read = %d, want 304", cond.Code)
	}

	// Two more generations put the cached entry beyond the allowance:
	// now the shed is real, with the full overload contract.
	addMat("stale-2")
	addMat("stale-3")
	rec = do(t, s, "GET", path, "", nil)
	checkOverloadResponse(t, rec, http.StatusServiceUnavailable)

	release()
	rec = do(t, s, "GET", path, "", nil)
	if rec.Code != http.StatusOK || rec.Header().Get("CARCS-Stale") != "" {
		t.Fatalf("recovered read = %d stale=%q", rec.Code, rec.Header().Get("CARCS-Stale"))
	}
}

// TestPerClientRateLimit pins the 429 path: per-key token buckets, the
// overload envelope on rejection, isolation between clients, and the
// health exemption.
func TestPerClientRateLimit(t *testing.T) {
	s, _ := newTestServer(t)
	s.SetResilience(ResilienceConfig{
		RateLimit: &resilience.RateLimiterConfig{
			RatePerSecond: 0.001, // effectively no refill within the test
			Burst:         2,
			MaxClients:    16,
		},
		StaleGenerations: 1,
	})

	get := func(apiKey string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/api/status", nil)
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}

	for i := 0; i < 2; i++ {
		if rec := get(""); rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst = %d", i, rec.Code)
		}
	}
	checkOverloadResponse(t, get(""), http.StatusTooManyRequests)

	// A different API key is a different bucket.
	if rec := get("someone-else"); rec.Code != http.StatusOK {
		t.Errorf("other client limited too: %d", rec.Code)
	}

	// Health probes bypass the limiter entirely.
	if rec := do(t, s, "GET", "/api/health/live", "", nil); rec.Code != http.StatusOK {
		t.Errorf("live probe rate limited: %d", rec.Code)
	}

	var h struct {
		Resilience struct {
			RateLimiter *resilience.RateLimiterStats `json:"rate_limiter"`
		} `json:"resilience"`
	}
	rec := do(t, s, "GET", "/api/health", "", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Resilience.RateLimiter == nil || h.Resilience.RateLimiter.Limited == 0 {
		t.Errorf("health rate-limiter stats = %+v", h.Resilience.RateLimiter)
	}
}

// TestHealthLiveReadyAndStats pins the split health surface on a healthy
// in-memory server: live and ready answer 200, and the full payload
// carries the limiter stats block.
func TestHealthLiveReadyAndStats(t *testing.T) {
	s, _ := newTestServer(t)

	rec := do(t, s, "GET", "/api/health/live", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("live = %d", rec.Code)
	}
	rec = do(t, s, "GET", "/api/health/ready", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ready = %d: %s", rec.Code, rec.Body)
	}

	var h struct {
		Resilience struct {
			Limiter resilience.LimiterStats `json:"limiter"`
		} `json:"resilience"`
	}
	rec = do(t, s, "GET", "/api/health", "", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Resilience.Limiter.Limit <= 0 {
		t.Errorf("health limiter stats = %+v", h.Resilience.Limiter)
	}
}

// TestImportQueueFullOverloadEnvelope pins the unified backpressure path:
// a full job queue answers 503 through the standard envelope with a
// computed Retry-After, not a hand-rolled header.
func TestImportQueueFullOverloadEnvelope(t *testing.T) {
	s, _ := newTestServer(t)
	unblock := make(chan struct{})
	defer close(unblock)

	// Saturate the workers and fill the bounded submission queue. The two
	// steps must not race: a queued job submitted while a worker is still
	// picking up its blocker would drain into the freed worker after the
	// fill loop, reopening a queue slot and turning the expected 503 into a
	// 202. So first pin every worker on a blocker and wait until the runner
	// reports them all running; only then can filled queue slots not drain.
	blocker := func(ctx context.Context, j *jobs.Job) error {
		select {
		case <-unblock:
		case <-ctx.Done():
		}
		return nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Runner().Stats().Running < s.Runner().Stats().Workers {
		if time.Now().After(deadline) {
			t.Fatalf("workers never saturated: %+v", s.Runner().Stats())
		}
		if _, err := s.Runner().Submit("block", "", blocker); err != nil {
			// Queue momentarily full while workers are still draining
			// their blockers out of it; give them a beat.
			time.Sleep(time.Millisecond)
		}
	}
	for {
		if _, err := s.Runner().Submit("block", "", blocker); err != nil {
			break // queue full
		}
	}

	rec := doRaw(t, s, "POST", "/api/import", "ed", `{"id":"x","title":"X","kind":"assignment","level":"CS1"}`)
	checkOverloadResponse(t, rec, http.StatusServiceUnavailable)
}

// TestChaosJournalFaultGracefulDegradation is the fault-injection chaos
// drill (run by `make chaos`): with the WAL severed mid-flight, writes
// must fast-fail 503 with Retry-After (first through append errors, then
// through the open breaker), reads must keep serving with zero 5xx off
// their snapshots, readiness must flip while liveness stays green — and
// once the medium heals, a half-open probe must repair the log and close
// the breaker without a restart.
func TestChaosJournalFaultGracefulDegradation(t *testing.T) {
	dir := t.TempDir()
	fc := &faultControl{}
	cooldown := 100 * time.Millisecond
	sys, p, err := core.OpenDurable(dir, core.DurableOptions{
		Seed:    true,
		WrapWAL: fc.wrap,
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: cooldown},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sys.Workflow().Register("ed", workflow.RoleEditor)
	s := New(sys, io.Discard)
	s.SetPersister(p)

	readPaths := []string{
		"/api/coverage?ontology=cs13",
		"/api/gaps?ontology=pdc12&core_only=true",
		"/api/materials?collection=nifty",
		"/api/status",
	}
	for _, path := range readPaths {
		if rec := do(t, s, "GET", path, "", nil); rec.Code != http.StatusOK {
			t.Fatalf("warm %s = %d", path, rec.Code)
		}
	}

	mat := func(id string) materialJSON {
		return materialJSON{
			ID: id, Title: id, Kind: "assignment", Level: "CS1",
			Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
		}
	}
	if rec := do(t, s, "POST", "/api/materials", "ed", mat("healthy-0")); rec.Code != http.StatusCreated {
		t.Fatalf("healthy write = %d: %s", rec.Code, rec.Body)
	}

	fc.sever()

	// Mixed traffic against the degraded instance: every write must be a
	// fast, well-formed 503; every read must succeed.
	const (
		writers       = 4
		readers       = 4
		perGoroutine  = 12
		writeDeadline = 2 * time.Second
	)
	errc := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				start := time.Now()
				rec := do(t, s, "POST", "/api/materials", "ed", mat(fmt.Sprintf("degraded-%d-%d", wi, i)))
				if rec.Code != http.StatusServiceUnavailable {
					errc <- fmt.Errorf("degraded write = %d: %s", rec.Code, rec.Body)
					return
				}
				if rec.Header().Get("Retry-After") == "" {
					errc <- fmt.Errorf("degraded write missing Retry-After: %s", rec.Body)
					return
				}
				if d := time.Since(start); d > writeDeadline {
					errc <- fmt.Errorf("degraded write took %v, want fast fail", d)
					return
				}
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				path := readPaths[(ri+i)%len(readPaths)]
				rec := do(t, s, "GET", path, "", nil)
				if rec.Code >= 500 {
					errc <- fmt.Errorf("read %s = %d during journal outage: %s", path, rec.Code, rec.Body)
					return
				}
			}
		}(ri)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The instance self-reports: unready and degraded, but alive.
	if rec := do(t, s, "GET", "/api/health/ready", "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("ready during outage = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "GET", "/api/health/live", "", nil); rec.Code != http.StatusOK {
		t.Errorf("live during outage = %d", rec.Code)
	}
	var h struct {
		Status     string `json:"status"`
		Resilience struct {
			Breaker *resilience.BreakerStats `json:"breaker"`
		} `json:"resilience"`
	}
	rec := do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("health during outage = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Resilience.Breaker == nil || h.Resilience.Breaker.Trips == 0 {
		t.Errorf("degraded health = status %q, breaker %+v", h.Status, h.Resilience.Breaker)
	}

	// Heal the medium; after the cooldown a half-open probe repairs the
	// WAL and writes flow again — no restart, no manual intervention.
	fc.heal()
	deadline := time.Now().Add(5 * time.Second)
	var last *httptest.ResponseRecorder
	for i := 0; ; i++ {
		last = do(t, s, "POST", "/api/materials", "ed", mat(fmt.Sprintf("recovered-%d", i)))
		if last.Code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes never recovered after heal: %d %s", last.Code, last.Body)
		}
		time.Sleep(cooldown / 4)
	}
	if rec := do(t, s, "GET", "/api/health/ready", "", nil); rec.Code != http.StatusOK {
		t.Errorf("ready after recovery = %d: %s", rec.Code, rec.Body)
	}
}

// TestOverloadShedsAndKeepsGoodput drives a deliberately tiny limiter at
// ~4x its capacity and checks the two halves of graceful degradation:
// goodput stays above half of the uncontended baseline (admission control
// protects throughput instead of collapsing), and every rejected request
// is a fast, well-formed 503 — bounded by the limiter's wait budget, not
// by the full service time.
func TestOverloadShedsAndKeepsGoodput(t *testing.T) {
	// The slow endpoint sleeps rather than burns CPU, so the saturation
	// pattern works even on a single-core runner.
	s, _ := newTestServer(t)
	const (
		capacity = 2
		service  = 10 * time.Millisecond
		phase    = 400 * time.Millisecond
	)
	s.SetResilience(ResilienceConfig{
		Limiter: resilience.LimiterConfig{
			Initial: capacity, Min: 1, Max: capacity,
			MaxWait:    25 * time.Millisecond,
			ShedMargin: time.Millisecond,
		},
		StaleGenerations: 0, // force real sheds; stale serving is tested elsewhere
	})
	s.mux.HandleFunc("GET /test/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(service):
		case <-r.Context().Done():
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": "true"})
	})

	run := func(workers int) (ok, shed int, worst time.Duration) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		stop := time.Now().Add(phase)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					start := time.Now()
					rec := do(t, s, "GET", "/test/slow", "", nil)
					lat := time.Since(start)
					mu.Lock()
					if lat > worst {
						worst = lat
					}
					switch rec.Code {
					case http.StatusOK:
						ok++
					case http.StatusServiceUnavailable:
						shed++
						if rec.Header().Get("Retry-After") == "" {
							mu.Unlock()
							t.Errorf("shed response missing Retry-After: %s", rec.Body)
							return
						}
					default:
						mu.Unlock()
						t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
						return
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return ok, shed, worst
	}

	baselineOK, _, _ := run(capacity)
	if baselineOK == 0 {
		t.Fatal("baseline served nothing")
	}
	overloadOK, overloadShed, worst := run(4 * capacity)

	if overloadShed == 0 {
		t.Error("4x saturation produced no sheds; admission control inactive")
	}
	if overloadOK*2 < baselineOK {
		t.Errorf("goodput collapsed under overload: %d ok vs baseline %d", overloadOK, baselineOK)
	}
	// Every request — served or shed — must resolve within the service
	// time plus the wait budget, with a wide scheduler allowance: shed
	// latency is bounded by policy, not by queue depth.
	if worst > time.Second {
		t.Errorf("worst-case latency %v under overload; shedding not deadline-bounded", worst)
	}
}
