package server

import (
	"net/http"
	"strconv"
	"testing"

	"carcs/internal/learn"
)

type reviewQueueItem struct {
	ID          int64        `json:"id"`
	Submitter   string       `json:"submitter"`
	Uncertainty float64      `json:"uncertainty"`
	Material    materialJSON `json:"material"`
	Suggestions []struct {
		NodeID string
		Score  float64
	} `json:"suggestions"`
}

func itoa(id int64) string { return strconv.FormatInt(id, 10) }

func submitMaterial(t *testing.T, s *Server, id string) int64 {
	t.Helper()
	m := materialJSON{
		ID: id, Title: "T " + id, Kind: "assignment", Level: "CS1",
		Description:     "an exercise about sorting arrays with parallel loops " + id,
		Classifications: []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"},
	}
	rec := do(t, s, "POST", "/api/submissions", "sue", m)
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit %s = %d: %s", id, rec.Code, rec.Body.String())
	}
	return int64(decode[map[string]any](t, rec)["id"].(float64))
}

func TestReviewQueueEndpoint(t *testing.T) {
	s, sys := newTestServer(t)

	// Role-gated like the other editorial endpoints.
	if rec := do(t, s, "GET", "/api/review/queue", "sue", nil); rec.Code != http.StatusForbidden {
		t.Fatalf("submitter allowed: %d", rec.Code)
	}
	rec := do(t, s, "GET", "/api/review/queue", "ed", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("empty queue = %d", rec.Code)
	}
	if got := decode[[]reviewQueueItem](t, rec); len(got) != 0 {
		t.Fatalf("expected empty queue, got %d items", len(got))
	}

	idA := submitMaterial(t, s, "queue-a")
	idB := submitMaterial(t, s, "queue-b")

	// Untrained: FIFO, uncertainty pinned at 1.
	q := decode[[]reviewQueueItem](t, do(t, s, "GET", "/api/review/queue", "ed", nil))
	if len(q) != 2 || q[0].ID != idA || q[1].ID != idB {
		t.Fatalf("untrained queue not FIFO: %+v", q)
	}
	for _, it := range q {
		if it.Uncertainty != 1 {
			t.Fatalf("untrained uncertainty = %v", it.Uncertainty)
		}
	}

	// Train through the API, then the queue carries real scores and the
	// machine's suggestions.
	if rec := do(t, s, "POST", "/api/learn/train", "sue", nil); rec.Code != http.StatusForbidden {
		t.Fatalf("submitter may not train: %d", rec.Code)
	}
	rec = do(t, s, "POST", "/api/learn/train", "ed", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("train = %d: %s", rec.Code, rec.Body.String())
	}
	q = decode[[]reviewQueueItem](t, do(t, s, "GET", "/api/review/queue", "ed", nil))
	if len(q) != 2 {
		t.Fatalf("queue len %d", len(q))
	}
	for i, it := range q {
		if it.Uncertainty <= 0 || it.Uncertainty > 1 {
			t.Fatalf("uncertainty out of range: %v", it.Uncertainty)
		}
		if len(it.Suggestions) == 0 {
			t.Fatalf("item %d has no suggestions", i)
		}
		if i > 0 && q[i-1].Uncertainty < it.Uncertainty {
			t.Fatal("queue not sorted by uncertainty desc")
		}
	}
	_ = sys
}

func TestReviewFeedsLearnedModel(t *testing.T) {
	s, sys := newTestServer(t)
	if err := sys.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	versionOf := func() int {
		var v int
		for _, m := range sys.LearnStats().Models {
			if m.Ontology == "cs13" {
				v = m.Version
			}
		}
		return v
	}
	before := versionOf()

	idA := submitMaterial(t, s, "feed-a")
	idB := submitMaterial(t, s, "feed-b")

	rec := do(t, s, "POST", "/api/submissions/"+itoa(idA)+"/review", "ed",
		map[string]string{"decision": "approved"})
	if rec.Code != http.StatusOK {
		t.Fatalf("approve = %d: %s", rec.Code, rec.Body.String())
	}
	if got := versionOf(); got != before+1 {
		t.Fatalf("approve did not update model: version %d -> %d", before, got)
	}
	if sys.Material("feed-a") == nil {
		t.Fatal("approved material not installed")
	}

	rec = do(t, s, "POST", "/api/submissions/"+itoa(idB)+"/review", "ed",
		map[string]string{"decision": "rejected"})
	if rec.Code != http.StatusOK {
		t.Fatalf("reject = %d: %s", rec.Code, rec.Body.String())
	}
	if got := versionOf(); got != before+2 {
		t.Fatalf("reject did not update model: version = %d", got)
	}
}

func TestHealthReportsLearn(t *testing.T) {
	s, sys := newTestServer(t)
	type healthLearn struct {
		Learn struct {
			Models []struct {
				Ontology string `json:"ontology"`
				Trained  bool   `json:"trained"`
				Version  int    `json:"version"`
				Examples int    `json:"examples"`
			} `json:"models"`
			LastTrainGen     uint64 `json:"last_train_gen"`
			ReviewQueueDepth int    `json:"review_queue_depth"`
		} `json:"learn"`
	}
	h := decode[healthLearn](t, do(t, s, "GET", "/api/health", "", nil))
	if len(h.Learn.Models) != 2 {
		t.Fatalf("expected 2 model blocks, got %+v", h.Learn)
	}
	for _, m := range h.Learn.Models {
		if m.Trained {
			t.Fatalf("model %s trained before any train", m.Ontology)
		}
	}

	if err := sys.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	submitMaterial(t, s, "health-sub")
	h = decode[healthLearn](t, do(t, s, "GET", "/api/health", "", nil))
	for _, m := range h.Learn.Models {
		if !m.Trained || m.Version != 1 || m.Examples == 0 {
			t.Fatalf("model not reported trained: %+v", m)
		}
	}
	if h.Learn.LastTrainGen == 0 {
		t.Fatal("last_train_gen not reported")
	}
	if h.Learn.ReviewQueueDepth != 1 {
		t.Fatalf("review_queue_depth = %d, want 1", h.Learn.ReviewQueueDepth)
	}
}
