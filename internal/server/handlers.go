package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"carcs/internal/core"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/search"
	"carcs/internal/workflow"
)

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.view(r).Stats())
}

// GET /api/materials?collection=&kind=&level=&language=&year_from=&year_to=&limit=&offset=
//
// Results are always sorted by material ID, so pagination windows are
// deterministic across calls at the same generation. Without limit/offset
// the full (sorted) list is returned, preserving the original shape; with
// either parameter the response is an envelope carrying the total count.
func (s *Server) handleListMaterials(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	v := s.view(r)
	yearFrom, err := intParam(q, "year_from", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	yearTo, err := intParam(q, "year_to", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var filters []search.Filter
	if c := q.Get("collection"); c != "" {
		filters = append(filters, search.ByCollection(c))
	}
	if k := q.Get("kind"); k != "" {
		filters = append(filters, search.ByKind(material.Kind(k)))
	}
	if l := q.Get("level"); l != "" {
		filters = append(filters, search.ByLevel(material.Level(l)))
	}
	if lang := q.Get("language"); lang != "" {
		filters = append(filters, search.ByLanguage(lang))
	}
	if yearFrom != 0 || yearTo != 0 {
		filters = append(filters, search.ByYearRange(yearFrom, yearTo))
	}
	if entry := q.Get("entry"); entry != "" {
		filters = append(filters, search.HasEntry(entry))
	}
	if subtree := q.Get("subtree"); subtree != "" {
		o := v.OntologyByName(q.Get("ontology"))
		if o == nil {
			writeError(w, http.StatusBadRequest, "subtree filter needs ontology=cs13|pdc12")
			return
		}
		filters = append(filters, search.InSubtree(o, subtree))
	}
	// The canonical filter key memoizes the ID-sorted filtered slice per
	// generation (see View.SortedMaterials): every page of the same
	// listing shares one sort, which is what makes deep cursor pages
	// constant-latency at large corpus sizes.
	filterKey := strings.Join([]string{
		q.Get("collection"), q.Get("kind"), q.Get("level"), q.Get("language"),
		strconv.Itoa(yearFrom), strconv.Itoa(yearTo), q.Get("entry"),
		q.Get("subtree"), q.Get("ontology"),
	}, "\x1f")
	var filter search.Filter
	if len(filters) > 0 {
		filter = search.AllOf(filters...)
	}

	// Keyset pagination: ?after=<id>&limit=N pages forward from the cursor
	// with a binary search, never an offset walk. limit/offset stay
	// accepted for old clients (deprecated); their envelope also carries
	// next_cursor so they can switch mid-flight.
	if q.Has("after") {
		after := q.Get("after")
		limit, err := intParam(q, "limit", defaultPageLimit)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if limit <= 0 {
			limit = defaultPageLimit
		}
		page, total, next := v.MaterialsPage(filterKey, filter, after, limit)
		streamMaterialEnvelope(w, pageEnvelope{total: total, limit: limit, next: next, hasOffset: false}, page)
		return
	}

	mats := v.SortedMaterials(filterKey, filter)
	if !q.Has("limit") && !q.Has("offset") {
		// Full listing: stream the bare array (original shape) instead of
		// building a []materialJSON copy of the whole corpus.
		streamMaterialArray(w, mats)
		return
	}
	w.Header().Set("Deprecation", "true") // offset pagination; use after=<id>
	total := len(mats)
	offset, err := intParam(q, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit, err := intParam(q, "limit", total)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if offset < 0 || limit < 0 {
		writeError(w, http.StatusBadRequest, "limit and offset must be non-negative")
		return
	}
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total || end < 0 { // <0 guards offset+limit overflow
		end = total
	}
	var next string
	if end < total && end > offset {
		next = mats[end-1].ID
	}
	streamMaterialEnvelope(w, pageEnvelope{total: total, limit: limit, offset: offset, hasOffset: true, next: next}, mats[offset:end])
}

// defaultPageLimit is the page size when ?after= is given without a limit.
const defaultPageLimit = 100

// pageEnvelope carries the listing metadata around the streamed page.
type pageEnvelope struct {
	total     int
	limit     int
	offset    int
	hasOffset bool
	next      string
}

// streamMaterialArray writes a material slice as a bare JSON array without
// materializing the encoded document: one small encode per element, so a
// million-row listing costs O(1) extra memory instead of a whole-slice
// marshal. The encoder's trailing newlines are legal JSON whitespace.
func streamMaterialArray(w http.ResponseWriter, mats []*material.Material) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "[")
	enc := json.NewEncoder(w)
	for i, m := range mats {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if enc.Encode(toJSON(m)) != nil {
			return // client went away mid-stream; nothing to salvage
		}
	}
	io.WriteString(w, "]\n")
}

// streamMaterialEnvelope writes a paginated listing envelope with the
// materials array streamed element-by-element. next_cursor is omitted on
// the final page.
func streamMaterialEnvelope(w http.ResponseWriter, env pageEnvelope, page []*material.Material) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, `{"total":%d,"limit":%d`, env.total, env.limit)
	if env.hasOffset {
		fmt.Fprintf(w, `,"offset":%d`, env.offset)
	}
	if env.next != "" {
		fmt.Fprintf(w, `,"next_cursor":%s`, strconv.Quote(env.next))
	}
	io.WriteString(w, `,"materials":[`)
	enc := json.NewEncoder(w)
	for i, m := range page {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if enc.Encode(toJSON(m)) != nil {
			return
		}
	}
	io.WriteString(w, "]}\n")
}

// POST /api/materials
func (s *Server) handleCreateMaterial(w http.ResponseWriter, r *http.Request) {
	var mj materialJSON
	if !decodeBody(w, r, &mj) {
		return
	}
	m := fromJSON(mj)
	if err := s.tenantSys(r).AddMaterial(m); err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, toJSON(m))
}

// POST /api/materials:batch
//
// Accepts {"materials": [...]} and commits them as one batch: one journal
// fsync, one view publish. All-or-nothing — any invalid or duplicate item
// rejects the whole request with a 422 naming the offending index and id, and
// nothing is stored. The body cap is wider than the single-material
// endpoint's, sized for a few thousand records per call.
func (s *Server) handleCreateMaterialBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Materials []materialJSON `json:"materials"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(body.Materials) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: materials is required")
		return
	}
	ms := make([]*material.Material, len(body.Materials))
	for i, mj := range body.Materials {
		ms[i] = fromJSON(mj)
	}
	if err := s.tenantSys(r).AddMaterials(ms); err != nil {
		var bie *core.BatchItemError
		if errors.As(err, &bie) {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error": err.Error(),
				"index": bie.Index,
				"id":    bie.ID,
			})
			return
		}
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": len(ms)})
}

// GET /api/materials/{id}
func (s *Server) handleGetMaterial(w http.ResponseWriter, r *http.Request) {
	m := s.view(r).Material(r.PathValue("id"))
	if m == nil {
		writeError(w, http.StatusNotFound, "no such material")
		return
	}
	writeJSON(w, http.StatusOK, toJSON(m))
}

// DELETE /api/materials/{id}
func (s *Server) handleDeleteMaterial(w http.ResponseWriter, r *http.Request) {
	if err := s.tenantSys(r).RemoveMaterial(r.PathValue("id")); err != nil {
		s.writeMutationError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}

// PUT /api/materials/{id}/classifications
func (s *Server) handleReclassify(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Classifications []string `json:"classifications"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	cls := make([]material.Classification, 0, len(body.Classifications))
	for _, c := range body.Classifications {
		cls = append(cls, material.Classification{NodeID: c})
	}
	if err := s.tenantSys(r).Reclassify(r.PathValue("id"), cls); err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(s.tenantSys(r).Material(r.PathValue("id"))))
}

// GET /api/materials/{id}/replacements?k=
func (s *Server) handleReplacements(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r.URL.Query(), "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	edges, err := s.view(r).PDCReplacements(r.PathValue("id"), k)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, edges)
}

// GET /api/ontologies
func (s *Server) handleOntologies(w http.ResponseWriter, r *http.Request) {
	type ont struct {
		Name    string `json:"name"`
		Display string `json:"display"`
		Entries int    `json:"entries"`
	}
	writeJSON(w, http.StatusOK, []ont{
		{Name: "cs13", Display: s.sys.CS13().Name(), Entries: s.sys.CS13().Len()},
		{Name: "pdc12", Display: s.sys.PDC12().Name(), Entries: s.sys.PDC12().Len()},
	})
}

// GET /api/ontologies/{name}/search?q=&k=  — the Fig. 1b entry-locating
// search, with highlight markers.
func (s *Server) handleOntologySearch(w http.ResponseWriter, r *http.Request) {
	o := s.sys.OntologyByName(r.PathValue("name"))
	if o == nil {
		writeError(w, http.StatusNotFound, "unknown ontology")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q")
		return
	}
	k, err := intParam(r.URL.Query(), "k", 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	type hit struct {
		ID          string  `json:"id"`
		Path        string  `json:"path"`
		Highlighted string  `json:"highlighted"`
		Score       float64 `json:"score"`
	}
	var out []hit
	for _, m := range o.Search(o.RootID(), q) {
		if !m.Node.Kind.Classifiable() {
			continue
		}
		out = append(out, hit{
			ID:          m.Node.ID,
			Path:        o.Path(m.Node.ID),
			Highlighted: highlightMark(m.Node.Label, m),
			Score:       m.Score,
		})
		if len(out) >= k {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// GET /api/ontologies/{name}/node/{id...}
func (s *Server) handleOntologyNode(w http.ResponseWriter, r *http.Request) {
	o := s.sys.OntologyByName(r.PathValue("name"))
	if o == nil {
		writeError(w, http.StatusNotFound, "unknown ontology")
		return
	}
	id := r.PathValue("id")
	n := o.Node(id)
	if n == nil {
		writeError(w, http.StatusNotFound, "unknown node")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       n.ID,
		"label":    n.Label,
		"kind":     n.Kind.String(),
		"tier":     n.Tier.String(),
		"bloom":    n.Bloom.String(),
		"path":     o.Path(id),
		"children": o.Children(id),
	})
}

// GET /api/coverage?ontology=&collection=
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	rep, err := s.view(r).CoverageCtx(r.Context(), r.URL.Query().Get("ontology"), r.URL.Query().Get("collection"))
	if err != nil {
		writeReadError(w, err)
		return
	}
	cov, tot := rep.CoveredEntries(rep.Ontology.RootID())
	writeJSON(w, http.StatusOK, map[string]any{
		"collection":      rep.Collection,
		"ontology":        rep.Ontology.Name(),
		"materials":       rep.Materials,
		"covered_entries": cov,
		"total_entries":   tot,
		"areas":           rep.AreaRanking(),
		"untouched":       rep.UncoveredAreas(),
		"hours":           rep.Hours(rep.Ontology.RootID()),
	})
}

// GET /api/gaps?ontology=&collection=&core_only=
func (s *Server) handleGaps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gaps, err := s.view(r).GapReportCtx(r.Context(), q.Get("ontology"), q.Get("collection"), q.Get("core_only") == "true")
	if err != nil {
		writeReadError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, gaps)
}

// GET /api/similarity?left=&right=&threshold=
func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	left, right := q.Get("left"), q.Get("right")
	if left == "" || right == "" {
		writeError(w, http.StatusBadRequest, "need left= and right= collections")
		return
	}
	threshold, err := intParam(q, "threshold", 2)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	g, err := s.view(r).SimilarityGraphCtx(r.Context(), left, right, threshold)
	if err != nil {
		writeReadError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":           len(g.Nodes),
		"edges":           g.Edges,
		"isolated":        g.Isolated(),
		"isolation_ratio": g.IsolationRatio(),
		"clusters":        g.Components(2),
	})
}

// GET /api/search?q=&k=&collection=
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q")
		return
	}
	k, err := intParam(r.URL.Query(), "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var filters []search.Filter
	if c := r.URL.Query().Get("collection"); c != "" {
		filters = append(filters, search.ByCollection(c))
	}
	hits, didYouMean := s.view(r).SearchText(q, k, filters...)
	type hit struct {
		Material materialJSON `json:"material"`
		Score    float64      `json:"score"`
	}
	out := make([]hit, 0, len(hits))
	for _, h := range hits {
		out = append(out, hit{Material: toJSON(h.Material), Score: h.Score})
	}
	if didYouMean != "" {
		writeJSON(w, http.StatusOK, map[string]any{"did_you_mean": didYouMean, "hits": out})
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// GET /api/query?q=&k= — the structured query language
// ("collection:nifty level:CS1 arrays", see search.ParseQuery).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q")
		return
	}
	k, err := intParam(r.URL.Query(), "k", 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hits, err := s.view(r).SearchQuery(q, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	type hit struct {
		Material materialJSON `json:"material"`
		Score    float64      `json:"score"`
	}
	out := make([]hit, 0, len(hits))
	for _, h := range hits {
		out = append(out, hit{Material: toJSON(h.Material), Score: h.Score})
	}
	writeJSON(w, http.StatusOK, out)
}

// GET /api/suggest?ontology=&method=&q=&k=
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("q") == "" {
		writeError(w, http.StatusBadRequest, "missing q")
		return
	}
	k, err := intParam(q, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sugg, err := s.view(r).SuggestCtx(r.Context(), q.Get("method"), q.Get("ontology"), q.Get("q"), k)
	if err != nil {
		writeReadError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sugg)
}

// GET /api/recommend?selected=a,b,c&k=
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	selected := splitCSV(r.URL.Query().Get("selected"))
	if len(selected) == 0 {
		writeError(w, http.StatusBadRequest, "missing selected=")
		return
	}
	k, err := intParam(r.URL.Query(), "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.view(r).Recommend(selected, k))
}

// POST /api/accounts {"name": ..., "role": "user|submitter|editor"}
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
		Role string `json:"role"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Name == "" {
		writeError(w, http.StatusBadRequest, "missing name")
		return
	}
	var role workflow.Role
	switch body.Role {
	case "", "user":
		role = workflow.RoleUser
	case "submitter":
		role = workflow.RoleSubmitter
	case "editor":
		role = workflow.RoleEditor
	default:
		writeError(w, http.StatusBadRequest, "unknown role")
		return
	}
	acct, err := s.tenantSys(r).Workflow().Register(body.Name, role)
	if err != nil {
		// Registration only fails when the journal refused the write;
		// writeMutationError adds the Retry-After the old path lacked.
		s.writeMutationError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": acct.Name, "role": acct.Role.String()})
}

// POST /api/submissions — body is a material; queued for editorial review.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var mj materialJSON
	if !decodeBody(w, r, &mj) {
		return
	}
	sub, err := s.tenantSys(r).Workflow().Submit(r.Header.Get("X-User"), fromJSON(mj))
	if err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": sub.ID, "status": sub.Status})
}

// GET /api/submissions — the editor's pending queue.
func (s *Server) handlePendingSubmissions(w http.ResponseWriter, r *http.Request) {
	type subJSON struct {
		ID        int64        `json:"id"`
		Submitter string       `json:"submitter"`
		Material  materialJSON `json:"material"`
	}
	pend := s.tenantSys(r).Workflow().Pending()
	out := make([]subJSON, 0, len(pend))
	for _, sub := range pend {
		out = append(out, subJSON{ID: sub.ID, Submitter: sub.Submitter, Material: toJSON(sub.Material)})
	}
	writeJSON(w, http.StatusOK, out)
}

// POST /api/submissions/{id}/review {"decision": "approved", "note": ""}
// Approval also installs the material into the repository.
func (s *Server) handleReview(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad submission id")
		return
	}
	var body struct {
		Decision string `json:"decision"`
		Note     string `json:"note"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	wf := s.tenantSys(r).Workflow()
	var sub *workflow.Submission
	for _, p := range wf.Pending() {
		if p.ID == id {
			sub = p
			break
		}
	}
	if err := wf.Review(r.Header.Get("X-User"), id, workflow.Status(body.Decision), body.Note); err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if workflow.Status(body.Decision) == workflow.StatusApproved && sub != nil {
		if err := s.tenantSys(r).AddMaterial(sub.Material); err != nil {
			s.writeMutationError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	// Every accept/reject verdict is a labeled example: feed it to the
	// learned classifier as an online update. The review itself has already
	// committed, so a failed update (journal degraded mid-request) is logged
	// rather than failing the response — the verdict is durable either way.
	if sub != nil {
		switch workflow.Status(body.Decision) {
		case workflow.StatusApproved, workflow.StatusRejected:
			accepted := workflow.Status(body.Decision) == workflow.StatusApproved
			if err := s.tenantSys(r).LearnFromReview(sub.Material, accepted); err != nil {
				s.log.Printf("learn from review %d: %v", id, err)
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": body.Decision})
}

// highlightMark renders the matched label with <mark> tags, the form the
// dynamic web page consumes (Fig. 1b: "entries can be searched for by
// entering a word or phrase that becomes highlighted").
func highlightMark(label string, m ontology.Match) string {
	return ontology.Highlight(label, m.Spans, "<mark>", "</mark>")
}

// GET /api/depth?ontology=&collection= — the Bloom-level depth report
// (the Sec. IV-A proposed extension).
func (s *Server) handleDepth(w http.ResponseWriter, r *http.Request) {
	rep, err := s.view(r).DepthReport(r.URL.Query().Get("ontology"), r.URL.Query().Get("collection"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "unknown ontology")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"met":             rep.Met,
		"shallow":         rep.Shallow,
		"unrated":         rep.Unrated,
		"rated_fraction":  rep.RatedFraction(),
		"shallow_entries": rep.ShallowEntries(),
	})
}

// GET /api/snapshot — download the relational state as JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="carcs-snapshot.json"`)
	if err := s.view(r).Snapshot(w); err != nil {
		s.log.Printf("snapshot: %v", err)
	}
}

// POST /api/edits {"material": ..., "field": ..., "old": ..., "new": ...}
func (s *Server) handleSuggestEdit(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Material string `json:"material"`
		Field    string `json:"field"`
		Old      string `json:"old"`
		New      string `json:"new"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Material == "" || body.Field == "" {
		writeError(w, http.StatusBadRequest, "missing material or field")
		return
	}
	if s.tenantSys(r).Material(body.Material) == nil {
		writeError(w, http.StatusNotFound, "no such material")
		return
	}
	e, err := s.tenantSys(r).Workflow().SuggestEdit(r.Header.Get("X-User"), body.Material, body.Field, body.Old, body.New)
	if err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

// GET /api/edits — the editor's unverified-edit queue.
func (s *Server) handleUnverifiedEdits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tenantSys(r).Workflow().UnverifiedEdits())
}

// POST /api/edits/{id}/verify {"accept": true}
func (s *Server) handleVerifyEdit(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad edit id")
		return
	}
	var body struct {
		Accept bool `json:"accept"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if err := s.tenantSys(r).Workflow().VerifyEdit(r.Header.Get("X-User"), id, body.Accept); err != nil {
		s.writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "accepted": body.Accept})
}
