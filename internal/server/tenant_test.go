package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carcs/internal/workflow"
)

const arraysEntry = "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"

func tenantMat(id string) map[string]any {
	return map[string]any{
		"id": id, "title": "T " + id, "kind": "assignment", "level": "CS1",
		"classifications": []string{arraysEntry},
	}
}

func TestTenantLifecycle(t *testing.T) {
	s, _ := newTestServer(t)

	rec := do(t, s, "PUT", "/api/t/alpha", "", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT new workspace = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, s, "PUT", "/api/t/alpha", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT existing workspace = %d, want 200 (idempotent)", rec.Code)
	}
	rec = do(t, s, "GET", "/api/t/alpha", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET workspace = %d", rec.Code)
	}
	info := decode[map[string]any](t, rec)
	if info["name"] != "alpha" {
		t.Errorf("workspace info = %v", info)
	}
	if rec := do(t, s, "GET", "/api/t/nope", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET missing workspace = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "PUT", "/api/t/Not%20Valid", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("PUT invalid name = %d, want 400", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/t/nope/materials", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET scoped route for missing workspace = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/api/t/alpha", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE workspace = %d, want 405", rec.Code)
	}

	rec = do(t, s, "GET", "/api/tenants", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/tenants = %d", rec.Code)
	}
	var list struct {
		Total   int `json:"total"`
		Tenants []struct {
			Name string `json:"name"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 2 || list.Tenants[0].Name != "default" || list.Tenants[1].Name != "alpha" {
		t.Errorf("tenant list = %+v", list)
	}
}

// TestTenantIsolationHTTP proves the scoped surface end to end: writes via
// /api/t/{name}/... land in that workspace only, the legacy surface stays an
// alias for default, and ETag/stale-cache keys never cross workspaces.
func TestTenantIsolationHTTP(t *testing.T) {
	s, sys := newTestServer(t)
	if rec := do(t, s, "PUT", "/api/t/alpha", "", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create workspace: %d", rec.Code)
	}
	alpha, _ := s.Workspaces().Get("alpha")
	// Accounts are per-workspace state: alpha needs its own editor.
	alpha.Workflow().Register("ed", workflow.RoleEditor)

	defBefore := sys.Len()
	rec := do(t, s, "POST", "/api/t/alpha/materials", "ed", tenantMat("alpha-m1"))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST scoped material = %d: %s", rec.Code, rec.Body)
	}
	if sys.Len() != defBefore {
		t.Errorf("scoped write leaked into default workspace (%d -> %d)", defBefore, sys.Len())
	}
	if alpha.Len() != 1 {
		t.Errorf("alpha has %d materials, want 1", alpha.Len())
	}

	// Scoped read sees it; legacy read does not.
	if rec := do(t, s, "GET", "/api/t/alpha/materials/alpha-m1", "", nil); rec.Code != http.StatusOK {
		t.Errorf("GET scoped material = %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/materials/alpha-m1", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET tenant material via legacy surface = %d, want 404", rec.Code)
	}

	// Legacy write lands in default only.
	rec = do(t, s, "POST", "/api/materials", "ed", tenantMat("def-m1"))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST legacy material = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "GET", "/api/t/alpha/materials/def-m1", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("default material visible in alpha = %d, want 404", rec.Code)
	}

	// ETags track each workspace's generation independently: a mutation in
	// alpha must invalidate alpha's validator while default's keeps
	// serving 304s — neither workspace's cache churn bleeds into the other.
	etDef := do(t, s, "GET", "/api/materials", "", nil).Header().Get("ETag")
	etAlpha := do(t, s, "GET", "/api/t/alpha/materials", "", nil).Header().Get("ETag")
	if etDef == "" || etAlpha == "" {
		t.Fatalf("missing ETags: default=%q alpha=%q", etDef, etAlpha)
	}
	if rec := do(t, s, "POST", "/api/t/alpha/materials", "ed", tenantMat("alpha-m2")); rec.Code != http.StatusCreated {
		t.Fatalf("second alpha write: %d", rec.Code)
	}
	if got := do(t, s, "GET", "/api/t/alpha/materials", "", nil).Header().Get("ETag"); got == etAlpha {
		t.Error("alpha ETag unchanged after alpha mutation")
	}
	req := httptest.NewRequest("GET", "/api/materials", nil)
	req.Header.Set("If-None-Match", etDef)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Errorf("default validator invalidated by alpha's mutation: %d", rec2.Code)
	}
}

func TestTenantQuotaHTTP(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := do(t, s, "PUT", "/api/t/alpha", "", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create workspace: %d", rec.Code)
	}
	alpha, _ := s.Workspaces().Get("alpha")
	alpha.Workflow().Register("ed", workflow.RoleEditor)
	alpha.SetMaterialLimit(1)

	if rec := do(t, s, "POST", "/api/t/alpha/materials", "ed", tenantMat("q-1")); rec.Code != http.StatusCreated {
		t.Fatalf("first add = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, s, "POST", "/api/t/alpha/materials", "ed", tenantMat("q-2"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("add over quota = %d, want 429: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "quota") {
		t.Errorf("quota error body = %s", rec.Body)
	}
}

func TestHealthTenantBlock(t *testing.T) {
	s, sys := newTestServer(t)
	if rec := do(t, s, "PUT", "/api/t/alpha", "", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create workspace: %d", rec.Code)
	}
	alpha, _ := s.Workspaces().Get("alpha")
	alpha.Workflow().Register("ed", workflow.RoleEditor)
	if rec := do(t, s, "POST", "/api/t/alpha/materials", "ed", tenantMat("h-1")); rec.Code != http.StatusCreated {
		t.Fatalf("seed alpha: %d", rec.Code)
	}

	rec := do(t, s, "GET", "/api/health", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/health = %d", rec.Code)
	}
	var h struct {
		Materials      int `json:"materials"`
		TotalMaterials int `json:"total_materials"`
		Tenants        map[string]struct {
			Materials int `json:"materials"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Materials != sys.Len() {
		t.Errorf("top-level materials = %d, want default's %d", h.Materials, sys.Len())
	}
	if h.TotalMaterials != sys.Len()+1 {
		t.Errorf("total_materials = %d, want %d", h.TotalMaterials, sys.Len()+1)
	}
	if h.Tenants["alpha"].Materials != 1 || h.Tenants["default"].Materials != sys.Len() {
		t.Errorf("tenants block = %+v", h.Tenants)
	}
}

// TestCursorPagination walks the whole corpus through ?after= keyset pages
// and proves the pages tile it exactly: no duplicates, no gaps, IDs strictly
// ascending, and the final page carries no next_cursor.
func TestCursorPagination(t *testing.T) {
	s, sys := newTestServer(t)
	total := sys.Len()

	type page struct {
		Total      int    `json:"total"`
		Limit      int    `json:"limit"`
		NextCursor string `json:"next_cursor"`
		Materials  []struct {
			ID string `json:"id"`
		} `json:"materials"`
	}

	var seen []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > total {
			t.Fatal("cursor pagination did not terminate")
		}
		rec := do(t, s, "GET", fmt.Sprintf("/api/materials?after=%s&limit=7", cursor), "", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("cursor page = %d: %s", rec.Code, rec.Body)
		}
		if dep := rec.Header().Get("Deprecation"); dep != "" {
			t.Errorf("cursor mode flagged deprecated: %q", dep)
		}
		p := decode[page](t, rec)
		if p.Total != total {
			t.Fatalf("page total = %d, want %d", p.Total, total)
		}
		for _, m := range p.Materials {
			if len(seen) > 0 && m.ID <= seen[len(seen)-1] {
				t.Fatalf("IDs not strictly ascending: %q after %q", m.ID, seen[len(seen)-1])
			}
			seen = append(seen, m.ID)
		}
		if p.NextCursor == "" {
			break
		}
		if len(p.Materials) == 0 || p.NextCursor != p.Materials[len(p.Materials)-1].ID {
			t.Fatalf("next_cursor %q does not match last ID of page", p.NextCursor)
		}
		cursor = p.NextCursor
	}
	if len(seen) != total {
		t.Fatalf("cursor walk yielded %d materials, want %d", len(seen), total)
	}

	// Legacy offset mode still works but is flagged deprecated and now
	// advertises the equivalent cursor.
	rec := do(t, s, "GET", "/api/materials?limit=5&offset=5", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy page = %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("legacy limit/offset page missing Deprecation header")
	}
	p := decode[page](t, rec)
	if len(p.Materials) != 5 || p.Total != total {
		t.Fatalf("legacy page shape: %d materials, total %d", len(p.Materials), p.Total)
	}
	if p.NextCursor != p.Materials[len(p.Materials)-1].ID {
		t.Errorf("legacy page next_cursor = %q, want last ID %q", p.NextCursor, p.Materials[len(p.Materials)-1].ID)
	}
	if p.Materials[0].ID != seen[5] {
		t.Errorf("offset page starts at %q, cursor walk had %q", p.Materials[0].ID, seen[5])
	}

	// Bare listing (no paging params) still returns the plain array.
	rec = do(t, s, "GET", "/api/materials", "", nil)
	var arr []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &arr); err != nil {
		t.Fatalf("bare listing not an array: %v", err)
	}
	if len(arr) != total {
		t.Errorf("bare listing = %d materials, want %d", len(arr), total)
	}
}
