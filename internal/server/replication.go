package server

import (
	"net/http"
	"strings"

	"carcs/internal/replica"
)

// Replication wiring. A leader attaches a replica.Hub (SetHub) to expose the
// checkpoint-bootstrap and WAL-stream endpoints; a follower attaches its
// replica.Follower (SetFollower) to reject mutations toward the leader and
// stamp reads with their staleness bound.
//
// The replication endpoints deliberately bypass http.TimeoutHandler and the
// admission middleware: a WAL stream is a deliberate long-poll (the timeout
// handler would kill it and break http.Flusher), and shedding the stream
// under load would be exactly backwards — replication is what keeps the
// followers able to absorb that load. They stay inside logging and panic
// recovery.

// SetHub attaches the leader-side replication hub and registers the
// replication endpoints. Call before serving.
func (s *Server) SetHub(h *replica.Hub) {
	s.hub = h
	s.replMux = http.NewServeMux()
	s.replMux.HandleFunc("GET /api/replication/checkpoint", h.ServeCheckpoint)
	s.replMux.HandleFunc("HEAD /api/replication/checkpoint", h.ServeCheckpoint)
	s.replMux.HandleFunc("GET /api/replication/wal", h.ServeWAL)
	s.rebuildHandler()
}

// SetFollower marks this server as a read-only follower replicating from
// f's leader. Mutations are refused with 503 + a Leader header; reads carry
// CARCS-Applied-Seq (and CARCS-Stale when the follower knows it lags). Call
// before serving, with a server built around f.System().
func (s *Server) SetFollower(f *replica.Follower) {
	s.follower = f
}

// replicationBypass routes /api/replication/ around the timeout and
// admission stack (see the package comment above) and everything else into
// next.
func (s *Server) replicationBypass(next http.Handler) http.Handler {
	repl := s.replMux
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/replication/") {
			repl.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// replicationStatus reports this node's replication role for /api/health,
// nil on an unreplicated node.
func (s *Server) replicationStatus() *replica.Status {
	switch {
	case s.hub != nil:
		return s.hub.Status()
	case s.follower != nil:
		return s.follower.Status()
	}
	return nil
}

// nodeSeq is the journal sequence this node's reads reflect: the applied
// cursor on a follower, the journal horizon on a durable leader, and the
// in-memory view generation on an ephemeral node (generations ARE its
// sequence numbers then — both count committed mutations from boot).
func (s *Server) nodeSeq() uint64 {
	switch {
	case s.follower != nil:
		return s.follower.Applied()
	case s.persister != nil:
		return s.persister.Seq()
	}
	return s.sys.Generation()
}
