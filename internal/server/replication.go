package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"carcs/internal/core"
	"carcs/internal/replica"
)

// Replication wiring. A leader attaches a replica.Hub (SetHub) to expose the
// checkpoint-bootstrap, WAL-stream, and fence endpoints; a follower attaches
// its replica.Follower (SetFollower) to reject mutations toward the leader,
// stamp reads with their staleness bound, and expose the promotion endpoint.
//
// The replication endpoints deliberately bypass http.TimeoutHandler and the
// admission middleware: a WAL stream is a deliberate long-poll (the timeout
// handler would kill it and break http.Flusher), promotion legitimately
// outlives a request deadline (it drains the old leader's tail and fsyncs a
// checkpoint), and shedding any of them under load would be exactly
// backwards — replication is what keeps the followers able to absorb that
// load. They stay inside logging and panic recovery.

// SetHub attaches the leader-side replication hub and registers the
// replication endpoints. Call before serving.
func (s *Server) SetHub(h *replica.Hub) {
	s.updateRepl(func(st *replState) {
		st.hub = h
		st.fence = replica.NewFence(h.Epoch())
		st.replMux = s.leaderReplMux(h)
	})
	s.rebuildHandler()
}

// leaderReplMux builds the replication routes a leader answers: bootstrap,
// WAL tail, and the deposition notice. Promote stays routable so a retried
// promotion (an operator script re-posting after a timeout) gets an
// idempotent 200 with the current identity instead of a 404.
func (s *Server) leaderReplMux(h *replica.Hub) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/replication/checkpoint", h.ServeCheckpoint)
	mux.HandleFunc("HEAD /api/replication/checkpoint", h.ServeCheckpoint)
	mux.HandleFunc("GET /api/replication/wal", h.ServeWAL)
	mux.HandleFunc("POST /api/replication/fence", s.handleFence)
	mux.HandleFunc("POST /api/replication/promote", s.handlePromote)
	return mux
}

// SetFollower marks this server as a read-only follower replicating from
// f's leader. Mutations are refused with 503 + a Leader header; reads carry
// CARCS-Applied-Seq and CARCS-Epoch (and CARCS-Stale when the follower
// knows it lags). Call before serving, with a server built around
// f.Workspaces().
func (s *Server) SetFollower(f *replica.Follower) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/replication/promote", s.handlePromote)
	s.updateRepl(func(st *replState) {
		st.follower = f
		st.replMux = mux
	})
	s.rebuildHandler()
}

// SetPromotion arms POST /api/replication/promote: dir is where the
// promoted node opens its own journal, advertise (optional) is this node's
// public base URL — forwarded to the deposed leader so its 503s can point
// writers at the new leader — and opts carries the commit tuning the
// promoted persister adopts. Call before serving.
func (s *Server) SetPromotion(dir, advertise string, opts core.DurableOptions) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	s.promoteDir = dir
	s.promoteAdvertise = advertise
	s.promoteOpts = opts
	s.promoteReady = true
}

// replicationBypass routes /api/replication/ around the timeout and
// admission stack (see the package comment above) and everything else into
// next. The sub-mux is resolved per request from the replication identity,
// so promotion's follower→leader route swap takes effect immediately.
func (s *Server) replicationBypass(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/replication/") {
			if repl := s.repl.Load().replMux; repl != nil {
				repl.ServeHTTP(w, r)
				return
			}
			writeError(w, http.StatusNotFound, "replication not enabled on this node")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// promoteRequest is the optional POST /api/replication/promote body.
type promoteRequest struct {
	// Advertise overrides the configured advertise URL for this promotion.
	Advertise string `json:"advertise,omitempty"`
}

// handlePromote serves POST /api/replication/promote on a follower: stop
// replicating, drain the reachable tail, adopt the replicated state into a
// fresh journal at the configured data dir under a bumped epoch, start a
// hub, and swap this server's identity to leader — all in process, while
// reads keep flowing. Idempotent on an already-promoted node (200 with the
// current identity); 409 when the node is not a follower or promotion was
// never armed.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	st := s.repl.Load()
	if st.follower == nil {
		if st.hub != nil || st.persister != nil {
			role, epoch := s.nodeRole()
			writeJSON(w, http.StatusOK, map[string]any{
				"role": role, "epoch": epoch, "seq": s.nodeSeq(), "promoted": false,
			})
			return
		}
		writeError(w, http.StatusConflict, "not a follower; nothing to promote")
		return
	}
	if !s.promoteReady {
		writeError(w, http.StatusConflict,
			"promotion not armed: start the follower with a data dir (-data alongside -follow)")
		return
	}
	var req promoteRequest
	if r.Body != nil {
		_ = json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req)
	}
	advertise := req.Advertise
	if advertise == "" {
		advertise = s.promoteAdvertise
	}
	p, hub, err := st.follower.Promote(r.Context(), s.promoteDir, advertise, s.promoteOpts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "promote: "+err.Error())
		return
	}
	s.updateRepl(func(ns *replState) {
		ns.follower = nil
		ns.persister = p
		ns.breaker = p.Breaker()
		ns.hub = hub
		ns.fence = replica.NewFence(p.Epoch())
		ns.replMux = s.leaderReplMux(hub)
	})
	s.log.Printf("promoted to leader: epoch %d at seq %d", p.Epoch(), p.Seq())
	writeJSON(w, http.StatusOK, map[string]any{
		"role": "leader", "epoch": p.Epoch(), "seq": p.Seq(), "promoted": true,
	})
}

// handleFence serves POST /api/replication/fence on a (possibly deposed)
// leader: fold the observed term into the fence. Once a higher term is
// seen the node refuses writes with 503 + Leader — its records would carry
// a stale epoch every applier rejects anyway; fencing just stops it
// acking writes it can no longer replicate.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch  uint64 `json:"epoch"`
		Leader string `json:"leader,omitempty"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad fence body: "+err.Error())
		return
	}
	st := s.repl.Load()
	if st.fence == nil {
		writeError(w, http.StatusConflict, "not a leader; nothing to fence")
		return
	}
	fenced := st.fence.Observe(req.Epoch, req.Leader)
	if fenced {
		s.log.Printf("fenced: observed epoch %d (own %d), leader %s",
			req.Epoch, st.fence.Own(), st.fence.Leader())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fenced": fenced, "epoch": st.fence.Seen(),
	})
}

// replicationStatus reports this node's replication role for /api/health,
// nil on an unreplicated node. A deposed leader reports "fenced" with the
// leader that superseded it.
func (s *Server) replicationStatus() *replica.Status {
	st := s.repl.Load()
	switch {
	case st.hub != nil:
		status := st.hub.Status()
		if st.fence != nil && st.fence.Fenced() {
			status.Role = "fenced"
			status.Leader = st.fence.Leader()
		}
		return status
	case st.follower != nil:
		return st.follower.Status()
	}
	return nil
}

// nodeRole resolves this node's routing identity: role plus the leadership
// epoch its state reflects. Every durable or replicated node has one; an
// ephemeral unreplicated node is "standalone" at epoch 0.
func (s *Server) nodeRole() (string, uint64) {
	st := s.repl.Load()
	switch {
	case st.follower != nil:
		return "follower", st.follower.Epoch()
	case st.fence != nil && st.fence.Fenced():
		return "fenced", st.fence.Own()
	case st.hub != nil:
		return "leader", st.hub.Epoch()
	case st.persister != nil:
		return "standalone", st.persister.Epoch()
	}
	return "standalone", 0
}

// nodeSeq is the journal sequence this node's reads reflect: the applied
// cursor on a follower, the journal horizon on a durable leader, and the
// in-memory view generation on an ephemeral node (generations ARE its
// sequence numbers then — both count committed mutations from boot).
func (s *Server) nodeSeq() uint64 {
	st := s.repl.Load()
	switch {
	case st.follower != nil:
		return st.follower.Applied()
	case st.persister != nil:
		return st.persister.Seq()
	}
	return s.ws.Default().Generation()
}
