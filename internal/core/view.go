package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"carcs/internal/cache"
	"carcs/internal/classify"
	"carcs/internal/coverage"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/relstore"
	"carcs/internal/search"
	"carcs/internal/similarity"
)

// View is one immutable snapshot of the system: every container it holds
// (search engine, relational store, Bayes models, rule miner) is a frozen
// copy pinned at a single generation. Reads on a View take no locks and
// never observe a concurrent commit — a handler that resolves a View at the
// top of a request gets the same answers from every call for the request's
// whole lifetime, even while the commit pipeline publishes new generations
// underneath it.
//
// Views are cheap: publishing one costs O(1) snapshots of persistent
// structures, not copies of the data. Hold them as long as needed; a pinned
// View keeps only the structure shared with its generation alive.
type View struct {
	sys     *System
	gen     uint64
	eng     *search.Engine
	store   *relstore.Store
	bayes   map[*ontology.Ontology]*classify.Bayes
	learned map[*ontology.Ontology]*learn.Model
	cooccur *classify.CoOccurrence
}

// Gen returns the mutation generation this view is pinned at. It is the
// cache-invalidation key for every analysis memoized through the view and
// the value the HTTP layer serves as the ETag.
func (v *View) Gen() uint64 { return v.gen }

// CS13 returns the CS13 ontology (shared and immutable).
func (v *View) CS13() *ontology.Ontology { return v.sys.cs13 }

// PDC12 returns the PDC12 ontology (shared and immutable).
func (v *View) PDC12() *ontology.Ontology { return v.sys.pdc12 }

// OntologyByName resolves "cs13" or "pdc12" (case-insensitive), else nil.
func (v *View) OntologyByName(name string) *ontology.Ontology {
	return v.sys.OntologyByName(name)
}

// Store exposes the snapped relational store. It is frozen: reads are safe
// from any goroutine and mutations must not be attempted.
func (v *View) Store() *relstore.Store { return v.store }

// Material returns the material with the given id at this generation.
func (v *View) Material(id string) *material.Material { return v.eng.Get(id) }

// Materials returns the materials at this generation, optionally filtered
// by collection name (empty for all), in insertion order.
func (v *View) Materials(collection string) []*material.Material {
	if collection == "" {
		return v.eng.All()
	}
	return v.eng.Select(search.ByCollection(collection))
}

// Collections lists the distinct collection names present, sorted.
func (v *View) Collections() []string {
	seen := make(map[string]bool)
	for _, m := range v.eng.All() {
		seen[m.Collection] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of materials at this generation.
func (v *View) Len() int { return v.eng.Len() }

// Select runs a filtered scan over the pinned corpus.
func (v *View) Select(f search.Filter) []*material.Material {
	return v.eng.Select(f)
}

// SearchText runs ranked free-text search with spell correction over the
// pinned index. The returned string is the corrected query when one was
// used ("did you mean"), empty otherwise.
func (v *View) SearchText(query string, k int, filters ...search.Filter) ([]search.Hit, string) {
	return v.eng.TextCorrected(query, k, filters...)
}

// SearchQuery evaluates the structured query mini-language over the pinned
// index.
func (v *View) SearchQuery(q string, k int) ([]search.Hit, error) {
	return v.eng.Query(q, k)
}

// doCached memoizes compute under (key, generation) like results.Do, with
// one extra rule for cancellation: concurrent requests for the same key
// share one in-flight computation, so when the request that happened to own
// the flight gets cancelled, every waiter sees its context error. A caller
// whose own ctx is still healthy retries instead of failing — without this,
// one impatient client could fail an unbounded number of healthy ones.
func (v *View) doCached(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	var res any
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		res, err = v.sys.results.Do(key, v.gen, compute)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return res, err
}

// Coverage computes the Figure 2 report of a collection (empty for all
// materials) against the named ontology ("cs13" or "pdc12"), memoized per
// generation in the shared result cache.
func (v *View) Coverage(ontologyName, collection string) (*coverage.Report, error) {
	return v.CoverageCtx(context.Background(), ontologyName, collection)
}

// CoverageCtx is Coverage with cooperative cancellation threaded into the
// sharded scan, so a shed or timed-out request stops computing promptly.
func (v *View) CoverageCtx(ctx context.Context, ontologyName, collection string) (*coverage.Report, error) {
	o := v.sys.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	key := cache.Key("coverage", v.sys.ontologyKey(o), collection)
	res, err := v.doCached(ctx, key, func() (any, error) {
		mats := v.Materials(collection)
		label := collection
		if label == "" {
			label = "all materials"
		}
		return coverage.ComputeCtx(ctx, o, label, mats)
	})
	if err != nil {
		return nil, err
	}
	return res.(*coverage.Report), nil
}

// DepthReport computes the Bloom-level depth report (the Sec. IV-A proposed
// extension), memoized per generation.
func (v *View) DepthReport(ontologyName, collection string) (*coverage.DepthReport, error) {
	o := v.sys.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	key := cache.Key("depth", v.sys.ontologyKey(o), collection)
	res, err := v.sys.results.Do(key, v.gen, func() (any, error) {
		return coverage.ComputeDepth(o, v.Materials(collection)), nil
	})
	if err != nil {
		return nil, err
	}
	return res.(*coverage.DepthReport), nil
}

// GapReport returns the uncovered-subtree analysis of a collection against
// an ontology, optionally restricted to core-tier gaps, memoized per
// generation on top of the (also memoized) coverage report.
func (v *View) GapReport(ontologyName, collection string, coreOnly bool) ([]coverage.Gap, error) {
	return v.GapReportCtx(context.Background(), ontologyName, collection, coreOnly)
}

// GapReportCtx is GapReport with cooperative cancellation threaded into the
// underlying coverage scan.
func (v *View) GapReportCtx(ctx context.Context, ontologyName, collection string, coreOnly bool) ([]coverage.Gap, error) {
	rep, err := v.CoverageCtx(ctx, ontologyName, collection)
	if err != nil {
		return nil, err
	}
	key := cache.Key("gaps", v.sys.ontologyKey(rep.Ontology), collection, strconv.FormatBool(coreOnly))
	res, err := v.doCached(ctx, key, func() (any, error) {
		if coreOnly {
			return rep.CoreGaps(rep.Ontology.RootID()), nil
		}
		return rep.Gaps(rep.Ontology.RootID()), nil
	})
	if err != nil {
		return nil, err
	}
	return res.([]coverage.Gap), nil
}

// SimilarityGraph builds the Figure 3 bipartite graph between two
// collections with the paper's shared-count metric at the given threshold
// (2 in the paper), memoized per generation.
func (v *View) SimilarityGraph(leftCollection, rightCollection string, threshold int) *similarity.Graph {
	g, err := v.SimilarityGraphCtx(context.Background(), leftCollection, rightCollection, threshold)
	if err != nil {
		// Only reachable if the shared flight was poisoned by cancelled
		// peers three times in a row; compute uncached rather than fail a
		// caller that has no error path.
		g, _ = similarity.BuildBipartiteCtx(context.Background(),
			v.Materials(leftCollection), v.Materials(rightCollection),
			similarity.SharedCount, float64(threshold))
	}
	return g
}

// SimilarityGraphCtx is SimilarityGraph with cooperative cancellation
// threaded into the sharded pair scoring.
func (v *View) SimilarityGraphCtx(ctx context.Context, leftCollection, rightCollection string, threshold int) (*similarity.Graph, error) {
	key := cache.Key("similarity", leftCollection, rightCollection, strconv.Itoa(threshold))
	res, err := v.doCached(ctx, key, func() (any, error) {
		left := v.Materials(leftCollection)
		right := v.Materials(rightCollection)
		return similarity.BuildBipartiteCtx(ctx, left, right, similarity.SharedCount, float64(threshold))
	})
	if err != nil {
		return nil, err
	}
	return res.(*similarity.Graph), nil
}

// Suggest proposes classification entries for free text against the named
// ontology using the requested method ("keyword", "tfidf", "bayes",
// "learned", or "ensemble"), over the models pinned in this view. Results
// are memoized
// per (query, generation).
func (v *View) Suggest(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	return v.SuggestCtx(context.Background(), method, ontologyName, text, k)
}

// SuggestCtx is Suggest with a cancellation check between ensemble members,
// so a shed or timed-out request pays for at most one engine's pass.
func (v *View) SuggestCtx(ctx context.Context, method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	o := v.sys.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	switch method {
	case "", "tfidf", "keyword", "bayes", "learned", "ensemble":
	default:
		return nil, fmt.Errorf("core: unknown suggester %q", method)
	}
	key := cache.Key("suggest", method, v.sys.ontologyKey(o), strconv.Itoa(k), text)
	res, err := v.doCached(ctx, key, func() (any, error) {
		return v.suggestCtx(ctx, method, o, text, k)
	})
	if err != nil {
		return nil, err
	}
	return res.([]classify.Suggestion), nil
}

// SuggestDirect computes suggestions without consulting or filling the
// result cache. Bulk pipelines (the ingest auto-classifier) use it: their
// queries never repeat, and each of their own commits bumps the generation,
// so caching the results would only pile up dead entries.
func (v *View) SuggestDirect(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	o := v.sys.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	switch method {
	case "", "tfidf", "keyword", "bayes", "learned", "ensemble":
	default:
		return nil, fmt.Errorf("core: unknown suggester %q", method)
	}
	return v.suggest(method, o, text, k), nil
}

// SuggestTermsDirect is SuggestDirect over pre-analyzed terms. The ingest
// auto-classifier tokenizes each record's search text once and fans the
// term list across both ontologies and every engine; re-running the
// analyzer per (engine, ontology) pair dominated the bulk path.
func (v *View) SuggestTermsDirect(method, ontologyName string, terms []string, k int) ([]classify.Suggestion, error) {
	o := v.sys.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	sg := v.sys.sug[o]
	switch method {
	case "", "tfidf":
		return sg.tfidf.SuggestTerms(terms, k), nil
	case "keyword":
		return sg.keyword.SuggestTerms(terms, k), nil
	case "bayes":
		return v.bayes[o].SuggestTerms(terms, k), nil
	case "learned":
		return v.learned[o].SuggestTerms(terms, k), nil
	case "ensemble":
		ens := classify.NewEnsemble(v.ensembleMembers(o)...)
		return ens.SuggestTermsCtx(context.Background(), terms, k)
	default:
		return nil, fmt.Errorf("core: unknown suggester %q", method)
	}
}

// suggest runs the chosen engine. The training-free engines are shared
// (built once at system construction, read-only); the Bayes models are this
// view's frozen snapshots, so no locking is needed anywhere.
func (v *View) suggest(method string, o *ontology.Ontology, text string, k int) []classify.Suggestion {
	out, _ := v.suggestCtx(context.Background(), method, o, text, k)
	return out
}

func (v *View) suggestCtx(ctx context.Context, method string, o *ontology.Ontology, text string, k int) ([]classify.Suggestion, error) {
	sg := v.sys.sug[o]
	switch method {
	case "", "tfidf":
		return sg.tfidf.Suggest(text, k), nil
	case "keyword":
		return sg.keyword.Suggest(text, k), nil
	case "bayes":
		return v.bayes[o].Suggest(text, k), nil
	case "learned":
		// Nil/untrained models suggest nothing rather than erroring, like
		// an untrained Bayes: the method exists as soon as the binary does,
		// the answers arrive after the first train.
		return v.learned[o].Suggest(text, k), nil
	default: // ensemble
		ens := classify.NewEnsemble(v.ensembleMembers(o)...)
		return ens.SuggestCtx(ctx, text, k)
	}
}

// ensembleMembers assembles the fusion committee for an ontology: the
// pinned Bayes model and the shared training-free engines, plus the
// learned model once it has been trained. Rank fusion lets the trained
// model outvote the heuristics without silencing them.
func (v *View) ensembleMembers(o *ontology.Ontology) []classify.Suggester {
	sg := v.sys.sug[o]
	members := []classify.Suggester{v.bayes[o], sg.keyword, sg.tfidf}
	if lm := v.learned[o]; lm.Trained() {
		members = append([]classify.Suggester{lm}, members...)
	}
	return members
}

// Learned returns this view's pinned learned model for the ontology, which
// may be nil before the first train.
func (v *View) Learned(o *ontology.Ontology) *learn.Model { return v.learned[o] }

// Recommend proposes classification entries commonly used together with the
// already-selected ones, from the association rules pinned in this view.
// Results are memoized per (selection, generation).
func (v *View) Recommend(selected []string, k int) []classify.Rule {
	key := cache.Key(append([]string{"recommend", strconv.Itoa(k)}, selected...)...)
	res, _ := v.sys.results.Do(key, v.gen, func() (any, error) {
		return v.cooccur.Recommend(selected, 2, k), nil
	})
	return res.([]classify.Rule)
}

// PDCReplacements is the Sec. IV-D query over the pinned corpus, memoized
// per generation.
func (v *View) PDCReplacements(id string, k int) ([]similarity.Edge, error) {
	key := cache.Key("replacements", id, strconv.Itoa(k))
	res, err := v.sys.results.Do(key, v.gen, func() (any, error) {
		m := v.eng.Get(id)
		if m == nil {
			return nil, fmt.Errorf("core: no material %q", id)
		}
		return v.eng.PDCReplacements(m, 2, k), nil
	})
	if err != nil {
		return nil, err
	}
	return res.([]similarity.Edge), nil
}

// Snapshot writes the pinned relational state as JSON.
func (v *View) Snapshot(w io.Writer) error { return v.store.Snapshot(w) }

// Stats summarizes the pinned state for the CLI and the status endpoint.
func (v *View) Stats() Stats {
	return Stats{
		Materials:   v.Len(),
		Collections: v.Collections(),
		Entries:     v.store.Table("entries").Len(),
		Links:       v.store.Link("material_classifications").Len(),
		CS13Size:    v.sys.cs13.Len(),
		PDC12Size:   v.sys.pdc12.Len(),
	}
}

// SortedMaterials returns the pinned corpus (optionally filtered), sorted by
// material ID — the listing order the API pages over. The sorted slice is
// memoized per (filter key, generation): the first page of a listing pays
// one O(n log n) sort, every further page of the same generation reuses it,
// which is what keeps cursor pagination constant-latency at millions of
// rows. filterKey must canonically encode f (callers build it from the
// normalized query parameters); f == nil means the whole corpus. Callers
// must not mutate the returned slice.
func (v *View) SortedMaterials(filterKey string, f search.Filter) []*material.Material {
	key := cache.Key("sorted-materials", filterKey)
	res, err := v.doCached(context.Background(), key, func() (any, error) {
		var mats []*material.Material
		if f == nil {
			mats = v.eng.All()
		} else {
			mats = v.eng.Select(f)
		}
		sort.Slice(mats, func(i, j int) bool { return mats[i].ID < mats[j].ID })
		return mats, nil
	})
	if err != nil {
		// compute never fails; doCached only errs on context cancellation,
		// impossible with Background. Fall back to an uncached sort.
		var mats []*material.Material
		if f == nil {
			mats = v.eng.All()
		} else {
			mats = v.eng.Select(f)
		}
		sort.Slice(mats, func(i, j int) bool { return mats[i].ID < mats[j].ID })
		return mats
	}
	return res.([]*material.Material)
}

// MaterialsPage returns one keyset page of the sorted, filtered corpus:
// up to limit materials with ID strictly greater than after (empty after
// starts at the beginning), the total filtered count, and the cursor for
// the next page ("" when this page reaches the end). Finding the page is a
// binary search over the memoized sorted slice, so page latency is
// O(log n + limit) regardless of corpus size or cursor depth — unlike
// limit/offset, which walks the offset every call.
func (v *View) MaterialsPage(filterKey string, f search.Filter, after string, limit int) (page []*material.Material, total int, next string) {
	mats := v.SortedMaterials(filterKey, f)
	total = len(mats)
	start := 0
	if after != "" {
		start = sort.Search(len(mats), func(i int) bool { return mats[i].ID > after })
	}
	end := start + limit
	if limit <= 0 || end > len(mats) {
		end = len(mats)
	}
	page = mats[start:end]
	if end < len(mats) && len(page) > 0 {
		next = page[len(page)-1].ID
	}
	return page, total, next
}
