package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultTenant is the workspace every legacy (un-prefixed) API route, every
// pre-tenancy WAL record, and every pre-tenancy checkpoint maps to. Records
// belonging to it are journaled with an empty tenant stamp, which the
// omitempty encoding drops — so a default-only journal is byte-identical to
// one written before workspaces existed.
const DefaultTenant = "default"

// ErrNoTenant reports a request against a workspace that was never created.
var ErrNoTenant = errors.New("core: no such workspace")

// maxTenantName bounds workspace names; they appear in URLs, journal
// records, and checkpoint keys.
const maxTenantName = 64

// ValidateTenantName enforces the workspace naming rule: 1–64 characters of
// lowercase letters, digits, '.', '_' or '-', starting with a letter or
// digit. "default" is reserved for the implicit workspace but is accepted
// by lookup paths as an alias.
func ValidateTenantName(name string) error {
	if name == "" || len(name) > maxTenantName {
		return fmt.Errorf("core: workspace name must be 1-%d characters", maxTenantName)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return fmt.Errorf("core: workspace name %q must start with a letter or digit", name)
			}
		default:
			return fmt.Errorf("core: workspace name %q: only [a-z0-9._-] allowed", name)
		}
	}
	return nil
}

// Workspaces manages the named tenants of one process: the always-present
// default System plus any number of created workspaces, each an independent
// System (own store, workflow queue, learned models, generation, and result
// cache) sharing the process-wide immutable ontologies and the memoized
// training-free suggesters. All tenants commit through one durability
// pipeline — the Persister stamps each journaled op with its tenant.
type Workspaces struct {
	// mu sits above every per-System lock in the hierarchy: Create holds
	// it across (journal tenant.create, insert into map), and the
	// checkpoint path holds it (read) across the whole snapshot+truncate,
	// so a tenant can never be journaled on one side of a checkpoint's
	// WAL horizon and recorded on the other.
	mu      sync.RWMutex
	def     *System
	tenants map[string]*System // non-default only

	// quota, when positive, is applied as the material limit of every
	// current and future workspace (the default tenant included).
	quota int

	// epoch is the set-wide leadership-epoch fence. Workspaces created
	// after a failover inherit it, so a stale record for a brand-new tenant
	// is rejected just like one for an existing tenant. Guarded by mu.
	epoch uint64

	// onCreate, when set (by the durability layer), journals the
	// tenant.create op and wires persistence hooks into the new System.
	// It runs with mu held, before the workspace becomes visible; a
	// failure aborts the creation.
	onCreate func(name string, sys *System) error
	// onReplayCreate mirrors onCreate for tenants materialized by WAL
	// replay or replication apply: hooks are wired but no create op is
	// journaled (the stream already carries one). Guarded by mu.
	onReplayCreate func(name string, sys *System) error
}

// NewWorkspaces wraps an existing System as the default tenant of a new
// workspace set. Server code that never creates tenants sees exactly the
// old single-System behavior.
func NewWorkspaces(def *System) *Workspaces {
	return &Workspaces{def: def, tenants: make(map[string]*System)}
}

// Default returns the default tenant's System. Guarded because AdoptFrom
// can swap the whole set at runtime (follower re-bootstrap).
func (w *Workspaces) Default() *System {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.def
}

// AdoptFrom replaces this set's workspaces with src's, in place: every
// holder of this *Workspaces (the HTTP server, the follower) sees the new
// tenant set on its next resolution without re-wiring anything. A
// replication follower that fell behind the leader's retention horizon uses
// it to swap in a freshly restored checkpoint. The receiver's quota and
// epoch fence carry over (and the fence only ratchets up); durability hooks
// are not copied — a follower has none, and a durable set must never adopt.
func (w *Workspaces) AdoptFrom(src *Workspaces) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// src is freshly restored and unshared; its fields need no lock.
	w.def = src.def
	w.tenants = src.tenants
	if src.epoch > w.epoch {
		w.epoch = src.epoch
	}
	if w.quota > 0 {
		w.def.SetMaterialLimit(w.quota)
	}
	w.def.FenceEpoch(w.epoch)
	for _, sys := range w.tenants {
		if w.quota > 0 {
			sys.SetMaterialLimit(w.quota)
		}
		sys.FenceEpoch(w.epoch)
	}
}

// SetCreateHooks installs the durability callbacks: created runs for
// API-created workspaces (journals tenant.create and wires hooks), replayed
// for workspaces materialized from the WAL or a replication stream (wires
// hooks only). Installed once at open time, before any concurrent use.
func (w *Workspaces) SetCreateHooks(created, replayed func(name string, sys *System) error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onCreate = created
	w.onReplayCreate = replayed
}

// Get returns the named workspace's System. The empty name and "default"
// resolve to the default tenant.
func (w *Workspaces) Get(name string) (*System, bool) {
	if name == "" || name == DefaultTenant {
		return w.def, true
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	sys, ok := w.tenants[name]
	return sys, ok
}

// Create makes the named workspace, journaling a tenant.create op through
// the durability hook. It is idempotent: creating an existing workspace (or
// "default") returns it with created=false. The name must pass
// ValidateTenantName.
func (w *Workspaces) Create(name string) (sys *System, created bool, err error) {
	if name == DefaultTenant {
		return w.def, false, nil
	}
	if err := ValidateTenantName(name); err != nil {
		return nil, false, err
	}
	return w.ensure(name, true)
}

// EnsureReplay makes the named workspace without journaling — the WAL replay
// and replication apply paths call it when they meet a tenant-stamped record
// for a workspace not yet in the checkpoint. Validation still applies: a
// corrupt name in the stream is an error, not a tenant.
func (w *Workspaces) EnsureReplay(name string) (*System, error) {
	if name == "" || name == DefaultTenant {
		return w.def, nil
	}
	if err := ValidateTenantName(name); err != nil {
		return nil, err
	}
	sys, _, err := w.ensure(name, false)
	return sys, err
}

func (w *Workspaces) ensure(name string, journal bool) (*System, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if sys, ok := w.tenants[name]; ok {
		return sys, false, nil
	}
	sys, err := New()
	if err != nil {
		return nil, false, err
	}
	if w.quota > 0 {
		sys.SetMaterialLimit(w.quota)
	}
	sys.FenceEpoch(w.epoch)
	hook := w.onReplayCreate
	if journal {
		hook = w.onCreate
	}
	if hook != nil {
		if err := hook(name, sys); err != nil {
			return nil, false, fmt.Errorf("core: create workspace %q: %w", name, err)
		}
	}
	w.tenants[name] = sys
	return sys, true, nil
}

// Names returns the sorted workspace names, the default tenant first.
func (w *Workspaces) Names() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	names := make([]string, 0, len(w.tenants)+1)
	names = append(names, DefaultTenant)
	for n := range w.tenants {
		names = append(names, n)
	}
	sort.Strings(names[1:])
	return names
}

// Len reports the number of workspaces, the default tenant included.
func (w *Workspaces) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.tenants) + 1
}

// Each calls fn for every workspace (default first, then sorted) on a
// point-in-time snapshot of the set.
func (w *Workspaces) Each(fn func(name string, sys *System)) {
	w.mu.RLock()
	names := make([]string, 0, len(w.tenants))
	for n := range w.tenants {
		names = append(names, n)
	}
	systems := make([]*System, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		systems = append(systems, w.tenants[n])
	}
	def := w.def
	w.mu.RUnlock()
	fn(DefaultTenant, def)
	for i, n := range names {
		fn(n, systems[i])
	}
}

// FenceEpoch raises the leadership-epoch fence on every current workspace
// and records it for future ones. Forward-only, like System.FenceEpoch.
func (w *Workspaces) FenceEpoch(epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch > w.epoch {
		w.epoch = epoch
	}
	w.def.FenceEpoch(epoch)
	for _, sys := range w.tenants {
		sys.FenceEpoch(epoch)
	}
}

// Epoch reports the set-wide leadership-epoch fence.
func (w *Workspaces) Epoch() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.epoch
}

// SetQuota applies a material-count quota to every current and future
// workspace; zero or negative removes it.
func (w *Workspaces) SetQuota(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quota = n
	w.def.SetMaterialLimit(n)
	for _, sys := range w.tenants {
		sys.SetMaterialLimit(n)
	}
}

// Quota reports the workspace material quota (0 = unlimited).
func (w *Workspaces) Quota() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.quota
}
